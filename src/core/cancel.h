/// \file cancel.h
/// Deadlines, cooperative cancellation, and the per-Apply execution
/// governor.
///
/// The evaluation stack has no safe preemption point except between units
/// of work, so cancellation is cooperative: every operator loop and every
/// ParallelFor chunk boundary polls an ExecGovernor, which folds together
/// the three ways a governed Apply can be stopped —
///
///   * Deadline     — wall-clock budget for the whole Apply;
///   * CancelToken  — caller-driven async cancellation (another thread may
///                    Cancel() while Apply runs);
///   * ResourceBudget — memory/cardinality accounting (core/budget.h).
///
/// The governor is *sticky*: the first trip wins, records a StatusCode +
/// message, and every later poll returns "stop" immediately without
/// re-checking clocks or budgets. Operators bail out returning partial
/// results that the engine discards — evaluate-then-commit makes the abort
/// atomic (see DESIGN.md §10). An ungoverned execution carries a null
/// governor pointer, so the hot path pays one pointer compare and nothing
/// else.
///
/// Observed cancellation latency is bounded by one chunk boundary: a
/// sequential operator polls every kGovernorStride rows, a parallel one at
/// every chunk claim, and a tripped governor makes the thread pool drain
/// remaining chunks without running them.

#ifndef DYNFO_CORE_CANCEL_H_
#define DYNFO_CORE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/budget.h"
#include "core/status.h"

namespace dynfo::core {

/// How often sequential operator loops poll the governor (rows per poll).
/// Chosen to keep poll overhead invisible next to per-row work while
/// bounding cancellation latency to a few hundred rows.
inline constexpr size_t kGovernorStride = 256;

/// A wall-clock budget. Default-constructed = infinite (never expires).
class Deadline {
 public:
  Deadline() = default;

  /// Expires `duration` from now. Non-positive durations are already
  /// expired — useful for tests pinning the timeout path deterministically.
  static Deadline AfterMillis(int64_t millis) {
    Deadline d;
    d.has_deadline_ = true;
    d.when_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(millis);
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool is_infinite() const { return !has_deadline_; }

  bool expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= when_;
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point when_{};
};

/// Caller-side async cancellation flag. The caller keeps the token and may
/// Cancel() from any thread; governed execution polls it via the governor.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The per-Apply stop authority polled at chunk boundaries. Constructed on
/// the Apply stack, shared by reference with every operator through
/// EvalContext and with the thread pool through ParallelOptions; all methods
/// are safe to call concurrently.
class ExecGovernor {
 public:
  ExecGovernor() = default;
  ExecGovernor(Deadline deadline, const CancelToken* cancel, ResourceBudget* budget)
      : deadline_(deadline), cancel_(cancel), budget_(budget) {}

  /// Polls every stop source. Returns true iff execution must stop; the
  /// first true answer latches the code/message for status(). Cheap once
  /// tripped (single relaxed load).
  bool ShouldStop() const;

  /// True iff a trip already happened (no polling side effects).
  bool stopped() const {
    return code_.load(std::memory_order_relaxed) != static_cast<int>(StatusCode::kOk);
  }

  StatusCode code() const {
    return static_cast<StatusCode>(code_.load(std::memory_order_relaxed));
  }

  /// The trip as a Status (OK if never tripped).
  Status status() const;

  /// Charges `rows` materialized rows of `row_bytes` bytes each against the
  /// budget (no-op without one). Returns false and trips kResourceExhausted
  /// on breach; callers should then bail out of their loop.
  bool ChargeRows(uint64_t rows, uint64_t row_bytes) const;

  /// Total ShouldStop polls so far — the cancellation-latency yardstick:
  /// after a trip at poll k, the counter stays within a few threads of k.
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }

  /// Test/chaos knob: deterministically trips kCancelled at the `k`-th
  /// ShouldStop poll (1-based; 0 disarms). This is how the atomicity sweep
  /// cancels at every successive chunk boundary without timing races.
  void TripAtCheck(uint64_t k) { trip_at_check_ = k; }

  /// Chaos knob (worker-stall injector): the `k`-th poll sleeps `millis`
  /// before returning, modeling a descheduled worker. Combined with a tight
  /// deadline it forces the timeout path at a seeded, reproducible point.
  void StallAtCheck(uint64_t k, int millis) {
    stall_at_check_ = k;
    stall_millis_ = millis;
  }

 private:
  void Trip(StatusCode code, const std::string& message) const;

  Deadline deadline_;
  const CancelToken* cancel_ = nullptr;
  ResourceBudget* budget_ = nullptr;
  uint64_t trip_at_check_ = 0;
  uint64_t stall_at_check_ = 0;
  int stall_millis_ = 0;

  mutable std::atomic<uint64_t> checks_{0};
  mutable std::atomic<int> code_{static_cast<int>(StatusCode::kOk)};
  mutable std::mutex message_mutex_;
  mutable std::string message_;
};

/// Null-safe poll helper for loops holding a possibly-null governor.
inline bool GovernorStop(const ExecGovernor* governor) {
  return governor != nullptr && governor->ShouldStop();
}

}  // namespace dynfo::core

#endif  // DYNFO_CORE_CANCEL_H_
