/// \file durable_io.h
/// The atomic write discipline for everything that must survive a kill.
///
/// Every durable artifact — snapshots, checkpoints, journal segments, the
/// manifest — reaches disk through this one layer, so the crash-consistency
/// argument is made exactly once:
///
///   * whole files are replaced atomically: write a sibling temp file,
///     fsync it, rename() over the target, fsync the parent directory.
///     A kill at any boundary leaves either the old bytes or the new bytes,
///     never a mixture and never a missing target;
///   * appends go through AppendFile, which exposes the write and fsync
///     boundaries separately so callers choose their durability point
///     (the journal fsyncs per record in durable mode);
///   * file creation and deletion fsync the parent directory before any
///     other artifact is allowed to reference (or forget) the entry.
///
/// Every primitive boundary consults an installable IoShim first. The crash
/// matrix (core/fault.h CrashPointShim) uses this to simulate a process
/// kill at every single write/fsync/rename/create/unlink/truncate in the
/// sequence, including torn (partial) writes and post-crash loss of bytes
/// that were written but never fsynced.

#ifndef DYNFO_CORE_DURABLE_IO_H_
#define DYNFO_CORE_DURABLE_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace dynfo::core {

/// The primitive durable-I/O boundaries, in the granularity the crash
/// matrix kills at. Reads are not boundaries: a kill during a read damages
/// nothing.
enum class IoOp {
  kCreate,    ///< open(O_CREAT) of a new durable file (temp or segment)
  kWrite,     ///< write(2) of a byte range to an open durable file
  kFsync,     ///< fsync(2) of an open durable file
  kRename,    ///< rename(2) of a temp file over its target
  kDirFsync,  ///< fsync(2) of a parent directory (persists dirents)
  kTruncate,  ///< truncate(2) dropping a torn journal tail
  kUnlink,    ///< unlink(2) of a garbage-collected file
};

const char* IoOpName(IoOp op);

/// Interceptor consulted at every primitive boundary. Install in tests and
/// crash campaigns only; durable I/O must be externally serialized while a
/// shim is installed (the engine's single-writer discipline already is).
class IoShim {
 public:
  virtual ~IoShim() = default;

  /// Called immediately BEFORE the op executes. `path` is the target path
  /// (for kRename, the destination). Returning false simulates the process
  /// dying at this boundary: the op is not performed — except that for
  /// kWrite the shim may set *partial_bytes < bytes to model a torn write
  /// whose prefix reached the file — and the caller receives an error
  /// Status recognized by IsSimulatedCrash().
  virtual bool BeforeOp(IoOp op, const std::string& path, size_t bytes,
                        size_t* partial_bytes) = 0;

  /// Called after the op really executed, so shims can track durability
  /// state (bytes not yet fsynced, renames not yet dir-fsynced).
  virtual void AfterOp(IoOp op, const std::string& path, size_t bytes) = 0;
};

/// Installs `shim` for all subsequent durable I/O (nullptr restores real
/// I/O). Returns the previously installed shim.
IoShim* InstallIoShim(IoShim* shim);

/// True when `status` is the death of a simulated crash (an IoShim vetoed a
/// boundary), as opposed to a real I/O failure.
bool IsSimulatedCrash(const Status& status);

/// Reads an entire file. Missing file is an error (callers that tolerate
/// absence check FileExists first).
Result<std::string> ReadFileToString(const std::string& path);

bool FileExists(const std::string& path);

/// Creates `path` as a directory if it does not exist (one level).
Status EnsureDir(const std::string& path);

/// Names of the regular files directly inside `dir` (no order guarantee).
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Atomically replaces `path` with `contents`: temp sibling → write →
/// fsync → rename → parent dir fsync. On ANY failure (including a
/// simulated crash at any boundary) the previous contents of `path` are
/// intact on disk.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Unlinks `path` and fsyncs its parent directory.
Status RemoveFileDurable(const std::string& path);

/// Truncates `path` to `size` bytes and fsyncs it.
Status TruncateFileDurable(const std::string& path, uint64_t size);

/// fsync(2) on the directory itself, persisting its entries.
Status FsyncDir(const std::string& dir);

/// An append-only durable file whose writes and fsyncs route through the
/// shim. Used for journal segments; creation fsyncs the parent directory so
/// the entry is durable before anything references the file.
class AppendFile {
 public:
  /// Opens for append, creating (durably) if absent.
  static Result<AppendFile> Open(const std::string& path);

  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  /// One write(2) call (plus the shim boundary). Not yet durable.
  Status Append(std::string_view data);

  /// fsync(2): everything appended so far survives power loss.
  Status Fsync();

  const std::string& path() const { return path_; }

 private:
  AppendFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_DURABLE_IO_H_
