/// \file check.h
/// Internal invariant-checking macros.
///
/// DYNFO_CHECK is always on (release included): this library manipulates
/// logical structures whose invariants, once violated, silently corrupt every
/// downstream answer; failing fast is the only safe behaviour.

#ifndef DYNFO_CORE_CHECK_H_
#define DYNFO_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dynfo::core {

[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& message);

namespace internal {

/// Accumulates a streamed failure message, then aborts in the destructor of
/// the temporary. Used by the DYNFO_CHECK macro below.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() { CheckFailure(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

[[noreturn]] inline void Unreachable(const char* file, int line) {
  CheckFailure(file, line, "false", "unreachable");
}

}  // namespace internal
}  // namespace dynfo::core

/// Aborts with a diagnostic if `cond` is false. Additional context may be
/// streamed: DYNFO_CHECK(x < n) << "x=" << x;
#define DYNFO_CHECK(cond)                                                       \
  if (cond) {                                                                   \
  } else /* NOLINT */                                                           \
    ::dynfo::core::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

/// Marks unreachable code paths ([[noreturn]], so the compiler knows).
#define DYNFO_UNREACHABLE() ::dynfo::core::internal::Unreachable(__FILE__, __LINE__)

#endif  // DYNFO_CORE_CHECK_H_
