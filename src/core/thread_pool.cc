#include "core/thread_pool.h"

#include <algorithm>
#include <memory>

#include "core/cancel.h"
#include "core/check.h"

namespace dynfo::core {

/// One ParallelFor invocation: an atomically-claimed odometer of chunks.
/// Helper tasks on the pool hold a shared_ptr, so a helper scheduled after
/// the caller already drained every chunk just exits without touching freed
/// state.
struct ThreadPool::Batch {
  std::function<void(size_t, size_t, size_t)> fn;
  size_t begin = 0;
  size_t chunk_size = 0;
  size_t num_chunks = 0;
  size_t end = 0;
  const ExecGovernor* governor = nullptr;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  std::mutex mutex;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(int num_workers) {
  DYNFO_CHECK(num_workers >= 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    int workers = std::max(7, hw > 0 ? static_cast<int>(hw) - 1 : 7);
    return new ThreadPool(workers);
  }();
  return *pool;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

size_t ThreadPool::PlanChunks(size_t begin, size_t end,
                              const ParallelOptions& options) const {
  if (end <= begin) return 0;
  const size_t total = end - begin;
  const size_t grain = std::max<size_t>(1, options.grain);
  const int threads =
      std::max(1, std::min(options.num_threads, num_workers() + 1));
  if (threads == 1 || total <= grain) return 1;
  // Over-partition by 4x the thread count so stragglers rebalance, but never
  // below the grain.
  const size_t target_chunks = static_cast<size_t>(threads) * 4;
  const size_t chunk_size = std::max(grain, (total + target_chunks - 1) / target_chunks);
  return (total + chunk_size - 1) / chunk_size;
}

void ThreadPool::RunChunks(Batch* batch) {
  while (true) {
    const size_t chunk = batch->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= batch->num_chunks) return;
    const size_t chunk_begin = batch->begin + chunk * batch->chunk_size;
    const size_t chunk_end = std::min(batch->end, chunk_begin + batch->chunk_size);
    // A tripped governor turns remaining chunks into no-ops: they are still
    // claimed and counted so every waiter unblocks, but the work function is
    // skipped — this is the "bounded by one chunk boundary" half of the
    // cancellation-latency guarantee (the operators' partial results are
    // discarded by the aborting caller).
    if (!GovernorStop(batch->governor)) {
      batch->fn(chunk, chunk_begin, chunk_end);
    }
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (batch->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->num_chunks) {
      std::lock_guard<std::mutex> lock(batch->mutex);
      batch->done_cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, const ParallelOptions& options,
                             const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t num_chunks = PlanChunks(begin, end, options);
  if (num_chunks == 0) return;
  if (num_chunks == 1) {
    if (!GovernorStop(options.governor)) fn(0, begin, end);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    inline_batches_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = fn;
  batch->begin = begin;
  batch->end = end;
  batch->governor = options.governor;
  batch->num_chunks = num_chunks;
  const size_t total = end - begin;
  batch->chunk_size = (total + num_chunks - 1) / num_chunks;

  const int threads = std::max(1, std::min(options.num_threads, num_workers() + 1));
  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(threads) - 1, num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.push([this, batch] { RunChunks(batch.get()); });
    }
  }
  for (size_t i = 0; i < helpers; ++i) queue_cv_.notify_one();
  parallel_batches_.fetch_add(1, std::memory_order_relaxed);

  // The caller drains chunks too, then waits for in-flight helpers.
  RunChunks(batch.get());
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&batch] {
    return batch->chunks_done.load(std::memory_order_acquire) == batch->num_chunks;
  });
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats out;
  out.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  out.parallel_batches = parallel_batches_.load(std::memory_order_relaxed);
  out.inline_batches = inline_batches_.load(std::memory_order_relaxed);
  return out;
}

void TaskGroup::RunAndWait(int num_threads) {
  if (tasks_.empty()) return;
  ParallelOptions options;
  options.num_threads = num_threads;
  options.grain = 1;
  pool_->ParallelFor(0, tasks_.size(), options,
                     [this](size_t, size_t chunk_begin, size_t chunk_end) {
                       for (size_t i = chunk_begin; i < chunk_end; ++i) tasks_[i]();
                     });
  tasks_.clear();
}

}  // namespace dynfo::core
