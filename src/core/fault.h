/// \file fault.h
/// Seeded fault injection for the fault-tolerance campaign.
///
/// A FaultInjector models the failure modes the recovery layer must
/// survive: bit rot in auxiliary relations (a cosmic-ray tuple flip),
/// journal damage (a dropped or duplicated record), and a process killed
/// mid-write (a truncated snapshot or torn journal tail). Every fault is
/// drawn from a seeded Rng so campaigns are reproducible, and every
/// injection returns a human-readable description for logging.
///
/// This header sits above the relational data model (it mutates
/// structures); it lives in core/ alongside Rng because it is shared
/// infrastructure for tests and benchmarks, not part of the engine proper.

#ifndef DYNFO_CORE_FAULT_H_
#define DYNFO_CORE_FAULT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "relational/structure.h"

namespace dynfo::core {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

  /// The campaign seed this injector was constructed with, and the current
  /// trial index within the campaign: together they are the one-line repro
  /// for any failure ("rerun with --seed=S, failure at trial T"). Every
  /// chaos/recovery failure message must include Context().
  uint64_t seed() const { return seed_; }
  void set_trial(uint64_t trial) { trial_ = trial; }
  uint64_t trial() const { return trial_; }
  std::string Context() const {
    return "seed=" + std::to_string(seed_) + " trial=" + std::to_string(trial_);
  }

  /// Chaos planners: draw the parameters of one injected fault for the
  /// resource-governance layer (dynfo::ApplyGovernance's test knobs).
  /// Returned values are 1-based positions; uniform in [1, max].

  /// Allocation-failure injector: the budget charge index at which the
  /// accountant reports failure (ResourceBudget::FailAfterCharges).
  uint64_t PlanAllocationFailure(uint64_t max_charges) {
    return 1 + rng_.Below(max_charges);
  }

  /// Worker-stall injector: the governor check that sleeps, and for how
  /// long (ExecGovernor::StallAtCheck). Pair with a tight deadline to pin
  /// the timeout path at a reproducible poll.
  std::pair<uint64_t, int> PlanWorkerStall(uint64_t max_check, int max_millis) {
    return {1 + rng_.Below(max_check), 1 + static_cast<int>(rng_.Below(
                                               static_cast<uint64_t>(max_millis)))};
  }

  /// Deadline-jitter injector: a per-request deadline in [1, max_millis].
  int64_t PlanDeadlineJitter(int max_millis) {
    return 1 + static_cast<int64_t>(rng_.Below(static_cast<uint64_t>(max_millis)));
  }

  /// Toggles membership of a uniformly random tuple in a uniformly random
  /// relation of `structure` whose name is not in `protect` (callers pass
  /// the input-mirrored relation names to corrupt only auxiliary state).
  /// Always changes the structure. Returns a description of the flip, or
  /// an explanation if no eligible relation exists.
  std::string FlipTuple(relational::Structure* structure,
                        const std::vector<std::string>& protect);

  /// Flips one random bit of one random byte of `blob` (bit rot on disk).
  std::string FlipByte(std::string* blob);

  /// Truncates `blob` at a random offset in [0, size) — a write killed
  /// partway through.
  std::string TruncateTail(std::string* blob);

  /// Removes one random non-header line of a line-oriented blob (a lost
  /// journal record). Returns empty description if there is no such line.
  std::string DropLine(std::string* text);

  /// Repeats one random non-header line immediately after itself (a
  /// replayed/duplicated journal record).
  std::string DuplicateLine(std::string* text);

  Rng& rng() { return rng_; }

 private:
  uint64_t seed_;
  uint64_t trial_ = 0;
  Rng rng_;
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_FAULT_H_
