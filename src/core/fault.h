/// \file fault.h
/// Seeded fault injection for the fault-tolerance campaign.
///
/// A FaultInjector models the failure modes the recovery layer must
/// survive: bit rot in auxiliary relations (a cosmic-ray tuple flip),
/// journal damage (a dropped or duplicated record), and a process killed
/// mid-write (a truncated snapshot or torn journal tail). Every fault is
/// drawn from a seeded Rng so campaigns are reproducible, and every
/// injection returns a human-readable description for logging.
///
/// This header sits above the relational data model (it mutates
/// structures); it lives in core/ alongside Rng because it is shared
/// infrastructure for tests and benchmarks, not part of the engine proper.

#ifndef DYNFO_CORE_FAULT_H_
#define DYNFO_CORE_FAULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/durable_io.h"
#include "core/rng.h"
#include "core/status.h"
#include "relational/structure.h"

namespace dynfo::core {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

  /// The campaign seed this injector was constructed with, and the current
  /// trial index within the campaign: together they are the one-line repro
  /// for any failure ("rerun with --seed=S, failure at trial T"). Every
  /// chaos/recovery failure message must include Context().
  uint64_t seed() const { return seed_; }
  void set_trial(uint64_t trial) { trial_ = trial; }
  uint64_t trial() const { return trial_; }
  std::string Context() const {
    return "seed=" + std::to_string(seed_) + " trial=" + std::to_string(trial_);
  }

  /// Chaos planners: draw the parameters of one injected fault for the
  /// resource-governance layer (dynfo::ApplyGovernance's test knobs).
  /// Returned values are 1-based positions; uniform in [1, max].

  /// Allocation-failure injector: the budget charge index at which the
  /// accountant reports failure (ResourceBudget::FailAfterCharges).
  uint64_t PlanAllocationFailure(uint64_t max_charges) {
    return 1 + rng_.Below(max_charges);
  }

  /// Worker-stall injector: the governor check that sleeps, and for how
  /// long (ExecGovernor::StallAtCheck). Pair with a tight deadline to pin
  /// the timeout path at a reproducible poll.
  std::pair<uint64_t, int> PlanWorkerStall(uint64_t max_check, int max_millis) {
    return {1 + rng_.Below(max_check), 1 + static_cast<int>(rng_.Below(
                                               static_cast<uint64_t>(max_millis)))};
  }

  /// Deadline-jitter injector: a per-request deadline in [1, max_millis].
  int64_t PlanDeadlineJitter(int max_millis) {
    return 1 + static_cast<int64_t>(rng_.Below(static_cast<uint64_t>(max_millis)));
  }

  /// Toggles membership of a uniformly random tuple in a uniformly random
  /// relation of `structure` whose name is not in `protect` (callers pass
  /// the input-mirrored relation names to corrupt only auxiliary state).
  /// Always changes the structure. Returns a description of the flip, or
  /// an explanation if no eligible relation exists.
  std::string FlipTuple(relational::Structure* structure,
                        const std::vector<std::string>& protect);

  /// Flips one random bit of one random byte of `blob` (bit rot on disk).
  std::string FlipByte(std::string* blob);

  /// Truncates `blob` at a random offset in [0, size) — a write killed
  /// partway through.
  std::string TruncateTail(std::string* blob);

  /// Removes one random non-header line of a line-oriented blob (a lost
  /// journal record). Returns empty description if there is no such line.
  std::string DropLine(std::string* text);

  /// Repeats one random non-header line immediately after itself (a
  /// replayed/duplicated journal record).
  std::string DuplicateLine(std::string* text);

  Rng& rng() { return rng_; }

 private:
  uint64_t seed_;
  uint64_t trial_ = 0;
  Rng rng_;
};

/// What happens, after a simulated kill, to bytes that were written but
/// never fsynced. Real filesystems may keep all of them (they reached disk
/// from the page cache before power failed), a prefix (a torn write), or
/// none. The crash matrix runs every kill point under each mode.
enum class CrashTailMode {
  kKeepNone,  ///< every unsynced byte is lost
  kKeepHalf,  ///< half the unsynced tail survives (torn write)
  kKeepAll,   ///< the page cache made it to disk anyway
};

const char* CrashTailModeName(CrashTailMode mode);

/// IoShim that simulates a process kill at exactly one durable-I/O boundary
/// and then reproduces the legal post-crash filesystem states.
///
/// Operation: install via InstallIoShim, run the workload. Boundaries are
/// numbered 1, 2, ... in execution order. With kill_at_op == 0 the shim
/// only counts (use one pass to learn the matrix size); with kill_at_op = k
/// the k-th boundary is vetoed — the caller sees an IsSimulatedCrash()
/// status — and every later boundary fails too (the process is dead).
///
/// Throughout, the shim tracks what the filesystem is *guaranteed* to hold:
/// per-file synced vs unsynced byte counts, renames whose parent directory
/// was not yet fsynced, and created files whose dirent is not yet durable.
/// After the kill, ApplyCrashDamage() rewrites the real files into one
/// legal post-crash state: pending renames are undone (old target content
/// restored), pending creates removed, and each unsynced tail kept or cut
/// per CrashTailMode. Recovery then runs against that damaged directory.
///
/// Single-threaded by design, like all durable I/O in the engine.
class CrashPointShim : public IoShim {
 public:
  struct Options {
    uint64_t kill_at_op = 0;  ///< 1-based boundary to die at; 0 = count only
    CrashTailMode tail_mode = CrashTailMode::kKeepNone;
    /// Undo renames not covered by a directory fsync. When false, the
    /// rename is treated as having survived (also legal).
    bool undo_pending_renames = true;
  };

  explicit CrashPointShim(Options options) : options_(options) {}

  bool BeforeOp(IoOp op, const std::string& path, size_t bytes,
                size_t* partial_bytes) override;
  void AfterOp(IoOp op, const std::string& path, size_t bytes) override;

  /// Boundaries encountered so far (including the one died at).
  uint64_t ops_seen() const { return ops_seen_; }
  bool killed() const { return dead_; }

  /// One-line repro: which boundary was killed, under which damage mode.
  std::string DescribeKill() const;

  /// Applies the post-crash damage to the real filesystem. Call after the
  /// workload died and the shim is uninstalled; uses raw I/O.
  Status ApplyCrashDamage();

 private:
  struct FileState {
    uint64_t durable = 0;  ///< bytes guaranteed on disk
    uint64_t current = 0;  ///< bytes written (≥ durable)
  };
  struct PendingRename {
    std::string target;
    std::optional<std::string> old_content;  ///< nullopt: did not exist
  };

  FileState& Track(const std::string& path);

  Options options_;
  uint64_t ops_seen_ = 0;
  bool dead_ = false;
  std::string kill_description_;
  std::unordered_map<std::string, FileState> files_;
  std::vector<PendingRename> pending_renames_;
  std::vector<std::string> pending_creates_;
  /// Snapshot taken at BeforeOp(kRename); committed to pending_renames_
  /// only once AfterOp confirms the rename executed.
  std::optional<PendingRename> staged_rename_;
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_FAULT_H_
