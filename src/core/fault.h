/// \file fault.h
/// Seeded fault injection for the fault-tolerance campaign.
///
/// A FaultInjector models the failure modes the recovery layer must
/// survive: bit rot in auxiliary relations (a cosmic-ray tuple flip),
/// journal damage (a dropped or duplicated record), and a process killed
/// mid-write (a truncated snapshot or torn journal tail). Every fault is
/// drawn from a seeded Rng so campaigns are reproducible, and every
/// injection returns a human-readable description for logging.
///
/// This header sits above the relational data model (it mutates
/// structures); it lives in core/ alongside Rng because it is shared
/// infrastructure for tests and benchmarks, not part of the engine proper.

#ifndef DYNFO_CORE_FAULT_H_
#define DYNFO_CORE_FAULT_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "relational/structure.h"

namespace dynfo::core {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// Toggles membership of a uniformly random tuple in a uniformly random
  /// relation of `structure` whose name is not in `protect` (callers pass
  /// the input-mirrored relation names to corrupt only auxiliary state).
  /// Always changes the structure. Returns a description of the flip, or
  /// an explanation if no eligible relation exists.
  std::string FlipTuple(relational::Structure* structure,
                        const std::vector<std::string>& protect);

  /// Flips one random bit of one random byte of `blob` (bit rot on disk).
  std::string FlipByte(std::string* blob);

  /// Truncates `blob` at a random offset in [0, size) — a write killed
  /// partway through.
  std::string TruncateTail(std::string* blob);

  /// Removes one random non-header line of a line-oriented blob (a lost
  /// journal record). Returns empty description if there is no such line.
  std::string DropLine(std::string* text);

  /// Repeats one random non-header line immediately after itself (a
  /// replayed/duplicated journal record).
  std::string DuplicateLine(std::string* text);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_FAULT_H_
