#include "core/cancel.h"

#include <thread>

namespace dynfo::core {

void ExecGovernor::Trip(StatusCode code, const std::string& message) const {
  int expected = static_cast<int>(StatusCode::kOk);
  // First trip wins; later trips (other threads, other causes) are dropped
  // so status() reports the original cause.
  if (code_.compare_exchange_strong(expected, static_cast<int>(code),
                                    std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(message_mutex_);
    message_ = message;
  }
}

bool ExecGovernor::ShouldStop() const {
  if (stopped()) return true;
  const uint64_t check = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (stall_at_check_ != 0 && check == stall_at_check_ && stall_millis_ > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_millis_));
  }
  if (trip_at_check_ != 0 && check >= trip_at_check_) {
    Trip(StatusCode::kCancelled,
         "cancelled (test trip at governor check " + std::to_string(check) + ")");
    return true;
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    Trip(StatusCode::kCancelled, "cancelled by caller");
    return true;
  }
  if (deadline_.expired()) {
    Trip(StatusCode::kDeadlineExceeded,
         "deadline exceeded after " + std::to_string(check) + " governor checks");
    return true;
  }
  if (budget_ != nullptr && budget_->exhausted()) {
    Trip(StatusCode::kResourceExhausted, budget_->DescribeBreach());
    return true;
  }
  return false;
}

Status ExecGovernor::status() const {
  const StatusCode code = this->code();
  if (code == StatusCode::kOk) return Status();
  std::lock_guard<std::mutex> lock(message_mutex_);
  return Status::WithCode(code, message_);
}

bool ExecGovernor::ChargeRows(uint64_t rows, uint64_t row_bytes) const {
  if (budget_ == nullptr) return !stopped();
  if (!budget_->Charge(rows, rows * row_bytes)) {
    Trip(StatusCode::kResourceExhausted, budget_->DescribeBreach());
    return false;
  }
  return !stopped();
}

}  // namespace dynfo::core
