/// \file rng.h
/// Deterministic pseudo-random number generation for workloads and tests.
///
/// All randomized workloads in the library (request generators, property
/// tests, benchmarks) draw from this generator so that every experiment is
/// reproducible from a seed.

#ifndef DYNFO_CORE_RNG_H_
#define DYNFO_CORE_RNG_H_

#include <cstdint>

#include "core/check.h"

namespace dynfo::core {

/// SplitMix64: a tiny, high-quality, seedable PRNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). Requires bound > 0.
  uint64_t Below(uint64_t bound) {
    DYNFO_CHECK(bound > 0);
    // Rejection-free modulo is fine here: bias is negligible for our bounds.
    return Next() % bound;
  }

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    DYNFO_CHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  /// Bernoulli draw with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  /// Uniform double in [0, 1).
  double UnitDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_RNG_H_
