#include "core/budget.h"

namespace dynfo::core {

bool ResourceBudget::Charge(uint64_t tuples, uint64_t bytes) {
  if (breached_.load(std::memory_order_relaxed)) return false;
  const uint64_t charge_index = charges_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t fail_at = fail_at_charge_.load(std::memory_order_relaxed);
  if (fail_at != 0 && charge_index >= fail_at) {
    injected_.store(true, std::memory_order_relaxed);
    breached_.store(true, std::memory_order_relaxed);
    return false;
  }
  const uint64_t total_tuples = tuples_.fetch_add(tuples, std::memory_order_relaxed) + tuples;
  const uint64_t total_bytes = bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if ((limits_.max_tuples != 0 && total_tuples > limits_.max_tuples) ||
      (limits_.max_bytes != 0 && total_bytes > limits_.max_bytes)) {
    breached_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

std::string ResourceBudget::DescribeBreach() const {
  if (injected_.load(std::memory_order_relaxed)) {
    return "allocation failure injected at charge " +
           std::to_string(fail_at_charge_.load(std::memory_order_relaxed));
  }
  const uint64_t tuples = tuples_.load(std::memory_order_relaxed);
  const uint64_t bytes = bytes_.load(std::memory_order_relaxed);
  if (limits_.max_tuples != 0 && tuples > limits_.max_tuples) {
    return "budget breached: " + std::to_string(tuples) +
           " tuples charged, limit " + std::to_string(limits_.max_tuples);
  }
  if (limits_.max_bytes != 0 && bytes > limits_.max_bytes) {
    return "budget breached: " + std::to_string(bytes) + " bytes charged, limit " +
           std::to_string(limits_.max_bytes);
  }
  return "budget breached";
}

}  // namespace dynfo::core
