/// \file small_vector.h
/// A small-buffer vector for trivially copyable element types.
///
/// Evaluation rows are short (a handful of universe elements), but the
/// standard vector heap-allocates every one of them — on the hot Apply path
/// that is one malloc/free per intermediate row. SmallVector keeps up to
/// kInline elements in the object itself and only falls back to the heap for
/// wider rows, so typical evaluation allocates nothing per row.
///
/// The element type must be trivially copyable: growth and copies are plain
/// memcpy, which keeps the container simple and fast.

#ifndef DYNFO_CORE_SMALL_VECTOR_H_
#define DYNFO_CORE_SMALL_VECTOR_H_

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "core/check.h"

namespace dynfo::core {

template <typename T, size_t kInline>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector supports trivially copyable types only");
  static_assert(kInline > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(size_t count, const T& value) {
    reserve(count);
    T* d = data();
    for (size_t i = 0; i < count; ++i) d[i] = value;
    size_ = count;
  }

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    T* d = data();
    size_t i = 0;
    for (const T& v : init) d[i++] = v;
    size_ = init.size();
  }

  SmallVector(const SmallVector& other) { *this = other; }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    reserve(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(T));
    size_ = other.size_;
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(&other); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = kInline;
    MoveFrom(&other);
    return *this;
  }

  ~SmallVector() { delete[] heap_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }

  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  void reserve(size_t wanted) {
    if (wanted <= capacity_) return;
    size_t grown = capacity_ * 2;
    if (grown < wanted) grown = wanted;
    T* fresh = new T[grown];
    std::memcpy(fresh, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = fresh;
    capacity_ = grown;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) reserve(size_ + 1);
    data()[size_++] = value;
  }

  /// Grows (filling with `value`) or shrinks to exactly `count` elements.
  void resize(size_t count, const T& value = T()) {
    if (count > size_) {
      reserve(count);
      T* d = data();
      for (size_t i = size_; i < count; ++i) d[i] = value;
    }
    size_ = count;
  }

  void pop_back() {
    DYNFO_CHECK(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  bool operator==(const SmallVector& other) const {
    if (size_ != other.size_) return false;
    return std::memcmp(data(), other.data(), size_ * sizeof(T)) == 0;
  }
  bool operator!=(const SmallVector& other) const { return !(*this == other); }

 private:
  void MoveFrom(SmallVector* other) {
    if (other->heap_ != nullptr) {
      heap_ = other->heap_;
      capacity_ = other->capacity_;
      size_ = other->size_;
      other->heap_ = nullptr;
      other->capacity_ = kInline;
      other->size_ = 0;
    } else {
      std::memcpy(inline_, other->inline_, other->size_ * sizeof(T));
      size_ = other->size_;
      other->size_ = 0;
    }
  }

  size_t size_ = 0;
  size_t capacity_ = kInline;
  T* heap_ = nullptr;
  T inline_[kInline];
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_SMALL_VECTOR_H_
