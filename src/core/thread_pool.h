/// \file thread_pool.h
/// Fixed-size worker pool for data-parallel evaluation.
///
/// The paper's headline is that Dyn-FO updates are *parallel* constant time
/// (FO = AC⁰ = CRAM[1]): every row of an update formula's satisfying set can
/// be computed independently. This pool is the shared-memory stand-in for the
/// CRAM — callers split row ranges into chunks with ParallelFor, and results
/// are merged deterministically by chunk index so output never depends on
/// scheduling.
///
/// Design constraints:
///   * The caller always participates: ParallelFor enqueues helper tasks and
///     then drains chunks itself, so nested ParallelFor calls (rule-level
///     parallelism invoking data-parallel operators) can never deadlock even
///     when every worker is busy — the innermost caller just runs its whole
///     range inline.
///   * Ranges at or below `grain` run on the calling thread with no queue or
///     lock traffic (the steal-free fast path, counted in Stats).
///   * The global pool is seeded exactly once per process and sized so that
///     small containers can still exercise real concurrency.

#ifndef DYNFO_CORE_THREAD_POOL_H_
#define DYNFO_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dynfo::core {

class ExecGovernor;

/// How a data-parallel call may use the pool. `num_threads` counts the
/// calling thread, so {1, grain} means strictly sequential execution.
struct ParallelOptions {
  int num_threads = 1;
  size_t grain = 256;  ///< minimum items per chunk
  /// Cooperative-cancellation authority (core/cancel.h), polled at every
  /// chunk claim: once it trips, remaining chunks are drained without
  /// running their work function (waiters still unblock; already-running
  /// chunks finish). Null = ungoverned, zero overhead.
  const ExecGovernor* governor = nullptr;
};

class ThreadPool {
 public:
  /// Work counters (cumulative since construction).
  struct Stats {
    uint64_t tasks_run = 0;         ///< chunks executed, inline or on workers
    uint64_t parallel_batches = 0;  ///< ParallelFor calls that fanned out
    uint64_t inline_batches = 0;    ///< steal-free fast paths (ran fully inline)
  };

  /// A pool with `num_workers` background threads (>= 0; 0 means every
  /// ParallelFor runs inline).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use with
  /// max(7, hardware_concurrency - 1) workers — the floor guarantees that
  /// thread-count sweeps and sanitizer runs exercise real concurrency even in
  /// single-core containers (idle workers cost nothing).
  static ThreadPool& Global();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// The number of chunks ParallelFor will split [begin, end) into under
  /// `options` — callers size per-chunk output buffers with this before the
  /// parallel call and merge them in chunk order afterwards.
  size_t PlanChunks(size_t begin, size_t end, const ParallelOptions& options) const;

  /// Runs fn(chunk_index, chunk_begin, chunk_end) over a partition of
  /// [begin, end) into PlanChunks(...) contiguous chunks, using up to
  /// options.num_threads threads including the caller. Blocks until every
  /// chunk has run. `fn` must be safe to invoke concurrently from multiple
  /// threads on disjoint chunks.
  void ParallelFor(size_t begin, size_t end, const ParallelOptions& options,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  Stats stats() const;

 private:
  struct Batch;

  /// Drains chunks of `batch` on the calling thread until none remain.
  void RunChunks(Batch* batch);

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;

  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> parallel_batches_{0};
  std::atomic<uint64_t> inline_batches_{0};
};

/// Collects independent tasks and runs them with ParallelFor(grain = 1):
/// the synchronous-semantics analogue of firing all of a request's update
/// rules at once.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  void Add(std::function<void()> task) { tasks_.push_back(std::move(task)); }
  size_t size() const { return tasks_.size(); }

  /// Runs every added task using up to `num_threads` threads (caller
  /// included); blocks until all complete, then clears the group.
  void RunAndWait(int num_threads);

 private:
  ThreadPool* pool_;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_THREAD_POOL_H_
