/// \file status.h
/// Error handling for recoverable failures (parse errors, schema mismatches).
///
/// Following the style of large C++ database codebases, the public API does
/// not throw: fallible operations return Status or Result<T>. Programming
/// errors (violated preconditions) use DYNFO_CHECK instead.

#ifndef DYNFO_CORE_STATUS_H_
#define DYNFO_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "core/check.h"

namespace dynfo::core {

/// Success-or-error discriminant. A default-constructed Status is OK.
class Status {
 public:
  Status() = default;

  /// Creates an error status with a human-readable message.
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return !message_.has_value(); }

  /// Error message; empty string when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

  std::string ToString() const { return ok() ? "OK" : "Error: " + *message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}

  std::optional<std::string> message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. CHECK-fails if the status is OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    DYNFO_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the contained value. CHECK-fails on error.
  const T& value() const& {
    DYNFO_CHECK(ok()) << status_.message();
    return *value_;
  }
  T& value() & {
    DYNFO_CHECK(ok()) << status_.message();
    return *value_;
  }
  T&& value() && {
    DYNFO_CHECK(ok()) << status_.message();
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_STATUS_H_
