/// \file status.h
/// Error handling for recoverable failures (parse errors, schema mismatches).
///
/// Following the style of large C++ database codebases, the public API does
/// not throw: fallible operations return Status or Result<T>. Programming
/// errors (violated preconditions) use DYNFO_CHECK instead.

#ifndef DYNFO_CORE_STATUS_H_
#define DYNFO_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "core/check.h"

namespace dynfo::core {

/// Machine-readable error taxonomy for the recoverable-failure paths.
/// Governance failures (kCancelled/kDeadlineExceeded/kResourceExhausted) and
/// detected state corruption (kCorruption) get dedicated codes so callers —
/// the degradation ladder, the CLI's exit-code map — can branch on the class
/// of failure without parsing messages. kError covers everything else
/// (parse errors, schema mismatches, rejected requests).
enum class StatusCode {
  kOk = 0,
  kError = 1,
  kCancelled = 2,
  kDeadlineExceeded = 3,
  kResourceExhausted = 4,
  kCorruption = 5,
};

/// Short stable name for a code, e.g. "DeadlineExceeded". These appear in
/// Status::ToString() ("<Name>: <message>") and in CLI diagnostics.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kError:
      return "Error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

/// Success-or-error discriminant. A default-constructed Status is OK.
class Status {
 public:
  Status() = default;

  /// Creates an error status with a human-readable message.
  static Status Error(std::string message) {
    return Status(StatusCode::kError, std::move(message));
  }
  /// Typed constructors for the governance/corruption taxonomy.
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status WithCode(StatusCode code, std::string message) {
    DYNFO_CHECK(code != StatusCode::kOk) << "error status needs a non-OK code";
    return Status(code, std::move(message));
  }

  bool ok() const { return !message_.has_value(); }

  StatusCode code() const { return ok() ? StatusCode::kOk : code_; }

  /// Error message; empty string when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

  std::string ToString() const {
    return ok() ? "OK" : std::string(StatusCodeName(code_)) + ": " + *message_;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kError;
  std::optional<std::string> message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. CHECK-fails if the status is OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    DYNFO_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the contained value. CHECK-fails on error.
  const T& value() const& {
    DYNFO_CHECK(ok()) << status_.message();
    return *value_;
  }
  T& value() & {
    DYNFO_CHECK(ok()) << status_.message();
    return *value_;
  }
  T&& value() && {
    DYNFO_CHECK(ok()) << status_.message();
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_STATUS_H_
