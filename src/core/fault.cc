#include "core/fault.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace dynfo::core {

namespace {

std::string FaultParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Raw (un-shimmed) full-file replace, used only to apply post-crash
/// damage; by then the simulated process is dead and the shim uninstalled.
Status RawWriteFile(const std::string& path, const std::string& contents) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Error("damage write open " + path + ": " +
                         std::strerror(errno));
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Error("damage write " + path + ": " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status();
}

/// Offsets of the starts of every line after the first (the header line of
/// the journal / snapshot formats is never a record).
std::vector<std::pair<size_t, size_t>> BodyLineSpans(const std::string& text) {
  std::vector<std::pair<size_t, size_t>> spans;  // [begin, end) incl. '\n'
  size_t begin = 0;
  bool first = true;
  while (begin < text.size()) {
    size_t nl = text.find('\n', begin);
    size_t end = nl == std::string::npos ? text.size() : nl + 1;
    if (!first) spans.emplace_back(begin, end);
    first = false;
    begin = end;
  }
  return spans;
}

}  // namespace

std::string FaultInjector::FlipTuple(relational::Structure* structure,
                                     const std::vector<std::string>& protect) {
  const relational::Vocabulary& vocab = structure->vocabulary();
  std::vector<int> eligible;
  for (int r = 0; r < vocab.num_relations(); ++r) {
    const std::string& name = vocab.relation(r).name;
    if (std::find(protect.begin(), protect.end(), name) == protect.end()) {
      eligible.push_back(r);
    }
  }
  if (eligible.empty()) return "";
  const int index = eligible[rng_.Below(eligible.size())];
  relational::Relation& rel = structure->relation(index);
  relational::Tuple t;
  for (int p = 0; p < rel.arity(); ++p) {
    t = t.Append(static_cast<relational::Element>(
        rng_.Below(structure->universe_size())));
  }
  const bool was_present = rel.Contains(t);
  if (was_present) {
    rel.Erase(t);
  } else {
    rel.Insert(t);
  }
  return std::string(was_present ? "erased " : "inserted ") + t.ToString() +
         " in " + vocab.relation(index).name;
}

std::string FaultInjector::FlipByte(std::string* blob) {
  if (blob->empty()) return "";
  const size_t offset = rng_.Below(blob->size());
  const int bit = static_cast<int>(rng_.Below(8));
  (*blob)[offset] = static_cast<char>((*blob)[offset] ^ (1 << bit));
  return "flipped bit " + std::to_string(bit) + " of byte " +
         std::to_string(offset);
}

std::string FaultInjector::TruncateTail(std::string* blob) {
  if (blob->empty()) return "";
  const size_t keep = rng_.Below(blob->size());
  blob->resize(keep);
  return "truncated to " + std::to_string(keep) + " bytes";
}

std::string FaultInjector::DropLine(std::string* text) {
  auto spans = BodyLineSpans(*text);
  if (spans.empty()) return "";
  auto [begin, end] = spans[rng_.Below(spans.size())];
  std::string dropped = text->substr(begin, end - begin);
  text->erase(begin, end - begin);
  if (!dropped.empty() && dropped.back() == '\n') dropped.pop_back();
  return "dropped line '" + dropped + "'";
}

std::string FaultInjector::DuplicateLine(std::string* text) {
  auto spans = BodyLineSpans(*text);
  if (spans.empty()) return "";
  auto [begin, end] = spans[rng_.Below(spans.size())];
  std::string line = text->substr(begin, end - begin);
  if (line.empty() || line.back() != '\n') line += '\n';  // keep lines intact
  text->insert(end, line);
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return "duplicated line '" + line + "'";
}

const char* CrashTailModeName(CrashTailMode mode) {
  switch (mode) {
    case CrashTailMode::kKeepNone:
      return "keep-none";
    case CrashTailMode::kKeepHalf:
      return "keep-half";
    case CrashTailMode::kKeepAll:
      return "keep-all";
  }
  return "unknown";
}

CrashPointShim::FileState& CrashPointShim::Track(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    // First touch: whatever the file held before the shim saw it is
    // treated as durable (it was written under the real-I/O regime).
    struct stat st;
    uint64_t size =
        ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
    it = files_.emplace(path, FileState{size, size}).first;
  }
  return it->second;
}

bool CrashPointShim::BeforeOp(IoOp op, const std::string& path, size_t bytes,
                              size_t* partial_bytes) {
  if (dead_) {
    // The process is gone; no further I/O reaches disk.
    if (partial_bytes != nullptr) *partial_bytes = 0;
    return false;
  }
  ++ops_seen_;

  if (op == IoOp::kRename) {
    // Snapshot the victim's bytes now — AfterOp is too late to read them.
    PendingRename staged;
    staged.target = path;
    if (FileExists(path)) {
      auto content = ReadFileToString(path);
      if (content.ok()) staged.old_content = std::move(content).value();
    }
    staged_rename_ = std::move(staged);
  }

  if (options_.kill_at_op != 0 && ops_seen_ == options_.kill_at_op) {
    dead_ = true;
    kill_description_ = std::string(IoOpName(op)) + " " + path;
    staged_rename_.reset();  // a vetoed rename never happened
    if (op == IoOp::kWrite && partial_bytes != nullptr) {
      // Let the whole write land in the (simulated) page cache; the bytes
      // are unsynced, so ApplyCrashDamage's tail mode decides how many
      // survive — including the torn-prefix case via kKeepHalf.
      *partial_bytes = bytes;
      Track(path).current += bytes;
    }
    return false;
  }
  return true;
}

void CrashPointShim::AfterOp(IoOp op, const std::string& path, size_t bytes) {
  switch (op) {
    case IoOp::kCreate:
      files_[path] = FileState{0, 0};
      pending_creates_.push_back(path);
      break;
    case IoOp::kWrite:
      Track(path).current += bytes;
      break;
    case IoOp::kFsync: {
      FileState& state = Track(path);
      state.durable = state.current;
      break;
    }
    case IoOp::kRename: {
      // AtomicWriteFile's temp convention: the source is target + ".tmp".
      // Its (fully fsynced) state becomes the target's.
      const std::string tmp = path + ".tmp";
      auto it = files_.find(tmp);
      if (it != files_.end()) {
        files_[path] = it->second;
        files_.erase(tmp);
      }
      pending_creates_.erase(
          std::remove(pending_creates_.begin(), pending_creates_.end(), tmp),
          pending_creates_.end());
      if (staged_rename_.has_value()) {
        pending_renames_.push_back(std::move(*staged_rename_));
        staged_rename_.reset();
      }
      break;
    }
    case IoOp::kDirFsync: {
      // Every dirent in this directory is now durable.
      auto in_dir = [&path](const std::string& file) {
        return FaultParentDir(file) == path;
      };
      pending_renames_.erase(
          std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                         [&in_dir](const PendingRename& r) {
                           return in_dir(r.target);
                         }),
          pending_renames_.end());
      pending_creates_.erase(std::remove_if(pending_creates_.begin(),
                                            pending_creates_.end(), in_dir),
                             pending_creates_.end());
      break;
    }
    case IoOp::kTruncate: {
      FileState& state = Track(path);
      state.current = bytes;
      state.durable = std::min(state.durable, static_cast<uint64_t>(bytes));
      break;
    }
    case IoOp::kUnlink:
      files_.erase(path);
      pending_creates_.erase(
          std::remove(pending_creates_.begin(), pending_creates_.end(), path),
          pending_creates_.end());
      break;
  }
}

std::string CrashPointShim::DescribeKill() const {
  if (!dead_) return "no kill (count-only pass, " + std::to_string(ops_seen_) +
                     " boundaries)";
  return "killed at op " + std::to_string(options_.kill_at_op) + " (" +
         kill_description_ + ") tail=" + CrashTailModeName(options_.tail_mode) +
         " undo_renames=" + (options_.undo_pending_renames ? "1" : "0");
}

Status CrashPointShim::ApplyCrashDamage() {
  if (options_.undo_pending_renames) {
    // Undo in reverse order so a twice-renamed target regains its oldest
    // surviving content; restored files are fully durable, so drop their
    // tail tracking.
    for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
         ++it) {
      if (it->old_content.has_value()) {
        Status status = RawWriteFile(it->target, *it->old_content);
        if (!status.ok()) return status;
      } else if (::unlink(it->target.c_str()) != 0 && errno != ENOENT) {
        return Status::Error("damage unlink " + it->target + ": " +
                             std::strerror(errno));
      }
      files_.erase(it->target);
    }
    for (auto it = pending_creates_.rbegin(); it != pending_creates_.rend();
         ++it) {
      if (::unlink(it->c_str()) != 0 && errno != ENOENT) {
        return Status::Error("damage unlink " + *it + ": " +
                             std::strerror(errno));
      }
      files_.erase(*it);
    }
  }

  for (const auto& [path, state] : files_) {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) continue;  // already gone
    const uint64_t actual = static_cast<uint64_t>(st.st_size);
    const uint64_t unsynced = state.current > state.durable
                                  ? state.current - state.durable
                                  : 0;
    uint64_t keep = state.durable;
    switch (options_.tail_mode) {
      case CrashTailMode::kKeepNone:
        break;
      case CrashTailMode::kKeepHalf:
        keep += unsynced / 2;
        break;
      case CrashTailMode::kKeepAll:
        keep += unsynced;
        break;
    }
    if (keep < actual &&
        ::truncate(path.c_str(), static_cast<off_t>(keep)) != 0) {
      return Status::Error("damage truncate " + path + ": " +
                           std::strerror(errno));
    }
  }
  return Status();
}

}  // namespace dynfo::core
