#include "core/fault.h"

#include <algorithm>

namespace dynfo::core {

namespace {

/// Offsets of the starts of every line after the first (the header line of
/// the journal / snapshot formats is never a record).
std::vector<std::pair<size_t, size_t>> BodyLineSpans(const std::string& text) {
  std::vector<std::pair<size_t, size_t>> spans;  // [begin, end) incl. '\n'
  size_t begin = 0;
  bool first = true;
  while (begin < text.size()) {
    size_t nl = text.find('\n', begin);
    size_t end = nl == std::string::npos ? text.size() : nl + 1;
    if (!first) spans.emplace_back(begin, end);
    first = false;
    begin = end;
  }
  return spans;
}

}  // namespace

std::string FaultInjector::FlipTuple(relational::Structure* structure,
                                     const std::vector<std::string>& protect) {
  const relational::Vocabulary& vocab = structure->vocabulary();
  std::vector<int> eligible;
  for (int r = 0; r < vocab.num_relations(); ++r) {
    const std::string& name = vocab.relation(r).name;
    if (std::find(protect.begin(), protect.end(), name) == protect.end()) {
      eligible.push_back(r);
    }
  }
  if (eligible.empty()) return "";
  const int index = eligible[rng_.Below(eligible.size())];
  relational::Relation& rel = structure->relation(index);
  relational::Tuple t;
  for (int p = 0; p < rel.arity(); ++p) {
    t = t.Append(static_cast<relational::Element>(
        rng_.Below(structure->universe_size())));
  }
  const bool was_present = rel.Contains(t);
  if (was_present) {
    rel.Erase(t);
  } else {
    rel.Insert(t);
  }
  return std::string(was_present ? "erased " : "inserted ") + t.ToString() +
         " in " + vocab.relation(index).name;
}

std::string FaultInjector::FlipByte(std::string* blob) {
  if (blob->empty()) return "";
  const size_t offset = rng_.Below(blob->size());
  const int bit = static_cast<int>(rng_.Below(8));
  (*blob)[offset] = static_cast<char>((*blob)[offset] ^ (1 << bit));
  return "flipped bit " + std::to_string(bit) + " of byte " +
         std::to_string(offset);
}

std::string FaultInjector::TruncateTail(std::string* blob) {
  if (blob->empty()) return "";
  const size_t keep = rng_.Below(blob->size());
  blob->resize(keep);
  return "truncated to " + std::to_string(keep) + " bytes";
}

std::string FaultInjector::DropLine(std::string* text) {
  auto spans = BodyLineSpans(*text);
  if (spans.empty()) return "";
  auto [begin, end] = spans[rng_.Below(spans.size())];
  std::string dropped = text->substr(begin, end - begin);
  text->erase(begin, end - begin);
  if (!dropped.empty() && dropped.back() == '\n') dropped.pop_back();
  return "dropped line '" + dropped + "'";
}

std::string FaultInjector::DuplicateLine(std::string* text) {
  auto spans = BodyLineSpans(*text);
  if (spans.empty()) return "";
  auto [begin, end] = spans[rng_.Below(spans.size())];
  std::string line = text->substr(begin, end - begin);
  if (line.empty() || line.back() != '\n') line += '\n';  // keep lines intact
  text->insert(end, line);
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return "duplicated line '" + line + "'";
}

}  // namespace dynfo::core
