#include "core/durable_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace dynfo::core {

namespace {

// Not atomic: durable I/O is single-writer by design (the engine's Apply
// path is externally serialized), and shims are installed only in tests.
IoShim* g_shim = nullptr;

// Sentinel prefix recognized by IsSimulatedCrash. Kept distinctive so a
// real I/O failure can never be mistaken for a planned kill.
constexpr const char kCrashPrefix[] = "simulated crash at ";

Status SimulatedCrash(IoOp op, const std::string& path) {
  return Status::Error(std::string(kCrashPrefix) + IoOpName(op) + " " + path);
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Error(what + " " + path + ": " + std::strerror(errno));
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Runs the shim boundary for `op`; returns a crash status if vetoed.
// `partial_bytes` is only consulted for kWrite.
Status Boundary(IoOp op, const std::string& path, size_t bytes,
                size_t* partial_bytes) {
  if (g_shim == nullptr) return Status();
  if (!g_shim->BeforeOp(op, path, bytes, partial_bytes)) {
    return SimulatedCrash(op, path);
  }
  return Status();
}

void After(IoOp op, const std::string& path, size_t bytes) {
  if (g_shim != nullptr) g_shim->AfterOp(op, path, bytes);
}

// write(2) loop for `data`, routing the shim boundary first. On a vetoed
// write with *partial_bytes set, writes that prefix for real (modelling a
// torn write that reached the page cache) and still reports the crash.
Status ShimmedWriteAll(int fd, const std::string& path, std::string_view data) {
  size_t partial = data.size();
  Status boundary = Boundary(IoOp::kWrite, path, data.size(), &partial);
  size_t to_write = boundary.ok() ? data.size() : partial;
  DYNFO_CHECK(to_write <= data.size()) << "shim requested over-long write";
  size_t written = 0;
  while (written < to_write) {
    ssize_t n = ::write(fd, data.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  if (!boundary.ok()) return boundary;
  After(IoOp::kWrite, path, data.size());
  return Status();
}

Status ShimmedFsync(int fd, const std::string& path) {
  Status boundary = Boundary(IoOp::kFsync, path, 0, nullptr);
  if (!boundary.ok()) return boundary;
  if (::fsync(fd) != 0) return Errno("fsync", path);
  After(IoOp::kFsync, path, 0);
  return Status();
}

}  // namespace

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kCreate:
      return "create";
    case IoOp::kWrite:
      return "write";
    case IoOp::kFsync:
      return "fsync";
    case IoOp::kRename:
      return "rename";
    case IoOp::kDirFsync:
      return "dirfsync";
    case IoOp::kTruncate:
      return "truncate";
    case IoOp::kUnlink:
      return "unlink";
  }
  return "unknown";
}

IoShim* InstallIoShim(IoShim* shim) {
  IoShim* previous = g_shim;
  g_shim = shim;
  return previous;
}

bool IsSimulatedCrash(const Status& status) {
  return !status.ok() &&
         status.message().rfind(kCrashPrefix, 0) == 0;
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status();
  return Errno("mkdir", path);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (FileExists(dir + "/" + name)) names.push_back(std::move(name));
  }
  ::closedir(d);
  return names;
}

Status FsyncDir(const std::string& dir) {
  Status boundary = Boundary(IoOp::kDirFsync, dir, 0, nullptr);
  if (!boundary.ok()) return boundary;
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  if (::fsync(fd) != 0) {
    Status s = Errno("fsync dir", dir);
    ::close(fd);
    return s;
  }
  ::close(fd);
  After(IoOp::kDirFsync, dir, 0);
  return Status();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  Status boundary = Boundary(IoOp::kCreate, tmp, 0, nullptr);
  if (!boundary.ok()) return boundary;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("create", tmp);
  After(IoOp::kCreate, tmp, 0);

  Status status = ShimmedWriteAll(fd, tmp, contents);
  if (status.ok()) status = ShimmedFsync(fd, tmp);
  ::close(fd);
  if (!status.ok()) return status;

  status = Boundary(IoOp::kRename, path, 0, nullptr);
  if (!status.ok()) return status;
  if (::rename(tmp.c_str(), path.c_str()) != 0) return Errno("rename", path);
  After(IoOp::kRename, path, 0);

  return FsyncDir(ParentDir(path));
}

Status RemoveFileDurable(const std::string& path) {
  Status boundary = Boundary(IoOp::kUnlink, path, 0, nullptr);
  if (!boundary.ok()) return boundary;
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  After(IoOp::kUnlink, path, 0);
  return FsyncDir(ParentDir(path));
}

Status TruncateFileDurable(const std::string& path, uint64_t size) {
  Status boundary = Boundary(IoOp::kTruncate, path, size, nullptr);
  if (!boundary.ok()) return boundary;
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  After(IoOp::kTruncate, path, size);
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  Status status = ShimmedFsync(fd, path);
  ::close(fd);
  return status;
}

Result<AppendFile> AppendFile::Open(const std::string& path) {
  const bool fresh = !FileExists(path);
  if (fresh) {
    Status boundary = Boundary(IoOp::kCreate, path, 0, nullptr);
    if (!boundary.ok()) return boundary;
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open append", path);
  if (fresh) {
    After(IoOp::kCreate, path, 0);
    // The directory entry must be durable before any manifest names this
    // file, else recovery could chase a reference into nothing.
    Status status = FsyncDir(ParentDir(path));
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
  }
  return AppendFile(fd, path);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Append(std::string_view data) {
  DYNFO_CHECK(fd_ >= 0) << "Append on moved-from AppendFile";
  return ShimmedWriteAll(fd_, path_, data);
}

Status AppendFile::Fsync() {
  DYNFO_CHECK(fd_ >= 0) << "Fsync on moved-from AppendFile";
  return ShimmedFsync(fd_, path_);
}

}  // namespace dynfo::core
