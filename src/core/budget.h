/// \file budget.h
/// Per-Apply memory/cardinality accounting for resource-governed execution.
///
/// The evaluation stack materializes intermediate relations whose size is
/// data-dependent: a hostile request can make them blow past available
/// memory, and the first symptom would be the allocator aborting the
/// process. A ResourceBudget turns that failure mode into a typed, in-band
/// error: evaluators charge rows/bytes as they materialize output (via
/// ExecGovernor::ChargeRows), and the first charge past the limit trips the
/// governor with kResourceExhausted — the engine aborts the Apply cleanly
/// and rolls back to the pre-request state.
///
/// Charges are cumulative over one Apply (the budget is constructed per
/// request), counting every materialized intermediate — the same row flowing
/// through three operators costs three charges. That is intentional: the
/// budget bounds evaluation *work and transient footprint*, not just the
/// final result size.

#ifndef DYNFO_CORE_BUDGET_H_
#define DYNFO_CORE_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dynfo::core {

/// Limits for one governed Apply. 0 = unlimited for that axis.
struct ResourceLimits {
  uint64_t max_tuples = 0;  ///< cumulative materialized rows across operators
  uint64_t max_bytes = 0;   ///< estimated bytes for those rows

  bool active() const { return max_tuples != 0 || max_bytes != 0; }
};

/// Thread-safe cumulative accountant. Charged concurrently by parallel
/// operator chunks (relaxed atomics — the limit check tolerates a few rows
/// of slack under races; breach detection is sticky).
class ResourceBudget {
 public:
  ResourceBudget() = default;
  explicit ResourceBudget(ResourceLimits limits) : limits_(limits) {}

  /// Records `tuples` rows / `bytes` bytes of materialization. Returns false
  /// iff this (or an earlier) charge breached a limit. Unlimited budgets
  /// always return true unless an injected failure is armed.
  bool Charge(uint64_t tuples, uint64_t bytes);

  bool exhausted() const { return breached_.load(std::memory_order_relaxed); }

  uint64_t tuples_charged() const { return tuples_.load(std::memory_order_relaxed); }
  uint64_t bytes_charged() const { return bytes_.load(std::memory_order_relaxed); }
  const ResourceLimits& limits() const { return limits_; }

  /// Chaos hook (allocation-failure injector): the `n`-th Charge call fails
  /// unconditionally, modeling an allocator running dry mid-evaluation.
  /// 0 disarms.
  void FailAfterCharges(uint64_t n) { fail_at_charge_.store(n, std::memory_order_relaxed); }

  /// Human-readable account of what breached, e.g.
  /// "budget breached: 1024 tuples charged, limit 512".
  std::string DescribeBreach() const;

 private:
  ResourceLimits limits_;
  std::atomic<uint64_t> tuples_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> charges_{0};
  std::atomic<uint64_t> fail_at_charge_{0};
  std::atomic<bool> breached_{false};
  std::atomic<bool> injected_{false};
};

}  // namespace dynfo::core

#endif  // DYNFO_CORE_BUDGET_H_
