/// \file text.h
/// Strict number parsing and checksumming shared by the persistence formats
/// (structure serialization, engine snapshots, request journals).
///
/// The persistence layer must never crash or silently mis-read hostile
/// bytes, so every numeric field is parsed with full-token matching (unlike
/// std::stoul, which accepts "12abc" as 12) and every blob carries an
/// FNV-1a checksum that is verified before any contents are trusted.

#ifndef DYNFO_CORE_TEXT_H_
#define DYNFO_CORE_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dynfo::core {

/// Parses a decimal uint64 strictly: the whole token must be digits, no
/// sign, no leading/trailing junk, no overflow. Returns false on any
/// violation (and leaves *out untouched).
inline bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// FNV-1a over the bytes of `data`; stable across platforms, fast enough
/// for whole-snapshot verification, and sensitive to any single-bit flip.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Fixed-width (16 digit) lowercase hex of a 64-bit value.
inline std::string HexU64(uint64_t value) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

/// Parses exactly 16 lowercase hex digits. Returns false otherwise.
inline bool ParseHexU64(std::string_view token, uint64_t* out) {
  if (token.size() != 16) return false;
  uint64_t value = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace dynfo::core

#endif  // DYNFO_CORE_TEXT_H_
