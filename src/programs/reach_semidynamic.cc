#include "programs/reach_semidynamic.h"

#include "fo/builder.h"
#include "graph/algorithms.h"

namespace dynfo::programs {

using fo::C;
using fo::EqT;
using fo::P0;
using fo::P1;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> ReachSemiDynamicInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeReachSemiDynamicProgram() {
  auto input = ReachSemiDynamicInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("E", 2);
  data->AddRelation("P", 2);
  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("reach_semidynamic", input, data);
  Term x = V("x"), y = V("y");
  program->AddInit({"P", {"x", "y"}, EqT(x, y)});
  program->AddUpdate(RequestKind::kInsert, "E",
                     {"P",
                      {"x", "y"},
                      Rel("P", {x, y}) || (Rel("P", {x, P0()}) && Rel("P", {P1(), y}))});
  program->SetBoolQuery(Rel("P", {C("s"), C("t")}));
  program->AddNamedQuery("path", {{"x", "y"}, Rel("P", {x, y})});
  program->SetSemiDynamic(true);
  return program;
}

bool ReachSemiDynamicOracle(const relational::Structure& input) {
  graph::Digraph g =
      graph::Digraph::FromRelation(input.relation("E"), input.universe_size());
  return graph::Reachable(g, input.constant("s"), input.constant("t"));
}

}  // namespace dynfo::programs
