#include "programs/matching.h"

#include <utility>
#include <vector>

#include "fo/builder.h"
#include "graph/algorithms.h"

namespace dynfo::programs {

using fo::EqEdge;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::LeT;
using fo::P0;
using fo::P1;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> MatchingInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeMatchingProgram() {
  auto input = MatchingInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("E", 2);      // mirrored input (kept symmetric)
  data->AddRelation("Match", 2);  // the maintained matching (symmetric)
  // Delete-time temporaries: the paper's "remove, then rematch a, then b".
  data->AddRelation("M0", 2);  // matching after removing (a, b)
  data->AddRelation("CA", 1);  // free neighbors of a
  data->AddRelation("NA", 1);  // the minimum free neighbor of a
  data->AddRelation("M1", 2);  // matching after rematching a
  data->AddRelation("CB", 1);  // free neighbors of b (w.r.t. M1)
  data->AddRelation("NB", 1);  // the minimum free neighbor of b

  auto program = std::make_shared<dyn::DynProgram>("matching", input, data);

  Term x = V("x"), y = V("y"), z = V("z"), w = V("w");

  // ---- Insert(E, a, b) ----------------------------------------------------
  program->AddUpdate(RequestKind::kInsert, "E",
                     {"E", {"x", "y"}, Rel("E", {x, y}) || EqEdge(x, y, P0(), P1())});
  // Match'(x, y) = Match(x, y) | (Eq(x, y, a, b) & a != b & !MP(a) & !MP(b)).
  F mp_a = Exists({"z"}, Rel("Match", {P0(), z}));
  F mp_b = Exists({"z"}, Rel("Match", {P1(), z}));
  program->AddUpdate(RequestKind::kInsert, "E",
                     {"Match",
                      {"x", "y"},
                      Rel("Match", {x, y}) || (EqEdge(x, y, P0(), P1()) &&
                                               !EqT(P0(), P1()) && !mp_a && !mp_b)});

  // ---- Delete(E, a, b) ----------------------------------------------------
  F was_matched = Rel("Match", {P0(), P1()});
  // M0: the matching with (a, b) removed.
  program->AddLet(RequestKind::kDelete, "E",
                  {"M0", {"x", "y"}, Rel("Match", {x, y}) && !EqEdge(x, y, P0(), P1())});
  // CA(x): x is a surviving neighbor of a, unmatched in M0. The Eq-edge
  // exclusion drops x = b (their edge is being deleted); x = a is excluded
  // separately (no self-matching).
  program->AddLet(RequestKind::kDelete, "E",
                  {"CA",
                   {"x"},
                   was_matched && Rel("E", {P0(), x}) && !EqEdge(P0(), x, P0(), P1()) &&
                       !EqT(x, P0()) && !Exists({"z"}, Rel("M0", {x, z}))});
  // NA: the minimum element of CA.
  program->AddLet(RequestKind::kDelete, "E",
                  {"NA",
                   {"x"},
                   Rel("CA", {x}) &&
                       Forall({"w"}, Implies(Rel("CA", {w}), LeT(x, w)))});
  // M1: a rematched to NA (if any).
  program->AddLet(RequestKind::kDelete, "E",
                  {"M1",
                   {"x", "y"},
                   Rel("M0", {x, y}) || (EqT(x, P0()) && Rel("NA", {y})) ||
                       (EqT(y, P0()) && Rel("NA", {x}))});
  // CB(x): free neighbor of b w.r.t. M1 (a is excluded by the Eq-edge test,
  // and anyone a just matched is no longer free).
  program->AddLet(RequestKind::kDelete, "E",
                  {"CB",
                   {"x"},
                   was_matched && Rel("E", {P1(), x}) && !EqEdge(P1(), x, P0(), P1()) &&
                       !EqT(x, P1()) && !Exists({"z"}, Rel("M1", {x, z}))});
  program->AddLet(RequestKind::kDelete, "E",
                  {"NB",
                   {"x"},
                   Rel("CB", {x}) &&
                       Forall({"w"}, Implies(Rel("CB", {w}), LeT(x, w)))});
  program->AddUpdate(RequestKind::kDelete, "E",
                     {"E", {"x", "y"}, Rel("E", {x, y}) && !EqEdge(x, y, P0(), P1())});
  program->AddUpdate(RequestKind::kDelete, "E",
                     {"Match",
                      {"x", "y"},
                      Rel("M1", {x, y}) || (EqT(x, P1()) && Rel("NB", {y})) ||
                          (EqT(y, P1()) && Rel("NB", {x}))});

  program->SetBoolQuery(Exists({"x", "y"}, Rel("Match", {x, y})));
  program->AddNamedQuery("match", {{"x", "y"}, Rel("Match", {x, y})});
  return program;
}

std::string MatchingInvariant(const relational::Structure& input,
                              const dyn::Engine& engine) {
  const size_t n = input.universe_size();
  graph::UndirectedGraph g =
      graph::UndirectedGraph::FromRelation(input.relation("E"), n);
  const relational::Relation& match = engine.data().relation("Match");
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges;
  for (const relational::Tuple& t : match) {
    if (!match.Contains({t[1], t[0]})) {
      return "Match not symmetric at " + t.ToString();
    }
    if (t[0] < t[1]) edges.emplace_back(t[0], t[1]);
    if (t[0] == t[1]) return "self-matched vertex " + std::to_string(t[0]);
  }
  if (!graph::IsMaximalMatching(g, edges)) {
    return "Match is not a maximal matching of the input graph";
  }
  return "";
}

}  // namespace dynfo::programs
