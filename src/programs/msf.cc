#include "programs/msf.h"

#include <algorithm>

#include "fo/builder.h"
#include "graph/algorithms.h"
#include "graph/mst.h"

namespace dynfo::programs {

using fo::C;
using fo::EqEdge;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::LeT;
using fo::LtT;
using fo::P0;
using fo::P1;
using fo::P2;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

namespace {

F SameTree(const Term& x, const Term& y) {
  return EqT(x, y) || Rel("PV", {x, y, x});
}
F SameTreeT(const Term& x, const Term& y) {
  return EqT(x, y) || Rel("T", {x, y, x});
}
F SameTreeT2(const Term& x, const Term& y) {
  return EqT(x, y) || Rel("T2", {x, y, x});
}

/// weight(p, q) <= weight(r, s), via fresh weight variables.
F WtLe(const Term& p, const Term& q, const Term& r, const Term& s,
       const std::string& wp, const std::string& wr) {
  return Exists({wp, wr}, Rel("W", {p, q, V(wp)}) && Rel("W", {r, s, V(wr)}) &&
                              LeT(V(wp), V(wr)));
}

}  // namespace

std::shared_ptr<const relational::Vocabulary> MsfInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("W", 3);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeMsfProgram() {
  auto input = MsfInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("W", 3);     // mirrored weighted edges (kept symmetric)
  data->AddRelation("F", 2);     // minimum-spanning-forest edges
  data->AddRelation("PV", 3);    // forest path from x to y via u
  data->AddRelation("Swap", 2);  // temporary (insert): path edge to evict
  data->AddRelation("T2", 3);    // temporary (insert): PV after the eviction
  data->AddRelation("T", 3);     // temporary (delete): PV after the split
  data->AddRelation("New", 2);   // temporary (delete): min-weight replacement
  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("msf", input, data);

  Term x = V("x"), y = V("y"), z = V("z"), u = V("u"), v = V("v");
  Term c = V("c"), d = V("d"), p = V("p"), q = V("q");

  program->AddInit({"PV", {"x", "y", "z"}, EqT(x, y) && EqT(y, z)});

  // ---- Insert(W, a, b, w); a = $0, b = $1, w = $2 -------------------------
  program->AddUpdate(RequestKind::kInsert, "W",
                     {"W",
                      {"x", "y", "z"},
                      Rel("W", {x, y, z}) ||
                          (EqEdge(x, y, P0(), P1()) && EqT(z, P2()))});

  // Swap(c, d): the unique maximum-weight edge on the forest path a..b, when
  // it is heavier than the new edge (then (a, b) enters the forest in its
  // place). A forest edge with both endpoints on the a..b path *is* a path
  // edge.
  F on_path_cd = Rel("F", {c, d}) && Rel("PV", {P0(), P1(), c}) &&
                 Rel("PV", {P0(), P1(), d});
  F on_path_pq = Rel("F", {p, q}) && Rel("PV", {P0(), P1(), p}) &&
                 Rel("PV", {P0(), P1(), q});
  program->AddLet(
      RequestKind::kInsert, "W",
      {"Swap",
       {"c", "d"},
       on_path_cd &&
           Forall({"p", "q"}, Implies(on_path_pq, WtLe(p, q, c, d, "wp", "wc"))) &&
           Exists({"wc"}, Rel("W", {c, d, V("wc")}) && LtT(P2(), V("wc")))});
  // T2: the forest paths after evicting the Swap edge (all of PV when no
  // swap happens).
  program->AddLet(RequestKind::kInsert, "W",
                  {"T2",
                   {"x", "y", "z"},
                   Rel("PV", {x, y, z}) &&
                       !Exists({"c", "d"}, Rel("Swap", {c, d}) && Rel("PV", {x, y, c}) &&
                                               Rel("PV", {x, y, d}))});

  F has_swap = Exists({"c", "d"}, Rel("Swap", {c, d}));
  F same_tree_ab = SameTree(P0(), P1());

  // F': three cases — fuse two trees / swap against the heaviest path edge /
  // no structural change.
  program->AddUpdate(
      RequestKind::kInsert, "W",
      {"F",
       {"x", "y"},
       (!same_tree_ab && (Rel("F", {x, y}) || EqEdge(x, y, P0(), P1()))) ||
           (same_tree_ab && has_swap &&
            ((Rel("F", {x, y}) && !Rel("Swap", {x, y})) || EqEdge(x, y, P0(), P1()))) ||
           (same_tree_ab && !has_swap && Rel("F", {x, y}))});

  // PV': mirror the three cases. The fuse case is Theorem 4.1's insert; the
  // swap case is a split (T2) followed by reconnection through (a, b).
  program->AddUpdate(
      RequestKind::kInsert, "W",
      {"PV",
       {"x", "y", "z"},
       (!same_tree_ab &&
        (Rel("PV", {x, y, z}) ||
         Exists({"u", "v"}, EqEdge(u, v, P0(), P1()) && SameTree(x, u) &&
                                SameTree(v, y) &&
                                (Rel("PV", {x, u, z}) || Rel("PV", {v, y, z}))))) ||
           (same_tree_ab && !has_swap && Rel("PV", {x, y, z})) ||
           (same_tree_ab && has_swap &&
            (Rel("T2", {x, y, z}) ||
             Exists({"u", "v"}, EqEdge(u, v, P0(), P1()) && SameTreeT2(x, u) &&
                                    SameTreeT2(v, y) &&
                                    (Rel("T2", {x, u, z}) || Rel("T2", {v, y, z})))))});

  // ---- Delete(W, a, b, w) -------------------------------------------------
  // The delete only restructures the forest when it removes a *forest* edge
  // with its correct weight.
  F genuine = Rel("W", {P0(), P1(), P2()}) && Rel("F", {P0(), P1()});

  program->AddLet(RequestKind::kDelete, "W",
                  {"T",
                   {"x", "y", "z"},
                   Rel("PV", {x, y, z}) && !(genuine && Rel("PV", {x, y, P0()}) &&
                                             Rel("PV", {x, y, P1()}))});
  // New: the minimum-weight surviving edge across the split.
  F cross_xy = Exists({"wx"}, Rel("W", {x, y, V("wx")})) &&
               !EqEdge(x, y, P0(), P1()) && SameTreeT(x, P0()) && SameTreeT(y, P1());
  F cross_pq = Exists({"wq"}, Rel("W", {p, q, V("wq")})) &&
               !EqEdge(p, q, P0(), P1()) && SameTreeT(p, P0()) && SameTreeT(q, P1());
  program->AddLet(
      RequestKind::kDelete, "W",
      {"New",
       {"x", "y"},
       genuine && cross_xy &&
           Forall({"p", "q"}, Implies(cross_pq, WtLe(x, y, p, q, "wp", "wr")))});
  program->AddUpdate(RequestKind::kDelete, "W",
                     {"W",
                      {"x", "y", "z"},
                      Rel("W", {x, y, z}) &&
                          !(EqEdge(x, y, P0(), P1()) && EqT(z, P2()))});
  program->AddUpdate(RequestKind::kDelete, "W",
                     {"F",
                      {"x", "y"},
                      (Rel("F", {x, y}) && !(genuine && EqEdge(x, y, P0(), P1()))) ||
                          Rel("New", {x, y}) || Rel("New", {y, x})});
  program->AddUpdate(
      RequestKind::kDelete, "W",
      {"PV",
       {"x", "y", "z"},
       Rel("T", {x, y, z}) ||
           Exists({"u", "v"},
                  (Rel("New", {u, v}) || Rel("New", {v, u})) && SameTreeT(x, u) &&
                      SameTreeT(y, v) && (Rel("T", {x, u, z}) || Rel("T", {y, v, z})))});

  program->SetBoolQuery(SameTree(C("s"), C("t")));
  program->AddNamedQuery("forest", {{"x", "y"}, Rel("F", {x, y})});
  program->AddNamedQuery("connected", {{"x", "y"}, SameTree(x, y)});
  return program;
}

bool MsfOracle(const relational::Structure& input) {
  graph::UndirectedGraph g(input.universe_size());
  for (const relational::Tuple& t : input.relation("W")) {
    if (t[0] != t[1]) g.AddEdge(t[0], t[1]);
  }
  return graph::Reachable(g, input.constant("s"), input.constant("t"));
}

std::string MsfInvariant(const relational::Structure& input, const dyn::Engine& engine) {
  std::vector<graph::WeightedEdge> edges;
  for (const relational::Tuple& t : input.relation("W")) {
    graph::WeightedEdge e{std::min(t[0], t[1]), std::max(t[0], t[1]), t[2]};
    if (e.u != e.v) edges.push_back(e);
  }
  std::vector<graph::WeightedEdge> expected =
      graph::KruskalMsf(input.universe_size(), std::move(edges));

  const relational::Relation& f_rel = engine.data().relation("F");
  std::vector<std::pair<uint32_t, uint32_t>> actual;
  for (const relational::Tuple& t : f_rel) {
    if (!f_rel.Contains({t[1], t[0]})) return "F not symmetric at " + t.ToString();
    if (t[0] < t[1]) actual.emplace_back(t[0], t[1]);
  }
  std::sort(actual.begin(), actual.end());
  std::vector<std::pair<uint32_t, uint32_t>> want;
  for (const graph::WeightedEdge& e : expected) want.emplace_back(e.u, e.v);
  std::sort(want.begin(), want.end());
  if (actual != want) {
    std::string msg = "F != Kruskal MSF; F has " + std::to_string(actual.size()) +
                      " edges, Kruskal " + std::to_string(want.size());
    return msg;
  }
  return "";
}

}  // namespace dynfo::programs
