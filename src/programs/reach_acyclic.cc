#include "programs/reach_acyclic.h"

#include "fo/builder.h"
#include "graph/algorithms.h"

namespace dynfo::programs {

using fo::C;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::P0;
using fo::P1;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> ReachAcyclicInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeReachAcyclicProgram() {
  auto input = ReachAcyclicInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("E", 2);  // mirrored input (directed)
  data->AddRelation("P", 2);  // the path relation (reflexive transitive closure)
  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("reach_acyclic", input, data);

  Term x = V("x"), y = V("y"), u = V("u"), v = V("v");

  // P starts as the identity: length-0 paths.
  program->AddInit({"P", {"x", "y"}, EqT(x, y)});

  // Insert(E, a, b): P'(x, y) = P(x, y) | (P(x, a) & P(b, y)).
  // (E is auto-mirrored by the engine.)
  program->AddUpdate(RequestKind::kInsert, "E",
                     {"P",
                      {"x", "y"},
                      Rel("P", {x, y}) || (Rel("P", {x, P0()}) && Rel("P", {P1(), y}))});

  // Delete(E, a, b) — the paper's formula, plus the guard E(a, b): deleting
  // an edge that is not present must be a no-op, but without the guard the
  // witness clause can fail for pairs that only *look* affected (e.g. when
  // P(y, a) holds, which a genuine edge (a, b) would make impossible by
  // acyclicity).
  //
  //   P'(x, y) = P(x, y) & [ !E(a,b) | !P(x, a) | !P(b, y) |
  //     exists u v (P(x, u) & P(u, a) & E(u, v) & !P(v, a) & P(v, y)
  //                 & (v != b | u != a)) ]
  program->AddUpdate(
      RequestKind::kDelete, "E",
      {"P",
       {"x", "y"},
       Rel("P", {x, y}) &&
           (!Rel("E", {P0(), P1()}) || !Rel("P", {x, P0()}) || !Rel("P", {P1(), y}) ||
            Exists({"u", "v"},
                   Rel("P", {x, u}) && Rel("P", {u, P0()}) && Rel("E", {u, v}) &&
                       !Rel("P", {v, P0()}) && Rel("P", {v, y}) &&
                       (!EqT(v, P1()) || !EqT(u, P0()))))});

  program->SetBoolQuery(Rel("P", {C("s"), C("t")}));
  program->AddNamedQuery("path", {{"x", "y"}, Rel("P", {x, y})});
  return program;
}

bool ReachAcyclicOracle(const relational::Structure& input) {
  graph::Digraph g =
      graph::Digraph::FromRelation(input.relation("E"), input.universe_size());
  return graph::Reachable(g, input.constant("s"), input.constant("t"));
}

}  // namespace dynfo::programs
