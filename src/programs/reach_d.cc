#include "programs/reach_d.h"

#include "fo/builder.h"
#include "graph/graph.h"
#include "programs/reach_u.h"

namespace dynfo::programs {

using fo::C;
using fo::EqT;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::Rel;
using fo::Term;
using fo::V;

std::shared_ptr<const relational::Vocabulary> ReachDInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

namespace {

/// alpha(x, y) = E(x, y) & x != t & forall z (E(x, z) -> z = y).
F Alpha(const Term& x, const Term& y) {
  Term z = V("z");
  return Rel("E", {x, y}) && !EqT(x, C("t")) &&
         Forall({"z"}, Implies(Rel("E", {x, z}), EqT(z, y)));
}

}  // namespace

std::shared_ptr<const reductions::FirstOrderReduction> MakeReachDtoUReduction() {
  auto reduction = std::make_shared<reductions::FirstOrderReduction>(
      "I_d-u", /*k=*/1, ReachDInputVocabulary(), ReachUInputVocabulary());
  Term x = V("x"), y = V("y");
  reduction->DefineRelation({"E", {"x", "y"}, Alpha(x, y) || Alpha(y, x)});
  reduction->DefineConstant({"s", {fo::Term::Const("s")}});
  reduction->DefineConstant({"t", {fo::Term::Const("t")}});
  DYNFO_CHECK(reduction->Validate().ok());
  return reduction;
}

std::unique_ptr<reductions::ReducedEngine> MakeReachDEngine(size_t universe_size,
                                                            dyn::EngineOptions options) {
  return std::make_unique<reductions::ReducedEngine>(
      MakeReachDtoUReduction(), MakeReachUProgram(), universe_size, options);
}

bool ReachDOracle(const relational::Structure& input) {
  const size_t n = input.universe_size();
  graph::Digraph g = graph::Digraph::FromRelation(input.relation("E"), n);
  graph::Vertex current = input.constant("s");
  const graph::Vertex target = input.constant("t");
  for (size_t step = 0; step <= n; ++step) {
    if (current == target) return true;
    const auto& successors = g.OutNeighbors(current);
    if (successors.size() != 1) return false;
    current = *successors.begin();
  }
  return false;  // walked n steps without reaching t: stuck in a cycle
}

}  // namespace dynfo::programs
