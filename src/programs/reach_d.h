/// \file reach_d.h
/// Theorem 4.2 (first half): REACH_d is in Dyn-FO, via Example 2.1's
/// bounded-expansion first-order reduction to REACH_u and Proposition 5.3.
///
/// REACH_d asks for a *deterministic* path from s to t: each edge (u, v) on
/// the path must be the unique edge leaving u. The reduction I_{d-u} builds
/// the undirected graph G' with
///   alpha(x, y) = E(x, y) & x != t & forall z (E(x, z) -> z = y)
///   E'(x, y)    = alpha(x, y) | alpha(y, x)
/// and maps s, t to themselves; a deterministic path exists in G iff s and
/// t are connected in G'. Each single-edge change to G affects at most two
/// edges of G' (bounded expansion), so feeding the image's diff to the
/// Theorem 4.1 engine costs O(1) inner requests per update.

#ifndef DYNFO_PROGRAMS_REACH_D_H_
#define DYNFO_PROGRAMS_REACH_D_H_

#include <memory>

#include "reductions/fo_reduction.h"
#include "reductions/reduced_engine.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2; s, t> (directed).
std::shared_ptr<const relational::Vocabulary> ReachDInputVocabulary();

/// Example 2.1's reduction I_{d-u} (unary, bounded expansion).
std::shared_ptr<const reductions::FirstOrderReduction> MakeReachDtoUReduction();

/// The Proposition 5.3 composition: I_{d-u} feeding the REACH_u engine.
std::unique_ptr<reductions::ReducedEngine> MakeReachDEngine(
    size_t universe_size, dyn::EngineOptions options = {});

/// Static oracle: follow unique out-edges from s for at most n steps.
bool ReachDOracle(const relational::Structure& input);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_REACH_D_H_
