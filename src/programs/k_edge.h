/// \file k_edge.h
/// Theorem 4.5(2): k-Edge Connectivity is in Dyn-FO for fixed k.
///
/// Maintenance is exactly Theorem 4.1 (E, F, PV). The query "are x and y
/// connected by k edge-disjoint paths?" is answered as in the paper: by
/// universally quantifying over (k-1)-tuples of edges and composing the
/// single-deletion Dyn-FO update k-1 times (by Menger's theorem x, y are
/// k-edge-connected iff no k-1 edges disconnect them).
///
/// Implementation note (see DESIGN.md): composing the delete formula k-1
/// times symbolically yields a constant-size FO query, but its naive
/// evaluation re-derives the intermediate forests per assignment. We
/// materialize the intermediates instead — each quantified edge tuple is
/// processed by running the *same* FO delete rules on a scratch copy of the
/// engine — which computes the identical composed query with memoization.

#ifndef DYNFO_PROGRAMS_K_EDGE_H_
#define DYNFO_PROGRAMS_K_EDGE_H_

#include <memory>

#include "dynfo/engine.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// Theorem 4.1 maintenance plus the composed k-edge-connectivity query.
class KEdgeEngine {
 public:
  explicit KEdgeEngine(size_t universe_size, dyn::EngineOptions options = {});

  /// Edge churn on "E" (undirected convention, as REACH_u).
  void Apply(const relational::Request& request);

  /// Are x and y connected by at least k edge-disjoint paths? (k >= 1.)
  bool Query(relational::Element x, relational::Element y, int k) const;

  const dyn::Engine& engine() const { return engine_; }

 private:
  bool Connected(const dyn::Engine& engine, relational::Element x,
                 relational::Element y) const;

  dyn::Engine engine_;
  fo::FormulaPtr connected_query_;  // $0 ~ $1 via PV
};

/// Static oracle: unit-capacity max flow.
bool KEdgeOracle(const relational::Structure& input, relational::Element x,
                 relational::Element y, int k);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_K_EDGE_H_
