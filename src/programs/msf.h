/// \file msf.h
/// Theorem 4.4: Minimum Spanning Forests are in Dyn-FO.
///
/// The input is a weighted undirected graph given as a ternary relation
/// W(u, v, w) — "edge {u, v} has weight w" — with weights drawn from the
/// universe (the ordering on the universe is the weight order). The program
/// maintains the forest relations F and PV of Theorem 4.1, but:
///   * deleting a forest edge splices in the *minimum-weight* crossing edge
///     (not the lexicographically least one), and
///   * inserting an edge into a connected pair swaps it against the
///     maximum-weight edge on the forest path when that improves the forest.
///
/// Contract (documented in DESIGN.md): weights are distinct and each
/// unordered pair carries at most one weight — the paper's own memoryless
/// case ("if the weights are all distinct ... this construction is
/// memoryless"); the workload generator enforces it. With distinct weights
/// the minimum spanning forest is unique, so tests compare F against
/// Kruskal exactly.

#ifndef DYNFO_PROGRAMS_MSF_H_
#define DYNFO_PROGRAMS_MSF_H_

#include <memory>
#include <string>

#include "dynfo/engine.h"
#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <W^3; s, t>.
std::shared_ptr<const relational::Vocabulary> MsfInputVocabulary();

/// The Dyn-FO program of Theorem 4.4. Boolean query: "s and t connected".
/// Named queries: "forest"(x, y), "connected"(x, y).
std::shared_ptr<const dyn::DynProgram> MakeMsfProgram();

/// Boolean-query oracle (connectivity).
bool MsfOracle(const relational::Structure& input);

/// Invariant: the engine's F equals the unique minimum spanning forest of
/// the input (as computed by Kruskal). Empty string when satisfied.
std::string MsfInvariant(const relational::Structure& input, const dyn::Engine& engine);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_MSF_H_
