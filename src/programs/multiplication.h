/// \file multiplication.h
/// Proposition 4.7: Multiplication is in Dyn-FO.
///
/// The inputs are two binary numbers given as bit relations X(i), Y(i)
/// (bit i set). The data structure maintains the product's bit array
/// Prod(t). Setting a bit of X adds the shifted operand Y << i to Prod;
/// clearing subtracts it (the paper's 2's-complement step, realized here as
/// direct borrow-lookahead subtraction — the product can never underflow,
/// since clearing bit i of x removes exactly the contribution y·2^i).
///
/// Conventions:
///   * bit positions are universe elements; the workload keeps X and Y
///     inside the low half of the universe so Prod (up to 2·bits wide)
///     always fits;
///   * the auxiliary relation Plus(i, j, k) — i + j = k — is first-order
///     from BIT (arith::PlusFormula) and installed by an init rule; because
///     its literal evaluation costs n^3 formula points, callers may instead
///     request native initialization (semantically identical, verified
///     equal by tests).

#ifndef DYNFO_PROGRAMS_MULTIPLICATION_H_
#define DYNFO_PROGRAMS_MULTIPLICATION_H_

#include <memory>
#include <vector>

#include "dynfo/engine.h"
#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <X^1, Y^1>.
std::shared_ptr<const relational::Vocabulary> MultiplicationInputVocabulary();

/// The Dyn-FO program of Proposition 4.7. If `fo_plus_init` is true the
/// Plus relation is initialized by its literal FO definition (slow —
/// use small universes); otherwise install it with InstallPlusRelation
/// right after constructing the Engine.
std::shared_ptr<const dyn::DynProgram> MakeMultiplicationProgram(bool fo_plus_init);

/// Fills Plus(i, j, k) := i + j = k directly (the native equivalent of the
/// FO init; Dyn-FO+-style precomputation through Engine::mutable_data()).
void InstallPlusRelation(dyn::Engine* engine);

/// Oracle: the product bits of X * Y as a bignum bit vector of length
/// universe_size.
std::vector<bool> MultiplicationOracle(const relational::Structure& input);

/// Invariant: Prod equals the oracle's product bits. Empty when satisfied.
std::string MultiplicationInvariant(const relational::Structure& input,
                                    const dyn::Engine& engine);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_MULTIPLICATION_H_
