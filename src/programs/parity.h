/// \file parity.h
/// Example 3.2: PARITY is in Dyn-FO.
///
/// Input vocabulary sigma = <M^1> codes a binary string: M(i) iff bit i is 1.
/// The data structure adds a nullary relation B — the paper's boolean
/// constant b — toggled by a quantifier-free formula on every change.

#ifndef DYNFO_PROGRAMS_PARITY_H_
#define DYNFO_PROGRAMS_PARITY_H_

#include <memory>

#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <M^1>.
std::shared_ptr<const relational::Vocabulary> ParityInputVocabulary();

/// The Dyn-FO program of Example 3.2. Boolean query: "the string has an odd
/// number of ones".
std::shared_ptr<const dyn::DynProgram> MakeParityProgram();

/// Static oracle: recount the ones.
bool ParityOracle(const relational::Structure& input);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_PARITY_H_
