#include "programs/pad_reach_a.h"

#include "fo/builder.h"
#include "graph/alternating.h"
#include "reductions/pad.h"

namespace dynfo::programs {

using fo::C;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::P0;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> ReachAUnderlyingVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("A", 1);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

std::shared_ptr<const relational::Vocabulary> PadReachAInputVocabulary() {
  return reductions::PadVocabulary(*ReachAUnderlyingVocabulary());
}

std::shared_ptr<const dyn::DynProgram> MakePadReachAProgram() {
  auto input = PadReachAInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("E", 3);  // mirrored padded edges
  data->AddRelation("A", 2);  // mirrored padded universal marks
  data->AddRelation("S", 1);  // the current iterate of Theta
  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("pad_reach_a", input, data);

  Term x = V("x"), y = V("y");
  // Copy 0's relations (min is the numeric constant 0).
  auto e0 = [&](const Term& from, const Term& to) {
    return Rel("E", {Term::Min(), from, to});
  };
  F a0 = Rel("A", {Term::Min(), x});

  // One step of the inductive definition, over copy 0.
  F theta = EqT(x, C("t")) ||
            (!a0 && Exists({"y"}, e0(x, y) && Rel("S", {y}))) ||
            (a0 && Exists({"y"}, e0(x, y)) &&
             Forall({"y"}, Implies(e0(x, y), Rel("S", {y}))));

  // A request whose copy index is 0 resets the iteration (the rules read the
  // pre-request copy 0, so resetting to Theta(empty) = {t} is the only sound
  // choice); any other copy funds one Theta step against the already-updated
  // copy 0.
  F step = (EqT(P0(), Term::Min()) && EqT(x, C("t"))) ||
           (!EqT(P0(), Term::Min()) && theta);
  for (RequestKind kind : {RequestKind::kInsert, RequestKind::kDelete}) {
    program->AddUpdate(kind, "E", {"S", {"x"}, step});
    program->AddUpdate(kind, "A", {"S", {"x"}, step});
  }

  program->SetBoolQuery(Rel("S", {C("s")}));
  program->AddNamedQuery("reaches", {{"x"}, Rel("S", {V("x")})});
  return program;
}

bool ReachAOracle(const relational::Structure& underlying) {
  const size_t n = underlying.universe_size();
  graph::Digraph g = graph::Digraph::FromRelation(underlying.relation("E"), n);
  std::vector<bool> universal(n, false);
  for (const relational::Tuple& t : underlying.relation("A")) universal[t[0]] = true;
  return graph::AlternatingReachable(g, universal, underlying.constant("s"),
                                     underlying.constant("t"));
}

}  // namespace dynfo::programs
