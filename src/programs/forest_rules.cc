#include "programs/forest_rules.h"

namespace dynfo::programs {

using fo::EqEdge;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::LeT;
using fo::LtT;
using fo::P0;
using fo::P1;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

F SameTree(const Term& x, const Term& y) {
  return EqT(x, y) || Rel("PV", {x, y, x});
}

F SameTreeT(const Term& x, const Term& y) {
  return EqT(x, y) || Rel("T", {x, y, x});
}

namespace {

/// Cross(p, q): after the split, (p, q) is a surviving input edge from a's
/// side to b's side. Used inside New.
F Cross(const Term& p, const Term& q) {
  return Rel("E", {p, q}) && !EqEdge(p, q, P0(), P1()) && SameTreeT(p, P0()) &&
         SameTreeT(q, P1());
}

}  // namespace

void DeclareForestData(relational::Vocabulary* data) {
  data->AddRelation("E", 2);    // mirrored input (kept symmetric)
  data->AddRelation("F", 2);    // spanning-forest edges
  data->AddRelation("PV", 3);   // forest path from x to y via u
  data->AddRelation("T", 3);    // temporary: PV after the split (delete only)
  data->AddRelation("New", 2);  // temporary: the replacement edge (delete only)
}

void AddForestRules(dyn::DynProgram* program) {
  Term x = V("x"), y = V("y"), z = V("z"), u = V("u"), v = V("v"), w = V("w");

  // PV is reflexive from the start: PV := {(x, y, z) : x = y = z}.
  program->AddInit({"PV", {"x", "y", "z"}, EqT(x, y) && EqT(y, z)});

  // ---- Insert(E, a, b); a = $0, b = $1 ----------------------------------
  // E'(x, y) = E(x, y) | Eq(x, y, a, b): both orientations enter E.
  program->AddUpdate(RequestKind::kInsert, "E",
                     {"E", {"x", "y"}, Rel("E", {x, y}) || EqEdge(x, y, P0(), P1())});
  // F'(x, y) = F(x, y) | (Eq(x, y, a, b) & !P(a, b)).
  program->AddUpdate(
      RequestKind::kInsert, "E",
      {"F",
       {"x", "y"},
       Rel("F", {x, y}) || (EqEdge(x, y, P0(), P1()) && !SameTree(P0(), P1()))});
  // PV'(x, y, z) = PV(x, y, z) | (!P(a, b) & exists u v [Eq(u, v, a, b)
  //                & P(x, u) & P(v, y) & (PV(x, u, z) | PV(v, y, z))]).
  program->AddUpdate(
      RequestKind::kInsert, "E",
      {"PV",
       {"x", "y", "z"},
       Rel("PV", {x, y, z}) ||
           (!SameTree(P0(), P1()) &&
            Exists({"u", "v"}, EqEdge(u, v, P0(), P1()) && SameTree(x, u) &&
                                   SameTree(v, y) &&
                                   (Rel("PV", {x, u, z}) || Rel("PV", {v, y, z}))))});

  // ---- Delete(E, a, b) ---------------------------------------------------
  // T(x, y, z): the forest paths surviving the removal (all of PV when
  // (a, b) is not a forest edge).
  program->AddLet(RequestKind::kDelete, "E",
                  {"T",
                   {"x", "y", "z"},
                   Rel("PV", {x, y, z}) &&
                       !(Rel("F", {P0(), P1()}) && Rel("PV", {x, y, P0()}) &&
                         Rel("PV", {x, y, P1()}))});
  // New(x, y): the lexicographically least surviving edge reconnecting a's
  // side to b's side — present only when a forest edge was deleted.
  program->AddLet(
      RequestKind::kDelete, "E",
      {"New",
       {"x", "y"},
       Rel("F", {P0(), P1()}) && Cross(x, y) &&
           Forall({"u", "w"},
                  Implies(Cross(u, w), LtT(x, u) || (EqT(x, u) && LeT(y, w))))});
  // E'(x, y) = E(x, y) & !Eq(x, y, a, b).
  program->AddUpdate(RequestKind::kDelete, "E",
                     {"E", {"x", "y"}, Rel("E", {x, y}) && !EqEdge(x, y, P0(), P1())});
  // F'(x, y) = (F(x, y) & !Eq(x, y, a, b)) | New(x, y) | New(y, x).
  program->AddUpdate(RequestKind::kDelete, "E",
                     {"F",
                      {"x", "y"},
                      (Rel("F", {x, y}) && !EqEdge(x, y, P0(), P1())) ||
                          Rel("New", {x, y}) || Rel("New", {y, x})});
  // PV'(x, y, z) = T(x, y, z) | exists u v [(New(u, v) | New(v, u))
  //                & T(x, u, x) & T(y, v, y) & (T(x, u, z) | T(y, v, z))].
  program->AddUpdate(
      RequestKind::kDelete, "E",
      {"PV",
       {"x", "y", "z"},
       Rel("T", {x, y, z}) ||
           Exists({"u", "v"},
                  (Rel("New", {u, v}) || Rel("New", {v, u})) && SameTreeT(x, u) &&
                      SameTreeT(y, v) && (Rel("T", {x, u, z}) || Rel("T", {y, v, z})))});
}

}  // namespace dynfo::programs
