/// \file reach_u.h
/// Theorem 4.1: REACH_u (undirected reachability) is in Dyn-FO.
///
/// The program maintains a spanning forest of the graph through auxiliary
/// relations F(x, y) ("(x, y) is a forest edge") and PV(x, y, u) ("the
/// unique forest path from x to y passes through u"), exactly as in the
/// paper's proof. Edge inserts either do nothing structural (same
/// component) or fuse two trees; deletes of forest edges split a tree and
/// splice it back with the lexicographically least replacement edge, using
/// the paper's temporary relations T and New.
///
/// Conventions made explicit here (the paper leaves them implicit):
///   * PV is reflexive — PV(x, x, x) holds for every x. This is first-order
///     initializable (PV := {(x,y,z) : x=y=z}) and is what makes the paper's
///     abbreviation P(x, y) ≡ (x=y ∨ PV(x, y, x)) interact correctly with
///     endpoint cases in the insert formula.
///   * The insert delta carries the guard ¬P(a, b): the paper states "[PV]
///     changes iff edge (a, b) connects two formerly disconnected trees";
///     without the guard, re-inserting an existing edge would pollute PV.
///   * The delete formulas are guarded by F(a, b): deleting a non-forest
///     edge must leave F and PV untouched.
///   * New(x, y) picks the lexicographically least replacement edge (the
///     paper's footnote 2 orders edges by the vertex ordering).

#ifndef DYNFO_PROGRAMS_REACH_U_H_
#define DYNFO_PROGRAMS_REACH_U_H_

#include <memory>
#include <string>

#include "dynfo/engine.h"
#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2; s, t>.
std::shared_ptr<const relational::Vocabulary> ReachUInputVocabulary();

/// The Dyn-FO program of Theorem 4.1.
///
/// Boolean query: "s and t are connected".
/// Named queries:
///   "connected"(x, y)  — x and y lie in the same component;
///   "forest"(x, y)     — (x, y) is a spanning-forest edge.
std::shared_ptr<const dyn::DynProgram> MakeReachUProgram();

/// Static oracle: BFS over the input edge relation.
bool ReachUOracle(const relational::Structure& input);

/// Deep structural invariant for Theorem 4.1's auxiliary relations:
///   * the mirrored E matches the input exactly (both orientations);
///   * F is a symmetric subset of E forming a spanning forest of E;
///   * PV(x, y, z) holds exactly when z lies on the unique F-path x..y
///     (including the reflexive PV(x, x, x)).
/// Returns an empty string when satisfied, else a description. Complete
/// enough that ANY single-tuple corruption of E/F/PV is caught — the
/// detector used by the fault-injection campaign and recovery tests.
std::string ReachUInvariant(const relational::Structure& input,
                            const dyn::Engine& engine);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_REACH_U_H_
