/// \file dyck.h
/// Proposition 4.8: the Dyck language D^k on k parenthesis types is in
/// Dyn-FO, via the paper's level trick.
///
/// The string lives on the fixed position universe {0..n-1}: position p
/// holds at most one character, given by the input relations Open_j(p) /
/// Close_j(p) for type j < k (an unoccupied position is "the empty string",
/// matching the paper's reading of deletion). The program maintains
/// Lev(p, v): the *prefix surplus* after position p — #opens at positions
/// <= p minus #closes at positions <= p — stored with offset n/2 so
/// negative intermediate surpluses are representable. Inserting an opener
/// at q adds one to the surplus of every p >= q (successor is first-order
/// from the ordering); closers subtract; deletes undo.
///
/// Membership: every opener has positive level and a matching closer of its
/// type ("the closest position to the right on the same level"), every
/// closer has nonnegative surplus... concretely the boolean query checks
/// (1) per-position level positivity, (2) total balance Lev(max) = offset,
/// (3) typed matching — all first-order over Lev.
///
/// Contract (workload-enforced, see DESIGN.md): at most one character per
/// position; the character count stays below n/2 - 1 so surpluses fit the
/// offset encoding.

#ifndef DYNFO_PROGRAMS_DYCK_H_
#define DYNFO_PROGRAMS_DYCK_H_

#include <memory>
#include <string>

#include "dynfo/engine.h"
#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <Open_0..Open_{k-1}, Close_0..Close_{k-1}> (unary).
std::shared_ptr<const relational::Vocabulary> DyckInputVocabulary(int num_types);

/// The Dyn-FO program of Proposition 4.8 for D^k at a fixed universe size
/// (the offset n/2 is baked into the formulas).
std::shared_ptr<const dyn::DynProgram> MakeDyckProgram(int num_types,
                                                       size_t universe_size);

/// Static oracle: extract the string and run the classic stack check.
bool DyckOracle(const relational::Structure& input, int num_types);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_DYCK_H_
