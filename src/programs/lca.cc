#include "programs/lca.h"

#include "fo/builder.h"
#include "graph/algorithms.h"

namespace dynfo::programs {

using fo::C;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::P0;
using fo::P1;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> LcaInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

namespace {

/// a is the lowest common ancestor of x and y (P is reflexive, so a vertex
/// is its own ancestor, matching the usual LCA convention).
F LcaFormula(const Term& x, const Term& y, const Term& a) {
  Term z = V("z");
  return Rel("P", {a, x}) && Rel("P", {a, y}) &&
         Forall({"z"},
                Implies(Rel("P", {z, x}) && Rel("P", {z, y}), Rel("P", {z, a})));
}

}  // namespace

std::shared_ptr<const dyn::DynProgram> MakeLcaProgram() {
  auto input = LcaInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("E", 2);
  data->AddRelation("P", 2);
  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("lca", input, data);

  Term x = V("x"), y = V("y"), u = V("u"), v = V("v");

  // P maintained exactly as Theorem 4.2 (a forest is acyclic).
  program->AddInit({"P", {"x", "y"}, EqT(x, y)});
  program->AddUpdate(RequestKind::kInsert, "E",
                     {"P",
                      {"x", "y"},
                      Rel("P", {x, y}) || (Rel("P", {x, P0()}) && Rel("P", {P1(), y}))});
  program->AddUpdate(
      RequestKind::kDelete, "E",
      {"P",
       {"x", "y"},
       Rel("P", {x, y}) &&
           (!Rel("E", {P0(), P1()}) || !Rel("P", {x, P0()}) || !Rel("P", {P1(), y}) ||
            Exists({"u", "v"},
                   Rel("P", {x, u}) && Rel("P", {u, P0()}) && Rel("E", {u, v}) &&
                       !Rel("P", {v, P0()}) && Rel("P", {v, y}) &&
                       (!EqT(v, P1()) || !EqT(u, P0()))))});

  program->SetBoolQuery(
      Exists({"a"}, LcaFormula(C("s"), C("t"), V("a"))));
  program->AddNamedQuery("lca", {{"x", "y", "a"}, LcaFormula(x, y, V("a"))});
  program->AddNamedQuery("ancestor", {{"x", "y"}, Rel("P", {x, y})});
  return program;
}

bool LcaOracle(const relational::Structure& input) {
  graph::Digraph g =
      graph::Digraph::FromRelation(input.relation("E"), input.universe_size());
  return graph::LowestCommonAncestor(g, input.constant("s"), input.constant("t"))
      .has_value();
}

}  // namespace dynfo::programs
