#include "programs/transitive_reduction.h"

#include "fo/builder.h"
#include "graph/algorithms.h"

namespace dynfo::programs {

using fo::C;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::P0;
using fo::P1;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> TransitiveReductionInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeTransitiveReductionProgram() {
  auto input = TransitiveReductionInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("E", 2);
  data->AddRelation("P", 2);
  data->AddRelation("TR", 2);
  data->AddRelation("New", 2);  // temporary (delete only)
  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("transitive_reduction", input, data);

  Term x = V("x"), y = V("y"), u = V("u"), v = V("v");

  program->AddInit({"P", {"x", "y"}, EqT(x, y)});

  // ---- Insert(E, a, b) ----------------------------------------------------
  // P as in Theorem 4.2.
  program->AddUpdate(RequestKind::kInsert, "E",
                     {"P",
                      {"x", "y"},
                      Rel("P", {x, y}) || (Rel("P", {x, P0()}) && Rel("P", {P1(), y}))});
  // TR'(x, y) = (!P(a, b) & x = a & y = b)
  //           | [TR(x, y) & (!(P(x, a) & P(b, y)) | (x = a & y = b))].
  program->AddUpdate(
      RequestKind::kInsert, "E",
      {"TR",
       {"x", "y"},
       (!Rel("P", {P0(), P1()}) && EqT(x, P0()) && EqT(y, P1())) ||
           (Rel("TR", {x, y}) && (!(Rel("P", {x, P0()}) && Rel("P", {P1(), y})) ||
                                  (EqT(x, P0()) && EqT(y, P1()))))});

  // ---- Delete(E, a, b) ----------------------------------------------------
  // New(x, y): (x, y) is a surviving redundant edge whose every length->=2
  // path went through (a, b); it re-enters TR.
  program->AddLet(
      RequestKind::kDelete, "E",
      {"New",
       {"x", "y"},
       Rel("E", {P0(), P1()}) && !(EqT(x, P0()) && EqT(y, P1())) && Rel("E", {x, y}) &&
           !Rel("TR", {x, y}) && Rel("P", {x, P0()}) && Rel("P", {P1(), y}) &&
           Forall({"u", "v"},
                  !(Rel("P", {x, u}) && Rel("P", {u, P0()}) && Rel("E", {u, v}) &&
                    !Rel("P", {v, P0()}) && Rel("P", {v, y}) &&
                    (!EqT(v, P1()) || !EqT(u, P0())) &&
                    (!EqT(u, x) || !EqT(v, y))))});
  // P as in Theorem 4.2 (guarded).
  program->AddUpdate(
      RequestKind::kDelete, "E",
      {"P",
       {"x", "y"},
       Rel("P", {x, y}) &&
           (!Rel("E", {P0(), P1()}) || !Rel("P", {x, P0()}) || !Rel("P", {P1(), y}) ||
            Exists({"u", "v"},
                   Rel("P", {x, u}) && Rel("P", {u, P0()}) && Rel("E", {u, v}) &&
                       !Rel("P", {v, P0()}) && Rel("P", {v, y}) &&
                       (!EqT(v, P1()) || !EqT(u, P0()))))});
  // TR'(x, y) = (TR(x, y) & !(x = a & y = b)) | New(x, y).
  program->AddUpdate(RequestKind::kDelete, "E",
                     {"TR",
                      {"x", "y"},
                      (Rel("TR", {x, y}) && !(EqT(x, P0()) && EqT(y, P1()))) ||
                          Rel("New", {x, y})});

  program->SetBoolQuery(Rel("TR", {C("s"), C("t")}));
  program->AddNamedQuery("tr", {{"x", "y"}, Rel("TR", {x, y})});
  program->AddNamedQuery("path", {{"x", "y"}, Rel("P", {x, y})});
  return program;
}

bool TransitiveReductionOracle(const relational::Structure& input) {
  graph::Digraph g =
      graph::Digraph::FromRelation(input.relation("E"), input.universe_size());
  graph::Digraph tr = graph::TransitiveReduction(g);
  return tr.HasEdge(input.constant("s"), input.constant("t"));
}

}  // namespace dynfo::programs
