#include "programs/multiplication.h"

#include "arith/bit_formulas.h"
#include "fo/builder.h"

namespace dynfo::programs {

using arith::Xor3;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::LtT;
using fo::P0;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> MultiplicationInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("X", 1);
  vocabulary->AddRelation("Y", 1);
  return vocabulary;
}

namespace {

/// Registers the update rules for changing a bit of `operand`, where `other`
/// is the unchanged factor that gets shifted and added/subtracted.
void AddOperandRules(dyn::DynProgram* program, const std::string& operand,
                     const std::string& other) {
  Term t = V("t"), s = V("s"), r = V("r"), j = V("j");
  F bit_already = Rel(operand, {P0()});

  // Sh(t): bit t of (other << i), i.e. other has bit j with j + i = t.
  fo::F shifted = Exists({"j"}, Rel(other, {j}) && Rel("Plus", {j, P0(), t}));
  for (RequestKind kind : {RequestKind::kInsert, RequestKind::kDelete}) {
    program->AddLet(kind, operand, {"Sh", {"t"}, shifted});
  }

  // Carry (addition) and borrow (subtraction) lookahead over Prod and Sh.
  F carry = Exists({"s"}, LtT(s, t) && Rel("Prod", {s}) && Rel("Sh", {s}) &&
                              Forall({"r"}, !(LtT(s, r) && LtT(r, t)) ||
                                                Rel("Prod", {r}) || Rel("Sh", {r})));
  F borrow = Exists({"s"}, LtT(s, t) && !Rel("Prod", {s}) && Rel("Sh", {s}) &&
                               Forall({"r"}, !(LtT(s, r) && LtT(r, t)) ||
                                                 !Rel("Prod", {r}) || Rel("Sh", {r})));
  program->AddLet(RequestKind::kInsert, operand, {"Car", {"t"}, carry});
  program->AddLet(RequestKind::kDelete, operand, {"Car", {"t"}, borrow});

  // ins: Prod += Sh unless the bit was already set; del: Prod -= Sh unless
  // the bit was already clear. (The input relation mirrors automatically.)
  program->AddUpdate(
      RequestKind::kInsert, operand,
      {"Prod",
       {"t"},
       (bit_already && Rel("Prod", {t})) ||
           (!bit_already && Xor3(Rel("Prod", {t}), Rel("Sh", {t}), Rel("Car", {t})))});
  program->AddUpdate(
      RequestKind::kDelete, operand,
      {"Prod",
       {"t"},
       (!bit_already && Rel("Prod", {t})) ||
           (bit_already && Xor3(Rel("Prod", {t}), Rel("Sh", {t}), Rel("Car", {t})))});
}

}  // namespace

std::shared_ptr<const dyn::DynProgram> MakeMultiplicationProgram(bool fo_plus_init) {
  auto input = MultiplicationInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("X", 1);
  data->AddRelation("Y", 1);
  data->AddRelation("Prod", 1);  // the product's bit array
  data->AddRelation("Plus", 3);  // i + j = k (FO from BIT; see header)
  data->AddRelation("Sh", 1);    // temporary: the shifted operand
  data->AddRelation("Car", 1);   // temporary: carry/borrow lookahead

  auto program = std::make_shared<dyn::DynProgram>("multiplication", input, data);
  if (fo_plus_init) {
    program->AddInit({"Plus",
                      {"i", "j", "k"},
                      arith::PlusFormula(V("i"), V("j"), V("k"))});
  }
  AddOperandRules(program.get(), "X", "Y");
  AddOperandRules(program.get(), "Y", "X");

  program->SetBoolQuery(Exists({"t"}, Rel("Prod", {V("t")})));
  program->AddNamedQuery("prod", {{"t"}, Rel("Prod", {V("t")})});
  return program;
}

void InstallPlusRelation(dyn::Engine* engine) {
  relational::Structure* data = engine->mutable_data();
  const size_t n = data->universe_size();
  relational::Relation& plus = data->relation("Plus");
  plus.Clear();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; i + j < n; ++j) {
      plus.Insert({static_cast<relational::Element>(i),
                   static_cast<relational::Element>(j),
                   static_cast<relational::Element>(i + j)});
    }
  }
}

std::vector<bool> MultiplicationOracle(const relational::Structure& input) {
  const size_t n = input.universe_size();
  // Schoolbook bignum multiply over bit vectors.
  std::vector<bool> x(n, false), y(n, false);
  for (const relational::Tuple& t : input.relation("X")) x[t[0]] = true;
  for (const relational::Tuple& t : input.relation("Y")) y[t[0]] = true;
  std::vector<uint32_t> acc(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (!x[i]) continue;
    for (size_t j = 0; j < n && i + j < n; ++j) {
      if (y[j]) ++acc[i + j];
    }
  }
  std::vector<bool> prod(n, false);
  uint64_t carry = 0;
  for (size_t t = 0; t < n; ++t) {
    uint64_t total = acc[t] + carry;
    prod[t] = (total & 1) != 0;
    carry = total >> 1;
  }
  return prod;
}

std::string MultiplicationInvariant(const relational::Structure& input,
                                    const dyn::Engine& engine) {
  std::vector<bool> expected = MultiplicationOracle(input);
  const relational::Relation& prod = engine.data().relation("Prod");
  for (size_t t = 0; t < expected.size(); ++t) {
    bool actual = prod.Contains({static_cast<relational::Element>(t)});
    if (actual != expected[t]) {
      return "Prod bit " + std::to_string(t) + " = " + (actual ? "1" : "0") +
             ", expected " + (expected[t] ? "1" : "0");
    }
  }
  return "";
}

}  // namespace dynfo::programs
