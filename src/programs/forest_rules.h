/// \file forest_rules.h
/// The spanning-forest machinery of Theorem 4.1, factored out for reuse.
///
/// Several constructions in the paper (REACH_u, bipartiteness, k-edge
/// connectivity) maintain the same auxiliary relations — E (symmetric
/// mirror), F (forest edges), PV (forest paths), and the delete-time
/// temporaries T and New. This header declares them into a data vocabulary
/// and installs the Theorem 4.1 update rules into a program; callers add
/// their own relations/rules on top (e.g. Odd for bipartiteness).

#ifndef DYNFO_PROGRAMS_FOREST_RULES_H_
#define DYNFO_PROGRAMS_FOREST_RULES_H_

#include "dynfo/program.h"
#include "fo/builder.h"

namespace dynfo::programs {

/// Adds E^2, F^2, PV^3, T^3, New^2 to `data`.
void DeclareForestData(relational::Vocabulary* data);

/// Installs the Theorem 4.1 init/insert/delete rules for relation "E".
/// Callers may add further rules for the same requests (e.g. Odd updates);
/// those can read the lets T and New.
void AddForestRules(dyn::DynProgram* program);

/// The paper's P(x, y) abbreviation over PV: same tree of the forest.
fo::F SameTree(const fo::Term& x, const fo::Term& y);
/// Same abbreviation over the temporary T (mid-delete forest).
fo::F SameTreeT(const fo::Term& x, const fo::Term& y);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_FOREST_RULES_H_
