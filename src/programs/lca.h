/// \file lca.h
/// Theorem 4.5(4): Lowest Common Ancestors in directed forests are in Dyn-FO.
///
/// The input is a directed forest with edges parent -> child (the workload
/// keeps indegree <= 1 and acyclicity). The program maintains the ancestor
/// relation P exactly as Theorem 4.2; vertex a is the LCA of x and y iff
///   P(a, x) & P(a, y) & forall z ((P(z, x) & P(z, y)) -> P(z, a)).

#ifndef DYNFO_PROGRAMS_LCA_H_
#define DYNFO_PROGRAMS_LCA_H_

#include <memory>

#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2; s, t> (edges parent -> child).
std::shared_ptr<const relational::Vocabulary> LcaInputVocabulary();

/// The Dyn-FO program of Theorem 4.5(4).
/// Boolean query: "s and t have a common ancestor".
/// Named query "lca"(x, y, a): a is the lowest common ancestor of x and y.
std::shared_ptr<const dyn::DynProgram> MakeLcaProgram();

/// Static oracle for the boolean query.
bool LcaOracle(const relational::Structure& input);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_LCA_H_
