#include "programs/bipartite.h"

#include "fo/builder.h"
#include "graph/algorithms.h"
#include "programs/forest_rules.h"

namespace dynfo::programs {

using fo::EqEdge;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::P0;
using fo::P1;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> BipartiteInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeBipartiteProgram() {
  auto input = BipartiteInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  DeclareForestData(data.get());
  data->AddRelation("Odd", 2);

  auto program = std::make_shared<dyn::DynProgram>("bipartite", input, data);
  AddForestRules(program.get());

  Term x = V("x"), y = V("y"), u = V("u"), v = V("v");

  // Parity agreement: the new path x..u + edge + v..y is odd iff the two
  // halves have equal parity (both odd or both even).
  F halves_agree = (Rel("Odd", {x, u}) && Rel("Odd", {y, v})) ||
                   (!Rel("Odd", {x, u}) && !Rel("Odd", {y, v}));

  // Insert(E, a, b): new Odd pairs appear only when two trees merge.
  // Odd'(x, y) = Odd(x, y) | [ !P(a, b) & exists u v (Eq(u, v, a, b)
  //              & P(x, u) & P(y, v) & parity-agreement) ].
  program->AddUpdate(
      RequestKind::kInsert, "E",
      {"Odd",
       {"x", "y"},
       Rel("Odd", {x, y}) ||
           (!SameTree(P0(), P1()) &&
            Exists({"u", "v"}, EqEdge(u, v, P0(), P1()) && SameTree(x, u) &&
                                   SameTree(y, v) && halves_agree))});

  // Delete(E, a, b): keep Odd for pairs still T-connected; re-derive pairs
  // reconnected through the replacement edge New (the lets T/New come from
  // the shared forest rules).
  F halves_agree_t = (Rel("Odd", {x, u}) && Rel("Odd", {y, v})) ||
                     (!Rel("Odd", {x, u}) && !Rel("Odd", {y, v}));
  program->AddUpdate(
      RequestKind::kDelete, "E",
      {"Odd",
       {"x", "y"},
       (Rel("Odd", {x, y}) && SameTreeT(x, y)) ||
           Exists({"u", "v"}, (Rel("New", {u, v}) || Rel("New", {v, u})) &&
                                  SameTreeT(x, u) && SameTreeT(y, v) &&
                                  halves_agree_t)});

  // Bipartite iff every edge spans the two color classes.
  program->SetBoolQuery(
      Forall({"x", "y"}, Implies(Rel("E", {x, y}), Rel("Odd", {x, y}))));
  program->AddNamedQuery("odd", {{"x", "y"}, Rel("Odd", {x, y})});
  return program;
}

bool BipartiteOracle(const relational::Structure& input) {
  graph::UndirectedGraph g = graph::UndirectedGraph::FromRelation(
      input.relation("E"), input.universe_size());
  // A self loop is non-bipartite; FromRelation keeps it, IsBipartite must see
  // it. UndirectedGraph stores self loops; BFS coloring flags u == v edges.
  for (const relational::Tuple& t : input.relation("E")) {
    if (t[0] == t[1]) return false;
  }
  return graph::IsBipartite(g);
}

}  // namespace dynfo::programs
