/// \file transitive_reduction.h
/// Corollary 4.3: Transitive Reduction of DAGs is in memoryless Dyn-FO.
///
/// Maintains the path relation P (as in Theorem 4.2) together with TR, the
/// unique minimal subgraph with the same transitive closure. Two guards are
/// added to the paper's formulas (both implicit in its "genuine update"
/// reading):
///   * re-inserting an existing edge must not evict it from TR — the
///     redundancy test P(x, a) & P(b, y) is vacuously true for (a, b)
///     itself, so the tuple (a, b) is exempted;
///   * New (the edges re-entering TR on a delete) requires E(a, b) — for a
///     spurious delete of a non-edge the witness clause can fail even
///     though nothing changed — and must exclude the deleted tuple and the
///     single-edge witness (u, v) = (x, y), which would otherwise mask
///     every genuine promotion.

#ifndef DYNFO_PROGRAMS_TRANSITIVE_REDUCTION_H_
#define DYNFO_PROGRAMS_TRANSITIVE_REDUCTION_H_

#include <memory>

#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2; s, t>.
std::shared_ptr<const relational::Vocabulary> TransitiveReductionInputVocabulary();

/// The Dyn-FO program of Corollary 4.3. Boolean query: TR(s, t).
/// Named queries: "tr"(x, y), "path"(x, y).
std::shared_ptr<const dyn::DynProgram> MakeTransitiveReductionProgram();

/// Static oracle for the boolean query: (s, t) in the transitive reduction.
bool TransitiveReductionOracle(const relational::Structure& input);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_TRANSITIVE_REDUCTION_H_
