#include "programs/reach_u2.h"

#include "fo/builder.h"

namespace dynfo::programs {

using fo::EqEdge;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::LeT;
using fo::LtT;
using fo::P0;
using fo::P1;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

namespace {

/// Conn(x, y): x and y share an ancestor (same tree). `r` must be fresh.
F Conn(const Term& x, const Term& y, const std::string& r) {
  return Exists({r}, Rel("DP", {x, V(r)}) && Rel("DP", {y, V(r)}));
}

/// y lies on the tree path x..a, over the given ancestor relation.
F OnPath(const std::string& dp, const Term& x, const Term& a, const Term& y,
         const std::string& z) {
  return (Rel(dp, {x, y}) || Rel(dp, {a, y})) &&
         Forall({z}, Implies(Rel(dp, {x, V(z)}) && Rel(dp, {a, V(z)}),
                             Rel(dp, {y, V(z)})));
}

}  // namespace

std::shared_ptr<const relational::Vocabulary> ReachU2InputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeReachU2Program() {
  auto input = ReachU2InputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("E", 2);    // mirrored input (kept symmetric)
  data->AddRelation("DF", 2);   // parent pointers of the rooted forest
  data->AddRelation("DP", 2);   // ancestor relation (refl. trans. closure)
  data->AddRelation("Cc", 1);   // temporary (delete): the detached child
  data->AddRelation("DF1", 2);  // temporary (delete): DF after the split
  data->AddRelation("DP1", 2);  // temporary (delete): DP after the split
  data->AddRelation("New", 2);  // temporary (delete): replacement edge

  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("reach_u2", input, data);

  Term x = V("x"), y = V("y"), u = V("u"), v = V("v"), c = V("c");

  // Every vertex starts as its own root: DP is the identity, DF empty.
  program->AddInit({"DP", {"x", "y"}, EqT(x, y)});

  // ---- Insert(E, a, b); a = $0, b = $1 ----------------------------------
  F linked = Conn(P0(), P1(), "r");  // already same tree (incl. a = b)
  program->AddUpdate(RequestKind::kInsert, "E",
                     {"E", {"x", "y"}, Rel("E", {x, y}) || EqEdge(x, y, P0(), P1())});
  // DF: flip a's ancestor-path edges (rerooting a's tree at a), hang a
  // under b. a's ancestor path is {x : DP(a, x)}.
  program->AddUpdate(
      RequestKind::kInsert, "E",
      {"DF",
       {"x", "y"},
       (Rel("DF", {x, y}) && (linked || !Rel("DP", {P0(), x}))) ||
           (!linked && Rel("DF", {y, x}) && Rel("DP", {P0(), y})) ||
           (!linked && EqT(x, P0()) && EqT(y, P1()))});
  // DP: unaffected trees keep their ancestors; a's tree vertices now climb
  // the path x..a and then b's ancestor chain.
  program->AddUpdate(
      RequestKind::kInsert, "E",
      {"DP",
       {"x", "y"},
       (!Conn(x, P0(), "r") && Rel("DP", {x, y})) ||
           (linked && Conn(x, P0(), "r") && Rel("DP", {x, y})) ||
           (!linked && Conn(x, P0(), "r") &&
            (OnPath("DP", x, P0(), y, "z") || Rel("DP", {P1(), y})))});

  // ---- Delete(E, a, b) ---------------------------------------------------
  // Cc: the child endpoint when (a, b) is a tree edge (in either
  // orientation); empty otherwise — which makes every later step a no-op.
  program->AddLet(RequestKind::kDelete, "E",
                  {"Cc",
                   {"x"},
                   (Rel("DF", {P0(), P1()}) && EqT(x, P0())) ||
                       (Rel("DF", {P1(), P0()}) && EqT(x, P1()))});
  // Post-split relations: the subtree under the child keeps its (already
  // correctly rooted) structure; ancestor pairs leaving the subtree die.
  program->AddLet(RequestKind::kDelete, "E",
                  {"DF1", {"x", "y"}, Rel("DF", {x, y}) && !EqEdge(x, y, P0(), P1())});
  program->AddLet(
      RequestKind::kDelete, "E",
      {"DP1",
       {"x", "y"},
       Rel("DP", {x, y}) &&
           !Exists({"c"}, Rel("Cc", {c}) && Rel("DP", {x, c}) && !Rel("DP", {y, c}))});
  // New: the lexicographically least surviving edge from the detached
  // subtree back to the rest of the old tree.
  F cross_xy = Rel("E", {x, y}) && !EqEdge(x, y, P0(), P1()) &&
               Exists({"c"}, Rel("Cc", {c}) && Rel("DP", {x, c}) &&
                                 Conn(y, c, "r") && !Rel("DP", {y, c}));
  F cross_uv = Rel("E", {u, v}) && !EqEdge(u, v, P0(), P1()) &&
               Exists({"c"}, Rel("Cc", {c}) && Rel("DP", {u, c}) &&
                                 Conn(v, c, "r") && !Rel("DP", {v, c}));
  program->AddLet(
      RequestKind::kDelete, "E",
      {"New",
       {"x", "y"},
       cross_xy && Forall({"u", "v"},
                          Implies(cross_uv, LtT(x, u) || (EqT(x, u) && LeT(y, v))))});

  F has_new = Exists({"u", "v"}, Rel("New", {u, v}));
  F in_subtree = Exists({"c"}, Rel("Cc", {c}) && Rel("DP1", {x, c}));
  program->AddUpdate(RequestKind::kDelete, "E",
                     {"E", {"x", "y"}, Rel("E", {x, y}) && !EqEdge(x, y, P0(), P1())});
  // DF: reroot the subtree at New's endpoint u (flip u's ancestor path in
  // DF1) and hang u under v.
  program->AddUpdate(
      RequestKind::kDelete, "E",
      {"DF",
       {"x", "y"},
       (Rel("DF1", {x, y}) &&
        !Exists({"u"}, Exists({"v"}, Rel("New", {u, v})) && Rel("DP1", {u, x}))) ||
           Exists({"u"},
                  Exists({"v"}, Rel("New", {u, v})) && Rel("DF1", {y, x}) &&
                      Rel("DP1", {u, y})) ||
           Rel("New", {x, y})});
  // DP: outside the subtree (or with no replacement) the split relations
  // stand; inside, the rerooted ancestors are the path x..u plus v's chain.
  program->AddUpdate(
      RequestKind::kDelete, "E",
      {"DP",
       {"x", "y"},
       (!in_subtree && Rel("DP1", {x, y})) ||
           (in_subtree && !has_new && Rel("DP1", {x, y})) ||
           (in_subtree && has_new &&
            Exists({"u", "v"}, Rel("New", {u, v}) &&
                                   (OnPath("DP1", x, u, y, "z") ||
                                    Rel("DP1", {v, y}))))});

  Term s = fo::C("s"), t = fo::C("t");
  program->SetBoolQuery(Conn(s, t, "r"));
  program->AddNamedQuery("connected", {{"x", "y"}, Conn(x, y, "r")});
  program->AddNamedQuery("parent", {{"x", "y"}, Rel("DF", {x, y})});
  program->AddNamedQuery("ancestor", {{"x", "y"}, Rel("DP", {x, y})});
  return program;
}

}  // namespace dynfo::programs
