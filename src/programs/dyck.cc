#include "programs/dyck.h"

#include <vector>

#include "arith/bit_formulas.h"
#include "fo/builder.h"

namespace dynfo::programs {

using arith::SuccFormula;
using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::LeT;
using fo::LtT;
using fo::N;
using fo::P0;
using fo::Rel;
using fo::Term;
using fo::V;
using relational::RequestKind;

namespace {

std::string OpenName(int j) { return "Open_" + std::to_string(j); }
std::string CloseName(int j) { return "Close_" + std::to_string(j); }

/// Some character occupies position `p`.
F Occupied(const Term& p, int num_types) {
  std::vector<fo::FormulaPtr> cases;
  for (int j = 0; j < num_types; ++j) {
    cases.push_back(Rel(OpenName(j), {p}));
    cases.push_back(Rel(CloseName(j), {p}));
  }
  return fo::OrAll(std::move(cases));
}

}  // namespace

std::shared_ptr<const relational::Vocabulary> DyckInputVocabulary(int num_types) {
  DYNFO_CHECK(num_types >= 1);
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  for (int j = 0; j < num_types; ++j) vocabulary->AddRelation(OpenName(j), 1);
  for (int j = 0; j < num_types; ++j) vocabulary->AddRelation(CloseName(j), 1);
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeDyckProgram(int num_types,
                                                       size_t universe_size) {
  DYNFO_CHECK(universe_size >= 4);
  auto input = DyckInputVocabulary(num_types);
  auto data = std::make_shared<relational::Vocabulary>();
  for (int j = 0; j < num_types; ++j) data->AddRelation(OpenName(j), 1);
  for (int j = 0; j < num_types; ++j) data->AddRelation(CloseName(j), 1);
  data->AddRelation("Lev", 2);  // Lev(p, v): prefix surplus after p, offset n/2

  auto program = std::make_shared<dyn::DynProgram>(
      "dyck_" + std::to_string(num_types), input, data);

  const relational::Element offset =
      static_cast<relational::Element>(universe_size / 2);
  Term p = V("p"), v = V("v"), u = V("u"), q = V("q"), w = V("w"), r = V("r");

  // All surpluses start at the offset (empty string).
  program->AddInit({"Lev", {"p", "v"}, EqT(v, N(offset))});

  // Shift rules: positions >= the edit point move up/down by one; an edit on
  // an occupied slot (insert) or an absent character (delete) is a no-op.
  F up = (LtT(p, P0()) && Rel("Lev", {p, v})) ||
         (LeT(P0(), p) && Exists({"u"}, Rel("Lev", {p, u}) && SuccFormula(u, v)));
  F down = (LtT(p, P0()) && Rel("Lev", {p, v})) ||
           (LeT(P0(), p) && Exists({"u"}, Rel("Lev", {p, u}) && SuccFormula(v, u)));
  F occ = Occupied(P0(), num_types);
  for (int j = 0; j < num_types; ++j) {
    F open_present = Rel(OpenName(j), {P0()});
    F close_present = Rel(CloseName(j), {P0()});
    program->AddUpdate(RequestKind::kInsert, OpenName(j),
                       {"Lev", {"p", "v"}, (occ && Rel("Lev", {p, v})) || (!occ && up)});
    program->AddUpdate(
        RequestKind::kDelete, OpenName(j),
        {"Lev", {"p", "v"}, (!open_present && Rel("Lev", {p, v})) ||
                                (open_present && down)});
    program->AddUpdate(RequestKind::kInsert, CloseName(j),
                       {"Lev", {"p", "v"},
                        (occ && Rel("Lev", {p, v})) || (!occ && down)});
    program->AddUpdate(
        RequestKind::kDelete, CloseName(j),
        {"Lev", {"p", "v"}, (!close_present && Rel("Lev", {p, v})) ||
                                (close_present && up)});
  }

  // ---- The membership query ----------------------------------------------
  std::vector<fo::FormulaPtr> conditions;
  // (1) Total balance: the final surplus is the offset.
  conditions.push_back(Rel("Lev", {Term::Max(), N(offset)}));
  // (2) Positivity: openers sit strictly above the offset, closers at or
  // above it (paper: "all parentheses have a positive level").
  std::vector<fo::FormulaPtr> any_open_cases, any_close_cases;
  for (int j = 0; j < num_types; ++j) {
    any_open_cases.push_back(Rel(OpenName(j), {p}));
    any_close_cases.push_back(Rel(CloseName(j), {p}));
  }
  F any_open = fo::OrAll(std::move(any_open_cases));
  F any_close = fo::OrAll(std::move(any_close_cases));
  conditions.push_back(Forall(
      {"p", "v"}, Implies(any_open && Rel("Lev", {p, v}), LtT(N(offset), v))));
  conditions.push_back(Forall(
      {"p", "v"}, Implies(any_close && Rel("Lev", {p, v}), LeT(N(offset), v))));
  // (3) Typed matching: each opener's first surplus-drop position holds a
  // closer of the same type.
  for (int j = 0; j < num_types; ++j) {
    F match =
        LtT(p, q) && Rel(CloseName(j), {q}) &&
        Exists({"v", "w"}, Rel("Lev", {p, v}) && Rel("Lev", {q, w}) &&
                               SuccFormula(w, v) &&
                               Forall({"r"}, Implies(LtT(p, r) && LtT(r, q),
                                                     Exists({"u"}, Rel("Lev", {r, u}) &&
                                                                       LeT(v, u)))));
    conditions.push_back(
        Forall({"p"}, Implies(Rel(OpenName(j), {p}), Exists({"q"}, match))));
  }
  program->SetBoolQuery(fo::AndAll(std::move(conditions)));
  program->AddNamedQuery("level", {{"p", "v"}, Rel("Lev", {p, v})});
  return program;
}

bool DyckOracle(const relational::Structure& input, int num_types) {
  const size_t n = input.universe_size();
  // Character at each position: -1 empty, j opener, ~j (negative) closer.
  std::vector<int> stack;
  for (size_t p = 0; p < n; ++p) {
    relational::Element e = static_cast<relational::Element>(p);
    int found = 0;
    for (int j = 0; j < num_types; ++j) {
      if (input.relation(OpenName(j)).Contains({e})) {
        stack.push_back(j);
        ++found;
      }
      if (input.relation(CloseName(j)).Contains({e})) {
        if (stack.empty() || stack.back() != j) return false;
        stack.pop_back();
        ++found;
      }
    }
    DYNFO_CHECK(found <= 1) << "two characters share position " << p;
  }
  return stack.empty();
}

}  // namespace dynfo::programs
