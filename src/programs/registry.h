/// \file registry.h
/// A registry of every runnable program factory paired with a seeded
/// reference workload: one place that knows how to exercise each Dyn-FO
/// program in the library end to end.
///
/// Cross-program harnesses — snapshot round-trips, cancellation-atomicity
/// sweeps, the chaos soak — iterate AllScenarios() instead of hand-listing
/// factories, so a newly added program is covered by every such harness the
/// moment it registers here.

#ifndef DYNFO_PROGRAMS_REGISTRY_H_
#define DYNFO_PROGRAMS_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dynfo/engine.h"
#include "dynfo/program.h"
#include "relational/request.h"

namespace dynfo::programs {

/// One program plus everything needed to run it: a factory, a deterministic
/// workload generator, the universe size the workload was tuned for, and an
/// optional precomputation install (Dyn-FO+ programs).
struct ProgramScenario {
  std::string name;
  std::function<std::shared_ptr<const dyn::DynProgram>()> make_program;
  /// Deterministic for fixed (n, seed): harnesses vary `seed` to widen
  /// coverage and report it on failure for a one-line repro.
  std::function<relational::RequestSequence(size_t n, uint64_t seed)>
      make_workload;
  size_t default_universe = 8;
  /// May be null. Applied to every engine before any request — including
  /// engines the recovery layer rebuilds (pass as EnginePostInit there).
  std::function<void(dyn::Engine*)> post_init;
  /// Optional FO-definable bulk-change workload (Schwentick–Vortmeier–
  /// Zeume, "Dynamic Complexity under Definable Changes"): a deterministic
  /// sequence of DefinableChange steps for (n, seed), each materialized
  /// against the engine state current when it runs. Null for programs
  /// without one.
  std::function<std::vector<dyn::DefinableChange>(size_t n, uint64_t seed)>
      make_definable;
};

/// Every runnable scenario, in a stable order (tests index into it).
const std::vector<ProgramScenario>& AllScenarios();

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_REGISTRY_H_
