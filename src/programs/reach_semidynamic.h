/// \file reach_semidynamic.h
/// The semi-dynamic class Dyn_s-FO (paper §3.1: "if no deletes are allowed
/// we get the class Dyn_s-C"): full directed reachability — REACH, whose
/// membership in (fully dynamic) Dyn-FO the paper leaves as its central
/// open problem (Conclusion, question 2) — is easily in Dyn_s-FO.
///
/// Under inserts only, the paths relation closes transitively through the
/// new edge exactly as in the acyclic case, with no acyclicity needed:
///   P'(x, y) = P(x, y) | (P(x, a) & P(b, y)).
/// The engine CHECK-refuses deletes (no delete rules are registered, and
/// the boolean query would silently go stale; tests assert the refusal).

#ifndef DYNFO_PROGRAMS_REACH_SEMIDYNAMIC_H_
#define DYNFO_PROGRAMS_REACH_SEMIDYNAMIC_H_

#include <memory>

#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2; s, t>.
std::shared_ptr<const relational::Vocabulary> ReachSemiDynamicInputVocabulary();

/// The Dyn_s-FO program for directed REACH (inserts only).
std::shared_ptr<const dyn::DynProgram> MakeReachSemiDynamicProgram();

/// Static oracle: directed BFS.
bool ReachSemiDynamicOracle(const relational::Structure& input);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_REACH_SEMIDYNAMIC_H_
