/// \file pad_reach_a.h
/// Theorem 5.14: PAD(REACH_a) is in Dyn-FO.
///
/// REACH_a (alternating reachability) is P-complete, yet its padded version
/// is dynamic first-order: a real change to the underlying structure costs
/// n requests (one per copy), and each request funds one first-order step
/// of REACH_a's inductive definition — n steps reach the fixpoint, since
/// REACH_a ∈ FO[n].
///
/// Input (padded vocabulary): E(c, x, y) and A(c, x) — edge/universal
/// relations of copy c — with shared constants s, t. The program maintains
/// S(x) = the current iterate of
///   Theta(S)(x) = x = t
///                | (!A0(x) & exists y (E0(x, y) & S(y)))
///                | (A0(x) & exists y E0(x, y) & forall y (E0(x, y) -> S(y)))
/// over copy 0's relations. Ordered update discipline (DESIGN.md): a real
/// change updates copies 0, 1, ..., n-1 in order (reductions::PadRequests
/// emits exactly this); a request touching copy 0 resets S to Theta(∅) =
/// {t}, every other request applies Theta once. After the n-th request
/// S = Theta^n(∅) = the fixpoint for the *new* structure, so queries are
/// correct at every valid pad.

#ifndef DYNFO_PROGRAMS_PAD_REACH_A_H_
#define DYNFO_PROGRAMS_PAD_REACH_A_H_

#include <memory>

#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The *underlying* (unpadded) vocabulary <E^2, A^1; s, t>.
std::shared_ptr<const relational::Vocabulary> ReachAUnderlyingVocabulary();

/// The padded input vocabulary <E^3, A^2; s, t> (copy index first).
std::shared_ptr<const relational::Vocabulary> PadReachAInputVocabulary();

/// The Dyn-FO program of Theorem 5.14. Boolean query: S(s).
std::shared_ptr<const dyn::DynProgram> MakePadReachAProgram();

/// Static oracle on the *underlying* structure: alternating reachability.
bool ReachAOracle(const relational::Structure& underlying);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_PAD_REACH_A_H_
