/// \file bipartite.h
/// Theorem 4.5(1): Bipartiteness is in Dyn-FO.
///
/// On top of the Theorem 4.1 spanning-forest relations, the program
/// maintains Odd(x, y): "the forest path from x to y has odd length". The
/// graph is bipartite iff every edge closes an odd forest path:
/// forall x y (E(x, y) -> Odd(x, y)). A self loop E(x, x) correctly reports
/// non-bipartite since Odd(x, x) never holds.

#ifndef DYNFO_PROGRAMS_BIPARTITE_H_
#define DYNFO_PROGRAMS_BIPARTITE_H_

#include <memory>

#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2>.
std::shared_ptr<const relational::Vocabulary> BipartiteInputVocabulary();

/// The Dyn-FO program of Theorem 4.5(1). Boolean query: "the graph is
/// bipartite". Named query "odd"(x, y).
std::shared_ptr<const dyn::DynProgram> MakeBipartiteProgram();

/// Static oracle: BFS 2-coloring.
bool BipartiteOracle(const relational::Structure& input);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_BIPARTITE_H_
