#include "programs/k_edge.h"

#include <functional>
#include <vector>

#include "fo/builder.h"
#include "graph/algorithms.h"
#include "programs/reach_u.h"

namespace dynfo::programs {

using fo::EqT;
using fo::P0;
using fo::P1;
using fo::Rel;

KEdgeEngine::KEdgeEngine(size_t universe_size, dyn::EngineOptions options)
    : engine_(MakeReachUProgram(), universe_size, options),
      connected_query_(EqT(P0(), P1()) || Rel("PV", {P0(), P1(), P0()})) {}

void KEdgeEngine::Apply(const relational::Request& request) { engine_.Apply(request); }

bool KEdgeEngine::Connected(const dyn::Engine& engine, relational::Element x,
                            relational::Element y) const {
  return engine.QuerySentence(connected_query_, {x, y});
}

bool KEdgeEngine::Query(relational::Element x, relational::Element y, int k) const {
  DYNFO_CHECK(k >= 1);
  if (!Connected(engine_, x, y)) return false;
  if (k == 1) return true;

  // Candidate cut edges: the current edge set, one orientation each (self
  // loops never separate anything).
  std::vector<relational::Tuple> edges;
  for (const relational::Tuple& t : engine_.data().relation("E")) {
    if (t[0] < t[1]) edges.push_back(t);
  }

  // Universally quantify over (k-1)-subsets; compose the FO delete update
  // per chosen edge on a scratch engine.
  std::vector<size_t> chosen;
  std::function<bool(size_t, size_t)> survives = [&](size_t start,
                                                     size_t remaining) -> bool {
    if (remaining == 0) {
      dyn::Engine scratch = engine_;  // copy of the full data structure
      for (size_t index : chosen) {
        scratch.Apply(relational::Request::Delete("E", edges[index]));
      }
      return Connected(scratch, x, y);
    }
    for (size_t i = start; i + remaining <= edges.size() + 1 && i < edges.size(); ++i) {
      chosen.push_back(i);
      bool ok = survives(i + 1, remaining - 1);
      chosen.pop_back();
      if (!ok) return false;
    }
    return true;
  };
  return survives(0, static_cast<size_t>(k - 1));
}

bool KEdgeOracle(const relational::Structure& input, relational::Element x,
                 relational::Element y, int k) {
  graph::UndirectedGraph g = graph::UndirectedGraph::FromRelation(
      input.relation("E"), input.universe_size());
  return graph::KEdgeConnected(g, x, y, k);
}

}  // namespace dynfo::programs
