#include "programs/registry.h"

#include "dynfo/workload.h"
#include "fo/builder.h"
#include "programs/bipartite.h"
#include "programs/dyck.h"
#include "programs/lca.h"
#include "programs/matching.h"
#include "programs/msf.h"
#include "programs/multiplication.h"
#include "programs/pad_reach_a.h"
#include "programs/parity.h"
#include "programs/reach_acyclic.h"
#include "programs/reach_semidynamic.h"
#include "programs/reach_u.h"
#include "programs/reach_u2.h"
#include "programs/transitive_reduction.h"
#include "reductions/pad.h"

namespace dynfo::programs {

namespace {

relational::RequestSequence GraphChurn(
    std::shared_ptr<const relational::Vocabulary> vocab, size_t n, uint64_t seed,
    bool undirected, bool acyclic, bool forest, double insert_fraction = 0.6) {
  dyn::GraphWorkloadOptions options;
  options.num_requests = 60;
  options.seed = seed;
  options.undirected = undirected;
  options.preserve_acyclic = acyclic;
  options.forest_shape = forest;
  options.insert_fraction = insert_fraction;
  options.set_fraction = vocab->num_constants() > 0 ? 0.05 : 0.0;
  return dyn::MakeGraphWorkload(*vocab, "E", n, options);
}

/// Parity's definable-change workload: insert the prefix {x : x <= k} not
/// yet in M, then delete the suffix {x : M(x) & j <= x}. The guards (not
/// M(x) on insert, M(x) on delete) keep each expanded request a genuine
/// change, matching the paper's absent-insert/present-delete request model.
std::vector<dyn::DefinableChange> ParityDefinableChanges(size_t n, uint64_t seed) {
  using namespace fo;  // NOLINT(build/namespaces) — formula DSL
  const relational::Element k =
      static_cast<relational::Element>(seed % n);
  const relational::Element j =
      static_cast<relational::Element>((seed / 2) % n);
  Term x = V("x");
  std::vector<dyn::DefinableChange> out;
  out.push_back({relational::RequestKind::kInsert, "M", {"x"},
                 !Rel("M", {x}) && LeT(x, N(k))});
  out.push_back({relational::RequestKind::kDelete, "M", {"x"},
                 Rel("M", {x}) && LeT(N(j), x)});
  return out;
}

/// reach_u's definable-change workload: isolate vertex 0 by deleting every
/// incident edge, then insert the missing edges of the clique on {0..k}
/// (canonical x < y orientation, matching the generated graph workloads).
std::vector<dyn::DefinableChange> ReachUDefinableChanges(size_t n, uint64_t seed) {
  using namespace fo;  // NOLINT(build/namespaces) — formula DSL
  const relational::Element k =
      static_cast<relational::Element>(2 + seed % (n > 3 ? n - 3 : 1));
  Term x = V("x"), y = V("y");
  std::vector<dyn::DefinableChange> out;
  out.push_back({relational::RequestKind::kDelete, "E", {"x", "y"},
                 Rel("E", {x, y}) && (EqT(x, N(0)) || EqT(y, N(0)))});
  out.push_back({relational::RequestKind::kInsert, "E", {"x", "y"},
                 !Rel("E", {x, y}) && LtT(x, y) && LeT(y, N(k))});
  return out;
}

std::vector<ProgramScenario> BuildScenarios() {
  std::vector<ProgramScenario> out;
  out.push_back({"parity", [] { return MakeParityProgram(); },
                 [](size_t n, uint64_t seed) {
                   dyn::GenericWorkloadOptions o;
                   o.num_requests = 80;
                   o.seed = seed;
                   return dyn::MakeGenericWorkload(*ParityInputVocabulary(), n, o);
                 },
                 9, nullptr, ParityDefinableChanges});
  out.push_back({"reach_u", [] { return MakeReachUProgram(); },
                 [](size_t n, uint64_t seed) {
                   return GraphChurn(ReachUInputVocabulary(), n, seed, true, false,
                                     false);
                 },
                 8, nullptr, ReachUDefinableChanges});
  out.push_back({"reach_u2", [] { return MakeReachU2Program(); },
                 [](size_t n, uint64_t seed) {
                   return GraphChurn(ReachU2InputVocabulary(), n, seed, true, false,
                                     false);
                 },
                 8, nullptr, nullptr});
  out.push_back({"reach_acyclic", [] { return MakeReachAcyclicProgram(); },
                 [](size_t n, uint64_t seed) {
                   return GraphChurn(ReachAcyclicInputVocabulary(), n, seed, false,
                                     true, false);
                 },
                 8, nullptr, nullptr});
  out.push_back({"transitive_reduction",
                 [] { return MakeTransitiveReductionProgram(); },
                 [](size_t n, uint64_t seed) {
                   return GraphChurn(TransitiveReductionInputVocabulary(), n, seed,
                                     false, true, false);
                 },
                 8, nullptr, nullptr});
  out.push_back({"bipartite", [] { return MakeBipartiteProgram(); },
                 [](size_t n, uint64_t seed) {
                   return GraphChurn(BipartiteInputVocabulary(), n, seed, true,
                                     false, false);
                 },
                 8, nullptr, nullptr});
  out.push_back({"lca", [] { return MakeLcaProgram(); },
                 [](size_t n, uint64_t seed) {
                   return GraphChurn(LcaInputVocabulary(), n, seed, false, false,
                                     true);
                 },
                 8, nullptr, nullptr});
  out.push_back({"matching", [] { return MakeMatchingProgram(); },
                 [](size_t n, uint64_t seed) {
                   return GraphChurn(MatchingInputVocabulary(), n, seed, true, false,
                                     false);
                 },
                 8, nullptr, nullptr});
  out.push_back({"msf", [] { return MakeMsfProgram(); },
                 [](size_t n, uint64_t seed) {
                   dyn::WeightedGraphWorkloadOptions o;
                   o.num_requests = 50;
                   o.seed = seed;
                   return dyn::MakeWeightedGraphWorkload(*MsfInputVocabulary(), "W",
                                                         n, o);
                 },
                 8, nullptr, nullptr});
  out.push_back({"dyck", [] { return MakeDyckProgram(2, 12); },
                 [](size_t n, uint64_t seed) {
                   dyn::SlotStringWorkloadOptions o;
                   o.num_requests = 60;
                   o.seed = seed;
                   o.max_chars = n / 2 - 2;
                   return dyn::MakeSlotStringWorkload(
                       {"Open_0", "Open_1", "Close_0", "Close_1"}, n, o);
                 },
                 12, nullptr, nullptr});
  out.push_back({"pad_reach_a", [] { return MakePadReachAProgram(); },
                 [](size_t n, uint64_t seed) {
                   dyn::GraphWorkloadOptions o;
                   o.num_requests = 6;
                   o.seed = seed;
                   relational::RequestSequence underlying = dyn::MakeGraphWorkload(
                       *ReachAUnderlyingVocabulary(), "E", n, o);
                   relational::RequestSequence padded;
                   for (const relational::Request& r : underlying) {
                     for (const relational::Request& p :
                          reductions::PadRequests(r, n)) {
                       padded.push_back(p);
                     }
                   }
                   return padded;
                 },
                 6, nullptr, nullptr});
  out.push_back({"multiplication", [] { return MakeMultiplicationProgram(false); },
                 [](size_t n, uint64_t seed) {
                   dyn::GenericWorkloadOptions o;
                   o.num_requests = 40;
                   o.seed = seed;
                   o.set_fraction = 0.0;
                   return dyn::MakeGenericWorkload(*MultiplicationInputVocabulary(),
                                                   n, o);
                 },
                 8, InstallPlusRelation, nullptr});
  out.push_back({"reach_semidynamic", [] { return MakeReachSemiDynamicProgram(); },
                 [](size_t n, uint64_t seed) {
                   return GraphChurn(ReachSemiDynamicInputVocabulary(), n, seed,
                                     true, false, false, /*insert_fraction=*/1.0);
                 },
                 8, nullptr, nullptr});
  return out;
}

}  // namespace

const std::vector<ProgramScenario>& AllScenarios() {
  static const std::vector<ProgramScenario>* scenarios =
      new std::vector<ProgramScenario>(BuildScenarios());
  return *scenarios;
}

}  // namespace dynfo::programs
