/// \file reach_u2.h
/// REACH_u with binary auxiliary relations — the [DS95] improvement the
/// paper reports after Theorem 4.1: "the arity three construction of PV can
/// be replaced by a directed version of F and its transitive closure"
/// (and arity one provably does not suffice).
///
/// Auxiliary relations:
///   DF(x, y) — x's parent in a rooted orientation of the spanning forest;
///   DP(x, y) — y is an ancestor of x (the reflexive transitive closure of
///              DF; initialized to the identity).
///
/// Connectivity is "sharing an ancestor": Conn(x, y) ≡ ∃r (DP(x, r) ∧
/// DP(y, r)). Linking two trees re-roots a's tree at a by flipping the
/// DF edges along a's ancestor path (first-order: the path is exactly
/// {x : DP(a, x)}) and hangs a under b; the rerooted ancestor sets are the
/// tree paths x..a, expressed as
///   OnPath(x, a, y) ≡ (DP(x, y) ∨ DP(a, y)) ∧
///                     ∀z ((DP(x, z) ∧ DP(a, z)) → DP(y, z)).
/// Deleting a tree edge detaches the child's subtree (whose orientation is
/// already correct), then splices the lexicographically least surviving
/// crossing edge back in by the same reroot-and-hang step over the
/// post-split relations (sequenced with `let` temporaries).

#ifndef DYNFO_PROGRAMS_REACH_U2_H_
#define DYNFO_PROGRAMS_REACH_U2_H_

#include <memory>

#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2; s, t> (same as REACH_u).
std::shared_ptr<const relational::Vocabulary> ReachU2InputVocabulary();

/// The arity-2 Dyn-FO program for undirected reachability.
/// Boolean query: "s and t are connected". Named queries: "connected",
/// "parent" (the DF relation), "ancestor" (the DP relation).
std::shared_ptr<const dyn::DynProgram> MakeReachU2Program();

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_REACH_U2_H_
