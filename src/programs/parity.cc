#include "programs/parity.h"

#include "fo/builder.h"

namespace dynfo::programs {

using fo::F;
using fo::P0;
using fo::Rel;
using relational::RequestKind;

std::shared_ptr<const relational::Vocabulary> ParityInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("M", 1);
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeParityProgram() {
  auto input = ParityInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  data->AddRelation("M", 1);  // mirrored input ("we also remember the input string")
  data->AddRelation("B", 0);  // the paper's boolean b

  auto program = std::make_shared<dyn::DynProgram>("parity", input, data);

  F b = Rel("B", {});
  F m_at_a = Rel("M", {P0()});

  // ins(a, M): b' = (b & M(a)) | (!b & !M(a)) — reading M *before* the
  // update, exactly as in the paper (a no-op insert leaves b unchanged).
  program->AddUpdate(RequestKind::kInsert, "M",
                     {"B", {}, (b && m_at_a) || (!b && !m_at_a)});
  // del(a, M): b' = (b & !M(a)) | (!b & M(a)).
  program->AddUpdate(RequestKind::kDelete, "M",
                     {"B", {}, (b && !m_at_a) || (!b && m_at_a)});
  // M itself is auto-mirrored by the engine.

  program->SetBoolQuery(Rel("B", {}));
  return program;
}

bool ParityOracle(const relational::Structure& input) {
  return input.relation("M").size() % 2 == 1;
}

}  // namespace dynfo::programs
