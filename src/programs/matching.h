/// \file matching.h
/// Theorem 4.5(3): Maximal Matching is in Dyn-FO.
///
/// The program maintains a maximal (not maximum) matching Match(x, y) under
/// edge churn. Inserts greedily match the new edge when both endpoints are
/// free; deleting a matched edge frees its endpoints, and each is re-matched
/// to its minimum free neighbor (first a, then b — sequenced through the
/// paper's temporary relations, modeled as `let` rules). The maintained
/// matching is history-dependent (not memoryless), which the paper permits.

#ifndef DYNFO_PROGRAMS_MATCHING_H_
#define DYNFO_PROGRAMS_MATCHING_H_

#include <memory>
#include <string>

#include "dynfo/engine.h"
#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2>.
std::shared_ptr<const relational::Vocabulary> MatchingInputVocabulary();

/// The Dyn-FO program of Theorem 4.5(3). Boolean query: "the matching is
/// nonempty". Named query "match"(x, y). Correctness is the *maximality
/// invariant*, checked by tests via graph::IsMaximalMatching.
std::shared_ptr<const dyn::DynProgram> MakeMatchingProgram();

/// Invariant oracle: the engine's Match relation is a maximal matching of
/// the input graph. Returns an empty string when satisfied.
std::string MatchingInvariant(const relational::Structure& input,
                              const dyn::Engine& engine);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_MATCHING_H_
