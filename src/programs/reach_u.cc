#include "programs/reach_u.h"

#include "fo/builder.h"
#include "graph/algorithms.h"
#include "programs/forest_rules.h"

namespace dynfo::programs {

using fo::C;
using fo::Rel;
using fo::Term;
using fo::V;

std::shared_ptr<const relational::Vocabulary> ReachUInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeReachUProgram() {
  auto input = ReachUInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  DeclareForestData(data.get());
  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("reach_u", input, data);
  AddForestRules(program.get());

  Term x = V("x"), y = V("y");
  program->SetBoolQuery(SameTree(C("s"), C("t")));
  program->AddNamedQuery("connected", {{"x", "y"}, SameTree(x, y)});
  program->AddNamedQuery("forest", {{"x", "y"}, Rel("F", {x, y})});
  return program;
}

bool ReachUOracle(const relational::Structure& input) {
  graph::UndirectedGraph g = graph::UndirectedGraph::FromRelation(
      input.relation("E"), input.universe_size());
  return graph::Reachable(g, input.constant("s"), input.constant("t"));
}

}  // namespace dynfo::programs
