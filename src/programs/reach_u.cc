#include "programs/reach_u.h"

#include <deque>
#include <string>
#include <vector>

#include "fo/builder.h"
#include "graph/algorithms.h"
#include "programs/forest_rules.h"

namespace dynfo::programs {

using fo::C;
using fo::Rel;
using fo::Term;
using fo::V;

std::shared_ptr<const relational::Vocabulary> ReachUInputVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("E", 2);
  vocabulary->AddConstant("s");
  vocabulary->AddConstant("t");
  return vocabulary;
}

std::shared_ptr<const dyn::DynProgram> MakeReachUProgram() {
  auto input = ReachUInputVocabulary();
  auto data = std::make_shared<relational::Vocabulary>();
  DeclareForestData(data.get());
  data->AddConstant("s");
  data->AddConstant("t");

  auto program = std::make_shared<dyn::DynProgram>("reach_u", input, data);
  AddForestRules(program.get());

  Term x = V("x"), y = V("y");
  program->SetBoolQuery(SameTree(C("s"), C("t")));
  program->AddNamedQuery("connected", {{"x", "y"}, SameTree(x, y)});
  program->AddNamedQuery("forest", {{"x", "y"}, Rel("F", {x, y})});
  return program;
}

bool ReachUOracle(const relational::Structure& input) {
  graph::UndirectedGraph g = graph::UndirectedGraph::FromRelation(
      input.relation("E"), input.universe_size());
  return graph::Reachable(g, input.constant("s"), input.constant("t"));
}

std::string ReachUInvariant(const relational::Structure& input,
                            const dyn::Engine& engine) {
  using graph::UndirectedGraph;
  using graph::Vertex;
  const size_t n = input.universe_size();
  const relational::Relation& e_rel = engine.data().relation("E");
  const relational::Relation& f_rel = engine.data().relation("F");
  const relational::Relation& pv = engine.data().relation("PV");

  // Mirrored E must match the input exactly (both orientations).
  for (const relational::Tuple& t : input.relation("E")) {
    if (!e_rel.Contains(t) || !e_rel.Contains({t[1], t[0]})) {
      return "mirrored E lost tuple " + t.ToString();
    }
  }
  for (const relational::Tuple& t : e_rel) {
    if (!input.relation("E").Contains(t) &&
        !input.relation("E").Contains({t[1], t[0]})) {
      return "mirrored E has phantom tuple " + t.ToString();
    }
  }

  UndirectedGraph g = UndirectedGraph::FromRelation(input.relation("E"), n);
  UndirectedGraph forest(n);
  for (const relational::Tuple& t : f_rel) {
    if (!f_rel.Contains({t[1], t[0]})) return "F not symmetric at " + t.ToString();
    if (!e_rel.Contains(t)) return "forest edge not in E: " + t.ToString();
    forest.AddEdge(t[0], t[1]);
  }
  // Forest: #edges = n - #components of F, and F-components == E-components.
  std::vector<Vertex> g_comp = graph::ConnectedComponents(g);
  std::vector<Vertex> f_comp = graph::ConnectedComponents(forest);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex w = v + 1; w < n; ++w) {
      bool same_g = g_comp[v] == g_comp[w];
      bool same_f = f_comp[v] == f_comp[w];
      if (same_g != same_f) {
        return "forest does not span: vertices " + std::to_string(v) + "," +
               std::to_string(w);
      }
    }
  }
  if (forest.num_edges() + graph::CountComponents(forest) != n) {
    return "F contains a cycle";
  }

  // PV == forest paths. BFS in the forest from each x recording parents.
  for (Vertex x = 0; x < n; ++x) {
    std::vector<int> parent(n, -1);
    std::deque<Vertex> frontier{x};
    parent[x] = static_cast<int>(x);
    while (!frontier.empty()) {
      Vertex u = frontier.front();
      frontier.pop_front();
      for (Vertex v : forest.Neighbors(u)) {
        if (parent[v] < 0) {
          parent[v] = static_cast<int>(u);
          frontier.push_back(v);
        }
      }
    }
    for (Vertex y = 0; y < n; ++y) {
      std::vector<bool> on_path(n, false);
      if (parent[y] >= 0) {
        Vertex cursor = y;
        on_path[cursor] = true;
        while (cursor != x) {
          cursor = static_cast<Vertex>(parent[cursor]);
          on_path[cursor] = true;
        }
      }
      for (Vertex z = 0; z < n; ++z) {
        bool expected = parent[y] >= 0 && on_path[z];
        bool actual = pv.Contains({x, y, z});
        if (expected != actual) {
          return "PV(" + std::to_string(x) + "," + std::to_string(y) + "," +
                 std::to_string(z) + ") = " + (actual ? "true" : "false") +
                 ", expected " + (expected ? "true" : "false");
        }
      }
    }
  }
  return "";
}

}  // namespace dynfo::programs
