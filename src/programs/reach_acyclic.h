/// \file reach_acyclic.h
/// Theorem 4.2 ([DS93]): REACH restricted to acyclic graphs is in Dyn-FO.
///
/// The program maintains the full path (transitive-closure) relation
/// P(x, y). Inserts extend paths through the new edge; deletes use the
/// paper's "last vertex from which a is reachable" argument, which is where
/// acyclicity is essential. The workload/oracle contract: every insert
/// preserves acyclicity (the paper: "the inserts are assumed to always
/// preserve acyclicity").

#ifndef DYNFO_PROGRAMS_REACH_ACYCLIC_H_
#define DYNFO_PROGRAMS_REACH_ACYCLIC_H_

#include <memory>

#include "dynfo/program.h"
#include "relational/structure.h"

namespace dynfo::programs {

/// The input vocabulary <E^2; s, t>.
std::shared_ptr<const relational::Vocabulary> ReachAcyclicInputVocabulary();

/// The Dyn-FO program of Theorem 4.2. P is maintained *reflexively*
/// (P(x, x) for all x — "there is a path from x to x" of length 0), matching
/// the formulas' use of P(x, a) with x = a.
///
/// Boolean query: P(s, t). Named query "path"(x, y).
std::shared_ptr<const dyn::DynProgram> MakeReachAcyclicProgram();

/// Static oracle: directed BFS.
bool ReachAcyclicOracle(const relational::Structure& input);

}  // namespace dynfo::programs

#endif  // DYNFO_PROGRAMS_REACH_ACYCLIC_H_
