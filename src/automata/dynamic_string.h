/// \file dynamic_string.h
/// Theorem 4.6's data structure: a complete binary tree of composed
/// transition maps over an editable string.
///
/// Every regular language is in Dyn-FO: the auxiliary structure stores, for
/// each node of a complete binary tree over the n positions, the transition
/// map delta*(., w_v) of the subword below it; a character edit changes only
/// the log n maps on the leaf-to-root path, and membership is
/// "root map applied to the start state lands in F".
///
/// The paper's update formula *guesses* the O(log n) changed bits with O(1)
/// quantified variables and *verifies* them by asserting exactly the local
/// consistency f_v = f_left ∘ f_right at every node. This class maintains
/// the same structure explicitly (the guessed certificate is the path it
/// recomputes); VerifyLocalConsistency() is the paper's verification
/// predicate, and tests assert it after every edit. DESIGN.md discusses why
/// the literal ∃-formula is not evaluated naively (its satisfying-set search
/// is n^{Θ(1)} with an impractical exponent).
///
/// Unoccupied positions hold the identity map (the empty string), so the
/// structure also models insert/delete of characters at fixed slots.

#ifndef DYNFO_AUTOMATA_DYNAMIC_STRING_H_
#define DYNFO_AUTOMATA_DYNAMIC_STRING_H_

#include <optional>
#include <vector>

#include "automata/dfa.h"

namespace dynfo::automata {

class DynamicRegularLanguage {
 public:
  /// Capacity is rounded up to a power of two.
  DynamicRegularLanguage(Dfa dfa, size_t capacity);

  size_t capacity() const { return leaves_; }
  const Dfa& dfa() const { return dfa_; }

  /// Sets or clears the character at a position; returns the number of tree
  /// nodes recomputed (the path length, O(log n)).
  size_t SetChar(size_t position, std::optional<Symbol> symbol);

  std::optional<Symbol> CharAt(size_t position) const;

  /// Membership of the current string (occupied slots in order).
  bool Accepts() const;

  /// The root's transition map applied to `q`.
  State RunFrom(State q) const;

  /// The paper's verification predicate: every internal node equals the
  /// composition of its children, and every leaf matches its character.
  /// Returns true iff the certificate is locally consistent everywhere.
  bool VerifyLocalConsistency() const;

  /// Total nodes recomputed since construction (work counter for benches).
  uint64_t nodes_recomputed() const { return nodes_recomputed_; }

  /// Read access to the stored maps (1-indexed heap; 1 is the root, node v's
  /// children are 2v and 2v+1, leaves are leaves()..2*leaves()-1). Used by
  /// the FO encoding in tree_fo.h.
  const TransitionMap& NodeMap(size_t node) const {
    DYNFO_CHECK(node >= 1 && node < tree_.size());
    return tree_[node];
  }

 private:
  TransitionMap LeafMap(size_t position) const;

  Dfa dfa_;
  size_t leaves_;                          // power of two
  std::vector<std::optional<Symbol>> chars_;
  std::vector<TransitionMap> tree_;        // 1-indexed heap; [1] is the root
  uint64_t nodes_recomputed_ = 0;
};

}  // namespace dynfo::automata

#endif  // DYNFO_AUTOMATA_DYNAMIC_STRING_H_
