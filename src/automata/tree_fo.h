/// \file tree_fo.h
/// Theorem 4.6's verification predicate as literal first-order formulas.
///
/// The paper's Dyn-FO program for a regular language L(D) stores the
/// function-composition tree as a relation and, on each update,
/// existentially guesses the O(log n) changed maps (packed into O(1)
/// variables) while *universally verifying local consistency*:
/// every internal node's map is the composition of its children's.
///
/// This header provides the pieces needed to exhibit that formula as an
/// executable object: an encoding of a DynamicRegularLanguage's tree into a
/// finite structure — Map(v, q, q') over node ids 1..2L-1 — and the two
/// first-order sentences of the construction:
///   * TreeConsistencySentence: the certificate check (children indices are
///     arithmetic on node ids: left = v + v via the BIT-defined Plus
///     formula, right = left + 1 via the order-defined successor);
///   * TreeAcceptSentence: "the root map sends the start state into F".
///
/// Tests evaluate both with the generic FO evaluators: consistency holds
/// exactly for honestly-maintained trees (and is falsified by corrupting a
/// single Map tuple), and acceptance agrees with the data structure. The
/// *update* formula itself — guess + verify — is not evaluated naively; see
/// DESIGN.md for the cost analysis of why, and for how this pair of
/// sentences covers the construction's logical content.

#ifndef DYNFO_AUTOMATA_TREE_FO_H_
#define DYNFO_AUTOMATA_TREE_FO_H_

#include <memory>

#include "automata/dynamic_string.h"
#include "fo/formula.h"
#include "relational/structure.h"

namespace dynfo::automata {

/// The vocabulary <Map^3, Acc^1; start>.
std::shared_ptr<const relational::Vocabulary> TreeVocabulary();

/// Encodes the tree: universe {0..universe_size-1} must cover node ids
/// 1..2L-1 and the DFA's states. Map(v, q, q') iff node v's map sends q to
/// q'; Acc(q) iff q is accepting; constant start = the DFA's start state.
relational::Structure EncodeTree(const DynamicRegularLanguage& dynamic,
                                 size_t universe_size);

/// The local-consistency sentence for a tree with `leaves` leaves (a power
/// of two) over a DFA with `num_states` states.
fo::FormulaPtr TreeConsistencySentence(size_t leaves, int num_states);

/// "The string is in L(D)": exists q (Map(1, start, q) & Acc(q)).
fo::FormulaPtr TreeAcceptSentence();

}  // namespace dynfo::automata

#endif  // DYNFO_AUTOMATA_TREE_FO_H_
