#include "automata/dynamic_string.h"

namespace dynfo::automata {

DynamicRegularLanguage::DynamicRegularLanguage(Dfa dfa, size_t capacity)
    : dfa_(std::move(dfa)) {
  DYNFO_CHECK(dfa_.Valid());
  DYNFO_CHECK(capacity >= 1);
  leaves_ = 1;
  while (leaves_ < capacity) leaves_ *= 2;
  chars_.assign(leaves_, std::nullopt);
  tree_.assign(2 * leaves_, TransitionMap::Identity(dfa_.num_states));
}

TransitionMap DynamicRegularLanguage::LeafMap(size_t position) const {
  if (!chars_[position].has_value()) return TransitionMap::Identity(dfa_.num_states);
  return dfa_.MapOf(*chars_[position]);
}

size_t DynamicRegularLanguage::SetChar(size_t position, std::optional<Symbol> symbol) {
  DYNFO_CHECK(position < leaves_);
  if (symbol.has_value()) {
    DYNFO_CHECK(*symbol < dfa_.num_symbols);
  }
  chars_[position] = symbol;
  size_t node = leaves_ + position;
  tree_[node] = LeafMap(position);
  size_t touched = 1;
  // Recompute the log n ancestors — the set the paper's formula guesses.
  for (node /= 2; node >= 1; node /= 2) {
    tree_[node] = tree_[2 * node].Then(tree_[2 * node + 1]);
    ++touched;
  }
  nodes_recomputed_ += touched;
  return touched;
}

std::optional<Symbol> DynamicRegularLanguage::CharAt(size_t position) const {
  DYNFO_CHECK(position < leaves_);
  return chars_[position];
}

State DynamicRegularLanguage::RunFrom(State q) const { return tree_[1].Apply(q); }

bool DynamicRegularLanguage::Accepts() const {
  return dfa_.accepting[RunFrom(dfa_.start)];
}

bool DynamicRegularLanguage::VerifyLocalConsistency() const {
  for (size_t position = 0; position < leaves_; ++position) {
    if (tree_[leaves_ + position] != LeafMap(position)) return false;
  }
  for (size_t node = leaves_ - 1; node >= 1; --node) {
    if (tree_[node] != tree_[2 * node].Then(tree_[2 * node + 1])) return false;
  }
  return true;
}

}  // namespace dynfo::automata
