#include "automata/regex.h"

#include <map>
#include <set>
#include <vector>

namespace dynfo::automata {

namespace {

/// Thompson NFA: states with epsilon edges and at most one labeled edge.
struct Nfa {
  struct NfaState {
    int labeled_to = -1;
    Symbol label = 0;
    std::vector<int> epsilon;
  };
  std::vector<NfaState> states;
  int NewState() {
    states.emplace_back();
    return static_cast<int>(states.size()) - 1;
  }
};

/// A fragment with one entry and one exit state.
struct Fragment {
  int entry;
  int exit;
};

class Parser {
 public:
  Parser(const std::string& pattern, int alphabet_size, Nfa* nfa)
      : pattern_(pattern), alphabet_size_(alphabet_size), nfa_(nfa) {}

  core::Result<Fragment> Parse() {
    core::Result<Fragment> result = ParseAlt();
    if (!result.ok()) return result;
    if (position_ != pattern_.size()) {
      return core::Status::Error("unexpected '" + std::string(1, pattern_[position_]) +
                                 "' at offset " + std::to_string(position_));
    }
    return result;
  }

 private:
  bool AtEnd() const { return position_ >= pattern_.size(); }
  char Peek() const { return pattern_[position_]; }

  Fragment Epsilon() {
    Fragment f{nfa_->NewState(), nfa_->NewState()};
    nfa_->states[f.entry].epsilon.push_back(f.exit);
    return f;
  }

  core::Result<Fragment> ParseAlt() {
    core::Result<Fragment> first = ParseConcat();
    if (!first.ok()) return first;
    Fragment acc = first.value();
    while (!AtEnd() && Peek() == '|') {
      ++position_;
      core::Result<Fragment> next = ParseConcat();
      if (!next.ok()) return next;
      Fragment alt{nfa_->NewState(), nfa_->NewState()};
      nfa_->states[alt.entry].epsilon = {acc.entry, next.value().entry};
      nfa_->states[acc.exit].epsilon.push_back(alt.exit);
      nfa_->states[next.value().exit].epsilon.push_back(alt.exit);
      acc = alt;
    }
    return acc;
  }

  core::Result<Fragment> ParseConcat() {
    // Empty alternatives denote the empty string.
    if (AtEnd() || Peek() == '|' || Peek() == ')') return Epsilon();
    core::Result<Fragment> first = ParseRepeat();
    if (!first.ok()) return first;
    Fragment acc = first.value();
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      core::Result<Fragment> next = ParseRepeat();
      if (!next.ok()) return next;
      nfa_->states[acc.exit].epsilon.push_back(next.value().entry);
      acc = Fragment{acc.entry, next.value().exit};
    }
    return acc;
  }

  core::Result<Fragment> ParseRepeat() {
    core::Result<Fragment> base = ParsePrimary();
    if (!base.ok()) return base;
    Fragment acc = base.value();
    while (!AtEnd() && (Peek() == '*' || Peek() == '+' || Peek() == '?')) {
      char op = Peek();
      ++position_;
      Fragment wrapped{nfa_->NewState(), nfa_->NewState()};
      nfa_->states[wrapped.entry].epsilon.push_back(acc.entry);
      nfa_->states[acc.exit].epsilon.push_back(wrapped.exit);
      if (op == '*' || op == '?') {
        nfa_->states[wrapped.entry].epsilon.push_back(wrapped.exit);
      }
      if (op == '*' || op == '+') {
        nfa_->states[acc.exit].epsilon.push_back(acc.entry);
      }
      acc = wrapped;
    }
    return acc;
  }

  core::Result<Fragment> ParsePrimary() {
    if (AtEnd()) return core::Status::Error("unexpected end of pattern");
    char c = Peek();
    if (c == '(') {
      ++position_;
      core::Result<Fragment> inner = ParseAlt();
      if (!inner.ok()) return inner;
      if (AtEnd() || Peek() != ')') return core::Status::Error("missing ')'");
      ++position_;
      return inner;
    }
    if (c < 'a' || c >= 'a' + alphabet_size_) {
      return core::Status::Error("literal '" + std::string(1, c) +
                                 "' outside the alphabet");
    }
    ++position_;
    Fragment f{nfa_->NewState(), nfa_->NewState()};
    nfa_->states[f.entry].labeled_to = f.exit;
    nfa_->states[f.entry].label = static_cast<Symbol>(c - 'a');
    return f;
  }

  const std::string& pattern_;
  int alphabet_size_;
  Nfa* nfa_;
  size_t position_ = 0;
};

std::set<int> EpsilonClosure(const Nfa& nfa, std::set<int> states) {
  std::vector<int> frontier(states.begin(), states.end());
  while (!frontier.empty()) {
    int s = frontier.back();
    frontier.pop_back();
    for (int next : nfa.states[s].epsilon) {
      if (states.insert(next).second) frontier.push_back(next);
    }
  }
  return states;
}

}  // namespace

core::Result<Dfa> CompileRegex(const std::string& pattern, int alphabet_size) {
  if (alphabet_size < 1 || alphabet_size > 26) {
    return core::Status::Error("alphabet size must be in [1, 26]");
  }
  Nfa nfa;
  Parser parser(pattern, alphabet_size, &nfa);
  core::Result<Fragment> fragment = parser.Parse();
  if (!fragment.ok()) return fragment.status();

  // Subset construction.
  std::map<std::set<int>, State> ids;
  std::vector<std::set<int>> subsets;
  std::vector<State> transitions;
  auto intern = [&](std::set<int> subset) -> State {
    auto [it, fresh] = ids.emplace(std::move(subset), static_cast<State>(subsets.size()));
    if (fresh) {
      DYNFO_CHECK(subsets.size() < 255) << "DFA too large (255-state cap)";
      subsets.push_back(it->first);
    }
    return it->second;
  };
  State start = intern(EpsilonClosure(nfa, {fragment.value().entry}));
  for (size_t i = 0; i < subsets.size(); ++i) {
    for (int a = 0; a < alphabet_size; ++a) {
      std::set<int> next;
      for (int s : subsets[i]) {
        const auto& state = nfa.states[s];
        if (state.labeled_to >= 0 && state.label == a) next.insert(state.labeled_to);
      }
      transitions.push_back(intern(EpsilonClosure(nfa, std::move(next))));
    }
  }

  Dfa dfa;
  dfa.num_states = static_cast<int>(subsets.size());
  dfa.num_symbols = alphabet_size;
  dfa.start = start;
  dfa.accepting.resize(subsets.size());
  for (size_t i = 0; i < subsets.size(); ++i) {
    dfa.accepting[i] = subsets[i].count(fragment.value().exit) > 0;
  }
  dfa.transitions = std::move(transitions);
  DYNFO_CHECK(dfa.Valid());
  return dfa;
}

}  // namespace dynfo::automata
