#include "automata/tree_fo.h"

#include "arith/bit_formulas.h"
#include "fo/builder.h"

namespace dynfo::automata {

using fo::EqT;
using fo::Exists;
using fo::F;
using fo::Forall;
using fo::Iff;
using fo::Implies;
using fo::LeT;
using fo::LtT;
using fo::N;
using fo::Rel;
using fo::Term;
using fo::V;

std::shared_ptr<const relational::Vocabulary> TreeVocabulary() {
  auto vocabulary = std::make_shared<relational::Vocabulary>();
  vocabulary->AddRelation("Map", 3);
  vocabulary->AddRelation("Acc", 1);
  vocabulary->AddConstant("start");
  return vocabulary;
}

relational::Structure EncodeTree(const DynamicRegularLanguage& dynamic,
                                 size_t universe_size) {
  const size_t leaves = dynamic.capacity();
  const int states = dynamic.dfa().num_states;
  DYNFO_CHECK(universe_size >= 2 * leaves)
      << "universe must cover node ids 1..2L-1";
  DYNFO_CHECK(universe_size > static_cast<size_t>(states));

  relational::Structure out(TreeVocabulary(), universe_size);
  relational::Relation& map = out.relation("Map");
  for (size_t node = 1; node < 2 * leaves; ++node) {
    const TransitionMap& f = dynamic.NodeMap(node);
    for (int q = 0; q < states; ++q) {
      map.Insert({static_cast<relational::Element>(node),
                  static_cast<relational::Element>(q),
                  static_cast<relational::Element>(f.Apply(static_cast<State>(q)))});
    }
  }
  for (int q = 0; q < states; ++q) {
    if (dynamic.dfa().accepting[q]) {
      out.relation("Acc").Insert({static_cast<relational::Element>(q)});
    }
  }
  out.set_constant("start", dynamic.dfa().start);
  return out;
}

fo::FormulaPtr TreeConsistencySentence(size_t leaves, int num_states) {
  Term v = V("v"), q = V("q"), qq = V("qq"), l = V("l"), r = V("r"), m = V("m");
  // Composition: node v's map sends q to qq iff the left child sends q to
  // some m and the right child sends m to qq. Child indices are first-order
  // arithmetic on node ids: l = v + v (BIT carry-lookahead), r = l + 1
  // (order-theoretic successor).
  F rhs = Exists({"l", "r", "m"},
                 arith::PlusFormula(v, v, l) && arith::SuccFormula(l, r) &&
                     Rel("Map", {l, q, m}) && Rel("Map", {r, m, qq}));
  F internal = LeT(N(1), v) && LtT(v, N(static_cast<relational::Element>(leaves)));
  F states_ok = LtT(q, N(static_cast<relational::Element>(num_states))) &&
                LtT(qq, N(static_cast<relational::Element>(num_states)));
  return Forall({"v", "q", "qq"},
                Implies(internal && states_ok, Iff(Rel("Map", {v, q, qq}), rhs)));
}

fo::FormulaPtr TreeAcceptSentence() {
  Term q = V("q");
  return Exists({"q"}, Rel("Map", {N(1), fo::C("start"), q}) && Rel("Acc", {q}));
}

}  // namespace dynfo::automata
