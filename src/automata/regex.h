/// \file regex.h
/// Regular expressions -> Thompson NFA -> subset-construction DFA.
///
/// A small, self-contained pipeline so examples can monitor arbitrary
/// regular languages (Theorem 4.6 holds for every regular language; the
/// DFA is the finite ingredient its construction stores at tree leaves).
///
/// Grammar (alphabet 'a'..'z', mapped to symbols 0..25):
///   regex  := alt
///   alt    := concat ('|' concat)*
///   concat := repeat+
///   repeat := primary ('*' | '+' | '?')*
///   primary:= literal | '(' alt ')'

#ifndef DYNFO_AUTOMATA_REGEX_H_
#define DYNFO_AUTOMATA_REGEX_H_

#include <string>

#include "automata/dfa.h"
#include "core/status.h"

namespace dynfo::automata {

/// Compiles a regex to a complete DFA over an alphabet of `alphabet_size`
/// letters ('a' upward). Fails on syntax errors or out-of-alphabet literals.
core::Result<Dfa> CompileRegex(const std::string& pattern, int alphabet_size);

}  // namespace dynfo::automata

#endif  // DYNFO_AUTOMATA_REGEX_H_
