#include "automata/dfa.h"

namespace dynfo::automata {

TransitionMap TransitionMap::Identity(int num_states) {
  std::vector<State> image(num_states);
  for (int q = 0; q < num_states; ++q) image[q] = static_cast<State>(q);
  return TransitionMap(std::move(image));
}

TransitionMap TransitionMap::Then(const TransitionMap& after) const {
  DYNFO_CHECK(num_states() == after.num_states());
  std::vector<State> image(image_.size());
  for (size_t q = 0; q < image_.size(); ++q) image[q] = after.Apply(image_[q]);
  return TransitionMap(std::move(image));
}

std::string TransitionMap::ToString() const {
  std::string s = "[";
  for (size_t q = 0; q < image_.size(); ++q) {
    if (q > 0) s += " ";
    s += std::to_string(image_[q]);
  }
  return s + "]";
}

bool Dfa::Accepts(const std::vector<Symbol>& word) const {
  State q = start;
  for (Symbol a : word) q = Step(q, a);
  return accepting[q];
}

TransitionMap Dfa::MapOf(Symbol a) const {
  std::vector<State> image(num_states);
  for (int q = 0; q < num_states; ++q) image[q] = Step(static_cast<State>(q), a);
  return TransitionMap(std::move(image));
}

bool Dfa::Valid() const {
  if (num_states <= 0 || num_symbols <= 0) return false;
  if (accepting.size() != static_cast<size_t>(num_states)) return false;
  if (transitions.size() != static_cast<size_t>(num_states) * num_symbols) return false;
  for (State q : transitions) {
    if (q >= num_states) return false;
  }
  return start < num_states;
}

Dfa MakeParityDfa() { return MakeModKDfa(2, 1); }

Dfa MakeModKDfa(int k, int residue) {
  DYNFO_CHECK(k >= 1 && residue >= 0 && residue < k);
  Dfa dfa;
  dfa.num_states = k;
  dfa.num_symbols = 2;
  dfa.start = 0;
  dfa.accepting.assign(k, false);
  dfa.accepting[residue] = true;
  dfa.transitions.resize(static_cast<size_t>(k) * 2);
  for (int q = 0; q < k; ++q) {
    dfa.transitions[q * 2 + 0] = static_cast<State>(q);            // '0' keeps count
    dfa.transitions[q * 2 + 1] = static_cast<State>((q + 1) % k);  // '1' increments
  }
  DYNFO_CHECK(dfa.Valid());
  return dfa;
}

Dfa MakeContainsSubstringDfa(const std::string& pattern, int alphabet_size) {
  DYNFO_CHECK(!pattern.empty());
  const int m = static_cast<int>(pattern.size());
  DYNFO_CHECK(m + 1 <= 255);
  // KMP automaton: state = length of the longest pattern prefix matched.
  std::vector<int> failure(m, 0);
  for (int i = 1; i < m; ++i) {
    int j = failure[i - 1];
    while (j > 0 && pattern[i] != pattern[j]) j = failure[j - 1];
    if (pattern[i] == pattern[j]) ++j;
    failure[i] = j;
  }
  Dfa dfa;
  dfa.num_states = m + 1;
  dfa.num_symbols = alphabet_size;
  dfa.start = 0;
  dfa.accepting.assign(m + 1, false);
  dfa.accepting[m] = true;
  dfa.transitions.resize(static_cast<size_t>(m + 1) * alphabet_size);
  for (int q = 0; q <= m; ++q) {
    for (int a = 0; a < alphabet_size; ++a) {
      if (q == m) {
        dfa.transitions[q * alphabet_size + a] = static_cast<State>(m);  // absorbing
        continue;
      }
      int j = q;
      char c = static_cast<char>('a' + a);
      while (j > 0 && c != pattern[j]) j = failure[j - 1];
      if (c == pattern[j]) ++j;
      dfa.transitions[q * alphabet_size + a] = static_cast<State>(j);
    }
  }
  DYNFO_CHECK(dfa.Valid());
  return dfa;
}

}  // namespace dynfo::automata
