/// \file dfa.h
/// Deterministic finite automata and transition maps (the monoid elements
/// composed by Theorem 4.6's tree construction).

#ifndef DYNFO_AUTOMATA_DFA_H_
#define DYNFO_AUTOMATA_DFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/check.h"

namespace dynfo::automata {

using State = uint8_t;
using Symbol = uint8_t;

/// A total function Q -> Q: the effect of reading some string. These are
/// the values stored at tree nodes; composition is the monoid operation.
class TransitionMap {
 public:
  /// The identity map (effect of the empty string) on `num_states` states.
  static TransitionMap Identity(int num_states);

  explicit TransitionMap(std::vector<State> image) : image_(std::move(image)) {}

  int num_states() const { return static_cast<int>(image_.size()); }

  State Apply(State q) const {
    DYNFO_CHECK(q < image_.size());
    return image_[q];
  }

  /// The map "first *this, then `after`" (left-to-right reading order).
  TransitionMap Then(const TransitionMap& after) const;

  bool operator==(const TransitionMap& other) const { return image_ == other.image_; }
  bool operator!=(const TransitionMap& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::vector<State> image_;
};

/// A complete DFA over the alphabet {0..num_symbols-1}.
struct Dfa {
  int num_states = 0;
  int num_symbols = 0;
  State start = 0;
  std::vector<bool> accepting;          // size num_states
  std::vector<State> transitions;       // [state * num_symbols + symbol]

  State Step(State q, Symbol a) const {
    DYNFO_CHECK(q < num_states && a < num_symbols);
    return transitions[static_cast<size_t>(q) * num_symbols + a];
  }

  /// Runs the DFA over a string of symbols.
  bool Accepts(const std::vector<Symbol>& word) const;

  /// The transition map of a single symbol.
  TransitionMap MapOf(Symbol a) const;

  /// Structural sanity (sizes agree, transitions in range).
  bool Valid() const;
};

/// Handy fixed automata for tests and benchmarks.
Dfa MakeParityDfa();                 ///< binary strings with an odd number of 1s
Dfa MakeModKDfa(int k, int residue); ///< #1s ≡ residue (mod k), alphabet {0,1}
Dfa MakeContainsSubstringDfa(const std::string& pattern, int alphabet_size);

}  // namespace dynfo::automata

#endif  // DYNFO_AUTOMATA_DFA_H_
