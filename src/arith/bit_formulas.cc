#include "arith/bit_formulas.h"

namespace dynfo::arith {

using fo::BitT;
using fo::EqT;
using fo::F;
using fo::Forall;
using fo::Implies;
using fo::LtT;
using fo::Rel;
using fo::Term;
using fo::V;

F Xor3(const F& a, const F& b, const F& c) {
  return (a && b && c) || (a && !b && !c) || (!a && b && !c) || (!a && !b && c);
}

F PlusFormula(const Term& i, const Term& j, const Term& k, const std::string& prefix) {
  const std::string tn = prefix + "_t";
  const std::string sn = prefix + "_s";
  const std::string rn = prefix + "_r";
  Term t = V(tn), s = V(sn), r = V(rn);

  // Carry into bit position t: some lower position s generates a carry
  // (both addend bits set) and every position strictly between propagates
  // (at least one bit set).
  F carry = fo::Exists(
      {sn}, LtT(s, t) && BitT(i, s) && BitT(j, s) &&
                Forall({rn}, Implies(LtT(s, r) && LtT(r, t), BitT(i, r) || BitT(j, r))));

  // i + j = k iff every bit of k is the 3-way parity of i's bit, j's bit,
  // and the carry. Bit positions range over the whole universe, which is
  // comfortably wider than log n.
  return Forall({tn}, fo::Iff(BitT(k, t), Xor3(BitT(i, t), BitT(j, t), carry)));
}

F SuccFormula(const Term& v, const Term& w, const std::string& prefix) {
  const std::string rn = prefix + "_r";
  Term r = V(rn);
  return LtT(v, w) && Forall({rn}, !(LtT(v, r) && LtT(r, w)));
}

}  // namespace dynfo::arith
