/// \file bit_formulas.h
/// First-order arithmetic over BIT (paper §2's numeric predicate).
///
/// These builders return FO formulas — evaluated by the ordinary engine —
/// that define arithmetic on universe elements from the BIT predicate via
/// carry-lookahead, the standard FO trick. They are the substrate for
/// Proposition 4.7 (multiplication) and Proposition 4.8 (Dyck languages).

#ifndef DYNFO_ARITH_BIT_FORMULAS_H_
#define DYNFO_ARITH_BIT_FORMULAS_H_

#include <string>

#include "fo/builder.h"

namespace dynfo::arith {

/// { (i, j, k) : i + j = k } via carry-lookahead over BIT. The three terms
/// are typically variables; `prefix` disambiguates the internal bound
/// variables when the formula is nested.
fo::F PlusFormula(const fo::Term& i, const fo::Term& j, const fo::Term& k,
                  const std::string& prefix = "pl");

/// w = v + 1, expressed order-theoretically (v's immediate successor).
fo::F SuccFormula(const fo::Term& v, const fo::Term& w, const std::string& prefix = "sc");

/// Parity of three booleans: exactly one or all three hold.
fo::F Xor3(const fo::F& a, const fo::F& b, const fo::F& c);

}  // namespace dynfo::arith

#endif  // DYNFO_ARITH_BIT_FORMULAS_H_
