/// \file loader.h
/// A text format for Dyn-FO programs: write the paper's constructions as a
/// spec instead of C++ builder calls. Line-oriented:
///
///   program reach_u
///   input {
///     relation E/2
///     constant s
///     constant t
///   }
///   data {
///     relation E/2
///     relation F/2
///     relation PV/3
///   }
///   macro Conn(x, y) := x = y | PV(x, y, x)
///   init PV(x, y, z) := x = y & y = z
///   on insert E {
///     E(x, y) := E(x, y) | (x = $0 & y = $1) | (x = $1 & y = $0)
///     ...
///   }
///   on delete E {
///     let T(x, y, z) := ...
///     F(x, y) := ...
///   }
///   on set s { }
///   query := Conn(s, t)
///   query connected(x, y) := Conn(x, y)
///   semidynamic        # optional: refuse deletes (Dyn_s)
///
/// '#' starts a comment. Formulas use the fo/parser.h syntax; macros are
/// visible to every later formula. The loaded program is Validate()d.

#ifndef DYNFO_DYNFO_LOADER_H_
#define DYNFO_DYNFO_LOADER_H_

#include <memory>
#include <string>

#include "core/status.h"
#include "dynfo/program.h"

namespace dynfo::dyn {

core::Result<std::shared_ptr<const DynProgram>> LoadProgramFromText(
    const std::string& text);

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_LOADER_H_
