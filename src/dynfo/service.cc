#include "dynfo/service.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <sstream>
#include <utility>

#include "core/check.h"
#include "core/text.h"
#include "fo/eval_naive.h"
#include "fo/parser.h"

namespace dynfo::dyn {

namespace {

using relational::Element;
using relational::Request;

/// Read-path evaluation options for a tier: the ladder's first three rungs
/// expressed as plan/index gates. Readers run single-threaded — the service
/// gets its parallelism from concurrent sessions, not from fanning one
/// query out.
fo::EvalOptions ReadOptionsFor(ExecTier tier) {
  fo::EvalOptions options;
  options.num_threads = 1;
  switch (tier) {
    case ExecTier::kCompiledIndexed:
      options.use_compiled_plans = true;
      options.use_indexes = true;
      break;
    case ExecTier::kCompiled:
      options.use_compiled_plans = true;
      options.use_indexes = false;
      break;
    default:
      options.use_compiled_plans = false;
      options.use_indexes = false;
      break;
  }
  return options;
}

}  // namespace

ExecTier ChooseReadTier(size_t waiting, size_t queue_limit,
                        double shed_compiled_at, double shed_naive_at) {
  if (queue_limit == 0 || waiting == 0) return ExecTier::kCompiledIndexed;
  const double load =
      static_cast<double>(waiting) / static_cast<double>(queue_limit);
  if (load >= shed_naive_at) return ExecTier::kNaive;
  if (load >= shed_compiled_at) return ExecTier::kCompiled;
  return ExecTier::kCompiledIndexed;
}

EngineService::EngineService(std::shared_ptr<const DynProgram> program,
                             size_t universe_size, ServiceOptions options,
                             Oracle oracle, InvariantCheck invariant)
    : options_(std::move(options)),
      guarded_(std::move(program), universe_size, std::move(oracle),
               std::move(invariant), options_.engine) {
  // Version 0: the post-init initial state, so readers that arrive before
  // the first write have something to pin.
  PublishLocked();
}

core::Result<EngineService::SessionId> EngineService::OpenSession(
    ApplyGovernance governance) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (options_.max_sessions != 0 && sessions_.size() >= options_.max_sessions) {
    sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
    return core::Status::ResourceExhausted(
        "session limit reached (" + std::to_string(sessions_.size()) + " of " +
        std::to_string(options_.max_sessions) + " open)");
  }
  const SessionId id = next_session_++;
  sessions_[id] = governance;
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void EngineService::CloseSession(SessionId session) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (sessions_.erase(session) > 0) {
    sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  }
}

core::Status EngineService::SetSessionGovernance(
    SessionId session, const ApplyGovernance& governance) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return core::Status::Error("unknown session " + std::to_string(session));
  }
  it->second = governance;
  return core::Status();
}

ApplyGovernance EngineService::SessionGovernance(SessionId session) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(session);
  if (it != sessions_.end() && it->second.active()) return it->second;
  return options_.engine.governance.governance;
}

core::Status EngineService::AdmitWriter(const ApplyGovernance& governance) {
  const size_t limit = options_.admission_queue_limit;
  const size_t waiting =
      waiting_writers_.fetch_add(1, std::memory_order_acq_rel);
  if (limit != 0 && waiting >= limit) {
    waiting_writers_.fetch_sub(1, std::memory_order_acq_rel);
    admission_rejections_.fetch_add(1, std::memory_order_relaxed);
    return core::Status::ResourceExhausted(
        "admission queue full: " + std::to_string(waiting) +
        " writer(s) already waiting (limit " + std::to_string(limit) + ")");
  }
  bool locked = false;
  if (governance.deadline_ms > 0) {
    // The session's deadline bounds the WAIT too: a writer that cannot even
    // start before its budget expires reports the timeout instead of
    // arriving at the engine pre-expired.
    locked = writer_mutex_.try_lock_for(
        std::chrono::milliseconds(governance.deadline_ms));
  } else if (governance.deadline_ms < 0) {
    locked = writer_mutex_.try_lock();  // already-expired: at most a free try
  } else {
    writer_mutex_.lock();
    locked = true;
  }
  waiting_writers_.fetch_sub(1, std::memory_order_acq_rel);
  if (!locked) {
    admission_timeouts_.fetch_add(1, std::memory_order_relaxed);
    return core::Status::DeadlineExceeded(
        "timed out waiting for the writer lock (deadline " +
        std::to_string(governance.deadline_ms) + " ms)");
  }
  return core::Status();
}

void EngineService::SetWriteGovernanceLocked(
    const ApplyGovernance& governance) {
  // The ladder/attempt policy is service-wide; only the per-session budget
  // swaps per write.
  guarded_.mutable_governance()->governance = governance;
}

void EngineService::PublishLocked() {
  Engine::StateView view = guarded_.engine().SnapshotView();
  auto version = std::make_shared<Version>(std::move(view.data), view.version,
                                           /*epoch=*/0,
                                           guarded_.engine().program_ptr());
  {
    std::lock_guard<std::mutex> lock(versions_mutex_);
    version->epoch = next_epoch_++;
    versions_.push_back(std::move(version));
  }
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
}

void EngineService::Reclaim() {
  // Destroy retired versions outside the lock: dropping a Structure frees
  // relation storage, which is not a constant-time critical section.
  std::vector<std::shared_ptr<Version>> retired;
  {
    std::lock_guard<std::mutex> lock(versions_mutex_);
    while (versions_.size() > 1 &&
           versions_.front()->pins.load(std::memory_order_acquire) == 0) {
      retired.push_back(std::move(versions_.front()));
      versions_.pop_front();
    }
  }
  if (!retired.empty()) {
    snapshots_reclaimed_.fetch_add(retired.size(), std::memory_order_relaxed);
  }
}

void EngineService::FinishWrite(bool publish) {
  if (publish) PublishLocked();
  writer_mutex_.unlock();
  Reclaim();
}

core::Status EngineService::Apply(SessionId session, const Request& request) {
  const ApplyGovernance governance = SessionGovernance(session);
  core::Status admitted = AdmitWriter(governance);
  if (!admitted.ok()) return admitted;
  SetWriteGovernanceLocked(governance);
  core::Status applied = guarded_.Apply(request);
  if (applied.ok()) {
    writes_applied_.fetch_add(1, std::memory_order_relaxed);
    if (options_.record_applied_history) applied_history_.push_back(request);
  } else {
    write_calls_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  FinishWrite(/*publish=*/applied.ok());
  return applied;
}

core::Status EngineService::ApplyBatch(SessionId session,
                                       std::span<const Request> requests,
                                       BatchReport* report) {
  BatchReport local;
  if (report == nullptr) report = &local;
  const ApplyGovernance governance = SessionGovernance(session);
  core::Status admitted = AdmitWriter(governance);
  if (!admitted.ok()) {
    *report = BatchReport{};
    report->code = admitted.code();
    return admitted;
  }
  SetWriteGovernanceLocked(governance);
  core::Status applied = guarded_.ApplyBatch(requests, report);
  // Prefix atomicity: whatever prefix committed is real history even when
  // the batch as a whole failed.
  if (report->applied > 0) {
    writes_applied_.fetch_add(report->applied, std::memory_order_relaxed);
    if (options_.record_applied_history) {
      applied_history_.insert(applied_history_.end(), requests.begin(),
                              requests.begin() + report->applied);
    }
  }
  if (!applied.ok()) {
    write_calls_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  FinishWrite(/*publish=*/report->applied > 0);
  return applied;
}

core::Status EngineService::ApplyDefinable(SessionId session,
                                           const DefinableChange& change,
                                           BatchReport* report) {
  BatchReport local;
  if (report == nullptr) report = &local;
  const ApplyGovernance governance = SessionGovernance(session);
  core::Status admitted = AdmitWriter(governance);
  if (!admitted.ok()) {
    *report = BatchReport{};
    report->code = admitted.code();
    return admitted;
  }
  SetWriteGovernanceLocked(governance);
  // Materialize under the writer lock (the change set is defined over the
  // CURRENT state) and push the expansion through the batched pipeline —
  // the same move GuardedEngine::ApplyDefinable makes, unrolled here so the
  // applied history records the expanded single-tuple requests.
  relational::RequestSequence expanded =
      guarded_.engine().MaterializeDefinableChange(change);
  core::Status applied = guarded_.ApplyBatch(expanded, report);
  if (report->applied > 0) {
    writes_applied_.fetch_add(report->applied, std::memory_order_relaxed);
    if (options_.record_applied_history) {
      applied_history_.insert(applied_history_.end(), expanded.begin(),
                              expanded.begin() + report->applied);
    }
  }
  if (!applied.ok()) {
    write_calls_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  FinishWrite(/*publish=*/report->applied > 0);
  return applied;
}

core::Status EngineService::Restore(const std::string& snapshot) {
  writer_mutex_.lock();
  core::Status restored = guarded_.mutable_engine()->Restore(snapshot);
  FinishWrite(/*publish=*/restored.ok());
  return restored;
}

core::Status EngineService::ReloadProgram(
    std::shared_ptr<const DynProgram> program) {
  writer_mutex_.lock();
  core::Status reloaded =
      guarded_.mutable_engine()->ReloadProgram(std::move(program));
  FinishWrite(/*publish=*/reloaded.ok());
  return reloaded;
}

std::string EngineService::Snapshot() {
  std::lock_guard<WriterLock> lock(writer_mutex_);
  return guarded_.engine().Snapshot();
}

EngineService::ReadPin EngineService::PinVersion() {
  const ExecTier tier = ChooseReadTier(
      waiting_writers_.load(std::memory_order_relaxed),
      options_.admission_queue_limit, options_.shed_compiled_at,
      options_.shed_naive_at);
  std::shared_ptr<Version> version;
  {
    std::lock_guard<std::mutex> lock(versions_mutex_);
    version = versions_.back();
    version->pins.fetch_add(1, std::memory_order_acq_rel);
  }
  reads_tier_[static_cast<int>(tier)].fetch_add(1, std::memory_order_relaxed);
  return ReadPin(this, std::move(version), tier);
}

void EngineService::ReadPin::Release() {
  if (version_ == nullptr) return;
  version_->pins.fetch_sub(1, std::memory_order_acq_rel);
  version_ = nullptr;
  if (service_ != nullptr) {
    service_->Reclaim();
    service_ = nullptr;
  }
}

bool EngineService::QueryBool(const ReadPin& pin,
                              std::vector<Element> params) const {
  const fo::FormulaPtr& query = pin.program().bool_query();
  DYNFO_CHECK(query != nullptr)
      << pin.program().name() << " has no boolean query";
  return QuerySentence(pin, query, std::move(params));
}

bool EngineService::QuerySentence(const ReadPin& pin,
                                  const fo::FormulaPtr& sentence,
                                  std::vector<Element> params) const {
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  fo::EvalContext ctx(pin.data(), std::move(params),
                      ReadOptionsFor(pin.tier()));
  if (pin.tier() == ExecTier::kNaive) {
    return fo::NaiveEvaluator::HoldsSentence(sentence, ctx);
  }
  return read_algebra_.HoldsSentence(sentence, ctx);
}

core::Result<relational::Relation> EngineService::QueryRelation(
    const ReadPin& pin, const std::string& name,
    std::vector<Element> params) const {
  const NamedQuery* query = pin.program().FindNamedQuery(name);
  if (query == nullptr) {
    return core::Status::Error(pin.program().name() + " has no query named " +
                               name);
  }
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  fo::EvalContext ctx(pin.data(), std::move(params),
                      ReadOptionsFor(pin.tier()));
  if (pin.tier() == ExecTier::kNaive) {
    return fo::NaiveEvaluator::EvaluateAsRelation(
        query->formula, query->tuple_variables, ctx);
  }
  return read_algebra_.EvaluateAsRelation(query->formula,
                                          query->tuple_variables, ctx);
}

bool EngineService::ReadQueryBool(std::vector<Element> params) {
  ReadPin pin = PinVersion();
  return QueryBool(pin, std::move(params));
}

ServiceStats EngineService::stats() const {
  ServiceStats out;
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  out.sessions_rejected = sessions_rejected_.load(std::memory_order_relaxed);
  out.writes_applied = writes_applied_.load(std::memory_order_relaxed);
  out.write_calls_failed =
      write_calls_failed_.load(std::memory_order_relaxed);
  out.admission_rejections =
      admission_rejections_.load(std::memory_order_relaxed);
  out.admission_timeouts =
      admission_timeouts_.load(std::memory_order_relaxed);
  out.reads_served = reads_served_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumReadTiers; ++i) {
    out.reads_tier[i] = reads_tier_[i].load(std::memory_order_relaxed);
  }
  out.snapshots_published =
      snapshots_published_.load(std::memory_order_relaxed);
  out.snapshots_reclaimed =
      snapshots_reclaimed_.load(std::memory_order_relaxed);
  return out;
}

size_t EngineService::retained_versions() const {
  std::lock_guard<std::mutex> lock(versions_mutex_);
  return versions_.size();
}

// -- ServiceServer ----------------------------------------------------------

ServiceServer::ServiceServer(EngineService* service, wire::Address address)
    : service_(service), address_(std::move(address)) {}

ServiceServer::~ServiceServer() { Stop(); }

core::Status ServiceServer::Start() {
  core::Result<int> listened = wire::Listen(address_);
  if (!listened.ok()) return listened.status();
  listen_fd_ = listened.value();
  if (address_.kind == wire::Address::Kind::kTcp && address_.port == 0) {
    core::Result<int> port = wire::BoundPort(listen_fd_);
    if (!port.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return port.status();
    }
    address_.port = port.value();
  }
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread(&ServiceServer::AcceptLoop, this);
  return core::Status();
}

void ServiceServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Joining drains the vector; ServeConnection closes its own fd.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    threads.swap(connection_threads_);
    connection_fds_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (address_.kind == wire::Address::Kind::kUnix) {
    ::unlink(address_.path.c_str());
  }
}

void ServiceServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or fatal
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(&ServiceServer::ServeConnection, this, fd);
  }
}

void ServiceServer::ServeConnection(int fd) {
  core::Result<EngineService::SessionId> opened = service_->OpenSession();
  if (!opened.ok()) {
    // Typed rejection at the door: the client's retry policy treats wire
    // code 5 as "back off and try again", which is exactly right for a
    // session-limit rejection.
    (void)wire::WriteFrame(
        fd, wire::EncodeResponse(wire::ExitCodeFor(opened.status().code()),
                                 opened.status().message()));
    ::close(fd);
    return;
  }
  const EngineService::SessionId session = opened.value();
  std::string request;
  while (!stopping_.load(std::memory_order_acquire)) {
    core::Status got = wire::ReadFrame(fd, &request);
    if (!got.ok()) break;  // orderly close, churn kill, or transport error
    std::vector<std::string> words = wire::SplitWords(
        request.substr(0, request.find('\n')));
    if (!words.empty() && (words[0] == "quit" || words[0] == "exit")) {
      (void)wire::WriteFrame(fd, wire::EncodeResponse(0, "bye"));
      break;
    }
    std::string response = Dispatch(session, request);
    if (!wire::WriteFrame(fd, response).ok()) break;
  }
  service_->CloseSession(session);
  ::close(fd);
}

std::string ServiceServer::Dispatch(EngineService::SessionId session,
                                    const std::string& request) {
  using wire::EncodeResponse;
  using wire::ExitCodeFor;
  const size_t first_newline = request.find('\n');
  const std::string first_line = request.substr(0, first_newline);
  std::vector<std::string> words = wire::SplitWords(first_line);
  if (words.empty()) return EncodeResponse(2, "empty request");
  const std::string& command = words[0];

  if (wire::IsMutationCommand(command)) {
    Request parsed;
    std::string error;
    if (!wire::ParseMutation(words, &parsed, &error)) {
      return EncodeResponse(2, error);
    }
    core::Status applied = service_->Apply(session, parsed);
    if (!applied.ok()) {
      return EncodeResponse(ExitCodeFor(applied.code()), applied.ToString());
    }
    return EncodeResponse(0, "ok");
  }

  if (command == "batch") {
    if (words.size() != 1) {
      return EncodeResponse(2, "batch takes no arguments (batch ... end)");
    }
    if (first_newline == std::string::npos) {
      return EncodeResponse(2, "batch frame holds no block");
    }
    std::vector<Request> group;
    std::istringstream body(request.substr(first_newline + 1));
    std::string line;
    bool closed = false;
    while (std::getline(body, line)) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::vector<std::string> inner = wire::SplitWords(line);
      if (inner.empty()) continue;
      if (inner[0] == "end") {
        closed = true;
        break;
      }
      if (!wire::IsMutationCommand(inner[0])) {
        return EncodeResponse(
            2, "'" + inner[0] + "' is not allowed inside a batch block");
      }
      Request parsed;
      std::string error;
      if (!wire::ParseMutation(inner, &parsed, &error)) {
        return EncodeResponse(2, error);
      }
      group.push_back(parsed);
    }
    if (!closed) return EncodeResponse(2, "batch block not closed with 'end'");
    BatchReport report;
    core::Status applied = service_->ApplyBatch(session, group, &report);
    if (!applied.ok()) {
      return EncodeResponse(ExitCodeFor(applied.code()),
                            applied.ToString() + " (batch applied " +
                                std::to_string(report.applied) + " of " +
                                std::to_string(group.size()) + ")");
    }
    return EncodeResponse(
        0, "ok applied=" + std::to_string(group.size()));
  }

  if (command == "query") {
    std::vector<Element> params;
    std::string error;
    if (!wire::ParseElements(words, 1, &params, &error)) {
      return EncodeResponse(2, error);
    }
    EngineService::ReadPin pin = service_->PinVersion();
    const bool answer = service_->QueryBool(pin, std::move(params));
    return EncodeResponse(
        0, std::string(answer ? "true" : "false") +
               " v=" + std::to_string(pin.version()) +
               " tier=" + ExecTierName(pin.tier()));
  }

  if (command == "eval") {
    const size_t at = first_line.find("eval");
    const std::string text = first_line.substr(at + 4);
    EngineService::ReadPin pin = service_->PinVersion();
    fo::ParserEnvironment formulas(pin.program().data_vocabulary());
    auto parsed = formulas.Parse(text);
    if (!parsed.ok()) return EncodeResponse(2, parsed.status().message());
    if (!parsed.value()->FreeVariables().empty()) {
      return EncodeResponse(2, "eval needs a sentence (no free variables)");
    }
    const bool answer = service_->QuerySentence(pin, parsed.value());
    return EncodeResponse(
        0, std::string(answer ? "true" : "false") +
               " v=" + std::to_string(pin.version()) +
               " tier=" + ExecTierName(pin.tier()));
  }

  if (command == "show") {
    if (words.size() < 2) return EncodeResponse(2, "show needs a name");
    std::vector<Element> params;
    std::string error;
    if (!wire::ParseElements(words, 2, &params, &error)) {
      return EncodeResponse(2, error);
    }
    EngineService::ReadPin pin = service_->PinVersion();
    std::string body = "v=" + std::to_string(pin.version()) + "\n";
    if (pin.program().FindNamedQuery(words[1]) != nullptr) {
      core::Result<relational::Relation> result =
          service_->QueryRelation(pin, words[1], std::move(params));
      if (!result.ok()) return EncodeResponse(1, result.status().message());
      return EncodeResponse(0, body + result.value().ToString());
    }
    if (pin.program().data_vocabulary()->RelationIndex(words[1]) >= 0) {
      return EncodeResponse(0,
                            body + pin.data().relation(words[1]).ToString());
    }
    return EncodeResponse(2, "no query or relation named " + words[1]);
  }

  if (command == "deadline") {
    uint64_t millis = 0;
    if (words.size() != 2 || !core::ParseU64(words[1], &millis)) {
      return EncodeResponse(2, "usage: deadline <ms> (0 clears)");
    }
    ApplyGovernance governance =
        service_->options().engine.governance.governance;
    governance.deadline_ms = static_cast<int64_t>(millis);
    core::Status set = service_->SetSessionGovernance(session, governance);
    if (!set.ok()) return EncodeResponse(1, set.message());
    return EncodeResponse(0, "ok");
  }

  if (command == "stats") {
    const ServiceStats stats = service_->stats();
    std::ostringstream out;
    out << "sessions=" << (stats.sessions_opened - stats.sessions_closed)
        << " writes_applied=" << stats.writes_applied
        << " write_calls_failed=" << stats.write_calls_failed
        << " admission_rejections=" << stats.admission_rejections
        << " admission_timeouts=" << stats.admission_timeouts
        << " reads_served=" << stats.reads_served
        << " reads_tier0=" << stats.reads_tier[0]
        << " reads_tier1=" << stats.reads_tier[1]
        << " reads_tier2=" << stats.reads_tier[2]
        << " snapshots_published=" << stats.snapshots_published
        << " snapshots_reclaimed=" << stats.snapshots_reclaimed
        << " retained_versions=" << service_->retained_versions();
    return EncodeResponse(0, out.str());
  }

  if (command == "ping") return EncodeResponse(0, "pong");

  return EncodeResponse(2, "unknown command '" + command + "'");
}

}  // namespace dynfo::dyn
