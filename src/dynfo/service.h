/// \file service.h
/// Engine-as-a-service: many sessions over one engine (DESIGN.md §15).
///
/// Dyn-FO's premise is that updates are cheap enough to answer queries
/// *while the structure changes*. The service makes that literal:
///
///   * Writers serialize through the GuardedEngine (validation, journal,
///     governed apply, degradation ladder) behind one writer lock.
///   * Readers never take that lock: each committed write publishes an O(1)
///     Engine::SnapshotView() — a copy-on-write Structure copy — into a
///     version list, and a reader pins the newest version for the duration
///     of its query. Pinned versions are immutable (the engine's own
///     mutations copy-on-write around any shared base), so reads are
///     snapshot-isolated at a single version: exactly the state after the
///     pinned number of requests.
///   * Reclamation is epoch-based: versions retire strictly in publish
///     order, and a version is freed only when it is not the newest and no
///     reader pins it or any older version. No reader ever observes a
///     freed version; a stalled reader delays reclamation, never safety.
///   * Admission control reuses governance: a bounded queue of waiting
///     writers — one past the bound is rejected immediately with
///     kResourceExhausted (wire code 5, the client's retry signal) — and a
///     waiting writer gives up at its session deadline with
///     kDeadlineExceeded. Reads are never refused; under writer pressure
///     they shed down the degradation ladder's read tiers
///     (compiled+indexed → compiled → naive), trading latency for
///     throughput before anything is turned away.

#ifndef DYNFO_DYNFO_SERVICE_H_
#define DYNFO_DYNFO_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dynfo/recovery.h"
#include "dynfo/wire.h"
#include "fo/eval_algebra.h"

namespace dynfo::dyn {

/// The read tiers are the update ladder's first three rungs; reads have no
/// start-over (there is nothing to rebuild — they only look).
inline constexpr int kNumReadTiers = 3;

/// Pure shed policy, unit-testable: which read tier a load factor of
/// `waiting` writers against `queue_limit` admission slots buys.
/// Thresholds are fractions of the queue bound; queue_limit == 0 disables
/// shedding entirely.
ExecTier ChooseReadTier(size_t waiting, size_t queue_limit,
                        double shed_compiled_at, double shed_naive_at);

struct ServiceOptions {
  GuardedEngineOptions engine;
  /// OpenSession beyond this count is rejected with kResourceExhausted.
  size_t max_sessions = 64;
  /// Writers allowed to WAIT for the writer lock; one more is rejected
  /// immediately (kResourceExhausted) instead of queueing. 0 = unbounded
  /// admission and no read shedding.
  size_t admission_queue_limit = 8;
  /// Load factors (waiting / admission_queue_limit) at which reads shed to
  /// the compiled and naive tiers.
  double shed_compiled_at = 0.5;
  double shed_naive_at = 0.75;
  /// Retained-version soft cap: publishing past it drops the oldest
  /// unpinned prefix eagerly. Pinned versions are never dropped, so the
  /// real bound is cap + live pins.
  size_t max_retained_versions = 64;
  /// Record every applied request in commit order — the soak's oracle
  /// source: replaying history[0..v) through a fresh engine reproduces the
  /// exact state any reader pinned at version v. (The journal cannot serve
  /// this: it is an intent log and may hold rejected requests.)
  bool record_applied_history = false;
};

/// Monotone counters; read with stats() (a coherent-enough snapshot — each
/// counter is individually atomic).
struct ServiceStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t sessions_rejected = 0;   ///< OpenSession over max_sessions
  uint64_t writes_applied = 0;      ///< requests applied (batch members count)
  uint64_t write_calls_failed = 0;  ///< Apply/ApplyBatch calls ending non-OK
  uint64_t admission_rejections = 0;  ///< typed kResourceExhausted rejections
  uint64_t admission_timeouts = 0;  ///< waiters that hit their deadline
  uint64_t reads_served = 0;
  uint64_t reads_tier[kNumReadTiers] = {0, 0, 0};  ///< by ExecTier index
  uint64_t snapshots_published = 0;
  uint64_t snapshots_reclaimed = 0;
};

/// One engine, many sessions. All public methods are thread-safe.
class EngineService {
 public:
  using SessionId = uint64_t;

  /// A published snapshot: the copy-on-write state after exactly `version`
  /// requests, with the program that produced it (kept alive here so a
  /// pinned reader survives ReloadProgram). Internal to the service; public
  /// only so ReadPin's inline accessors see a complete type.
  struct Version {
    Version(relational::Structure d, uint64_t v, uint64_t e,
            std::shared_ptr<const DynProgram> p)
        : data(std::move(d)), version(v), epoch(e), program(std::move(p)) {}
    relational::Structure data;
    uint64_t version;
    uint64_t epoch;  ///< publish order; reclamation retires epochs in order
    std::shared_ptr<const DynProgram> program;
    std::atomic<uint64_t> pins{0};
  };

  /// `oracle`/`invariant` feed the GuardedEngine's cadence checks; null
  /// disables them (options.engine.check_every notwithstanding).
  EngineService(std::shared_ptr<const DynProgram> program,
                size_t universe_size, ServiceOptions options = {},
                Oracle oracle = nullptr, InvariantCheck invariant = nullptr);

  // -- Sessions ------------------------------------------------------------

  /// Opens a session whose writes run under `governance` (deadline, budget);
  /// an inactive governance inherits the service-wide policy.
  /// kResourceExhausted over max_sessions.
  core::Result<SessionId> OpenSession(ApplyGovernance governance = {});
  void CloseSession(SessionId session);
  /// Replaces a live session's governance (wire `deadline` command).
  core::Status SetSessionGovernance(SessionId session,
                                    const ApplyGovernance& governance);

  // -- Writes (serialized; admission-controlled) ---------------------------

  core::Status Apply(SessionId session, const relational::Request& request);
  core::Status ApplyBatch(SessionId session,
                          std::span<const relational::Request> requests,
                          BatchReport* report = nullptr);
  core::Status ApplyDefinable(SessionId session, const DefinableChange& change,
                              BatchReport* report = nullptr);

  /// Writer-path state replacement: Engine::Restore under the writer lock,
  /// then a republish so subsequent readers pin the restored state.
  /// Readers already pinned keep their pre-restore version — snapshot
  /// isolation holds across restores.
  core::Status Restore(const std::string& snapshot);

  /// Writer-path program swap (Engine::ReloadProgram: same vocabulary
  /// objects). Published versions each carry the program they were built
  /// under, so pinned readers keep evaluating against the old program.
  core::Status ReloadProgram(std::shared_ptr<const DynProgram> program);

  /// Serializing snapshot of the live state (writer-path; for parity with
  /// the CLI's `snapshot` command and the soak's bit-identical final check).
  std::string Snapshot();

  // -- Reads (never take the writer lock; snapshot-isolated) ---------------

  /// A pinned version, immutable until released. Movable RAII.
  class ReadPin {
   public:
    ReadPin(ReadPin&& other) noexcept
        : service_(other.service_),
          version_(std::move(other.version_)),
          tier_(other.tier_) {
      other.service_ = nullptr;
      other.version_ = nullptr;
    }
    ReadPin& operator=(ReadPin&& other) noexcept {
      if (this != &other) {
        Release();
        service_ = other.service_;
        version_ = std::move(other.version_);
        tier_ = other.tier_;
        other.service_ = nullptr;
        other.version_ = nullptr;
      }
      return *this;
    }
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;
    ~ReadPin() { Release(); }

    const relational::Structure& data() const { return version_->data; }
    uint64_t version() const { return version_->version; }
    uint64_t epoch() const { return version_->epoch; }
    const DynProgram& program() const { return *version_->program; }
    /// The read tier admission pressure assigned at pin time.
    ExecTier tier() const { return tier_; }

    void Release();

   private:
    friend class EngineService;
    ReadPin(EngineService* service, std::shared_ptr<Version> version,
            ExecTier tier)
        : service_(service), version_(std::move(version)), tier_(tier) {}

    EngineService* service_ = nullptr;
    std::shared_ptr<Version> version_;
    ExecTier tier_ = ExecTier::kCompiledIndexed;
  };

  /// Pins the newest published version. Never fails, never blocks on the
  /// writer lock; under load the pin carries a shed tier.
  ReadPin PinVersion();

  /// Queries against a pinned version. Thread-safe across any number of
  /// concurrent readers (and the writer): evaluation reads the pinned
  /// structure only, through a shared thread-safe evaluator.
  bool QueryBool(const ReadPin& pin,
                 std::vector<relational::Element> params = {}) const;
  bool QuerySentence(const ReadPin& pin, const fo::FormulaPtr& sentence,
                     std::vector<relational::Element> params = {}) const;
  core::Result<relational::Relation> QueryRelation(
      const ReadPin& pin, const std::string& name,
      std::vector<relational::Element> params = {}) const;

  /// Pin + QueryBool + release in one call.
  bool ReadQueryBool(std::vector<relational::Element> params = {});

  // -- Introspection -------------------------------------------------------

  ServiceStats stats() const;
  /// Published versions currently retained (>= 1: the newest).
  size_t retained_versions() const;
  const ServiceOptions& options() const { return options_; }
  const RecoveryStats& recovery_stats() const {
    return guarded_.recovery_stats();
  }
  /// The applied history (requires record_applied_history). Safe to read
  /// only when no writer is active (e.g. post-soak, after joining every
  /// session thread).
  const std::vector<relational::Request>& applied_history() const {
    return applied_history_;
  }

  /// Test hook: holds the writer lock until destroyed, so tests can force
  /// deterministic admission-queue pressure and shed tiers.
  class WriterGate {
   public:
    explicit WriterGate(EngineService* service) : service_(service) {
      service_->writer_mutex_.lock();
    }
    ~WriterGate() { service_->writer_mutex_.unlock(); }
    WriterGate(const WriterGate&) = delete;
    WriterGate& operator=(const WriterGate&) = delete;

   private:
    EngineService* service_;
  };
  std::unique_ptr<WriterGate> PauseWritersForTest() {
    return std::make_unique<WriterGate>(this);
  }
  /// Test hook: pretend `n` writers are waiting (drives ChooseReadTier).
  void InjectWaitingWritersForTest(size_t n) {
    waiting_writers_.store(n, std::memory_order_relaxed);
  }

 private:
  /// Bounded admission + deadline-bounded wait for the writer lock. On OK
  /// the caller holds writer_mutex_ and MUST call FinishWrite.
  core::Status AdmitWriter(const ApplyGovernance& governance);
  /// Optionally publishes the engine's current state (writer lock held),
  /// then unlocks and reclaims.
  void FinishWrite(bool publish);
  void PublishLocked();
  void Reclaim();
  ApplyGovernance SessionGovernance(SessionId session);
  /// Installs `governance` into the guarded engine's policy for this write
  /// (writer lock held).
  void SetWriteGovernanceLocked(const ApplyGovernance& governance);

  ServiceOptions options_;
  GuardedEngine guarded_;

  /// Writer serialization with deadline-bounded acquisition. A waiter can
  /// give up at its session deadline without a ticket-queue abandonment
  /// problem. Built on mutex + condition_variable rather than
  /// std::timed_mutex: libstdc++ lowers timed_mutex::try_lock_for to
  /// pthread_mutex_clocklock, which ThreadSanitizer does not intercept
  /// (a successful timed acquisition is invisible and the later unlock is
  /// reported as "unlock of an unlocked mutex"), and unlike timed_mutex
  /// this lock is not UB to reacquire from the releasing thread.
  class WriterLock {
   public:
    void lock() {
      std::unique_lock<std::mutex> guard(mutex_);
      cv_.wait(guard, [this] { return !held_; });
      held_ = true;
    }
    bool try_lock() {
      std::lock_guard<std::mutex> guard(mutex_);
      if (held_) return false;
      held_ = true;
      return true;
    }
    bool try_lock_for(std::chrono::milliseconds timeout) {
      std::unique_lock<std::mutex> guard(mutex_);
      if (!cv_.wait_for(guard, timeout, [this] { return !held_; })) {
        return false;
      }
      held_ = true;
      return true;
    }
    void unlock() {
      {
        std::lock_guard<std::mutex> guard(mutex_);
        held_ = false;
      }
      cv_.notify_one();
    }

   private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool held_ = false;
  };
  WriterLock writer_mutex_;
  std::atomic<size_t> waiting_writers_{0};

  /// Published versions, oldest first; back() is the newest. Guarded by
  /// versions_mutex_ (pin/publish/reclaim are short critical sections).
  mutable std::mutex versions_mutex_;
  std::deque<std::shared_ptr<Version>> versions_;
  uint64_t next_epoch_ = 0;

  std::mutex sessions_mutex_;
  std::map<SessionId, ApplyGovernance> sessions_;
  SessionId next_session_ = 1;

  /// Shared read-path evaluator: thread-safe for concurrent Sat (atomic
  /// stats, mutex-guarded plan cache), separate from the engine's own so
  /// reader traffic never contends with the write path's cache.
  mutable fo::AlgebraEvaluator read_algebra_;

  std::vector<relational::Request> applied_history_;  ///< writer lock held

  // Counters (relaxed: monotone telemetry, no ordering needed; mutable so
  // const read paths can count themselves).
  mutable std::atomic<uint64_t> sessions_opened_{0}, sessions_closed_{0},
      sessions_rejected_{0}, writes_applied_{0}, write_calls_failed_{0},
      admission_rejections_{0}, admission_timeouts_{0}, reads_served_{0},
      snapshots_published_{0}, snapshots_reclaimed_{0};
  mutable std::atomic<uint64_t> reads_tier_[kNumReadTiers] = {};
};

/// A socket front end for an EngineService: accepts connections on a
/// unix:/tcp: address (wire.h), opens one session per connection, and runs
/// the script grammar over length-prefixed frames. One thread per
/// connection — the service underneath does the real concurrency control.
class ServiceServer {
 public:
  ServiceServer(EngineService* service, wire::Address address);
  ~ServiceServer();

  /// Binds, listens, and starts the accept loop. For tcp:0 the bound port
  /// is in address().port afterwards.
  core::Status Start();
  /// Stops accepting, severs every live connection, joins all threads.
  void Stop();

  const wire::Address& address() const { return address_; }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// One request line (or multi-line batch frame) through the grammar
  /// against `session`; returns the encoded "<code> <body>" response.
  /// Exposed for tests and in-process (socketless) drivers.
  std::string Dispatch(EngineService::SessionId session,
                       const std::string& request);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  EngineService* service_;
  wire::Address address_;
  /// Atomic: Stop() shuts the listener down and writes -1 while AcceptLoop
  /// is still blocked in accept() on the old descriptor.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;
  std::atomic<uint64_t> connections_accepted_{0};
};

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_SERVICE_H_
