#include "dynfo/program.h"

#include <algorithm>
#include <set>

namespace dynfo::dyn {

DynProgram::DynProgram(std::string name,
                       std::shared_ptr<const relational::Vocabulary> input,
                       std::shared_ptr<const relational::Vocabulary> data)
    : name_(std::move(name)), input_(std::move(input)), data_(std::move(data)) {
  DYNFO_CHECK(input_ != nullptr);
  DYNFO_CHECK(data_ != nullptr);
}

void DynProgram::AddLet(relational::RequestKind kind, const std::string& input_name,
                        UpdateRule rule) {
  rules_[{kind, input_name}].lets.push_back(std::move(rule));
}

void DynProgram::AddUpdate(relational::RequestKind kind, const std::string& input_name,
                           UpdateRule rule) {
  rules_[{kind, input_name}].updates.push_back(std::move(rule));
}

void DynProgram::AddNamedQuery(const std::string& name, NamedQuery query) {
  DYNFO_CHECK(named_queries_.find(name) == named_queries_.end())
      << "duplicate named query " << name;
  named_queries_[name] = std::move(query);
}

const NamedQuery* DynProgram::FindNamedQuery(const std::string& name) const {
  auto it = named_queries_.find(name);
  return it == named_queries_.end() ? nullptr : &it->second;
}

const RequestRules* DynProgram::RulesFor(relational::RequestKind kind,
                                         const std::string& input_name) const {
  auto it = rules_.find({kind, input_name});
  return it == rules_.end() ? nullptr : &it->second;
}

namespace {

core::Status CheckRule(const relational::Vocabulary& data, const UpdateRule& rule,
                       int max_parameters, const std::string& context) {
  if (rule.formula == nullptr) {
    return core::Status::Error(context + ": rule for " + rule.target + " has no formula");
  }
  int target_index = data.RelationIndex(rule.target);
  if (target_index < 0) {
    return core::Status::Error(context + ": unknown target relation " + rule.target);
  }
  int arity = data.relation(target_index).arity;
  if (arity != static_cast<int>(rule.tuple_variables.size())) {
    return core::Status::Error(context + ": rule for " + rule.target + " binds " +
                               std::to_string(rule.tuple_variables.size()) +
                               " variables but the relation has arity " +
                               std::to_string(arity));
  }
  std::set<std::string> distinct(rule.tuple_variables.begin(),
                                 rule.tuple_variables.end());
  if (distinct.size() != rule.tuple_variables.size()) {
    return core::Status::Error(context + ": rule for " + rule.target +
                               " repeats a tuple variable");
  }
  for (const std::string& v : rule.formula->FreeVariables()) {
    if (distinct.find(v) == distinct.end()) {
      return core::Status::Error(context + ": rule for " + rule.target +
                                 " has stray free variable " + v);
    }
  }
  for (const std::string& mentioned : rule.formula->MentionedRelations()) {
    if (data.RelationIndex(mentioned) < 0) {
      return core::Status::Error(context + ": rule for " + rule.target +
                                 " mentions unknown relation " + mentioned);
    }
  }
  if (rule.formula->MaxParameterIndex() >= max_parameters) {
    return core::Status::Error(context + ": rule for " + rule.target +
                               " uses parameter $" +
                               std::to_string(rule.formula->MaxParameterIndex()) +
                               " but the request supplies only " +
                               std::to_string(max_parameters));
  }
  return core::Status();
}

}  // namespace

core::Status DynProgram::Validate() const {
  for (const UpdateRule& rule : init_) {
    core::Status s = CheckRule(*data_, rule, /*max_parameters=*/0, name_ + " init");
    if (!s.ok()) return s;
  }
  for (const auto& [key, request_rules] : rules_) {
    const auto& [kind, input_name] = key;
    int max_parameters = 0;
    std::string context = name_;
    switch (kind) {
      case relational::RequestKind::kInsert:
      case relational::RequestKind::kDelete: {
        int index = input_->RelationIndex(input_name);
        if (index < 0) {
          return core::Status::Error(name_ + ": rules registered for unknown input " +
                                     "relation " + input_name);
        }
        max_parameters = input_->relation(index).arity;
        context += kind == relational::RequestKind::kInsert ? " ins(" : " del(";
        context += input_name + ")";
        break;
      }
      case relational::RequestKind::kSetConstant: {
        if (input_->ConstantIndex(input_name) < 0) {
          return core::Status::Error(name_ + ": rules registered for unknown input " +
                                     "constant " + input_name);
        }
        max_parameters = 1;
        context += " set(" + input_name + ")";
        break;
      }
    }
    for (const UpdateRule& rule : request_rules.lets) {
      core::Status s = CheckRule(*data_, rule, max_parameters, context + " let");
      if (!s.ok()) return s;
    }
    for (const UpdateRule& rule : request_rules.updates) {
      core::Status s = CheckRule(*data_, rule, max_parameters, context);
      if (!s.ok()) return s;
    }
  }
  if (bool_query_ != nullptr) {
    if (!bool_query_->FreeVariables().empty()) {
      return core::Status::Error(name_ + ": boolean query has free variables");
    }
    for (const std::string& mentioned : bool_query_->MentionedRelations()) {
      if (data_->RelationIndex(mentioned) < 0) {
        return core::Status::Error(name_ + ": query mentions unknown relation " +
                                   mentioned);
      }
    }
  }
  for (const auto& [query_name, query] : named_queries_) {
    for (const std::string& v : query.formula->FreeVariables()) {
      if (std::find(query.tuple_variables.begin(), query.tuple_variables.end(), v) ==
          query.tuple_variables.end()) {
        return core::Status::Error(name_ + ": named query " + query_name +
                                   " has stray free variable " + v);
      }
    }
  }
  return core::Status();
}

int DynProgram::MaxQuantifierDepth() const {
  int depth = 0;
  auto consider = [&depth](const fo::FormulaPtr& f) {
    if (f != nullptr) depth = std::max(depth, f->QuantifierDepth());
  };
  for (const UpdateRule& rule : init_) consider(rule.formula);
  for (const auto& [key, request_rules] : rules_) {
    (void)key;
    for (const UpdateRule& rule : request_rules.lets) consider(rule.formula);
    for (const UpdateRule& rule : request_rules.updates) consider(rule.formula);
  }
  consider(bool_query_);
  for (const auto& [name, query] : named_queries_) {
    (void)name;
    consider(query.formula);
  }
  return depth;
}

int DynProgram::MaxVariableWidth() const {
  int width = 0;
  auto consider = [&width](const fo::FormulaPtr& f) {
    if (f != nullptr) width = std::max(width, f->VariableWidth());
  };
  for (const UpdateRule& rule : init_) consider(rule.formula);
  for (const auto& [key, request_rules] : rules_) {
    (void)key;
    for (const UpdateRule& rule : request_rules.lets) consider(rule.formula);
    for (const UpdateRule& rule : request_rules.updates) consider(rule.formula);
  }
  consider(bool_query_);
  for (const auto& [name, query] : named_queries_) {
    (void)name;
    consider(query.formula);
  }
  return width;
}

}  // namespace dynfo::dyn
