#include "dynfo/engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "core/text.h"
#include "core/thread_pool.h"
#include "fo/eval_naive.h"
#include "fo/normalize.h"
#include "relational/serialize.h"

namespace dynfo::dyn {

namespace {

bool IsQuantifierFree(const fo::Formula& f) {
  if (f.kind() == fo::FormulaKind::kExists || f.kind() == fo::FormulaKind::kForall) {
    return false;
  }
  for (const fo::FormulaPtr& child : f.children()) {
    if (!IsQuantifierFree(*child)) return false;
  }
  return true;
}

/// True iff `f` is Atom(R, x1, ..., xk) with args exactly the rule's tuple
/// variables, in order — the anchor shape a delta decomposition reads.
bool IsBaseAtom(const fo::Formula& f, const UpdateRule& rule) {
  if (f.kind() != fo::FormulaKind::kAtom) return false;
  if (f.args().size() != rule.tuple_variables.size()) return false;
  for (size_t i = 0; i < f.args().size(); ++i) {
    const fo::Term& t = f.args()[i];
    if (!t.is_variable() || t.name() != rule.tuple_variables[i]) return false;
  }
  return true;
}

bool HasDuplicates(const std::vector<std::string>& names) {
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) return true;
    }
  }
  return false;
}

}  // namespace

Engine::Engine(std::shared_ptr<const DynProgram> program, size_t universe_size,
               EngineOptions options)
    : program_(std::move(program)),
      options_(options),
      data_(program_->data_vocabulary(), universe_size) {
  core::Status status = program_->Validate();
  DYNFO_CHECK(status.ok()) << status.message();
  // First-order initialization (f_n(empty), paper condition 4): rules run in
  // order, each seeing the results of the previous ones.
  for (const UpdateRule& rule : program_->init_rules()) {
    fo::EvalContext ctx(data_, {}, eval_options());
    data_.relation(rule.target) = EvalRuleFull(rule, ctx, options_.eval_mode);
  }
  backend_conversions_ += data_.ConfigureBackends(backend_policy());
  PrecompileProgram();
}

relational::BackendPolicy Engine::backend_policy() const {
  if (options_.eval_mode != EvalMode::kAlgebra || !options_.use_dense_relations) {
    return relational::BackendPolicy::kHashOnly;
  }
  return options_.force_dense_backend ? relational::BackendPolicy::kForceDense
                                      : relational::BackendPolicy::kAuto;
}

void Engine::ReapplyBackend(int relation_index) {
  if (data_.relation(relation_index).ConfigureBackend(backend_policy(),
                                                      data_.universe_size())) {
    ++backend_conversions_;
  }
}

void Engine::BuildDenseBundles() {
  dense_rules_.clear();
  dense_memo_.Clear();
  dense_query_ = nullptr;
  dense_query_bit_ = -1;
  if (backend_policy() == relational::BackendPolicy::kHashOnly ||
      !options_.use_compiled_plans) {
    return;
  }
  // Stack-array bound in TryDenseApply; no real program comes close.
  constexpr size_t kMaxDenseRules = 16;
  const relational::Vocabulary& vocab = data_.vocabulary();
  for (const auto& [key, rules] : program_->rules()) {
    DenseRuleBundle bundle;
    bundle.eligible =
        rules.lets.empty() && !rules.updates.empty() &&
        rules.updates.size() <= kMaxDenseRules;
    std::set<int> views;
    for (const UpdateRule& rule : rules.updates) {
      if (!bundle.eligible) break;
      DenseRuleEntry entry;
      entry.target_index = vocab.RelationIndex(rule.target);
      entry.arity = static_cast<int>(rule.tuple_variables.size());
      // Duplicate tuple variables would need a diagonal restriction after
      // the kernel; the legacy path handles them instead.
      if (entry.target_index < 0 ||
          entry.arity > relational::DenseSet::kMaxDenseArity ||
          HasDuplicates(rule.tuple_variables)) {
        bundle.eligible = false;
        break;
      }
      entry.program = fo::LowerToDense(rule.formula, rule.tuple_variables, vocab);
      if (entry.program == nullptr) {
        bundle.eligible = false;
        break;
      }
      views.insert(entry.program->view_relations.begin(),
                   entry.program->view_relations.end());
      bundle.entries.push_back(std::move(entry));
    }
    if (!bundle.eligible) bundle.entries.clear();
    bundle.view_inputs.assign(views.begin(), views.end());
    // Mirror plumbing, precomputed to mirror TryApply's tail exactly.
    if (key.first == relational::RequestKind::kSetConstant) {
      bundle.mirror_constant = vocab.ConstantIndex(key.second);
    } else {
      bool shadowed = false;
      for (const UpdateRule& rule : rules.updates) {
        if (rule.target == key.second) shadowed = true;
      }
      if (!shadowed) bundle.mirror_relation = vocab.RelationIndex(key.second);
    }
    dense_rules_.emplace(&rules, std::move(bundle));
  }
  if (program_->bool_query() != nullptr) {
    dense_query_ = fo::LowerToDense(program_->bool_query(), {}, vocab);
    if (dense_query_ != nullptr &&
        dense_query_->root->kind == fo::DenseOpKind::kAtom &&
        dense_query_->root->relation_arity == 0 &&
        dense_query_->root->args.empty()) {
      dense_query_bit_ = dense_query_->root->relation_index;
    }
  }
}

void Engine::PrecompileProgram() {
  BuildDenseBundles();
  if (options_.eval_mode != EvalMode::kAlgebra || !options_.use_compiled_plans) return;
  fo::EvalContext ctx(data_, {}, eval_options());
  auto precompile = [&](const fo::FormulaPtr& formula) {
    if (formula == nullptr) return;
    fo::PlanPtr plan = algebra_.Precompile(formula, ctx);
    if (options_.use_indexes) fo::RegisterPlanIndexes(*plan, data_);
  };
  // Mirrors TryApply's path selection exactly so the hot path runs zero
  // planner invocations in every gate configuration: the semi-naive paths
  // need persistent indexes, so with use_indexes off Apply takes the legacy
  // delta (or full) path and needs those formulas compiled instead.
  for (const auto& [key, rules] : program_->rules()) {
    for (const UpdateRule& rule : rules.lets) {
      const DeltaPlan& plan = PlanFor(rule);
      const bool bounded = plan.applicable && plan.removals != nullptr &&
                           plan.removals->bounded;
      if (options_.use_delta && options_.use_indexes && bounded) {
        // Semi-naive let: Apply evaluates the removal program and the
        // additions, never the full formula (which stays lazily compilable
        // for tier-override fallbacks).
        if (plan.additions->kind() != fo::FormulaKind::kFalse) {
          precompile(plan.additions);
        }
        fo::RegisterDeltaProgramIndexes(*plan.removals, data_);
      } else {
        precompile(rule.formula);
      }
    }
    for (const UpdateRule& rule : rules.updates) {
      const DeltaPlan& plan = PlanFor(rule);
      const bool bounded = plan.removals != nullptr && plan.removals->bounded;
      const bool semi = options_.use_delta && options_.use_indexes &&
                        plan.applicable && bounded;
      if (options_.use_delta && plan.applicable &&
          (semi || plan.base == rule.target)) {
        // Delta path: the keep-filter when it is evaluated set-wise (the
        // legacy removal scan; the semi-naive program replaces it), and the
        // additions unless trivially empty.
        if (!semi && plan.keep->kind() != fo::FormulaKind::kTrue &&
            !IsQuantifierFree(*plan.keep)) {
          precompile(plan.keep);
        }
        if (plan.additions->kind() != fo::FormulaKind::kFalse) {
          precompile(plan.additions);
        }
        if (semi) {
          fo::RegisterDeltaProgramIndexes(*plan.removals, data_);
        }
      } else {
        // Full rematerialization: not decomposable, delta off, or a chained
        // base without an active semi-naive removal program.
        precompile(rule.formula);
      }
    }
  }
  if (program_->bool_query() != nullptr) precompile(program_->bool_query());
}

core::Status Engine::ReloadProgram(std::shared_ptr<const DynProgram> program) {
  DYNFO_CHECK(program != nullptr);
  core::Status status = program->Validate();
  if (!status.ok()) return status;
  if (program->data_vocabulary() != program_->data_vocabulary() ||
      program->input_vocabulary() != program_->input_vocabulary()) {
    return core::Status::Error(
        "ReloadProgram requires the new program to share the old program's "
        "vocabulary objects");
  }
  program_ = std::move(program);
  // Both caches key on the old program's objects (rule addresses, formula
  // identities) and would dangle or silently serve stale plans.
  plans_.clear();
  algebra_.ClearPlanCache();
  PrecompileProgram();
  return core::Status();
}

relational::Relation Engine::EvalRuleFull(const UpdateRule& rule,
                                          const fo::EvalContext& ctx,
                                          EvalMode mode) const {
  if (mode == EvalMode::kNaive) {
    return fo::NaiveEvaluator::EvaluateAsRelation(rule.formula, rule.tuple_variables,
                                                  ctx);
  }
  return algebra_.EvaluateAsRelation(rule.formula, rule.tuple_variables, ctx);
}

const Engine::DeltaPlan& Engine::PlanFor(const UpdateRule& rule) {
  auto it = plans_.find(&rule);
  if (it != plans_.end()) return it->second;

  DeltaPlan plan;
  std::vector<fo::FormulaPtr> disjuncts;
  if (rule.formula->kind() == fo::FormulaKind::kOr) {
    disjuncts = rule.formula->children();
  } else {
    disjuncts = {rule.formula};
  }
  // Pass 1 anchors on the rule's own target atom (the classic in-place
  // shape); pass 2 accepts any other data relation's atom, which lets
  // deltas chain through lets (e.g. reach_u's PV' = T | additions reads the
  // T let, itself a delta over PV).
  auto decompose = [&](bool target_only) {
    for (size_t i = 0; i < disjuncts.size() && !plan.applicable; ++i) {
      std::vector<fo::FormulaPtr> conjuncts;
      if (disjuncts[i]->kind() == fo::FormulaKind::kAnd) {
        conjuncts = disjuncts[i]->children();
      } else {
        conjuncts = {disjuncts[i]};
      }
      for (size_t j = 0; j < conjuncts.size(); ++j) {
        if (!IsBaseAtom(*conjuncts[j], rule)) continue;
        if (target_only != (conjuncts[j]->relation() == rule.target)) continue;
        std::vector<fo::FormulaPtr> keep(conjuncts);
        keep.erase(keep.begin() + static_cast<ptrdiff_t>(j));
        std::vector<fo::FormulaPtr> additions(disjuncts);
        additions.erase(additions.begin() + static_cast<ptrdiff_t>(i));
        plan.applicable = true;
        plan.base = conjuncts[j]->relation();
        plan.keep = fo::Formula::And(std::move(keep));
        plan.additions = fo::Formula::Or(std::move(additions));
        break;
      }
    }
  };
  decompose(/*target_only=*/true);
  if (!plan.applicable) decompose(/*target_only=*/false);

  // Compile the semi-naive removal program while we are here, under the same
  // gates the hot path checks, so Apply never plans.
  const bool trivial_keep =
      plan.applicable && plan.keep->kind() == fo::FormulaKind::kTrue;
  if (plan.applicable && options_.eval_mode == EvalMode::kAlgebra &&
      options_.use_delta && options_.use_compiled_plans &&
      // Duplicate tuple variables make position→column mapping ambiguous
      // for a removal plan (harmless when nothing is ever removed).
      (trivial_keep || !HasDuplicates(rule.tuple_variables))) {
    const fo::FormulaPtr not_keep =
        trivial_keep ? nullptr : fo::ToNnf(fo::Formula::Not(plan.keep));
    const int base_index = data_.vocabulary().RelationIndex(plan.base);
    DYNFO_CHECK(base_index >= 0) << "unknown base relation " << plan.base;
    fo::EvalContext ctx(data_, {}, eval_options());
    plan.removals = std::make_shared<const fo::DeltaProgram>(
        algebra_.CompileDeltaRemovals(
            not_keep, rule.tuple_variables, base_index,
            static_cast<int>(rule.tuple_variables.size()), ctx));
  }
  return plans_.emplace(&rule, std::move(plan)).first->second;
}

void Engine::Apply(const relational::Request& request) {
  core::Status status = TryApply(request);
  DYNFO_CHECK(status.ok()) << status.ToString();
}

Engine::DenseApplyOutcome Engine::TryDenseApply(
    const relational::Request& request, const core::ExecGovernor* governor) {
  DenseLookupMemo::Entry& memo =
      dense_memo_.by_kind[static_cast<int>(request.kind)];
  if (memo.bundle == nullptr || memo.target != request.target) {
    const RequestRules* rules = program_->RulesFor(request.kind, request.target);
    if (rules == nullptr) return DenseApplyOutcome::kIneligible;
    const auto found = dense_rules_.find(rules);
    if (found == dense_rules_.end()) return DenseApplyOutcome::kIneligible;
    memo.target = request.target;
    memo.bundle = &found->second;
  }
  const DenseRuleBundle& bundle = *memo.bundle;
  if (!bundle.eligible) return DenseApplyOutcome::kIneligible;
  // Per-request conditions: every target currently dense-backed with no
  // live indexes (a whole-plane rewrite would drop them), every
  // slot-probed input dense-backed. Any miss falls back to the legacy
  // path, which is always correct.
  for (const DenseRuleEntry& entry : bundle.entries) {
    const relational::Relation& target = data_.relation(entry.target_index);
    if (target.backend() != relational::RelationBackend::kDense ||
        target.num_indexes() != 0) {
      return DenseApplyOutcome::kIneligible;
    }
  }
  for (int index : bundle.view_inputs) {
    if (data_.relation(index).backend() != relational::RelationBackend::kDense) {
      return DenseApplyOutcome::kIneligible;
    }
  }
  // Committed to the kernel path. Fold overlays so every slot-probed input
  // answers from its bit planes (deterministic: depends only on state).
  for (int index : bundle.view_inputs) data_.relation(index).PrepareDenseView();

  relational::Element params[relational::Tuple::kMaxArity] = {0, 0, 0, 0};
  int num_params = 0;
  if (request.kind == relational::RequestKind::kSetConstant) {
    params[num_params++] = request.value;
  } else {
    for (int i = 0; i < request.tuple.size(); ++i) {
      params[num_params++] = request.tuple[i];
    }
  }
  fo::DenseExecContext ctx;
  ctx.structure = &data_;
  ctx.params = params;
  ctx.num_params = num_params;
  ctx.governor = governor;
  ctx.stats = algebra_.live_stats();
  ctx.parallel = {options_.num_threads, options_.parallel_grain, governor};

  // Evaluate-then-commit: every program reads the old planes and writes an
  // exec-local result (synchronous semantics), so a governor stop aborts
  // with nothing mutated.
  constexpr size_t kMaxDenseRules = 16;  // enforced by BuildDenseBundles
  fo::DenseResult results[kMaxDenseRules];
  for (size_t i = 0; i < bundle.entries.size(); ++i) {
    if (!fo::ExecuteDenseProgram(*bundle.entries[i].program, ctx, &results[i])) {
      return DenseApplyOutcome::kAborted;
    }
  }

  // Commit: whole-plane rewrites, then the usual input mirror; re-run the
  // cost model on everything touched (the commit-boundary contract).
  const size_t n = data_.universe_size();
  uint64_t written = 0;
  for (size_t i = 0; i < bundle.entries.size(); ++i) {
    const DenseRuleEntry& entry = bundle.entries[i];
    relational::Relation& target = data_.relation(entry.target_index);
    uint64_t* words = target.BeginDenseRewrite(n)->mutable_words();
    if (entry.arity == 0) {
      if (results[i].bit) words[0] = 1;
    } else {
      std::copy(results[i].words.begin(), results[i].words.end(), words);
    }
    target.FinishDenseRewrite();
    written += target.size();
  }
  switch (request.kind) {
    case relational::RequestKind::kInsert:
    case relational::RequestKind::kDelete: {
      if (bundle.mirror_relation < 0) break;
      relational::Relation& rel = data_.relation(bundle.mirror_relation);
      DYNFO_CHECK(rel.arity() == request.tuple.size());
      if (request.kind == relational::RequestKind::kInsert) {
        if (rel.Insert(request.tuple)) ++stats_.tuples_inserted;
      } else {
        if (rel.Erase(request.tuple)) ++stats_.tuples_erased;
      }
      // Arity <= 1 wants dense under every non-hash policy regardless of
      // size (see Relation::WantsDense), and this path only runs on dense
      // relations under such a policy — the cost model can only flip an
      // arity-2 plane, so skip the guaranteed no-ops on the hot path.
      if (rel.arity() == 2) ReapplyBackend(bundle.mirror_relation);
      break;
    }
    case relational::RequestKind::kSetConstant:
      if (bundle.mirror_constant >= 0) {
        data_.set_constant(bundle.mirror_constant, request.value);
      }
      break;
  }
  for (const DenseRuleEntry& entry : bundle.entries) {
    if (entry.arity == 2) ReapplyBackend(entry.target_index);
  }

  ++stats_.requests;
  ++stats_.dense_applies;
  stats_.relations_recomputed += bundle.entries.size();
  stats_.tuples_written += written;
  return DenseApplyOutcome::kApplied;
}

ExecTier Engine::ConfiguredTier() const {
  if (options_.eval_mode == EvalMode::kNaive) return ExecTier::kNaive;
  if (options_.use_compiled_plans && options_.use_indexes) {
    return ExecTier::kCompiledIndexed;
  }
  return ExecTier::kCompiled;
}

core::Status Engine::ValidateIndexes() const {
  for (int i = 0; i < data_.vocabulary().num_relations(); ++i) {
    core::Status status = data_.relation(i).ValidateIndexes();
    if (!status.ok()) {
      return core::Status::Corruption("relation " +
                                      data_.vocabulary().relation(i).name + ": " +
                                      status.message());
    }
  }
  return core::Status();
}

void Engine::RebuildCompiledState() {
  for (int i = 0; i < data_.vocabulary().num_relations(); ++i) {
    data_.relation(i).DropIndexes();
  }
  plans_.clear();
  algebra_.ClearPlanCache();
  PrecompileProgram();
}

core::Status Engine::TryApply(const relational::Request& request,
                              const ApplyGovernance& governance,
                              std::optional<ExecTier> tier, ApplyReport* report) {
  DYNFO_CHECK(!(program_->semi_dynamic() &&
                request.kind == relational::RequestKind::kDelete))
      << program_->name() << " is semi-dynamic (Dyn_s): deletes are not supported";

  // Dense whole-request fast path, ungoverned form: checked before any
  // governance scaffolding or clocks — the kernels answer small-universe
  // requests in well under the cost of a steady_clock read. `report`
  // callers fall through (the legacy path owns report bookkeeping), as do
  // tier-pinned requests (the ladder's tiers are the hash evaluators).
  if (!governance.active() && report == nullptr && !tier.has_value() &&
      !dense_rules_.empty()) {
    switch (TryDenseApply(request, nullptr)) {
      case DenseApplyOutcome::kApplied:
        return core::Status();
      case DenseApplyOutcome::kAborted:
        DYNFO_UNREACHABLE();  // no governor attached
      case DenseApplyOutcome::kIneligible:
        break;
    }
  }

  // Governance setup. An inactive governance keeps `governor` null so every
  // poll below is one pointer compare — the ungoverned hot path is the
  // legacy Apply, unchanged.
  const bool governed = governance.active();
  core::ResourceBudget budget(governance.limits);
  if (governance.fail_alloc_after_charges != 0) {
    budget.FailAfterCharges(governance.fail_alloc_after_charges);
  }
  core::ExecGovernor governor_storage(
      governance.deadline_ms == 0 ? core::Deadline::Infinite()
                                  : core::Deadline::AfterMillis(governance.deadline_ms),
      governance.cancel, &budget);
  if (governance.trip_after_checks != 0) {
    governor_storage.TripAtCheck(governance.trip_after_checks);
  }
  if (governance.stall_at_check != 0) {
    governor_storage.StallAtCheck(governance.stall_at_check, governance.stall_ms);
  }
  const core::ExecGovernor* governor = governed ? &governor_storage : nullptr;

  auto fill_report = [&] {
    if (report == nullptr) return;
    report->code = governed ? governor_storage.code() : core::StatusCode::kOk;
    report->governor_checks = governed ? governor_storage.checks() : 0;
    report->tuples_charged = budget.tuples_charged();
    report->bytes_charged = budget.bytes_charged();
  };

  // Untrusted callers reach the engine through governance; malformed
  // requests become typed errors instead of downstream CHECK failures.
  // The ungoverned path keeps the legacy trusted-caller contract.
  if (governed) {
    core::Status valid = relational::ValidateRequest(
        *program_->input_vocabulary(), data_.universe_size(), request);
    if (!valid.ok()) {
      fill_report();
      return valid;
    }
  }

  core::Status status = ApplyCore(request, governor, tier);
  fill_report();
  return status;
}

void Engine::ApplyBatch(std::span<const relational::Request> requests) {
  core::Status status = TryApplyBatch(requests);
  DYNFO_CHECK(status.ok()) << status.ToString();
}

core::Status Engine::TryApplyBatch(std::span<const relational::Request> requests,
                                   const ApplyGovernance& governance,
                                   BatchReport* report) {
  for (const relational::Request& request : requests) {
    DYNFO_CHECK(!(program_->semi_dynamic() &&
                  request.kind == relational::RequestKind::kDelete))
        << program_->name()
        << " is semi-dynamic (Dyn_s): deletes are not supported";
  }

  // One governor for the whole batch: the deadline, cancellation token, and
  // resource budget cover every request in it, and the setup cost — the
  // per-request constant a batch amortizes — is paid once.
  const bool governed = governance.active();
  core::ResourceBudget budget(governance.limits);
  if (governance.fail_alloc_after_charges != 0) {
    budget.FailAfterCharges(governance.fail_alloc_after_charges);
  }
  core::ExecGovernor governor_storage(
      governance.deadline_ms == 0 ? core::Deadline::Infinite()
                                  : core::Deadline::AfterMillis(governance.deadline_ms),
      governance.cancel, &budget);
  if (governance.trip_after_checks != 0) {
    governor_storage.TripAtCheck(governance.trip_after_checks);
  }
  if (governance.stall_at_check != 0) {
    governor_storage.StallAtCheck(governance.stall_at_check, governance.stall_ms);
  }
  const core::ExecGovernor* governor = governed ? &governor_storage : nullptr;

  size_t applied = 0;
  auto fill_report = [&] {
    if (report == nullptr) return;
    report->code = governed ? governor_storage.code() : core::StatusCode::kOk;
    report->applied = applied;
    report->governor_checks = governed ? governor_storage.checks() : 0;
    report->tuples_charged = budget.tuples_charged();
    report->bytes_charged = budget.bytes_charged();
  };
  auto fold_batch_stats = [&] {
    if (applied == 0) return;
    ++stats_.batches;
    stats_.batch_requests += applied;
  };

  // One validation sweep up front: a malformed request anywhere in the
  // batch rejects the WHOLE batch before any request applies, so a group
  // commit never records a batch that was only partially acceptable.
  if (governed) {
    for (const relational::Request& request : requests) {
      core::Status valid = relational::ValidateRequest(
          *program_->input_vocabulary(), data_.universe_size(), request);
      if (!valid.ok()) {
        fill_report();
        return valid;
      }
    }
  }

  // Sequential synchronous steps — the ONLY evaluation order that is
  // bit-identical to per-request Apply in general, since request k+1's
  // update formulas must read the structure as request k left it. Each
  // request stays individually atomic (evaluate-then-commit), so a governor
  // stop leaves the engine at the last fully-applied prefix.
  for (const relational::Request& request : requests) {
    core::Status status = ApplyCore(request, governor, std::nullopt);
    if (!status.ok()) {
      fold_batch_stats();
      fill_report();
      return status;
    }
    ++applied;
  }
  fold_batch_stats();
  fill_report();
  return core::Status();
}

relational::RequestSequence Engine::MaterializeDefinableChange(
    const DefinableChange& change) const {
  DYNFO_CHECK(change.mode != relational::RequestKind::kSetConstant)
      << "definable changes insert or delete tuple sets";
  const int index = program_->input_vocabulary()->RelationIndex(change.target);
  DYNFO_CHECK(index >= 0) << "definable change targets unknown input relation "
                          << change.target;
  DYNFO_CHECK(program_->input_vocabulary()->relation(index).arity ==
              static_cast<int>(change.tuple_variables.size()))
      << "definable change arity mismatch for " << change.target;
  DYNFO_CHECK(change.formula != nullptr) << "definable change without a formula";

  // The change set, evaluated like an update rule's right-hand side: the
  // configured evaluator compiles the formula through the plan cache (and
  // probes persistent indexes) exactly as the per-request hot path does.
  fo::EvalContext ctx(data_, {}, eval_options());
  relational::Relation result =
      options_.eval_mode == EvalMode::kNaive
          ? fo::NaiveEvaluator::EvaluateAsRelation(change.formula,
                                                   change.tuple_variables, ctx)
          : algebra_.EvaluateAsRelation(change.formula, change.tuple_variables, ctx);

  // Canonical order: sorted tuples, so the expansion — and therefore the
  // journal and every downstream state — is identical whichever evaluator
  // or backend materialized the set.
  std::vector<relational::Tuple> tuples(result.begin(), result.end());
  std::sort(tuples.begin(), tuples.end());
  relational::RequestSequence out;
  out.reserve(tuples.size());
  for (const relational::Tuple& t : tuples) {
    out.push_back(change.mode == relational::RequestKind::kInsert
                      ? relational::Request::Insert(change.target, t)
                      : relational::Request::Delete(change.target, t));
  }
  return out;
}

core::Status Engine::TryApplyDefinable(const DefinableChange& change,
                                       const ApplyGovernance& governance,
                                       BatchReport* report) {
  const relational::RequestSequence requests = MaterializeDefinableChange(change);
  return TryApplyBatch(requests, governance, report);
}

core::Status Engine::ApplyCore(const relational::Request& request,
                               const core::ExecGovernor* governor,
                               std::optional<ExecTier> tier) {
  const bool governed = governor != nullptr;

  // Tier override: pin this request's evaluation mode and plan/index gates,
  // leaving the engine's configured options untouched.
  EvalMode mode = options_.eval_mode;
  fo::EvalOptions eopts = eval_options();
  bool use_delta = options_.use_delta;
  if (tier.has_value()) {
    switch (*tier) {
      case ExecTier::kCompiledIndexed:
        mode = EvalMode::kAlgebra;
        eopts.use_compiled_plans = true;
        eopts.use_indexes = true;
        break;
      case ExecTier::kCompiled:
        mode = EvalMode::kAlgebra;
        eopts.use_compiled_plans = true;
        eopts.use_indexes = false;
        break;
      case ExecTier::kNaive:
      case ExecTier::kStartOver:  // the rebuild itself happens above us
        mode = EvalMode::kNaive;
        use_delta = false;
        break;
    }
  }

  // Governed (or report-carrying) dense path: the same kernels with the
  // governor polled at op and chunk boundaries. An abort mutates nothing.
  if (!tier.has_value() && !dense_rules_.empty()) {
    switch (TryDenseApply(request, governor)) {
      case DenseApplyOutcome::kApplied:
        return core::Status();
      case DenseApplyOutcome::kAborted:
        return governor->status();
      case DenseApplyOutcome::kIneligible:
        break;
    }
  }

  std::vector<relational::Element> params;
  if (request.kind == relational::RequestKind::kSetConstant) {
    params = {request.value};
  } else {
    for (int i = 0; i < request.tuple.size(); ++i) params.push_back(request.tuple[i]);
  }
  fo::EvalContext ctx(data_, params, eopts);
  ctx.governor = governor;

  const RequestRules* rules = program_->RulesFor(request.kind, request.target);
  const auto phase_start = std::chrono::steady_clock::now();
  auto seconds_since = [](std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  // Stats are accumulated locally and folded into stats_ only after the
  // commit point: an aborted Apply leaves the counters (and therefore
  // Snapshot(), which embeds the request count) untouched.
  double lets_eval_seconds = 0;
  uint64_t lets_recomputed = 0;
  uint64_t lets_tuples_written = 0;
  uint64_t lets_delta_rules = 0;
  uint64_t lets_fallbacks = 0;
  uint64_t lets_delta_written = 0;
  std::vector<std::pair<std::string, double>> let_seconds;

  // One semi-naive step: erase `removals` from a relation, then insert
  // `additions`. A let computed as base ± op records its op chain back to a
  // root relation (LetProvenance) so an update rule whose decomposition base
  // is that let can replay the chain onto its own target in place — keeping
  // the target's persistent indexes alive across the Apply.
  struct DeltaOps {
    std::vector<relational::Tuple> removals;
    std::vector<relational::Tuple> additions;
  };
  struct LetProvenance {
    std::string root;           ///< the non-let relation the chain starts from
    std::vector<DeltaOps> ops;  ///< replay in order: root ± ops == let value
  };
  std::map<std::string, LetProvenance> let_provenance;

  const bool delta_configured = use_delta && mode == EvalMode::kAlgebra;
  auto semi_naive = [&](const DeltaPlan& plan) {
    return delta_configured && eopts.use_compiled_plans && eopts.use_indexes &&
           plan.applicable && plan.removals != nullptr && plan.removals->bounded;
  };

  // Temporaries: evaluated in order, committed immediately so later rules in
  // this same request can read them. They never shadow non-let relations'
  // old values because validated programs use distinct let targets. Lets
  // feed each other, so they stay sequential (their operators still
  // parallelize internally). Because lets mutate data_ before the request's
  // commit point, a governed Apply snapshots each let's old value and rolls
  // it back on abort (ungoverned Applies never abort and skip the copies).
  std::vector<std::pair<std::string, relational::Relation>> let_rollback;
  auto abort_with = [&](core::Status status) {
    for (auto it = let_rollback.rbegin(); it != let_rollback.rend(); ++it) {
      data_.relation(it->first) = std::move(it->second);
    }
    return status;
  };

  if (rules != nullptr) {
    for (const UpdateRule& rule : rules->lets) {
      const auto rule_start = std::chrono::steady_clock::now();
      const DeltaPlan& plan = PlanFor(rule);
      relational::Relation result{0};
      if (semi_naive(plan)) {
        // Semi-naive: the let is base ± a small delta. Share the base's
        // storage (copy-on-write) and touch only the changed tuples.
        DeltaOps op;
        op.removals = algebra_.DeltaRemovals(*plan.removals, ctx);
        if (plan.additions->kind() != fo::FormulaKind::kFalse) {
          relational::Relation adds =
              algebra_.EvaluateAsRelation(plan.additions, rule.tuple_variables, ctx);
          op.additions.assign(adds.begin(), adds.end());
        }
        result = data_.relation(plan.base);
        for (const relational::Tuple& t : op.removals) result.Erase(t);
        for (const relational::Tuple& t : op.additions) result.Insert(t);
        lets_delta_written += op.removals.size() + op.additions.size();
        ++lets_delta_rules;
        LetProvenance prov;
        auto chained = let_provenance.find(plan.base);
        if (chained != let_provenance.end()) {
          prov = chained->second;
        } else {
          prov.root = plan.base;
        }
        prov.ops.push_back(std::move(op));
        let_provenance[rule.target] = std::move(prov);
      } else {
        result = EvalRuleFull(rule, ctx, mode);
        ++lets_recomputed;
        lets_tuples_written += result.size();
        if (delta_configured) ++lets_fallbacks;
      }
      if (governed && governor->stopped()) {
        return abort_with(governor->status());
      }
      const double elapsed = seconds_since(rule_start);
      let_seconds.emplace_back(rule.target, elapsed);
      lets_eval_seconds += elapsed;
      if (governed) {
        let_rollback.emplace_back(rule.target, data_.relation(rule.target));
      }
      data_.relation(rule.target) = std::move(result);
    }
  }

  // Main updates: evaluate everything against the pre-request state (plus
  // lets), then commit atomically. Synchronous semantics makes the rules
  // independent — each reads only the old structure — so they evaluate
  // concurrently when num_threads > 1 (the paper's rule-level parallelism).
  struct Staged {
    const UpdateRule* rule = nullptr;
    const DeltaPlan* plan = nullptr;
    bool full = false;
    bool fallback = false;  ///< delta was configured but this rule ran full
    bool semi = false;      ///< removals came from the compiled delta program
    /// Commit strategy when the decomposition base is another relation:
    /// replace_with_delta swaps in a copy-on-write copy of base ± delta;
    /// in_place_compose replays the base let's op chain (plus this rule's own
    /// delta) onto the target, preserving its persistent indexes.
    bool replace_with_delta = false;
    bool in_place_compose = false;
    relational::Relation replacement{0};
    std::vector<relational::Tuple> removals;
    relational::Relation additions{0};
    std::vector<DeltaOps> compose_ops;
    uint64_t staged_erased = 0;
    uint64_t staged_inserted = 0;
    double seconds = 0;
  };
  std::vector<Staged> staged;
  std::set<std::string> targeted;
  if (rules != nullptr) {
    // Delta plans are cached in a map: compute them before fanning out.
    for (const UpdateRule& rule : rules->updates) {
      DYNFO_CHECK(targeted.insert(rule.target).second)
          << "two update rules target " << rule.target << " in one request";
      Staged s;
      s.rule = &rule;
      s.plan = &PlanFor(rule);
      staged.push_back(std::move(s));
    }
  }

  auto evaluate_one = [&](Staged& s) {
    const auto rule_start = std::chrono::steady_clock::now();
    const UpdateRule& rule = *s.rule;
    const DeltaPlan& plan = *s.plan;
    const bool delta = delta_configured && plan.applicable;
    const bool semi = semi_naive(plan);
    const bool base_is_target = plan.applicable && plan.base == rule.target;
    // Full rematerialization: no decomposition, or the base is a different
    // relation and the compiled removal program is unavailable (the chained
    // paths below require it).
    if (!delta || (!base_is_target && !semi)) {
      s.full = true;
      s.fallback = delta_configured;
      s.replacement = EvalRuleFull(rule, ctx, mode);
      s.seconds = seconds_since(rule_start);
      return;
    }
    // Removals: base tuples failing the keep-filter. With a bounded removal
    // program they come straight out of the compiled plan (O(delta)); the
    // legacy scans below walk the whole stored relation.
    if (semi) {
      s.semi = true;
      s.removals = algebra_.DeltaRemovals(*plan.removals, ctx);
    } else if (plan.keep->kind() != fo::FormulaKind::kTrue) {
      const relational::Relation& old = data_.relation(rule.target);
      size_t polls = 0;
      auto strided_stop = [&] {
        return governor != nullptr &&
               (polls++ % core::kGovernorStride) == 0 && ctx.ShouldStop();
      };
      if (IsQuantifierFree(*plan.keep)) {
        for (const relational::Tuple& t : old) {
          if (strided_stop()) break;
          fo::Env env;
          for (size_t i = 0; i < rule.tuple_variables.size(); ++i) {
            env.Push(rule.tuple_variables[i], t[static_cast<int>(i)]);
          }
          if (!fo::NaiveEvaluator::Holds(*plan.keep, ctx, &env)) s.removals.push_back(t);
        }
      } else {
        relational::Relation keep_set =
            algebra_.EvaluateAsRelation(plan.keep, rule.tuple_variables, ctx);
        for (const relational::Tuple& t : old) {
          if (strided_stop()) break;
          if (!keep_set.Contains(t)) s.removals.push_back(t);
        }
      }
      ctx.Charge(s.removals.size(), rule.tuple_variables.size());
    }
    // Additions.
    if (plan.additions->kind() != fo::FormulaKind::kFalse) {
      s.additions =
          algebra_.EvaluateAsRelation(plan.additions, rule.tuple_variables, ctx);
    } else {
      s.additions = relational::Relation(static_cast<int>(rule.tuple_variables.size()));
    }
    // Base is another relation: either the base is a let whose delta chain
    // roots at this rule's target (replay in place at commit), or the new
    // value is a copy-on-write copy of the base with this delta applied.
    if (!base_is_target) {
      auto prov = let_provenance.find(plan.base);
      if (prov != let_provenance.end() && prov->second.root == rule.target) {
        s.in_place_compose = true;
        s.compose_ops = prov->second.ops;
      } else {
        s.replace_with_delta = true;
        s.replacement = data_.relation(plan.base);
        for (const relational::Tuple& t : s.removals) {
          if (s.replacement.Erase(t)) ++s.staged_erased;
        }
        for (const relational::Tuple& t : s.additions) {
          if (s.replacement.Insert(t)) ++s.staged_inserted;
        }
      }
    }
    s.seconds = seconds_since(rule_start);
  };

  bool parallel_batch = false;
  if (options_.num_threads > 1 && staged.size() > 1) {
    core::TaskGroup group(&core::ThreadPool::Global());
    for (Staged& s : staged) {
      group.Add([&evaluate_one, &s] { evaluate_one(s); });
    }
    group.RunAndWait(options_.num_threads);
    parallel_batch = true;
  } else {
    for (Staged& s : staged) evaluate_one(s);
  }

  // The abort point: every result so far is staged (or rolled back below);
  // nothing past this line can fail, so commit is all-or-nothing.
  if (governed && governor->stopped()) {
    return abort_with(governor->status());
  }

  // Work accounting happens after the join so counters never race, and
  // after the abort point so a cancelled Apply leaves stats untouched.
  ++stats_.requests;
  if (parallel_batch) ++stats_.parallel_update_batches;
  for (const auto& [target, elapsed] : let_seconds) {
    stats_.rule_seconds[target] += elapsed;
  }
  stats_.rule_eval_seconds += lets_eval_seconds;
  stats_.relations_recomputed += lets_recomputed;
  stats_.tuples_written += lets_tuples_written + lets_delta_written;
  stats_.tuples_delta_written += lets_delta_written;
  stats_.delta_rules += lets_delta_rules;
  stats_.fallback_recomputes += lets_fallbacks;
  for (const Staged& s : staged) {
    stats_.rule_seconds[s.rule->target] += s.seconds;
    stats_.rule_eval_seconds += s.seconds;
    if (s.full) {
      ++stats_.relations_recomputed;
      stats_.tuples_written += s.replacement.size();
      if (s.fallback) ++stats_.fallback_recomputes;
    } else {
      ++stats_.delta_applications;
      if (s.semi) ++stats_.delta_rules;
      // Replayed compose_ops were counted when their lets ran; charge only
      // this rule's own delta.
      const uint64_t delta_written =
          s.replace_with_delta ? s.staged_erased + s.staged_inserted
                               : s.removals.size() + s.additions.size();
      stats_.tuples_delta_written += delta_written;
      stats_.tuples_written += delta_written;
      // Case C applied its delta to the staged copy at eval time; fold the
      // counts the commit loop would otherwise have recorded.
      stats_.tuples_erased += s.staged_erased;
      stats_.tuples_inserted += s.staged_inserted;
    }
  }
  stats_.update_wall_seconds += seconds_since(phase_start);

  // Commit.
  const auto commit_start = std::chrono::steady_clock::now();
  for (Staged& s : staged) {
    relational::Relation& target = data_.relation(s.rule->target);
    if (s.full || s.replace_with_delta) {
      target = std::move(s.replacement);
      continue;
    }
    if (s.in_place_compose) {
      for (const DeltaOps& op : s.compose_ops) {
        for (const relational::Tuple& t : op.removals) {
          if (target.Erase(t)) ++stats_.tuples_erased;
        }
        for (const relational::Tuple& t : op.additions) {
          if (target.Insert(t)) ++stats_.tuples_inserted;
        }
      }
    }
    for (const relational::Tuple& t : s.removals) {
      if (target.Erase(t)) ++stats_.tuples_erased;
    }
    for (const relational::Tuple& t : s.additions) {
      if (target.Insert(t)) ++stats_.tuples_inserted;
    }
  }

  // Mirror the raw input change into a same-named data symbol unless the
  // program redefined it explicitly.
  int mirror_index = -1;
  switch (request.kind) {
    case relational::RequestKind::kInsert:
    case relational::RequestKind::kDelete: {
      if (targeted.count(request.target) > 0) break;
      int index = data_.vocabulary().RelationIndex(request.target);
      if (index < 0) break;
      relational::Relation& rel = data_.relation(index);
      DYNFO_CHECK(rel.arity() == request.tuple.size());
      if (request.kind == relational::RequestKind::kInsert) {
        if (rel.Insert(request.tuple)) ++stats_.tuples_inserted;
      } else {
        if (rel.Erase(request.tuple)) ++stats_.tuples_erased;
      }
      mirror_index = index;
      break;
    }
    case relational::RequestKind::kSetConstant: {
      int index = data_.vocabulary().ConstantIndex(request.target);
      if (index >= 0) data_.set_constant(index, request.value);
      break;
    }
  }

  // Commit boundary: re-run the backend cost model on everything this
  // request wrote, so backend choice is a deterministic function of the
  // committed state (same options + same history => byte-identical
  // snapshots, whichever paths the requests took).
  if (backend_policy() != relational::BackendPolicy::kHashOnly) {
    if (rules != nullptr) {
      for (const UpdateRule& rule : rules->lets) {
        ReapplyBackend(data_.vocabulary().RelationIndex(rule.target));
      }
    }
    for (const Staged& s : staged) {
      ReapplyBackend(data_.vocabulary().RelationIndex(s.rule->target));
    }
    if (mirror_index >= 0) ReapplyBackend(mirror_index);
  }

  stats_.commit_seconds += seconds_since(commit_start);

  return core::Status();
}

std::string Engine::Snapshot() const {
  std::ostringstream payload;
  payload << "program " << program_->name() << "\n";
  payload << "steps " << stats_.requests << "\n";
  payload << relational::WriteStructure(data_);
  return relational::WrapChecksummed("snapshot", payload.str());
}

core::Status Engine::Restore(const std::string& snapshot) {
  core::Result<std::string> payload =
      relational::UnwrapChecksummed("snapshot", snapshot);
  if (!payload.ok()) return payload.status();

  std::istringstream in(payload.value());
  std::string keyword, name;
  if (!(in >> keyword >> name) || keyword != "program") {
    return core::Status::Error("snapshot missing 'program' line");
  }
  if (name != program_->name()) {
    return core::Status::Error("snapshot is for program '" + name + "', engine runs '" +
                               program_->name() + "'");
  }
  std::string steps_token;
  uint64_t steps = 0;
  if (!(in >> keyword >> steps_token) || keyword != "steps" ||
      !core::ParseU64(steps_token, &steps)) {
    return core::Status::Error("snapshot missing 'steps' line");
  }
  std::string rest;
  std::getline(in, rest);  // consume the newline after the steps line
  std::ostringstream structure_text;
  structure_text << in.rdbuf();

  core::Result<relational::Structure> restored =
      relational::ReadStructure(structure_text.str(), program_->data_vocabulary());
  if (!restored.ok()) {
    return core::Status::Error("snapshot structure: " + restored.status().message());
  }
  if (restored.value().universe_size() != data_.universe_size()) {
    return core::Status::Error(
        "snapshot universe size " + std::to_string(restored.value().universe_size()) +
        " != engine's " + std::to_string(data_.universe_size()));
  }
  data_ = std::move(restored).value();
  stats_.requests = steps;
  // Snapshots carry each relation's backend but not this engine's policy;
  // stamp it. Inside the hysteresis band this converts nothing (the band
  // test honors the serialized backend), so restoring a writer's snapshot
  // under the writer's options reproduces its state byte-for-byte.
  backend_conversions_ += data_.ConfigureBackends(backend_policy());
  // The restored structure carries no indexes and cached plans may have been
  // compiled against pre-restore state assumptions: drop the delta-plan map
  // and the plan cache, then recompile so the plans' indexes are registered
  // on the restored relations before the next request.
  plans_.clear();
  algebra_.ClearPlanCache();
  PrecompileProgram();
  return core::Status();
}

std::string Engine::SnapshotDelta(const relational::Structure& base,
                                  uint64_t base_steps) const {
  std::ostringstream payload;
  payload << "program " << program_->name() << "\n";
  payload << "base " << base_steps << "\n";
  payload << "steps " << stats_.requests << "\n";
  payload << relational::WriteStructureDelta(base, data_);
  return relational::WrapChecksummed("snapshot-delta", payload.str());
}

core::Status Engine::RestoreDelta(const std::string& blob) {
  core::Result<std::string> payload =
      relational::UnwrapChecksummed("snapshot-delta", blob);
  if (!payload.ok()) return payload.status();

  std::istringstream in(payload.value());
  std::string keyword, name;
  if (!(in >> keyword >> name) || keyword != "program") {
    return core::Status::Error("snapshot delta missing 'program' line");
  }
  if (name != program_->name()) {
    return core::Status::Error("snapshot delta is for program '" + name +
                               "', engine runs '" + program_->name() + "'");
  }
  std::string token;
  uint64_t base_steps = 0, steps = 0;
  if (!(in >> keyword >> token) || keyword != "base" ||
      !core::ParseU64(token, &base_steps)) {
    return core::Status::Error("snapshot delta missing 'base' line");
  }
  if (!(in >> keyword >> token) || keyword != "steps" ||
      !core::ParseU64(token, &steps)) {
    return core::Status::Error("snapshot delta missing 'steps' line");
  }
  if (base_steps != stats_.requests) {
    return core::Status::Error(
        "snapshot delta is against step " + std::to_string(base_steps) +
        " but the engine is at step " + std::to_string(stats_.requests));
  }
  if (steps < base_steps) {
    return core::Status::Error("snapshot delta runs backwards");
  }
  std::string rest;
  std::getline(in, rest);  // consume the newline after the steps line
  std::ostringstream delta_text;
  delta_text << in.rdbuf();

  // Stage on a CoW copy so a delta that fails mid-application (wrong base,
  // corruption the checksum somehow missed) leaves the engine untouched.
  relational::Structure staged = data_;
  core::Status status =
      relational::ApplyStructureDelta(&staged, delta_text.str());
  if (!status.ok()) {
    return core::Status::Error("snapshot delta: " + status.message());
  }
  data_ = std::move(staged);
  stats_.requests = steps;
  // Plans and the plan cache are compiled against the program, not the
  // data, so they remain valid; the relations' indexes were dropped by the
  // staged-copy assignment and rebuild lazily. Re-register them eagerly so
  // the first post-restore Apply doesn't pay the build inside a rule.
  PrecompileProgram();
  return core::Status();
}

bool Engine::QueryBool(std::vector<relational::Element> params) const {
  const fo::FormulaPtr& query = program_->bool_query();
  DYNFO_CHECK(query != nullptr) << program_->name() << " has no boolean query";
  // A nullary-atom query is a stored bit: read it off the plane directly —
  // no kernel, no evaluator. Falls through when an overlay is pending.
  if (dense_query_bit_ >= 0 && params.empty()) {
    if (const relational::DenseSet* view =
            data_.relation(dense_query_bit_).DenseBaseView()) {
      return (view->words()[0] & uint64_t{1}) != 0;
    }
  }
  // Dense route when the query lowered: a rank-0 kernel over the stored
  // planes. Read-only (missing views degrade to per-tuple probes inside the
  // executor), so it never perturbs state — queries stay "free".
  if (dense_query_ != nullptr &&
      params.size() <= static_cast<size_t>(relational::Tuple::kMaxArity)) {
    relational::Element pbuf[relational::Tuple::kMaxArity] = {0, 0, 0, 0};
    for (size_t i = 0; i < params.size(); ++i) pbuf[i] = params[i];
    fo::DenseExecContext ctx;
    ctx.structure = &data_;
    ctx.params = pbuf;
    ctx.num_params = static_cast<int>(params.size());
    ctx.stats = algebra_.live_stats();
    ctx.parallel = {options_.num_threads, options_.parallel_grain, nullptr};
    fo::DenseResult result;
    if (fo::ExecuteDenseProgram(*dense_query_, ctx, &result)) return result.bit;
  }
  return QuerySentence(query, std::move(params));
}

bool Engine::QuerySentence(const fo::FormulaPtr& sentence,
                           std::vector<relational::Element> params) const {
  fo::EvalContext ctx(data_, std::move(params), eval_options());
  if (options_.eval_mode == EvalMode::kNaive) {
    return fo::NaiveEvaluator::HoldsSentence(sentence, ctx);
  }
  return algebra_.HoldsSentence(sentence, ctx);
}

relational::Relation Engine::QueryRelation(const std::string& name,
                                           std::vector<relational::Element> params) const {
  const NamedQuery* query = program_->FindNamedQuery(name);
  DYNFO_CHECK(query != nullptr) << program_->name() << " has no query named " << name;
  fo::EvalContext ctx(data_, std::move(params), eval_options());
  if (options_.eval_mode == EvalMode::kNaive) {
    return fo::NaiveEvaluator::EvaluateAsRelation(query->formula, query->tuple_variables,
                                                  ctx);
  }
  return algebra_.EvaluateAsRelation(query->formula, query->tuple_variables, ctx);
}

}  // namespace dynfo::dyn
