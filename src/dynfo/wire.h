/// \file wire.h
/// The service wire protocol: the dynfo_cli script grammar as a request
/// language, length-prefixed frames as the transport, and the CLI's
/// exit-code taxonomy as the error model (DESIGN.md §15).
///
/// A frame is a 4-byte big-endian payload length followed by that many
/// bytes. Requests are script-grammar commands (`ins E 0 1`, `query`,
/// `eval ...`); a `batch ... end` block travels as ONE multi-line frame so
/// the group-commit boundary survives the transport. Responses are
/// `"<code> <body>"` where `<code>` is the CLI exit-code mapping of the
/// status taxonomy — so a script that branches on dynfo_cli exit codes can
/// branch on wire responses unchanged:
///
///   0 ok    1 error    2 usage    3 cancelled    4 deadline
///   5 resource exhausted (admission rejection -> retry with backoff)
///   6 corruption
///
/// The grammar helpers here (SplitWords/ParseMutation/ParseElements) are
/// the single parser shared by dynfo_cli, the server dispatch loop, and
/// the client — one grammar, three front ends.

#ifndef DYNFO_DYNFO_WIRE_H_
#define DYNFO_DYNFO_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "relational/request.h"

namespace dynfo::dyn::wire {

/// Frames larger than this are rejected as corrupt rather than allocated:
/// a response carrying a full relation dump stays far below it.
inline constexpr size_t kMaxFrameBytes = size_t{1} << 24;

/// Maps the status taxonomy to the documented exit/wire codes. 2 is
/// reserved for usage errors (never produced by a Status).
int ExitCodeFor(core::StatusCode code);

/// Inverse of ExitCodeFor; 2 (usage) maps to kError.
core::StatusCode StatusCodeForExit(int exit_code);

/// Whitespace-splits one command line.
std::vector<std::string> SplitWords(const std::string& line);

/// Parses words[start..] as universe elements. On failure sets `error` and
/// returns false.
bool ParseElements(const std::vector<std::string>& words, size_t start,
                   std::vector<relational::Element>* out, std::string* error);

/// True for the three mutation commands (`ins`, `del`, `set`).
bool IsMutationCommand(const std::string& word);

/// Parses one mutation command into a Request. Returns false with `error`
/// set when the words are a malformed mutation, and false with `error`
/// EMPTY when words[0] is not a mutation command at all (the caller's
/// dispatch decides what that means).
bool ParseMutation(const std::vector<std::string>& words,
                   relational::Request* out, std::string* error);

// -- Framing ---------------------------------------------------------------

/// Writes one length-prefixed frame; retries short writes and EINTR. Uses
/// send(MSG_NOSIGNAL) on sockets so a peer that died mid-write surfaces as
/// an error Status, not SIGPIPE.
core::Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame into `payload`. A clean EOF at a frame boundary returns
/// kCancelled with message "eof" (the orderly-close signal); EOF inside a
/// frame, oversized lengths, and transport errors return kError.
core::Status ReadFrame(int fd, std::string* payload,
                       size_t max_bytes = kMaxFrameBytes);

/// True when `status` is ReadFrame's orderly-close signal.
bool IsEof(const core::Status& status);

// -- Responses -------------------------------------------------------------

std::string EncodeResponse(int code, std::string_view body);

/// Splits "<code> <body>"; false on a frame that doesn't start with an
/// integer code.
bool DecodeResponse(const std::string& frame, int* code, std::string* body);

// -- Addresses and sockets -------------------------------------------------

/// "unix:/path/to.sock" | "tcp:PORT" | "tcp:HOST:PORT" (host defaults to
/// 127.0.0.1 — the service is a local front end, not an internet daemon).
struct Address {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;             ///< kUnix
  std::string host = "127.0.0.1";
  int port = 0;                 ///< kTcp; 0 = kernel-assigned
};

bool ParseAddress(const std::string& spec, Address* out, std::string* error);

/// Binds and listens; returns the listening fd. For tcp:0 the caller reads
/// the assigned port back with BoundPort.
core::Result<int> Listen(const Address& address);

/// The port a listening TCP fd actually bound (for tcp:0).
core::Result<int> BoundPort(int fd);

/// Connects; returns the connected fd.
core::Result<int> Dial(const Address& address);

// -- Client ----------------------------------------------------------------

/// Exponential backoff with full-ish jitter for admission-rejected and
/// transport-failed calls: sleep = min(max, initial * multiplier^attempt)
/// scaled by a uniform draw in [0.5, 1.0) so a herd of rejected clients
/// decorrelates instead of re-stampeding the admission queue.
struct RetryPolicy {
  int max_attempts = 6;       ///< total tries per Call (first one included)
  int initial_backoff_ms = 2;
  double multiplier = 2.0;
  int max_backoff_ms = 250;
  uint64_t jitter_seed = 1;
};

/// Backoff for the k-th retry (k = 0 for the first), jittered by `rng`.
int BackoffMs(const RetryPolicy& policy, int retry, core::Rng* rng);

struct Response {
  int code = 0;
  std::string body;
};

/// A retrying connection to a ServiceServer. Call() sends one request frame
/// and waits for the response; on a transport failure it reconnects, and on
/// a resource-exhausted response (wire code 5 — the admission queue was
/// full) it backs off and resubmits, per the policy. Not thread-safe; one
/// client per session thread.
class Client {
 public:
  struct Counters {
    uint64_t calls = 0;             ///< Call() invocations
    uint64_t resource_retries = 0;  ///< resubmits after a code-5 rejection
    uint64_t transport_retries = 0; ///< resubmits after a broken connection
    uint64_t reconnects = 0;        ///< successful re-dials
  };

  explicit Client(Address address, RetryPolicy policy = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects now (Call connects lazily otherwise).
  core::Status Connect();

  /// One request/response exchange with retries. A non-OK return means
  /// every attempt failed; `response` then holds the last decoded response
  /// if any attempt got one.
  core::Status Call(const std::string& request, Response* response);

  /// Drops the socket without an orderly goodbye — the kill-and-reconnect
  /// churn hook for the soak. The next Call re-dials.
  void HardClose();

  bool connected() const { return fd_ >= 0; }
  const Counters& counters() const { return counters_; }

 private:
  Address address_;
  RetryPolicy policy_;
  core::Rng rng_;
  int fd_ = -1;
  bool ever_connected_ = false;
  Counters counters_;
};

}  // namespace dynfo::dyn::wire

#endif  // DYNFO_DYNFO_WIRE_H_
