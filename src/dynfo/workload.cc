#include "dynfo/workload.h"

#include <utility>
#include <vector>

#include "graph/algorithms.h"
#include "graph/graph.h"

namespace dynfo::dyn {

relational::RequestSequence MakeGenericWorkload(const relational::Vocabulary& input,
                                                size_t universe_size,
                                                const GenericWorkloadOptions& options) {
  DYNFO_CHECK(input.num_relations() > 0);
  core::Rng rng(options.seed);
  relational::RequestSequence out;
  out.reserve(options.num_requests);
  auto element = [&] {
    return static_cast<relational::Element>(rng.Below(universe_size));
  };
  for (size_t i = 0; i < options.num_requests; ++i) {
    double roll = rng.UnitDouble();
    if (input.num_constants() > 0 && roll < options.set_fraction) {
      int index = static_cast<int>(rng.Below(input.num_constants()));
      out.push_back(relational::Request::SetConstant(input.constant(index), element()));
      continue;
    }
    int rel_index = static_cast<int>(rng.Below(input.num_relations()));
    const relational::RelationSymbol& symbol = input.relation(rel_index);
    relational::Tuple t;
    for (int j = 0; j < symbol.arity; ++j) t = t.Append(element());
    bool insert = rng.UnitDouble() < options.insert_fraction;
    out.push_back(insert ? relational::Request::Insert(symbol.name, t)
                         : relational::Request::Delete(symbol.name, t));
  }
  return out;
}

relational::RequestSequence MakeGraphWorkload(const relational::Vocabulary& input,
                                              const std::string& edge_relation,
                                              size_t universe_size,
                                              const GraphWorkloadOptions& options) {
  DYNFO_CHECK(input.ArityOf(edge_relation) == 2);
  core::Rng rng(options.seed);
  relational::RequestSequence out;
  out.reserve(options.num_requests);

  // Shadow digraph tracking the current edge set (one orientation per
  // request; programs that symmetrize do so themselves).
  graph::Digraph shadow(universe_size);
  std::vector<std::pair<graph::Vertex, graph::Vertex>> present;

  std::vector<int> indegree(universe_size, 0);
  std::vector<int> degree(universe_size, 0);

  auto insert_ok = [&](graph::Vertex u, graph::Vertex v) {
    if (!options.allow_self_loops && u == v) return false;
    if (shadow.HasEdge(u, v)) return false;
    if (options.forest_shape && indegree[v] >= 1) return false;
    if (options.max_degree >= 0 &&
        (degree[u] >= options.max_degree || degree[v] >= options.max_degree)) {
      return false;
    }
    if ((options.preserve_acyclic || options.forest_shape) &&
        graph::Reachable(shadow, v, u)) {
      return false;  // edge u -> v would close a cycle
    }
    return true;
  };

  for (size_t i = 0; i < options.num_requests; ++i) {
    if (options.set_fraction > 0 && input.num_constants() > 0 &&
        rng.UnitDouble() < options.set_fraction) {
      int index = static_cast<int>(rng.Below(input.num_constants()));
      out.push_back(relational::Request::SetConstant(
          input.constant(index),
          static_cast<relational::Element>(rng.Below(universe_size))));
      continue;
    }
    bool want_insert = rng.UnitDouble() < options.insert_fraction;
    if (!want_insert && present.empty()) want_insert = true;

    if (want_insert) {
      // Rejection-sample an insertable edge; fall back to delete after a
      // bounded number of misses (the graph may be saturated).
      bool inserted = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        graph::Vertex u = static_cast<graph::Vertex>(rng.Below(universe_size));
        graph::Vertex v = static_cast<graph::Vertex>(rng.Below(universe_size));
        if (options.undirected && u > v) std::swap(u, v);
        if (!insert_ok(u, v)) continue;
        shadow.AddEdge(u, v);
        ++indegree[v];
        ++degree[u];
        ++degree[v];
        present.emplace_back(u, v);
        out.push_back(relational::Request::Insert(edge_relation, {u, v}));
        inserted = true;
        break;
      }
      if (inserted) continue;
      // Saturated: fall back to a delete — unless the caller asked for an
      // insert-only (semi-dynamic) workload.
      if (present.empty() || options.insert_fraction >= 1.0) continue;
    }
    // Delete a uniformly random present edge.
    size_t pick = rng.Below(present.size());
    auto [u, v] = present[pick];
    present[pick] = present.back();
    present.pop_back();
    shadow.RemoveEdge(u, v);
    --indegree[v];
    --degree[u];
    --degree[v];
    out.push_back(relational::Request::Delete(edge_relation, {u, v}));
  }
  return out;
}

relational::RequestSequence MakeWeightedGraphWorkload(
    const relational::Vocabulary& input, const std::string& weight_relation,
    size_t universe_size, const WeightedGraphWorkloadOptions& options) {
  DYNFO_CHECK(input.ArityOf(weight_relation) == 3);
  core::Rng rng(options.seed);
  relational::RequestSequence out;
  out.reserve(options.num_requests);

  struct LiveEdge {
    graph::Vertex u, v;
    relational::Element weight;
  };
  std::vector<LiveEdge> present;
  std::vector<bool> pair_used(universe_size * universe_size, false);
  std::vector<bool> weight_used(universe_size, false);

  for (size_t i = 0; i < options.num_requests; ++i) {
    if (options.set_fraction > 0 && input.num_constants() > 0 &&
        rng.UnitDouble() < options.set_fraction) {
      int index = static_cast<int>(rng.Below(input.num_constants()));
      out.push_back(relational::Request::SetConstant(
          input.constant(index),
          static_cast<relational::Element>(rng.Below(universe_size))));
      continue;
    }
    bool want_insert = rng.UnitDouble() < options.insert_fraction;
    if (present.empty()) want_insert = true;
    // Keep strictly fewer live edges than distinct weights.
    if (present.size() + 1 >= universe_size) want_insert = false;

    if (want_insert) {
      bool inserted = false;
      for (int attempt = 0; attempt < 64 && !inserted; ++attempt) {
        graph::Vertex u = static_cast<graph::Vertex>(rng.Below(universe_size));
        graph::Vertex v = static_cast<graph::Vertex>(rng.Below(universe_size));
        if (u > v) std::swap(u, v);
        if (u == v || pair_used[u * universe_size + v]) continue;
        relational::Element weight =
            static_cast<relational::Element>(rng.Below(universe_size));
        if (weight_used[weight]) continue;
        pair_used[u * universe_size + v] = true;
        weight_used[weight] = true;
        present.push_back({u, v, weight});
        out.push_back(relational::Request::Insert(weight_relation, {u, v, weight}));
        inserted = true;
      }
      if (inserted) continue;
      if (present.empty()) continue;
    }
    size_t pick = rng.Below(present.size());
    LiveEdge e = present[pick];
    present[pick] = present.back();
    present.pop_back();
    pair_used[e.u * universe_size + e.v] = false;
    weight_used[e.weight] = false;
    out.push_back(relational::Request::Delete(weight_relation, {e.u, e.v, e.weight}));
  }
  return out;
}

relational::RequestSequence MakeSlotStringWorkload(
    const std::vector<std::string>& character_relations, size_t universe_size,
    const SlotStringWorkloadOptions& options) {
  DYNFO_CHECK(!character_relations.empty());
  core::Rng rng(options.seed);
  const size_t max_chars =
      options.max_chars == 0 ? universe_size : options.max_chars;
  relational::RequestSequence out;
  out.reserve(options.num_requests);

  // slot_char[p] = index into character_relations, or -1 when free.
  std::vector<int> slot_char(universe_size, -1);
  std::vector<relational::Element> occupied;

  for (size_t i = 0; i < options.num_requests; ++i) {
    bool want_insert = rng.UnitDouble() < options.insert_fraction;
    if (occupied.empty()) want_insert = true;
    if (occupied.size() >= max_chars) want_insert = false;

    if (want_insert) {
      bool inserted = false;
      for (int attempt = 0; attempt < 64 && !inserted; ++attempt) {
        relational::Element p =
            static_cast<relational::Element>(rng.Below(universe_size));
        if (slot_char[p] >= 0) continue;
        int c = static_cast<int>(rng.Below(character_relations.size()));
        slot_char[p] = c;
        occupied.push_back(p);
        out.push_back(relational::Request::Insert(character_relations[c], {p}));
        inserted = true;
      }
      if (inserted) continue;
      if (occupied.empty()) continue;
    }
    size_t pick = rng.Below(occupied.size());
    relational::Element p = occupied[pick];
    occupied[pick] = occupied.back();
    occupied.pop_back();
    int c = slot_char[p];
    slot_char[p] = -1;
    out.push_back(relational::Request::Delete(character_relations[c], {p}));
  }
  return out;
}

}  // namespace dynfo::dyn
