#include "dynfo/verifier.h"

#include <vector>

namespace dynfo::dyn {

namespace {

/// Up to `limit` tuples of `rel` absent from `other`, rendered as text.
std::string SampleDifference(const relational::Relation& rel,
                             const relational::Relation& other, size_t limit) {
  std::string out;
  size_t shown = 0, total = 0;
  for (const relational::Tuple& t : rel.SortedTuples()) {
    if (other.Contains(t)) continue;
    ++total;
    if (shown < limit) {
      if (!out.empty()) out += ", ";
      out += t.ToString();
      ++shown;
    }
  }
  if (total > shown) out += ", ... (" + std::to_string(total) + " total)";
  return out;
}

}  // namespace

std::string DescribeAuxDivergence(const Engine& engine,
                                  const relational::Structure& input,
                                  const EnginePostInit& post_init) {
  Engine reference(engine.program_ptr(), engine.universe_size(), engine.options());
  if (post_init) post_init(&reference);
  for (const relational::Request& request :
       relational::StructureAsRequests(input)) {
    reference.Apply(request);
  }

  const relational::Structure& actual = engine.data();
  const relational::Structure& expected = reference.data();
  const relational::Vocabulary& vocab = actual.vocabulary();
  for (int r = 0; r < vocab.num_relations(); ++r) {
    const relational::Relation& got = actual.relation(r);
    const relational::Relation& want = expected.relation(r);
    if (got == want) continue;
    std::string description =
        "first diverging relation vs start-over reference: " + vocab.relation(r).name;
    const std::string extra = SampleDifference(got, want, 3);
    const std::string missing = SampleDifference(want, got, 3);
    if (!extra.empty()) description += "; engine-only tuples {" + extra + "}";
    if (!missing.empty()) description += "; reference-only tuples {" + missing + "}";
    return description;
  }
  for (int c = 0; c < vocab.num_constants(); ++c) {
    if (actual.constant(c) != expected.constant(c)) {
      return "first diverging constant vs start-over reference: " + vocab.constant(c) +
             " (engine " + std::to_string(actual.constant(c)) + ", reference " +
             std::to_string(expected.constant(c)) + ")";
    }
  }
  return "data structure matches the start-over reference exactly";
}

VerifierResult VerifyProgram(std::shared_ptr<const DynProgram> program, Oracle oracle,
                             size_t universe_size,
                             const relational::RequestSequence& requests,
                             const VerifierOptions& options) {
  VerifierResult result;
  Engine engine(program, universe_size, options.engine_options);
  if (options.post_init) options.post_init(&engine);
  relational::Structure input(program->input_vocabulary(), universe_size);

  auto check = [&](const relational::Request* last) -> bool {
    bool expected = oracle(input);
    bool actual = engine.QueryBool();
    if (expected != actual) {
      result.ok = false;
      result.failure = "query mismatch (expected " +
                       std::string(expected ? "true" : "false") + ", got " +
                       std::string(actual ? "true" : "false") + ")";
      if (last != nullptr) result.failure += " after " + last->ToString();
      result.failure +=
          "; " + DescribeAuxDivergence(engine, input, options.post_init);
      return false;
    }
    if (options.invariant) {
      std::string violation = options.invariant(input, engine);
      if (!violation.empty()) {
        result.ok = false;
        result.failure = "invariant violated: " + violation;
        if (last != nullptr) result.failure += " after " + last->ToString();
        result.failure +=
            "; " + DescribeAuxDivergence(engine, input, options.post_init);
        return false;
      }
    }
    return true;
  };

  if (!check(nullptr)) return result;  // initial state must agree too
  for (const relational::Request& request : requests) {
    engine.Apply(request);
    relational::ApplyRequest(&input, request);
    ++result.steps_executed;
    if (options.check_every_step && !check(&request)) return result;
  }
  if (!options.check_every_step) check(nullptr);
  return result;
}

}  // namespace dynfo::dyn
