#include "dynfo/verifier.h"

namespace dynfo::dyn {

VerifierResult VerifyProgram(std::shared_ptr<const DynProgram> program, Oracle oracle,
                             size_t universe_size,
                             const relational::RequestSequence& requests,
                             const VerifierOptions& options) {
  VerifierResult result;
  Engine engine(program, universe_size, options.engine_options);
  relational::Structure input(program->input_vocabulary(), universe_size);

  auto check = [&](const relational::Request* last) -> bool {
    bool expected = oracle(input);
    bool actual = engine.QueryBool();
    if (expected != actual) {
      result.ok = false;
      result.failure = "query mismatch (expected " +
                       std::string(expected ? "true" : "false") + ", got " +
                       std::string(actual ? "true" : "false") + ")";
      if (last != nullptr) result.failure += " after " + last->ToString();
      return false;
    }
    if (options.invariant) {
      std::string violation = options.invariant(input, engine);
      if (!violation.empty()) {
        result.ok = false;
        result.failure = "invariant violated: " + violation;
        if (last != nullptr) result.failure += " after " + last->ToString();
        return false;
      }
    }
    return true;
  };

  if (!check(nullptr)) return result;  // initial state must agree too
  for (const relational::Request& request : requests) {
    engine.Apply(request);
    relational::ApplyRequest(&input, request);
    ++result.steps_executed;
    if (options.check_every_step && !check(&request)) return result;
  }
  if (!options.check_every_step) check(nullptr);
  return result;
}

}  // namespace dynfo::dyn
