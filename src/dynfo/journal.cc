#include "dynfo/journal.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "core/text.h"

namespace dynfo::dyn {

namespace {

using relational::Element;
using relational::Request;
using relational::RequestKind;
using relational::Tuple;
using relational::Vocabulary;

std::string RecordBody(uint64_t seq, const Request& request) {
  std::ostringstream body;
  body << seq << " ";
  switch (request.kind) {
    case RequestKind::kInsert:
      body << "ins " << request.target;
      for (int i = 0; i < request.tuple.size(); ++i) body << " " << request.tuple[i];
      break;
    case RequestKind::kDelete:
      body << "del " << request.target;
      for (int i = 0; i < request.tuple.size(); ++i) body << " " << request.tuple[i];
      break;
    case RequestKind::kSetConstant:
      body << "set " << request.target << " " << request.value;
      break;
  }
  return body.str();
}

/// Parses one record line (without trailing '\n'). On failure, *error is a
/// description and the return is false.
bool ParseRecord(const std::string& line, uint64_t expected_seq,
                 const Vocabulary& input, size_t universe_size, Request* out,
                 std::string* error) {
  const size_t marker = line.rfind(" c=");
  if (marker == std::string::npos) {
    *error = "record missing checksum";
    return false;
  }
  const std::string body = line.substr(0, marker);
  uint64_t recorded_sum = 0;
  if (!core::ParseHexU64(line.substr(marker + 3), &recorded_sum)) {
    *error = "record checksum malformed";
    return false;
  }
  if (core::Fnv1a64(body) != recorded_sum) {
    *error = "record checksum mismatch";
    return false;
  }

  std::istringstream words(body);
  std::string seq_token, keyword, target;
  if (!(words >> seq_token >> keyword >> target)) {
    *error = "record too short";
    return false;
  }
  uint64_t seq = 0;
  if (!core::ParseU64(seq_token, &seq)) {
    *error = "bad sequence number";
    return false;
  }
  if (seq != expected_seq) {
    *error = "sequence broken (expected " + std::to_string(expected_seq) + ", found " +
             std::to_string(seq) + "): a record was dropped or duplicated";
    return false;
  }

  std::vector<uint64_t> values;
  std::string token;
  while (words >> token) {
    uint64_t value = 0;
    if (!core::ParseU64(token, &value)) {
      *error = "malformed numeric field '" + token + "'";
      return false;
    }
    values.push_back(value);
  }
  for (uint64_t value : values) {
    if (value >= universe_size) {
      *error = "element " + std::to_string(value) + " outside universe";
      return false;
    }
  }

  if (keyword == "ins" || keyword == "del") {
    const int index = input.RelationIndex(target);
    if (index < 0) {
      *error = "unknown relation " + target;
      return false;
    }
    const int arity = input.relation(index).arity;
    if (values.size() != static_cast<size_t>(arity)) {
      *error = "arity mismatch for " + target;
      return false;
    }
    Tuple t;
    for (uint64_t value : values) t = t.Append(static_cast<Element>(value));
    *out = keyword == "ins" ? Request::Insert(target, t) : Request::Delete(target, t);
    return true;
  }
  if (keyword == "set") {
    if (input.ConstantIndex(target) < 0) {
      *error = "unknown constant " + target;
      return false;
    }
    if (values.size() != 1) {
      *error = "set needs exactly one value";
      return false;
    }
    *out = Request::SetConstant(target, static_cast<Element>(values[0]));
    return true;
  }
  *error = "unknown request keyword " + keyword;
  return false;
}

}  // namespace

std::string JournalHeader() { return "dynfo-journal v1\n"; }

std::string FormatJournalRecord(uint64_t seq, const Request& request) {
  const std::string body = RecordBody(seq, request);
  return body + " c=" + core::HexU64(core::Fnv1a64(body)) + "\n";
}

core::Result<JournalParse> ParseJournal(const std::string& text,
                                        const Vocabulary& input,
                                        size_t universe_size) {
  JournalParse out;
  const std::string header = JournalHeader();
  if (text.size() < header.size()) {
    // A crash can kill the process between creating the file and flushing
    // the header; any prefix of the header is an empty journal, torn.
    if (header.compare(0, text.size(), text) == 0) {
      out.torn_tail = !text.empty();
      return out;
    }
    return core::Status::Error("not a dynfo journal");
  }
  if (text.compare(0, header.size(), header) != 0) {
    return core::Status::Error("not a dynfo journal (bad header)");
  }
  out.valid_bytes = header.size();

  size_t pos = header.size();
  size_t line_number = 1;
  while (pos < text.size()) {
    ++line_number;
    const size_t nl = text.find('\n', pos);
    const bool complete = nl != std::string::npos;
    const std::string line =
        complete ? text.substr(pos, nl - pos) : text.substr(pos);
    std::string error = "incomplete record (no newline)";
    Request request = Request::SetConstant("", 0);
    const bool parsed =
        complete && ParseRecord(line, out.requests.size(), input, universe_size,
                                &request, &error);
    if (!parsed) {
      const bool is_final_line = !complete || nl + 1 >= text.size();
      if (is_final_line) {
        // Torn tail: the expected shape of a crash mid-append. The clean
        // prefix stands; the damaged final record is dropped.
        out.torn_tail = true;
        return out;
      }
      return core::Status::Error("journal line " + std::to_string(line_number) + ": " +
                                 error);
    }
    out.requests.push_back(request);
    pos = nl + 1;
    out.valid_bytes = pos;
  }
  return out;
}

core::Result<JournalWriter> JournalWriter::Open(const std::string& path,
                                                const Vocabulary& input,
                                                size_t universe_size,
                                                JournalWriterOptions options) {
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }

  JournalWriter writer;
  writer.path_ = path;
  writer.options_ = options;

  bool need_header = existing.empty();
  if (!existing.empty()) {
    core::Result<JournalParse> parsed = ParseJournal(existing, input, universe_size);
    if (!parsed.ok()) {
      return core::Status::Error("journal " + path + ": " +
                                 parsed.status().message());
    }
    writer.recovered_ = parsed.value().requests;
    writer.torn_ = parsed.value().torn_tail;
    writer.next_seq_ = writer.recovered_.size();
    if (parsed.value().torn_tail) {
      if (::truncate(path.c_str(), static_cast<off_t>(parsed.value().valid_bytes)) !=
          0) {
        return core::Status::Error("journal " + path + ": cannot drop torn tail");
      }
      need_header = parsed.value().valid_bytes == 0;
    }
  }

  writer.file_.reset(std::fopen(path.c_str(), "ab"));
  if (writer.file_ == nullptr) {
    return core::Status::Error("journal " + path + ": cannot open for append");
  }
  if (need_header) {
    const std::string header = JournalHeader();
    if (std::fwrite(header.data(), 1, header.size(), writer.file_.get()) !=
            header.size() ||
        std::fflush(writer.file_.get()) != 0) {
      return core::Status::Error("journal " + path + ": cannot write header");
    }
  }
  return writer;
}

core::Status JournalWriter::Append(const Request& request) {
  DYNFO_CHECK(file_ != nullptr) << "Append on a moved-from JournalWriter";
  const std::string record = FormatJournalRecord(next_seq_, request);
  if (std::fwrite(record.data(), 1, record.size(), file_.get()) != record.size() ||
      std::fflush(file_.get()) != 0) {
    return core::Status::Error("journal " + path_ + ": append failed");
  }
  if (options_.fsync_each_append && ::fsync(fileno(file_.get())) != 0) {
    return core::Status::Error("journal " + path_ + ": fsync failed");
  }
  ++next_seq_;
  return core::Status();
}

}  // namespace dynfo::dyn
