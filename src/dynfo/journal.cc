#include "dynfo/journal.h"

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/text.h"
#include "relational/serialize.h"

namespace dynfo::dyn {

namespace {

using relational::Element;
using relational::Request;
using relational::RequestKind;
using relational::Tuple;
using relational::Vocabulary;

/// "ins E 1 2" / "del E 1 2" / "set s 3" — the request part of a record
/// body, shared by plain records and the sub-records of a batch line.
std::string RequestBody(const Request& request) {
  std::ostringstream body;
  switch (request.kind) {
    case RequestKind::kInsert:
      body << "ins " << request.target;
      for (int i = 0; i < request.tuple.size(); ++i) body << " " << request.tuple[i];
      break;
    case RequestKind::kDelete:
      body << "del " << request.target;
      for (int i = 0; i < request.tuple.size(); ++i) body << " " << request.tuple[i];
      break;
    case RequestKind::kSetConstant:
      body << "set " << request.target << " " << request.value;
      break;
  }
  return body.str();
}

std::string RecordBody(uint64_t seq, const Request& request) {
  return std::to_string(seq) + " " + RequestBody(request);
}

/// Builds one request from its parsed tokens, validating target/arity/
/// universe exactly like the single-record path always has.
bool BuildRequest(const std::string& keyword, const std::string& target,
                  const std::vector<uint64_t>& values, const Vocabulary& input,
                  size_t universe_size, Request* out, std::string* error) {
  for (uint64_t value : values) {
    if (value >= universe_size) {
      *error = "element " + std::to_string(value) + " outside universe";
      return false;
    }
  }
  if (keyword == "ins" || keyword == "del") {
    const int index = input.RelationIndex(target);
    if (index < 0) {
      *error = "unknown relation " + target;
      return false;
    }
    const int arity = input.relation(index).arity;
    if (values.size() != static_cast<size_t>(arity)) {
      *error = "arity mismatch for " + target;
      return false;
    }
    Tuple t;
    for (uint64_t value : values) t = t.Append(static_cast<Element>(value));
    *out = keyword == "ins" ? Request::Insert(target, t) : Request::Delete(target, t);
    return true;
  }
  if (keyword == "set") {
    if (input.ConstantIndex(target) < 0) {
      *error = "unknown constant " + target;
      return false;
    }
    if (values.size() != 1) {
      *error = "set needs exactly one value";
      return false;
    }
    *out = Request::SetConstant(target, static_cast<Element>(values[0]));
    return true;
  }
  *error = "unknown request keyword " + keyword;
  return false;
}

/// Parses one record line (without trailing '\n'), appending its request(s)
/// to `out` — one for a plain record, `count` for a batch record (their
/// sequence numbers occupy [expected_seq, expected_seq + count)). Appends
/// nothing on failure: *error is a description and the return is false.
bool ParseRecord(const std::string& line, uint64_t expected_seq,
                 const Vocabulary& input, size_t universe_size,
                 relational::RequestSequence* out, std::string* error) {
  const size_t marker = line.rfind(" c=");
  if (marker == std::string::npos) {
    *error = "record missing checksum";
    return false;
  }
  const std::string body = line.substr(0, marker);
  uint64_t recorded_sum = 0;
  if (!core::ParseHexU64(line.substr(marker + 3), &recorded_sum)) {
    *error = "record checksum malformed";
    return false;
  }
  if (core::Fnv1a64(body) != recorded_sum) {
    *error = "record checksum mismatch";
    return false;
  }

  std::istringstream words(body);
  std::string seq_token, keyword;
  if (!(words >> seq_token >> keyword)) {
    *error = "record too short";
    return false;
  }
  uint64_t seq = 0;
  if (!core::ParseU64(seq_token, &seq)) {
    *error = "bad sequence number";
    return false;
  }
  if (seq != expected_seq) {
    *error = "sequence broken (expected " + std::to_string(expected_seq) + ", found " +
             std::to_string(seq) + "): a record was dropped or duplicated";
    return false;
  }

  if (keyword == "batch") {
    // Group-commit record: "<seq> batch <count> | <req> | <req> ...". The
    // sub-request arity is known from the vocabulary, so each sub-record's
    // token count is exact and a '|' separator must follow it (or the end).
    std::string count_token;
    uint64_t count = 0;
    if (!(words >> count_token) || !core::ParseU64(count_token, &count) ||
        count == 0) {
      *error = "batch record with bad count";
      return false;
    }
    relational::RequestSequence batch;
    for (uint64_t i = 0; i < count; ++i) {
      std::string sep, sub_keyword, sub_target;
      if (!(words >> sep >> sub_keyword >> sub_target) || sep != "|") {
        *error = "malformed batch sub-record";
        return false;
      }
      size_t num_values = 1;
      if (sub_keyword == "ins" || sub_keyword == "del") {
        const int index = input.RelationIndex(sub_target);
        if (index < 0) {
          *error = "unknown relation " + sub_target;
          return false;
        }
        num_values = static_cast<size_t>(input.relation(index).arity);
      } else if (sub_keyword != "set") {
        *error = "unknown request keyword " + sub_keyword;
        return false;
      }
      std::vector<uint64_t> values;
      for (size_t v = 0; v < num_values; ++v) {
        std::string token;
        uint64_t value = 0;
        if (!(words >> token) || !core::ParseU64(token, &value)) {
          *error = "malformed numeric field in batch sub-record";
          return false;
        }
        values.push_back(value);
      }
      Request request = Request::SetConstant("", 0);
      if (!BuildRequest(sub_keyword, sub_target, values, input, universe_size,
                        &request, error)) {
        return false;
      }
      batch.push_back(request);
    }
    std::string extra;
    if (words >> extra) {
      *error = "trailing tokens after batch record";
      return false;
    }
    out->insert(out->end(), batch.begin(), batch.end());
    return true;
  }

  std::string target;
  if (!(words >> target)) {
    *error = "record too short";
    return false;
  }
  std::vector<uint64_t> values;
  std::string token;
  while (words >> token) {
    uint64_t value = 0;
    if (!core::ParseU64(token, &value)) {
      *error = "malformed numeric field '" + token + "'";
      return false;
    }
    values.push_back(value);
  }
  Request request = Request::SetConstant("", 0);
  if (!BuildRequest(keyword, target, values, input, universe_size, &request,
                    error)) {
    return false;
  }
  out->push_back(request);
  return true;
}

}  // namespace

std::string JournalHeader() { return "dynfo-journal v1\n"; }

std::string FormatJournalRecord(uint64_t seq, const Request& request) {
  const std::string body = RecordBody(seq, request);
  return body + " c=" + core::HexU64(core::Fnv1a64(body)) + "\n";
}

std::string FormatBatchRecord(uint64_t first_seq,
                              std::span<const Request> requests) {
  DYNFO_CHECK(!requests.empty()) << "empty batch record";
  std::ostringstream body;
  body << first_seq << " batch " << requests.size();
  for (const Request& request : requests) {
    body << " | " << RequestBody(request);
  }
  return body.str() + " c=" + core::HexU64(core::Fnv1a64(body.str())) + "\n";
}

core::Result<JournalParse> ParseJournal(const std::string& text,
                                        const Vocabulary& input,
                                        size_t universe_size) {
  JournalParse out;
  const std::string header = JournalHeader();
  if (text.size() < header.size()) {
    // A crash can kill the process between creating the file and flushing
    // the header; any prefix of the header is an empty journal, torn.
    if (header.compare(0, text.size(), text) == 0) {
      out.torn_tail = !text.empty();
      return out;
    }
    return core::Status::Error("not a dynfo journal");
  }
  if (text.compare(0, header.size(), header) != 0) {
    return core::Status::Error("not a dynfo journal (bad header)");
  }
  out.valid_bytes = header.size();

  size_t pos = header.size();
  size_t line_number = 1;
  while (pos < text.size()) {
    ++line_number;
    const size_t nl = text.find('\n', pos);
    const bool complete = nl != std::string::npos;
    const std::string line =
        complete ? text.substr(pos, nl - pos) : text.substr(pos);
    std::string error = "incomplete record (no newline)";
    const bool parsed =
        complete && ParseRecord(line, out.requests.size(), input, universe_size,
                                &out.requests, &error);
    if (!parsed) {
      const bool is_final_line = !complete || nl + 1 >= text.size();
      if (is_final_line) {
        // Torn tail: the expected shape of a crash mid-append. The clean
        // prefix stands; the damaged final record is dropped. For a batch
        // record this drops the WHOLE batch — a torn line never yields a
        // partial batch.
        out.torn_tail = true;
        return out;
      }
      return core::Status::Error("journal line " + std::to_string(line_number) + ": " +
                                 error);
    }
    pos = nl + 1;
    out.valid_bytes = pos;
  }
  return out;
}

core::Result<JournalWriter> JournalWriter::Open(const std::string& path,
                                                const Vocabulary& input,
                                                size_t universe_size,
                                                JournalWriterOptions options) {
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }

  JournalWriter writer;
  writer.path_ = path;
  writer.options_ = options;

  bool need_header = existing.empty();
  if (!existing.empty()) {
    core::Result<JournalParse> parsed = ParseJournal(existing, input, universe_size);
    if (!parsed.ok()) {
      return core::Status::Error("journal " + path + ": " +
                                 parsed.status().message());
    }
    writer.recovered_ = parsed.value().requests;
    writer.torn_ = parsed.value().torn_tail;
    writer.next_seq_ = writer.recovered_.size();
    if (parsed.value().torn_tail) {
      if (::truncate(path.c_str(), static_cast<off_t>(parsed.value().valid_bytes)) !=
          0) {
        return core::Status::Error("journal " + path + ": cannot drop torn tail");
      }
      need_header = parsed.value().valid_bytes == 0;
    }
  }

  writer.file_.reset(std::fopen(path.c_str(), "ab"));
  if (writer.file_ == nullptr) {
    return core::Status::Error("journal " + path + ": cannot open for append");
  }
  if (need_header) {
    const std::string header = JournalHeader();
    if (std::fwrite(header.data(), 1, header.size(), writer.file_.get()) !=
            header.size() ||
        std::fflush(writer.file_.get()) != 0) {
      return core::Status::Error("journal " + path + ": cannot write header");
    }
  }
  return writer;
}

core::Status JournalWriter::Append(const Request& request) {
  DYNFO_CHECK(file_ != nullptr) << "Append on a moved-from JournalWriter";
  const std::string record = FormatJournalRecord(next_seq_, request);
  if (std::fwrite(record.data(), 1, record.size(), file_.get()) != record.size() ||
      std::fflush(file_.get()) != 0) {
    return core::Status::Error("journal " + path_ + ": append failed");
  }
  if (options_.fsync_each_append && ::fsync(fileno(file_.get())) != 0) {
    return core::Status::Error("journal " + path_ + ": fsync failed");
  }
  ++next_seq_;
  return core::Status();
}

core::Status JournalWriter::AppendBatch(std::span<const Request> requests) {
  if (requests.empty()) return core::Status();
  if (requests.size() == 1) return Append(requests[0]);
  DYNFO_CHECK(file_ != nullptr) << "AppendBatch on a moved-from JournalWriter";
  const std::string record = FormatBatchRecord(next_seq_, requests);
  if (std::fwrite(record.data(), 1, record.size(), file_.get()) != record.size() ||
      std::fflush(file_.get()) != 0) {
    return core::Status::Error("journal " + path_ + ": batch append failed");
  }
  if (options_.fsync_each_append && ::fsync(fileno(file_.get())) != 0) {
    return core::Status::Error("journal " + path_ + ": fsync failed");
  }
  next_seq_ += requests.size();
  return core::Status();
}

// --------------------------- segmented journal ---------------------------

namespace {

constexpr const char kManifestName[] = "MANIFEST";

std::string FullName(uint64_t steps) {
  return "full-" + std::to_string(steps) + ".snap";
}
std::string DeltaName(uint64_t steps) {
  return "delta-" + std::to_string(steps) + ".ckpt";
}
std::string SegName(uint64_t first) {
  return "seg-" + std::to_string(first) + ".log";
}

/// Whether `name` is one of the store's own artifacts — the only files
/// Create/Open will ever delete during garbage collection.
bool IsStoreFile(const std::string& name) {
  if (name == kManifestName) return true;
  std::string stem = name;
  const std::string tmp_suffix = ".tmp";
  if (stem.size() > tmp_suffix.size() &&
      stem.compare(stem.size() - tmp_suffix.size(), tmp_suffix.size(),
                   tmp_suffix) == 0) {
    stem.erase(stem.size() - tmp_suffix.size());
    if (stem == kManifestName) return true;
  }
  return stem.rfind("full-", 0) == 0 || stem.rfind("delta-", 0) == 0 ||
         stem.rfind("seg-", 0) == 0;
}

/// A manifest-referenced file name must be a plain name the store itself
/// generates — belt-and-braces against a (checksum-evading) hostile
/// manifest steering deletes or reads outside the directory.
bool ValidStoreFileName(const std::string& name) {
  return !name.empty() && name.find('/') == std::string::npos &&
         name != "." && name != ".." && IsStoreFile(name) &&
         name != kManifestName;
}

}  // namespace

std::string SegmentHeader(uint64_t first_seq) {
  return "dynfo-segment v1 first=" + std::to_string(first_seq) + "\n";
}

core::Result<SegmentParse> ParseSegment(const std::string& text,
                                        const Vocabulary& input,
                                        size_t universe_size,
                                        uint64_t expected_first) {
  SegmentParse out;
  const std::string header = SegmentHeader(expected_first);
  if (text.size() < header.size()) {
    // A crash can kill the process between creating the segment and
    // flushing its header; any prefix of the header is an empty segment,
    // torn.
    if (header.compare(0, text.size(), text) == 0) {
      out.torn_tail = !text.empty();
      return out;
    }
    return core::Status::Error("not a dynfo segment");
  }
  if (text.compare(0, header.size(), header) != 0) {
    return core::Status::Error("segment header mismatch (expected first=" +
                               std::to_string(expected_first) + ")");
  }
  out.valid_bytes = header.size();

  size_t pos = header.size();
  size_t line_number = 1;
  while (pos < text.size()) {
    ++line_number;
    const size_t nl = text.find('\n', pos);
    const bool complete = nl != std::string::npos;
    const std::string line =
        complete ? text.substr(pos, nl - pos) : text.substr(pos);
    std::string error = "incomplete record (no newline)";
    const bool parsed =
        complete && ParseRecord(line, expected_first + out.requests.size(),
                                input, universe_size, &out.requests, &error);
    if (!parsed) {
      const bool is_final_line = !complete || nl + 1 >= text.size();
      if (is_final_line) {
        out.torn_tail = true;
        return out;
      }
      return core::Status::Error("segment line " + std::to_string(line_number) +
                                 ": " + error);
    }
    pos = nl + 1;
    out.valid_bytes = pos;
  }
  return out;
}

std::string FormatManifest(const Manifest& manifest) {
  std::ostringstream payload;
  payload << "program " << manifest.program << "\n";
  payload << "universe " << manifest.universe << "\n";
  payload << "full " << manifest.full_file << " steps=" << manifest.full_steps
          << "\n";
  if (!manifest.delta_file.empty()) {
    payload << "delta " << manifest.delta_file << " base=" << manifest.delta_base
            << " steps=" << manifest.delta_steps << "\n";
  }
  for (const Manifest::Segment& seg : manifest.segments) {
    payload << "seg " << seg.file << " first=" << seg.first << "\n";
  }
  payload << "end\n";
  return relational::WrapChecksummed("manifest", payload.str());
}

core::Result<Manifest> ParseManifest(const std::string& text) {
  core::Result<std::string> payload =
      relational::UnwrapChecksummed("manifest", text);
  if (!payload.ok()) return payload.status();

  auto err = [](const std::string& message) {
    return core::Status::Error("manifest: " + message);
  };
  auto field = [](const std::string& token, const char* key, uint64_t* out) {
    const std::string prefix = std::string(key) + "=";
    return token.rfind(prefix, 0) == 0 &&
           core::ParseU64(token.substr(prefix.size()), out);
  };

  Manifest manifest;
  std::istringstream in(payload.value());
  std::string line;
  bool saw_program = false, saw_universe = false, saw_full = false,
       saw_delta = false, saw_end = false, saw_seg = false;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;
    if (saw_end) return err("content after 'end'");
    std::string extra;
    if (keyword == "program") {
      if (saw_program || !(words >> manifest.program) || (words >> extra)) {
        return err("bad 'program' line");
      }
      saw_program = true;
    } else if (keyword == "universe") {
      std::string token;
      if (saw_universe || !saw_program || !(words >> token) ||
          !core::ParseU64(token, &manifest.universe) ||
          manifest.universe == 0 || (words >> extra)) {
        return err("bad 'universe' line");
      }
      saw_universe = true;
    } else if (keyword == "full") {
      std::string token;
      if (saw_full || !saw_universe || !(words >> manifest.full_file >> token) ||
          !field(token, "steps", &manifest.full_steps) || (words >> extra) ||
          !ValidStoreFileName(manifest.full_file)) {
        return err("bad 'full' line");
      }
      saw_full = true;
    } else if (keyword == "delta") {
      std::string base_token, steps_token;
      if (saw_delta || saw_seg || !saw_full ||
          !(words >> manifest.delta_file >> base_token >> steps_token) ||
          !field(base_token, "base", &manifest.delta_base) ||
          !field(steps_token, "steps", &manifest.delta_steps) ||
          (words >> extra) || !ValidStoreFileName(manifest.delta_file)) {
        return err("bad 'delta' line");
      }
      if (manifest.delta_base != manifest.full_steps ||
          manifest.delta_steps < manifest.delta_base) {
        return err("delta checkpoint is not chained on the full snapshot");
      }
      saw_delta = true;
    } else if (keyword == "seg") {
      Manifest::Segment seg;
      std::string token;
      if (!saw_full || !(words >> seg.file >> token) ||
          !field(token, "first", &seg.first) || (words >> extra) ||
          !ValidStoreFileName(seg.file)) {
        return err("bad 'seg' line");
      }
      if (manifest.segments.empty()) {
        if (seg.first != manifest.checkpoint_steps()) {
          return err("segment chain does not start at the checkpoint");
        }
      } else if (seg.first <= manifest.segments.back().first) {
        return err("segment chain is not ascending");
      }
      manifest.segments.push_back(std::move(seg));
      saw_seg = true;
    } else if (keyword == "end") {
      if (words >> extra) return err("trailing tokens after end");
      saw_end = true;
    } else {
      return err("unrecognized keyword " + keyword);
    }
  }
  if (!saw_program || !saw_universe || !saw_full) {
    return err("incomplete (program/universe/full required)");
  }
  if (!saw_end) return err("missing 'end'");
  if (manifest.segments.empty()) return err("no live segment");
  return manifest;
}

bool DurableStore::Exists(const std::string& dir) {
  return core::FileExists(dir + "/" + kManifestName);
}

core::Result<DurableStore> DurableStore::Create(const std::string& dir,
                                                const std::string& program,
                                                size_t universe_size,
                                                const std::string& full_blob,
                                                uint64_t steps,
                                                DurableStoreOptions options) {
  DYNFO_CHECK(options.records_per_segment > 0) << "zero checkpoint interval";
  core::Status status = core::EnsureDir(dir);
  if (!status.ok()) return status;
  DYNFO_CHECK(!core::FileExists(dir + "/" + kManifestName))
      << "Create on a directory that already has a manifest; use Open";

  // No manifest means nothing in the directory is authoritative; sweep any
  // leftovers from a run that died before its first manifest write.
  core::Result<std::vector<std::string>> entries = core::ListDir(dir);
  if (!entries.ok()) return entries.status();
  for (const std::string& name : entries.value()) {
    if (!IsStoreFile(name)) continue;
    status = core::RemoveFileDurable(dir + "/" + name);
    if (!status.ok()) return status;
  }

  DurableStore store;
  store.dir_ = dir;
  store.options_ = options;

  const std::string full_name = FullName(steps);
  status = core::AtomicWriteFile(dir + "/" + full_name, full_blob);
  if (!status.ok()) return status;

  const std::string seg_name = SegName(steps);
  core::Result<core::AppendFile> seg = core::AppendFile::Open(dir + "/" + seg_name);
  if (!seg.ok()) return seg.status();
  store.active_ = std::move(seg).value();
  status = store.active_->Append(SegmentHeader(steps));
  if (status.ok()) status = store.active_->Fsync();
  if (!status.ok()) return status;

  store.manifest_.program = program;
  store.manifest_.universe = universe_size;
  store.manifest_.full_file = full_name;
  store.manifest_.full_steps = steps;
  store.manifest_.segments.push_back({seg_name, steps});
  status = core::AtomicWriteFile(dir + "/" + kManifestName,
                                 FormatManifest(store.manifest_));
  if (!status.ok()) return status;

  store.active_first_ = steps;
  store.next_seq_ = steps;
  store.recovered_.full_blob = full_blob;
  store.recovered_.checkpoint_steps = steps;
  store.counters_.full_snapshots = 1;
  return store;
}

core::Result<DurableStore> DurableStore::Open(const std::string& dir,
                                              const Vocabulary& input,
                                              size_t universe_size,
                                              DurableStoreOptions options) {
  DYNFO_CHECK(options.records_per_segment > 0) << "zero checkpoint interval";
  const std::string manifest_path = dir + "/" + kManifestName;
  if (!core::FileExists(manifest_path)) {
    return core::Status::Error("durable store " + dir + ": no manifest");
  }
  core::Result<std::string> manifest_text = core::ReadFileToString(manifest_path);
  if (!manifest_text.ok()) return manifest_text.status();
  core::Result<Manifest> parsed = ParseManifest(manifest_text.value());
  if (!parsed.ok()) {
    return core::Status::Corruption("durable store " + dir + ": " +
                                    parsed.status().message());
  }

  DurableStore store;
  store.dir_ = dir;
  store.options_ = options;
  store.manifest_ = std::move(parsed).value();
  const Manifest& manifest = store.manifest_;
  if (manifest.universe != universe_size) {
    return core::Status::Error(
        "durable store " + dir + " is for universe size " +
        std::to_string(manifest.universe) + ", engine runs " +
        std::to_string(universe_size));
  }

  // Checkpoint blobs. A manifest-referenced file is always durable (its
  // write completed, dir fsync included, before the manifest named it), so
  // absence is corruption, not a crash artifact.
  core::Result<std::string> full =
      core::ReadFileToString(dir + "/" + manifest.full_file);
  if (!full.ok()) {
    return core::Status::Corruption("durable store " + dir +
                                    ": manifest references missing snapshot " +
                                    manifest.full_file);
  }
  store.recovered_.full_blob = std::move(full).value();
  if (!manifest.delta_file.empty()) {
    core::Result<std::string> delta =
        core::ReadFileToString(dir + "/" + manifest.delta_file);
    if (!delta.ok()) {
      return core::Status::Corruption(
          "durable store " + dir + ": manifest references missing checkpoint " +
          manifest.delta_file);
    }
    store.recovered_.delta_blob = std::move(delta).value();
  }
  store.recovered_.checkpoint_steps = manifest.checkpoint_steps();

  // Replay the segment chain. Only the FINAL segment may carry a torn tail
  // (the crash-mid-append shape); torn interior segments mean records were
  // lost in the middle of the history — corruption.
  uint64_t expected_first = manifest.checkpoint_steps();
  size_t last_valid_bytes = 0;
  bool last_torn = false;
  for (size_t i = 0; i < manifest.segments.size(); ++i) {
    const Manifest::Segment& seg = manifest.segments[i];
    if (seg.first != expected_first) {
      return core::Status::Corruption(
          "durable store " + dir + ": segment " + seg.file + " starts at " +
          std::to_string(seg.first) + ", expected " +
          std::to_string(expected_first));
    }
    core::Result<std::string> text = core::ReadFileToString(dir + "/" + seg.file);
    if (!text.ok()) {
      return core::Status::Corruption("durable store " + dir +
                                      ": manifest references missing segment " +
                                      seg.file);
    }
    core::Result<SegmentParse> segment =
        ParseSegment(text.value(), input, universe_size, expected_first);
    if (!segment.ok()) {
      return core::Status::Corruption("durable store " + dir + ": segment " +
                                      seg.file + ": " +
                                      segment.status().message());
    }
    const bool last = i + 1 == manifest.segments.size();
    if (segment.value().torn_tail && !last) {
      return core::Status::Corruption("durable store " + dir + ": segment " +
                                      seg.file +
                                      " is torn but is not the final segment");
    }
    for (const Request& request : segment.value().requests) {
      store.recovered_.replay.push_back(request);
    }
    expected_first += segment.value().requests.size();
    if (last) {
      last_valid_bytes = segment.value().valid_bytes;
      last_torn = segment.value().torn_tail;
      store.active_records_ = segment.value().requests.size();
    }
  }
  store.recovered_.segments_replayed = manifest.segments.size();
  store.recovered_.torn_tail = last_torn;
  store.next_seq_ = expected_first;
  store.active_first_ = manifest.segments.back().first;

  // Drop the torn tail durably, then reopen the active segment for append
  // (rewriting the header if the tear consumed it).
  const std::string active_path = dir + "/" + manifest.segments.back().file;
  if (last_torn) {
    core::Status status = core::TruncateFileDurable(
        active_path, last_valid_bytes == 0 ? 0 : last_valid_bytes);
    if (!status.ok()) return status;
  }
  core::Result<core::AppendFile> active = core::AppendFile::Open(active_path);
  if (!active.ok()) return active.status();
  store.active_ = std::move(active).value();
  if (last_valid_bytes == 0) {
    core::Status status =
        store.active_->Append(SegmentHeader(store.active_first_));
    if (status.ok()) status = store.active_->Fsync();
    if (!status.ok()) return status;
  }

  // Garbage-collect orphans: store-pattern files the manifest does not
  // reference — temp files and checkpoints/segments a crash left behind.
  core::Result<std::vector<std::string>> entries = core::ListDir(dir);
  if (!entries.ok()) return entries.status();
  for (const std::string& name : entries.value()) {
    if (!IsStoreFile(name) || name == kManifestName) continue;
    bool referenced = name == manifest.full_file || name == manifest.delta_file;
    for (const Manifest::Segment& seg : manifest.segments) {
      referenced = referenced || name == seg.file;
    }
    if (referenced) continue;
    core::Status status = core::RemoveFileDurable(dir + "/" + name);
    if (!status.ok()) return status;
    ++store.counters_.files_collected;
  }

  // Restore the consolidation cadence (each delta checkpoint covers one
  // segment's worth of records, so the ratio recovers the count).
  if (!manifest.delta_file.empty()) {
    const uint64_t covered = manifest.delta_steps - manifest.full_steps;
    store.deltas_since_full_ =
        std::max<uint64_t>(1, covered / options.records_per_segment);
  }
  return store;
}

core::Status DurableStore::Append(const Request& request) {
  DYNFO_CHECK(active_.has_value()) << "Append on a moved-from DurableStore";
  const std::string record = FormatJournalRecord(next_seq_, request);
  core::Status status = active_->Append(record);
  if (!status.ok()) return status;
  if (options_.fsync_each_append) {
    status = active_->Fsync();
    if (!status.ok()) return status;
    ++counters_.fsyncs;
  }
  ++next_seq_;
  ++active_records_;
  ++counters_.appends;
  counters_.bytes_appended += record.size();
  return core::Status();
}

core::Status DurableStore::AppendBatch(std::span<const Request> requests) {
  if (requests.empty()) return core::Status();
  if (requests.size() == 1) return Append(requests[0]);
  DYNFO_CHECK(active_.has_value()) << "AppendBatch on a moved-from DurableStore";
  const std::string record = FormatBatchRecord(next_seq_, requests);
  core::Status status = active_->Append(record);
  if (!status.ok()) return status;
  if (options_.fsync_each_append) {
    status = active_->Fsync();
    if (!status.ok()) return status;
    ++counters_.fsyncs;
  }
  next_seq_ += requests.size();
  active_records_ += requests.size();
  counters_.appends += requests.size();
  ++counters_.batch_appends;
  counters_.bytes_appended += record.size();
  return core::Status();
}

core::Status DurableStore::Checkpoint(const std::string& blob, bool is_full) {
  DYNFO_CHECK(active_.has_value()) << "Checkpoint on a moved-from DurableStore";
  const uint64_t steps = next_seq_;
  const std::string name = is_full ? FullName(steps) : DeltaName(steps);

  // 1. The checkpoint blob, durably, before anything references it.
  core::Status status = core::AtomicWriteFile(dir_ + "/" + name, blob);
  if (!status.ok()) return status;

  // 2. A fresh segment (unless the current one is still empty — a forced
  //    checkpoint with no new records keeps it). Created + dir-fsynced
  //    before the manifest may name it.
  const std::string seg_name = SegName(steps);
  std::optional<core::AppendFile> fresh;
  const bool rotate = steps != active_first_;
  if (rotate) {
    core::Result<core::AppendFile> seg =
        core::AppendFile::Open(dir_ + "/" + seg_name);
    if (!seg.ok()) return seg.status();
    fresh = std::move(seg).value();
    status = fresh->Append(SegmentHeader(steps));
    if (status.ok()) status = fresh->Fsync();
    if (!status.ok()) return status;
  }

  // 3. Swap the manifest — the commit point.
  Manifest next = manifest_;
  if (is_full) {
    next.full_file = name;
    next.full_steps = steps;
    next.delta_file.clear();
    next.delta_base = 0;
    next.delta_steps = 0;
  } else {
    next.delta_file = name;
    next.delta_base = next.full_steps;
    next.delta_steps = steps;
  }
  next.segments.clear();
  next.segments.push_back({rotate ? seg_name : SegName(active_first_),
                           steps});
  status = core::AtomicWriteFile(dir_ + "/" + kManifestName,
                                 FormatManifest(next));
  if (!status.ok()) return status;

  // 4. Commit in memory, then collect what the new manifest dropped. A
  //    failure from here on leaves orphans for the next Open, never an
  //    inconsistent store.
  std::vector<std::string> dropped;
  auto referenced = [&next](const std::string& file) {
    if (file == next.full_file || file == next.delta_file) return true;
    for (const Manifest::Segment& seg : next.segments) {
      if (file == seg.file) return true;
    }
    return false;
  };
  if (!referenced(manifest_.full_file)) dropped.push_back(manifest_.full_file);
  if (!manifest_.delta_file.empty() && !referenced(manifest_.delta_file)) {
    dropped.push_back(manifest_.delta_file);
  }
  for (const Manifest::Segment& seg : manifest_.segments) {
    if (!referenced(seg.file)) dropped.push_back(seg.file);
  }
  manifest_ = std::move(next);
  if (rotate) {
    active_ = std::move(fresh);
    active_first_ = steps;
    ++counters_.segments_rotated;
  }
  active_records_ = 0;
  if (is_full) {
    deltas_since_full_ = 0;
    ++counters_.full_snapshots;
  } else {
    ++deltas_since_full_;
    ++counters_.checkpoints;
  }
  for (const std::string& file : dropped) {
    status = core::RemoveFileDurable(dir_ + "/" + file);
    if (!status.ok()) return status;
    ++counters_.files_collected;
  }
  return core::Status();
}

}  // namespace dynfo::dyn
