/// \file recovery.h
/// Corruption detection and start-over recovery: the fault-tolerant
/// execution wrapper.
///
/// Datta et al.'s "start over and muddle through" observation is the
/// theory-sanctioned recovery move for dynamic programs: when auxiliary
/// state is suspect, discard it, rebuild from the (trusted) input
/// structure via the program's own initialization, and catch up. The
/// GuardedEngine turns that into engineering:
///
///   * it shadows the input structure (the ground truth the auxiliary
///     relations are *about*);
///   * on a configurable cadence it runs the same oracle/invariant hooks
///     the verifier uses; a violation means the auxiliary state has
///     diverged — bit rot, a bad restore, or a genuine program bug;
///   * on detection it quarantines the corrupt state (serialized, with
///     forensics) and performs start-over recovery: a fresh engine,
///     post-init, and a replay of the input as its canonical request
///     history. If the rebuilt state still fails the checks, the defect is
///     in the program, not the state, and an error Status is returned;
///   * optionally every applied request is journaled (journal.h), making
///     the whole session reconstructible after a kill from the latest
///     snapshot plus the journal suffix.
///
/// All failure paths return Status — nothing in this layer CHECK-crashes
/// on bad input.

#ifndef DYNFO_DYNFO_RECOVERY_H_
#define DYNFO_DYNFO_RECOVERY_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "dynfo/engine.h"
#include "dynfo/journal.h"
#include "dynfo/verifier.h"
#include "relational/request.h"

namespace dynfo::dyn {

/// Resource governance + degradation policy for every Apply through the
/// wrapper. Inactive (default) = the legacy ungoverned path. Active = each
/// request runs under `governance` at the engine's configured tier, and on
/// failure descends the ladder (DESIGN.md §10):
///
///   compiled+indexed → compiled → naive → start-over
///
/// kCancelled / kDeadlineExceeded return immediately (a slower tier cannot
/// help a caller who stopped waiting). kCorruption triggers one in-place
/// RebuildCompiledState + same-tier retry before descending. Everything
/// else descends after `attempts_per_tier` attempts. The final rung
/// rebuilds from the input structure and applies ungoverned at the naive
/// tier — the "start over and muddle through" move.
struct GovernancePolicy {
  ApplyGovernance governance;
  bool enable_ladder = true;
  int attempts_per_tier = 1;
  /// Test hook: when set, each tier attempt first consults this; a non-OK
  /// return stands in for the engine call (pins ladder paths
  /// deterministically). OK = run the engine for real.
  std::function<core::Status(ExecTier)> inject_for_test;

  bool active() const {
    return governance.active() || inject_for_test != nullptr;
  }
};

struct GuardedEngineOptions {
  EngineOptions engine_options;
  /// Run the corruption check after every `check_every`-th request
  /// (0 = only on explicit CheckNow calls). The cadence bounds detection
  /// latency: a corruption is caught at most `check_every` requests after
  /// it happens — if the checks can see it at all.
  uint64_t check_every = 16;
  /// Applied to every engine built by the wrapper, including start-over
  /// rebuilds (e.g. InstallPlusRelation for Dyn-FO+ precomputation).
  EnginePostInit post_init;
  /// Per-request resource governance and degradation-ladder policy.
  GovernancePolicy governance;
};

/// Configuration for AttachDurability — the segmented-journal +
/// incremental-checkpoint store (journal.h, DESIGN.md §12).
struct DurabilityOptions {
  DurableStoreOptions store;
};

struct RecoveryStats {
  uint64_t requests = 0;             ///< requests applied through the wrapper
  uint64_t batches = 0;              ///< ApplyBatch calls that applied >= 1 request
  uint64_t batch_requests = 0;       ///< requests applied via ApplyBatch
  uint64_t checks_run = 0;           ///< cadence + explicit checks
  uint64_t corruptions_detected = 0; ///< checks that found a violation
  uint64_t recoveries = 0;           ///< successful start-over rebuilds
  uint64_t rebuild_requests_replayed = 0;  ///< start-over replay work
  double recovery_seconds = 0;       ///< total time spent rebuilding
  uint64_t last_detection_step = 0;  ///< request count at last detection
  double last_recovery_seconds = 0;

  // Durability counters (all zero without AttachDurability).
  uint64_t checkpoints_written = 0;      ///< delta checkpoints
  uint64_t full_snapshots_written = 0;   ///< full consolidations
  /// Journal records replayed while attaching — the replay bound the crash
  /// matrix hard-checks stays ≤ the checkpoint interval.
  uint64_t replayed_on_recovery = 0;

  // Governed-execution counters (all zero when governance is inactive).
  uint64_t tier_activations[4] = {0, 0, 0, 0};  ///< attempts per ExecTier
  uint64_t ladder_fallbacks = 0;     ///< tier descents
  uint64_t cancellations = 0;        ///< requests ending kCancelled
  uint64_t deadlines_exceeded = 0;   ///< requests ending kDeadlineExceeded
  uint64_t budget_breaches = 0;      ///< kResourceExhausted trips observed
  uint64_t index_rebuilds = 0;       ///< in-place compiled-state repairs
  uint64_t start_over_applies = 0;   ///< requests that reached the last rung
};

/// An Engine wrapped with the fault-tolerance layer. Apply/Query from one
/// thread at a time, like Engine.
class GuardedEngine {
 public:
  /// `oracle` and `invariant` may each be null; corruption checks use
  /// whichever are present (a wrapper with neither never detects anything
  /// and only provides journaling).
  GuardedEngine(std::shared_ptr<const DynProgram> program, size_t universe_size,
                Oracle oracle, InvariantCheck invariant,
                GuardedEngineOptions options = {});

  /// Validates, journals (if attached), applies, and — on the cadence —
  /// checks and recovers. An error Status means the request was rejected
  /// (validation/journal failure, left unapplied) or recovery failed.
  core::Status Apply(const relational::Request& request);

  /// Applies `requests` as one group-committed batch (DESIGN.md §14).
  ///
  /// Semantics are bit-identical to calling Apply once per request, but the
  /// per-request constants are paid once per batch: one validation sweep, one
  /// governor, one journal record, one fsync, at most one checkpoint + one
  /// cadence check. A malformed request anywhere in the batch rejects the
  /// WHOLE batch before anything applies.
  ///
  /// Abort contract (prefix atomicity): if governance trips mid-batch, the
  /// engine is left at the last fully-applied prefix; exactly that prefix is
  /// group-committed to the journal/store and mirrored into the input, and
  /// `report->applied` says how long it is. The degradation ladder does not
  /// run for batches — a caller who wants ladder semantics applies requests
  /// one at a time.
  core::Status ApplyBatch(std::span<const relational::Request> requests,
                          BatchReport* report = nullptr);

  /// Materializes `change`'s FO-definable tuple set against the CURRENT
  /// engine state and applies the expansion through ApplyBatch. The journal
  /// records the expanded requests, so replay does not re-evaluate the
  /// formula (the structure it was defined over is gone by then).
  core::Status ApplyDefinable(const DefinableChange& change,
                              BatchReport* report = nullptr);

  /// Runs the corruption check immediately; recovers on violation.
  core::Status CheckNow();

  /// Forces start-over recovery regardless of check results.
  core::Status Recover(const std::string& reason);

  /// Journals every subsequently applied request to `path`. Must be called
  /// before any Apply; existing journal records are replayed through the
  /// engine first (crash recovery), so after a successful attach the
  /// wrapper has caught up to the journal's history. Durable by default:
  /// each append is fsynced so an acknowledged request survives power
  /// loss, not just a process kill (the overhead is measured and gated in
  /// bench_recovery).
  core::Status AttachJournal(const std::string& path,
                             JournalWriterOptions options = {
                                 /*fsync_each_append=*/true});

  /// Attaches the segmented durable store at `dir` (journal.h): every
  /// applied request is appended (fsynced) to the active segment, every
  /// filled segment triggers an incremental checkpoint — a session delta
  /// computed from the CoW overlays against the last full snapshot — and
  /// periodically a full-snapshot consolidation, after which covered
  /// segments are garbage-collected. Must be called on a fresh wrapper
  /// (like AttachJournal, with which it is mutually exclusive). If `dir`
  /// already holds a store, the session is revived first: full snapshot +
  /// delta checkpoint + at most one segment of replay, so recovery time is
  /// O(checkpoint interval) regardless of history length.
  core::Status AttachDurability(const std::string& dir,
                                DurabilityOptions options = {});

  /// Forces a full-snapshot consolidation now: writes the session as a new
  /// full snapshot, drops the delta chain, collects covered segments.
  core::Status Compact();

  bool durability_attached() const { return store_.has_value(); }
  /// The attached store (null when not attached) — counters and manifest.
  const DurableStore* durable_store() const {
    return store_.has_value() ? &*store_ : nullptr;
  }

  bool QueryBool(std::vector<relational::Element> params = {}) const {
    return engine_->QueryBool(std::move(params));
  }

  const Engine& engine() const { return *engine_; }
  /// Mutable engine access — for Dyn-FO+ precomputation installs and for
  /// fault-injection campaigns. State mutated through here is exactly what
  /// the cadence checks exist to catch.
  Engine* mutable_engine() { return engine_.get(); }

  /// The shadowed input structure (ground truth).
  const relational::Structure& input() const { return input_; }

  const RecoveryStats& recovery_stats() const { return stats_; }

  /// The live governance policy — chaos campaigns mutate it between
  /// requests (deadline jitter, injected allocation failures).
  GovernancePolicy* mutable_governance() { return &options_.governance; }

  /// Serialized corrupt state + forensics from the most recent detection
  /// (empty if none yet): the violation, the first diverging auxiliary
  /// relation vs a start-over reference, and the full corrupt structure.
  const std::string& last_quarantine() const { return last_quarantine_; }

 private:
  /// Empty string = state passes all configured checks.
  std::string Violation() const;

  /// One request through the degradation ladder (see GovernancePolicy).
  core::Status GovernedApply(const relational::Request& request);

  /// The full session (engine state + shadowed input + step counter) as a
  /// checksummed "session" blob, and the delta form against the base
  /// copies held since the last full snapshot.
  std::string MakeSessionBlob() const;
  std::string MakeSessionDeltaBlob() const;

  /// Writes the due checkpoint (delta, or full when consolidation is due)
  /// and refreshes the CoW base copies after a full one.
  core::Status WriteCheckpoint(bool force_full);

  std::shared_ptr<const DynProgram> program_;
  GuardedEngineOptions options_;
  Oracle oracle_;
  InvariantCheck invariant_;
  std::unique_ptr<Engine> engine_;
  relational::Structure input_;
  std::optional<JournalWriter> journal_;
  std::optional<DurableStore> store_;
  /// Copy-on-write copies of the engine data and input at the last full
  /// snapshot — the delta base. O(1) to take, O(overlay) to diff against.
  std::optional<relational::Structure> base_data_;
  std::optional<relational::Structure> base_input_;
  uint64_t base_steps_ = 0;
  RecoveryStats stats_;
  std::string last_quarantine_;
};

/// Restores a killed session: `engine` must be freshly constructed for the
/// snapshot's program and universe. Restores the snapshot, then replays
/// the journal records past the snapshot's step counter. Errors (corrupt
/// snapshot, journal shorter than the snapshot's step counter, invalid
/// records) leave partial state behind — rebuild the engine before
/// retrying with different inputs.
core::Status RestoreFromSnapshotAndJournal(
    Engine* engine, const std::string& snapshot,
    const relational::RequestSequence& journal_requests);

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_RECOVERY_H_
