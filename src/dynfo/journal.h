/// \file journal.h
/// Append-only, crash-consistent journaling of applied requests.
///
/// The auxiliary relations are *live state* accumulated over an unbounded
/// request stream, so a production engine must be reconstructible after a
/// kill at any point. The journal records every applied request; together
/// with a snapshot (engine.h) the state is rebuilt bit-identically:
/// restore the snapshot, then replay the journal suffix past the
/// snapshot's step counter.
///
/// Format (one record per line, written with a single fwrite + flush):
///   dynfo-journal v1
///   <seq> ins <relation> <e1> <e2> ... c=<16 hex>
///   <seq> del <relation> <e1> <e2> ... c=<16 hex>
///   <seq> set <constant> <value> c=<16 hex>
///
/// Each record carries its sequence number and an FNV-1a checksum of its
/// body. The reader accepts the longest clean prefix: a damaged or
/// incomplete FINAL record is a torn tail (the expected result of a crash
/// mid-append) and is dropped with `torn_tail` set; any damage BEFORE the
/// final record — a checksum mismatch, a sequence gap (dropped record), a
/// repeated sequence number (duplicated record) — is unrecoverable
/// corruption and yields an error Status. Every parsed request is
/// validated against the input vocabulary and universe size, so replaying
/// a parsed journal can never CHECK-crash the engine.

#ifndef DYNFO_DYNFO_JOURNAL_H_
#define DYNFO_DYNFO_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "core/status.h"
#include "relational/request.h"
#include "relational/vocabulary.h"

namespace dynfo::dyn {

/// "dynfo-journal v1\n" — the first line of every journal.
std::string JournalHeader();

/// One record line (terminated by '\n'), checksum included.
std::string FormatJournalRecord(uint64_t seq, const relational::Request& request);

struct JournalParse {
  relational::RequestSequence requests;  ///< the clean prefix, seq 0..k-1
  size_t valid_bytes = 0;  ///< byte length of that prefix (incl. header)
  bool torn_tail = false;  ///< a damaged/incomplete final record was dropped
};

/// Parses journal text, validating every record against the input
/// vocabulary and universe size. See the file comment for the torn-tail
/// vs. corruption contract.
core::Result<JournalParse> ParseJournal(const std::string& text,
                                        const relational::Vocabulary& input,
                                        size_t universe_size);

struct JournalWriterOptions {
  /// fsync(2) after every append. Durability against power loss; off by
  /// default (flush-per-append already survives process kills).
  bool fsync_each_append = false;
};

/// Appends records to a journal file. Opening scans any existing journal,
/// truncates a torn tail, and resumes the sequence numbering; appends are
/// single-write + flush so a kill can only tear the final record.
class JournalWriter {
 public:
  static core::Result<JournalWriter> Open(const std::string& path,
                                          const relational::Vocabulary& input,
                                          size_t universe_size,
                                          JournalWriterOptions options = {});

  JournalWriter(JournalWriter&&) = default;
  JournalWriter& operator=(JournalWriter&&) = default;

  core::Status Append(const relational::Request& request);

  /// Sequence number the next Append will write (= records on disk).
  uint64_t next_seq() const { return next_seq_; }

  /// Records recovered from the file at Open (the clean prefix).
  const relational::RequestSequence& recovered() const { return recovered_; }

  /// Whether Open dropped a torn tail from the existing file.
  bool truncated_torn_tail() const { return torn_; }

  const std::string& path() const { return path_; }

 private:
  JournalWriter() = default;

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  JournalWriterOptions options_;
  relational::RequestSequence recovered_;
  bool torn_ = false;
  uint64_t next_seq_ = 0;
};

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_JOURNAL_H_
