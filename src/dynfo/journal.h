/// \file journal.h
/// Append-only, crash-consistent journaling of applied requests.
///
/// The auxiliary relations are *live state* accumulated over an unbounded
/// request stream, so a production engine must be reconstructible after a
/// kill at any point. The journal records every applied request; together
/// with a snapshot (engine.h) the state is rebuilt bit-identically:
/// restore the snapshot, then replay the journal suffix past the
/// snapshot's step counter.
///
/// Format (one record per line, written with a single fwrite + flush):
///   dynfo-journal v1
///   <seq> ins <relation> <e1> <e2> ... c=<16 hex>
///   <seq> del <relation> <e1> <e2> ... c=<16 hex>
///   <seq> set <constant> <value> c=<16 hex>
///   <seq> batch <count> | ins <relation> <e...> | set <constant> <v> ... c=<16 hex>
///
/// Each record carries its sequence number and an FNV-1a checksum of its
/// body. A `batch` record is one group-committed line holding `count`
/// sub-requests; it occupies sequence numbers [seq, seq+count) and is
/// written — like every record — with a single fwrite + flush (+ one
/// fsync), so a crash can only drop the WHOLE batch, never a prefix of it.
/// The reader accepts the longest clean prefix: a damaged or incomplete
/// FINAL record is a torn tail (the expected result of a crash mid-append)
/// and is dropped with `torn_tail` set; any damage BEFORE the final record
/// — a checksum mismatch, a sequence gap (dropped record), a repeated
/// sequence number (duplicated record) — is unrecoverable corruption and
/// yields an error Status. Every parsed request is validated against the
/// input vocabulary and universe size, so replaying a parsed journal can
/// never CHECK-crash the engine.

#ifndef DYNFO_DYNFO_JOURNAL_H_
#define DYNFO_DYNFO_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/durable_io.h"
#include "core/status.h"
#include "relational/request.h"
#include "relational/vocabulary.h"

namespace dynfo::dyn {

/// "dynfo-journal v1\n" — the first line of every journal.
std::string JournalHeader();

/// One record line (terminated by '\n'), checksum included.
std::string FormatJournalRecord(uint64_t seq, const relational::Request& request);

/// One group-commit batch record line holding every request in `requests`
/// (which must be non-empty), occupying sequence numbers
/// [first_seq, first_seq + requests.size()).
std::string FormatBatchRecord(uint64_t first_seq,
                              std::span<const relational::Request> requests);

struct JournalParse {
  relational::RequestSequence requests;  ///< the clean prefix, seq 0..k-1
  size_t valid_bytes = 0;  ///< byte length of that prefix (incl. header)
  bool torn_tail = false;  ///< a damaged/incomplete final record was dropped
};

/// Parses journal text, validating every record against the input
/// vocabulary and universe size. See the file comment for the torn-tail
/// vs. corruption contract.
core::Result<JournalParse> ParseJournal(const std::string& text,
                                        const relational::Vocabulary& input,
                                        size_t universe_size);

struct JournalWriterOptions {
  /// fsync(2) after every append. Durability against power loss; off by
  /// default (flush-per-append already survives process kills).
  bool fsync_each_append = false;
};

/// Appends records to a journal file. Opening scans any existing journal,
/// truncates a torn tail, and resumes the sequence numbering; appends are
/// single-write + flush so a kill can only tear the final record.
class JournalWriter {
 public:
  static core::Result<JournalWriter> Open(const std::string& path,
                                          const relational::Vocabulary& input,
                                          size_t universe_size,
                                          JournalWriterOptions options = {});

  JournalWriter(JournalWriter&&) = default;
  JournalWriter& operator=(JournalWriter&&) = default;

  core::Status Append(const relational::Request& request);

  /// Group commit: appends the whole batch as ONE record line with one
  /// fwrite + flush (+ one fsync per options), so a crash either keeps the
  /// whole batch or drops it entirely. Advances next_seq() by the batch
  /// size. Batches of one fall back to a plain record; empty is a no-op.
  core::Status AppendBatch(std::span<const relational::Request> requests);

  /// Sequence number the next Append will write (= requests on disk).
  uint64_t next_seq() const { return next_seq_; }

  /// Records recovered from the file at Open (the clean prefix).
  const relational::RequestSequence& recovered() const { return recovered_; }

  /// Whether Open dropped a torn tail from the existing file.
  bool truncated_torn_tail() const { return torn_; }

  const std::string& path() const { return path_; }

 private:
  JournalWriter() = default;

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  JournalWriterOptions options_;
  relational::RequestSequence recovered_;
  bool torn_ = false;
  uint64_t next_seq_ = 0;
};

// ---------------------------------------------------------------------------
// Segmented journal + incremental checkpoints (DESIGN.md §12)
//
// The single-file journal above grows without bound and recovery replay is
// O(history). The DurableStore bounds both: records go into fixed-size
// *segments* ("dynfo-segment v1 first=<seq>" header, then journal-v1 record
// lines with absolute sequence numbers), and every segment rotation writes a
// *checkpoint* — a delta against the last full snapshot (cheap via the CoW
// overlays), with periodic full-snapshot consolidation — after which the
// covered segments are garbage-collected. A checksummed MANIFEST names the
// authoritative file set; it is replaced atomically (core/durable_io.h), so
// at every instant exactly one manifest governs and recovery replays at most
// one segment: O(checkpoint interval), not O(history).
// ---------------------------------------------------------------------------

/// "dynfo-segment v1 first=<seq>\n" — the first line of every segment.
std::string SegmentHeader(uint64_t first_seq);

struct SegmentParse {
  relational::RequestSequence requests;  ///< seqs first .. first+k-1
  size_t valid_bytes = 0;  ///< byte length of the clean prefix (incl. header)
  bool torn_tail = false;  ///< a damaged/incomplete final record was dropped
};

/// Parses one segment, validating the header's first-sequence against
/// `expected_first` and every record against the input vocabulary. Same
/// torn-tail-vs-corruption contract as ParseJournal.
core::Result<SegmentParse> ParseSegment(const std::string& text,
                                        const relational::Vocabulary& input,
                                        size_t universe_size,
                                        uint64_t expected_first);

/// The authoritative file set of a durable directory. Payload lines, in
/// order, wrapped by WrapChecksummed("manifest", ...):
///   program <name>
///   universe <n>
///   full <file> steps=<s>
///   delta <file> base=<b> steps=<s>     (at most one; optional)
///   seg <file> first=<k>                (the live chain, ascending)
///   end
struct Manifest {
  std::string program;
  uint64_t universe = 0;
  std::string full_file;
  uint64_t full_steps = 0;
  std::string delta_file;  ///< empty = no delta checkpoint
  uint64_t delta_base = 0;
  uint64_t delta_steps = 0;
  struct Segment {
    std::string file;
    uint64_t first = 0;
  };
  std::vector<Segment> segments;

  /// Steps covered by the checkpoint chain (full plus optional delta).
  uint64_t checkpoint_steps() const {
    return delta_file.empty() ? full_steps : delta_steps;
  }
};

/// Serializes `manifest` including the checksummed container.
std::string FormatManifest(const Manifest& manifest);

/// Parses and validates a manifest blob: container checksum, field syntax,
/// delta chained on the full snapshot, segment chain ascending and starting
/// at the checkpoint boundary. Any single-byte damage is an error.
core::Result<Manifest> ParseManifest(const std::string& text);

struct DurableStoreOptions {
  /// Records per segment — also the checkpoint interval: every rotation
  /// writes a checkpoint covering the finished segment, so recovery replay
  /// is bounded by this many records.
  uint64_t records_per_segment = 64;
  /// Every k-th checkpoint is a full-snapshot consolidation instead of a
  /// delta against the last full (bounds delta accumulation).
  uint64_t full_snapshot_every = 4;
  /// fsync(2) each appended record — durable mode. On by default here (the
  /// store exists for power-loss durability); the measured overhead gate
  /// lives in bench_recovery.
  bool fsync_each_append = true;
};

/// What DurableStore::Open recovered from the directory.
struct DurableRecovery {
  std::string full_blob;   ///< contents of the full-snapshot file
  std::string delta_blob;  ///< contents of the delta checkpoint; may be empty
  uint64_t checkpoint_steps = 0;  ///< steps covered before replay
  relational::RequestSequence replay;  ///< records past the checkpoint
  uint64_t segments_replayed = 0;
  bool torn_tail = false;  ///< the active segment lost a torn final record
};

/// Directory-backed segmented journal with incremental checkpoints. Layout:
/// MANIFEST (checksummed), full-<steps>.snap, delta-<steps>.ckpt,
/// seg-<first>.log. All replacements are atomic; a kill at any I/O boundary
/// leaves a recoverable directory governed by the previous manifest, and
/// Open garbage-collects any orphaned temp/superseded files it finds.
/// Single-writer, like the engine it journals for.
class DurableStore {
 public:
  /// Initializes a fresh directory: writes the initial full snapshot
  /// (`full_blob`, opaque to the store, covering `steps` requests), an
  /// empty first segment, and the manifest.
  static core::Result<DurableStore> Create(const std::string& dir,
                                           const std::string& program,
                                           size_t universe_size,
                                           const std::string& full_blob,
                                           uint64_t steps,
                                           DurableStoreOptions options = {});

  /// Opens an existing directory: validates the manifest, loads the
  /// checkpoint blobs, replays the segment chain (only the final segment
  /// may have a torn tail, which is truncated), collects orphans, and
  /// reopens the active segment for append.
  static core::Result<DurableStore> Open(const std::string& dir,
                                         const relational::Vocabulary& input,
                                         size_t universe_size,
                                         DurableStoreOptions options = {});

  /// Whether `dir` holds a store (i.e. a manifest — Open vs Create).
  static bool Exists(const std::string& dir);

  DurableStore(DurableStore&&) = default;
  DurableStore& operator=(DurableStore&&) = default;

  /// Appends one applied request to the active segment (fsynced per
  /// options). After a true return of checkpoint_due(), call Checkpoint
  /// before further appends to keep the replay bound.
  core::Status Append(const relational::Request& request);

  /// Group commit: appends the whole batch as ONE segment record with a
  /// single write and a single fsync, advancing next_seq() by the batch
  /// size — the per-request fsync cost becomes O(1) per batch. A crash
  /// mid-append drops the whole batch (single-line torn-tail contract),
  /// never a prefix of it. Batches of one fall back to a plain record;
  /// empty is a no-op. checkpoint_due() may overshoot by one batch.
  core::Status AppendBatch(std::span<const relational::Request> requests);

  /// The active segment has reached records_per_segment.
  bool checkpoint_due() const {
    return active_records_ >= options_.records_per_segment;
  }
  /// The next checkpoint should be a full-snapshot consolidation.
  bool full_due() const {
    return options_.full_snapshot_every != 0 &&
           deltas_since_full_ + 1 >= options_.full_snapshot_every;
  }

  /// Rotates: durably writes `blob` (a full snapshot if `is_full`, else a
  /// delta against the manifest's full snapshot) covering all `next_seq()`
  /// records, starts a fresh segment, atomically swaps the manifest, and
  /// garbage-collects the files the new manifest no longer references. A
  /// crash at any boundary leaves the previous manifest governing.
  core::Status Checkpoint(const std::string& blob, bool is_full);

  /// Results of the Open/Create-time recovery.
  const DurableRecovery& recovered() const { return recovered_; }

  uint64_t next_seq() const { return next_seq_; }
  const Manifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }
  const DurableStoreOptions& options() const { return options_; }

  /// Records in the active segment not yet covered by a checkpoint.
  uint64_t active_records() const { return active_records_; }

  struct Counters {
    uint64_t appends = 0;            ///< requests appended (batch members too)
    uint64_t batch_appends = 0;      ///< group-commit batch records written
    uint64_t fsyncs = 0;
    uint64_t bytes_appended = 0;     ///< journal bytes written by appends
    uint64_t checkpoints = 0;        ///< delta checkpoints written
    uint64_t full_snapshots = 0;     ///< full consolidations written
    uint64_t segments_rotated = 0;
    uint64_t files_collected = 0;    ///< orphans + superseded files removed
  };
  const Counters& counters() const { return counters_; }

 private:
  DurableStore() = default;

  std::string dir_;
  DurableStoreOptions options_;
  Manifest manifest_;
  std::optional<core::AppendFile> active_;
  uint64_t active_first_ = 0;
  uint64_t active_records_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t deltas_since_full_ = 0;
  DurableRecovery recovered_;
  Counters counters_;
};

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_JOURNAL_H_
