#include "dynfo/recovery.h"

#include <chrono>
#include <utility>

#include "relational/serialize.h"

namespace dynfo::dyn {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

GuardedEngine::GuardedEngine(std::shared_ptr<const DynProgram> program,
                             size_t universe_size, Oracle oracle,
                             InvariantCheck invariant, GuardedEngineOptions options)
    : program_(std::move(program)),
      options_(std::move(options)),
      oracle_(std::move(oracle)),
      invariant_(std::move(invariant)),
      engine_(std::make_unique<Engine>(program_, universe_size,
                                       options_.engine_options)),
      input_(program_->input_vocabulary(), universe_size) {
  if (options_.post_init) options_.post_init(engine_.get());
}

std::string GuardedEngine::Violation() const {
  if (oracle_ && program_->bool_query() != nullptr) {
    const bool expected = oracle_(input_);
    const bool actual = engine_->QueryBool();
    if (expected != actual) {
      return std::string("query mismatch (oracle ") + (expected ? "true" : "false") +
             ", engine " + (actual ? "true" : "false") + ")";
    }
  }
  if (invariant_) {
    std::string violation = invariant_(input_, *engine_);
    if (!violation.empty()) return violation;
  }
  return "";
}

core::Status GuardedEngine::Apply(const relational::Request& request) {
  core::Status valid =
      relational::ValidateRequest(*program_->input_vocabulary(),
                                  input_.universe_size(), request);
  if (!valid.ok()) return valid;
  if (program_->semi_dynamic() &&
      request.kind == relational::RequestKind::kDelete) {
    return core::Status::Error(program_->name() +
                               " is semi-dynamic: deletes are not supported");
  }
  if (options_.governance.active()) {
    // Governed path: apply first (a cancelled/timed-out request leaves the
    // engine untouched and must not be journaled as history), journal only
    // what actually happened.
    core::Status applied = GovernedApply(request);
    if (!applied.ok()) return applied;
    if (journal_.has_value()) {
      core::Status journaled = journal_->Append(request);
      if (!journaled.ok()) return journaled;
    }
  } else {
    if (journal_.has_value()) {
      core::Status journaled = journal_->Append(request);
      if (!journaled.ok()) return journaled;
    }
    engine_->Apply(request);
  }
  relational::ApplyRequest(&input_, request);
  ++stats_.requests;
  if (options_.check_every > 0 && stats_.requests % options_.check_every == 0) {
    return CheckNow();
  }
  return core::Status();
}

core::Status GuardedEngine::GovernedApply(const relational::Request& request) {
  const GovernancePolicy& policy = options_.governance;
  ExecTier tier = engine_->ConfiguredTier();
  int attempts = 0;
  bool repaired = false;
  core::Status last;
  while (true) {
    ++stats_.tier_activations[static_cast<int>(tier)];
    if (tier == ExecTier::kStartOver) {
      // Last rung: rebuild auxiliary state from the trusted input, then
      // muddle through ungoverned at the reference tier — correctness over
      // latency once every governed tier has failed.
      core::Status rebuilt =
          Recover("degradation ladder exhausted: " + last.ToString());
      if (!rebuilt.ok()) return rebuilt;
      ++stats_.start_over_applies;
      return engine_->TryApply(request, ApplyGovernance{}, ExecTier::kNaive);
    }

    core::Status status =
        policy.inject_for_test ? policy.inject_for_test(tier) : core::Status();
    if (status.ok()) {
      status = engine_->TryApply(request, policy.governance, tier);
    }
    if (status.ok()) return status;
    last = status;

    switch (status.code()) {
      case core::StatusCode::kCancelled:
        // The caller stopped waiting; retrying on a slower tier is waste.
        ++stats_.cancellations;
        return status;
      case core::StatusCode::kDeadlineExceeded:
        ++stats_.deadlines_exceeded;
        return status;
      case core::StatusCode::kResourceExhausted:
        ++stats_.budget_breaches;
        break;  // descend: lower tiers hold smaller intermediates
      case core::StatusCode::kCorruption:
        if (!repaired) {
          // Derived state (indexes, plans) is suspect but the tuples are
          // not: rebuild in place and retry the same tier once.
          engine_->RebuildCompiledState();
          ++stats_.index_rebuilds;
          repaired = true;
          continue;
        }
        break;
      default:
        break;
    }

    if (!policy.enable_ladder) return status;
    if (++attempts < policy.attempts_per_tier) continue;
    attempts = 0;
    ++stats_.ladder_fallbacks;
    switch (tier) {
      case ExecTier::kCompiledIndexed:
        tier = ExecTier::kCompiled;
        break;
      case ExecTier::kCompiled:
        tier = ExecTier::kNaive;
        break;
      case ExecTier::kNaive:
      case ExecTier::kStartOver:
        tier = ExecTier::kStartOver;
        break;
    }
  }
}

core::Status GuardedEngine::CheckNow() {
  ++stats_.checks_run;
  // Index (derived-state) corruption is repairable in place: the tuples
  // are intact, so this is not a start-over event and does not count as a
  // detected corruption of the auxiliary state.
  core::Status indexes = engine_->ValidateIndexes();
  if (!indexes.ok()) {
    engine_->RebuildCompiledState();
    ++stats_.index_rebuilds;
  }
  const std::string violation = Violation();
  if (violation.empty()) return core::Status();

  ++stats_.corruptions_detected;
  stats_.last_detection_step = stats_.requests;
  // Quarantine before any rebuild touches the engine: the corrupt state is
  // evidence, not garbage.
  last_quarantine_ = "corruption detected at step " + std::to_string(stats_.requests) +
                     ": " + violation + "\n" +
                     DescribeAuxDivergence(*engine_, input_, options_.post_init) +
                     "\n" + relational::WriteStructure(engine_->data());
  return Recover(violation);
}

core::Status GuardedEngine::Recover(const std::string& reason) {
  const auto start = std::chrono::steady_clock::now();
  auto fresh = std::make_unique<Engine>(program_, input_.universe_size(),
                                        options_.engine_options);
  if (options_.post_init) options_.post_init(fresh.get());
  const relational::RequestSequence replay =
      relational::StructureAsRequests(input_);
  for (const relational::Request& request : replay) {
    fresh->Apply(request);
  }
  fresh->set_request_counter(stats_.requests);
  stats_.rebuild_requests_replayed += replay.size();
  engine_ = std::move(fresh);
  const double elapsed = SecondsSince(start);
  stats_.last_recovery_seconds = elapsed;
  stats_.recovery_seconds += elapsed;

  const std::string still_bad = Violation();
  if (!still_bad.empty()) {
    return core::Status::Error(
        "start-over recovery failed: the rebuilt state still violates checks (" +
        still_bad + "); original trigger: " + reason);
  }
  ++stats_.recoveries;
  return core::Status();
}

core::Status GuardedEngine::AttachJournal(const std::string& path,
                                          JournalWriterOptions options) {
  if (stats_.requests != 0 || journal_.has_value()) {
    return core::Status::Error(
        "AttachJournal must be called on a fresh GuardedEngine");
  }
  core::Result<JournalWriter> writer = JournalWriter::Open(
      path, *program_->input_vocabulary(), input_.universe_size(), options);
  if (!writer.ok()) return writer.status();
  journal_.emplace(std::move(writer).value());
  for (const relational::Request& request : journal_->recovered()) {
    if (program_->semi_dynamic() &&
        request.kind == relational::RequestKind::kDelete) {
      return core::Status::Error("journal replays a delete into semi-dynamic " +
                                 program_->name());
    }
    engine_->Apply(request);
    relational::ApplyRequest(&input_, request);
    ++stats_.requests;
  }
  return core::Status();
}

core::Status RestoreFromSnapshotAndJournal(
    Engine* engine, const std::string& snapshot,
    const relational::RequestSequence& journal_requests) {
  core::Status restored = engine->Restore(snapshot);
  if (!restored.ok()) return restored;
  const uint64_t steps = engine->stats().requests;
  if (steps > journal_requests.size()) {
    return core::Status::Error(
        "journal has " + std::to_string(journal_requests.size()) +
        " records but the snapshot was taken at step " + std::to_string(steps) +
        ": journal records were lost");
  }
  for (size_t i = steps; i < journal_requests.size(); ++i) {
    core::Status valid = relational::ValidateRequest(
        *engine->program().input_vocabulary(), engine->universe_size(),
        journal_requests[i]);
    if (!valid.ok()) return valid;
    if (engine->program().semi_dynamic() &&
        journal_requests[i].kind == relational::RequestKind::kDelete) {
      return core::Status::Error("journal replays a delete into semi-dynamic " +
                                 engine->program().name());
    }
    engine->Apply(journal_requests[i]);
  }
  return core::Status();
}

}  // namespace dynfo::dyn
