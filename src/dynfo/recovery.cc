#include "dynfo/recovery.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "core/text.h"
#include "relational/serialize.h"

namespace dynfo::dyn {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Parsed form of a "session" / "session-delta" checkpoint blob: the step
/// counter(s) plus the two length-prefixed sections — the engine's own
/// (checksummed) snapshot blob and the shadowed input structure text.
struct SessionParse {
  uint64_t base = 0;  ///< delta blobs only: the full snapshot's step count
  uint64_t steps = 0;
  std::string engine_blob;
  std::string input_text;
};

core::Result<SessionParse> ParseSession(const std::string& blob, bool is_delta) {
  const char* kind = is_delta ? "session-delta" : "session";
  core::Result<std::string> payload = relational::UnwrapChecksummed(kind, blob);
  if (!payload.ok()) return payload.status();
  const std::string& text = payload.value();
  size_t pos = 0;

  auto parse_kv = [&text, &pos](const char* key, uint64_t* out) {
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) return false;
    const std::string line = text.substr(pos, nl - pos);
    const std::string prefix = std::string(key) + " ";
    if (line.rfind(prefix, 0) != 0 ||
        !core::ParseU64(line.substr(prefix.size()), out)) {
      return false;
    }
    pos = nl + 1;
    return true;
  };
  auto read_section = [&text, &pos, &parse_kv](const char* key,
                                               std::string* dest) {
    uint64_t bytes = 0;
    if (!parse_kv(key, &bytes)) return false;
    if (text.size() - pos < bytes) return false;
    *dest = text.substr(pos, bytes);
    pos += bytes;
    return true;
  };
  auto err = [kind](const std::string& message) {
    return core::Status::Error(std::string(kind) + " blob: " + message);
  };

  SessionParse out;
  if (is_delta && !parse_kv("base", &out.base)) {
    return err("missing 'base' line");
  }
  if (!parse_kv("steps", &out.steps)) return err("missing 'steps' line");
  if (!read_section("engine", &out.engine_blob)) {
    return err("missing engine section");
  }
  if (!read_section("input", &out.input_text)) {
    return err("missing input section");
  }
  if (pos != text.size()) return err("trailing bytes");
  return out;
}

}  // namespace

GuardedEngine::GuardedEngine(std::shared_ptr<const DynProgram> program,
                             size_t universe_size, Oracle oracle,
                             InvariantCheck invariant, GuardedEngineOptions options)
    : program_(std::move(program)),
      options_(std::move(options)),
      oracle_(std::move(oracle)),
      invariant_(std::move(invariant)),
      engine_(std::make_unique<Engine>(program_, universe_size,
                                       options_.engine_options)),
      input_(program_->input_vocabulary(), universe_size) {
  if (options_.post_init) options_.post_init(engine_.get());
}

std::string GuardedEngine::Violation() const {
  if (oracle_ && program_->bool_query() != nullptr) {
    const bool expected = oracle_(input_);
    const bool actual = engine_->QueryBool();
    if (expected != actual) {
      return std::string("query mismatch (oracle ") + (expected ? "true" : "false") +
             ", engine " + (actual ? "true" : "false") + ")";
    }
  }
  if (invariant_) {
    std::string violation = invariant_(input_, *engine_);
    if (!violation.empty()) return violation;
  }
  return "";
}

core::Status GuardedEngine::Apply(const relational::Request& request) {
  core::Status valid =
      relational::ValidateRequest(*program_->input_vocabulary(),
                                  input_.universe_size(), request);
  if (!valid.ok()) return valid;
  if (program_->semi_dynamic() &&
      request.kind == relational::RequestKind::kDelete) {
    return core::Status::Error(program_->name() +
                               " is semi-dynamic: deletes are not supported");
  }
  if (options_.governance.active()) {
    // Governed path: apply first (a cancelled/timed-out request leaves the
    // engine untouched and must not be journaled as history), journal only
    // what actually happened.
    core::Status applied = GovernedApply(request);
    if (!applied.ok()) return applied;
    if (journal_.has_value()) {
      core::Status journaled = journal_->Append(request);
      if (!journaled.ok()) return journaled;
    }
  } else {
    if (journal_.has_value()) {
      core::Status journaled = journal_->Append(request);
      if (!journaled.ok()) return journaled;
    }
    engine_->Apply(request);
  }
  if (store_.has_value()) {
    // Applied requests only reach the durable journal (matching the
    // governed path's contract); an append failure here means the caller
    // never gets an OK and recovery serves the pre-request state.
    core::Status appended = store_->Append(request);
    if (!appended.ok()) return appended;
  }
  relational::ApplyRequest(&input_, request);
  ++stats_.requests;
  if (store_.has_value() && store_->checkpoint_due()) {
    core::Status checkpointed = WriteCheckpoint(/*force_full=*/false);
    if (!checkpointed.ok()) return checkpointed;
  }
  if (options_.check_every > 0 && stats_.requests % options_.check_every == 0) {
    return CheckNow();
  }
  return core::Status();
}

core::Status GuardedEngine::ApplyBatch(std::span<const relational::Request> requests,
                                       BatchReport* report) {
  if (report != nullptr) *report = BatchReport{};
  if (requests.empty()) return core::Status();

  // One validation sweep before anything applies: the group commit must
  // never record a batch the wrapper would have rejected piecewise.
  for (const relational::Request& request : requests) {
    core::Status valid =
        relational::ValidateRequest(*program_->input_vocabulary(),
                                    input_.universe_size(), request);
    if (!valid.ok()) return valid;
    if (program_->semi_dynamic() &&
        request.kind == relational::RequestKind::kDelete) {
      return core::Status::Error(program_->name() +
                                 " is semi-dynamic: deletes are not supported");
    }
  }

  // Engine first, then journal: the applied prefix is only known after the
  // batch runs, and a crash between apply and append is safe — the caller
  // never got an OK, and recovery replays the pre-batch journal state.
  BatchReport local;
  core::Status status =
      engine_->TryApplyBatch(requests, options_.governance.governance, &local);
  if (report != nullptr) *report = local;
  switch (local.code) {
    case core::StatusCode::kCancelled:
      ++stats_.cancellations;
      break;
    case core::StatusCode::kDeadlineExceeded:
      ++stats_.deadlines_exceeded;
      break;
    case core::StatusCode::kResourceExhausted:
      ++stats_.budget_breaches;
      break;
    default:
      break;
  }

  // Group-commit exactly the applied prefix — one record, one fsync —
  // whether the batch finished or aborted partway. The journal must match
  // the engine, and on abort the engine holds the prefix.
  const std::span<const relational::Request> applied = requests.first(local.applied);
  if (!applied.empty()) {
    if (journal_.has_value()) {
      core::Status journaled = journal_->AppendBatch(applied);
      if (!journaled.ok()) return journaled;
    }
    if (store_.has_value()) {
      core::Status appended = store_->AppendBatch(applied);
      if (!appended.ok()) return appended;
    }
    for (const relational::Request& request : applied) {
      relational::ApplyRequest(&input_, request);
    }
    const uint64_t before = stats_.requests;
    stats_.requests += applied.size();
    ++stats_.batches;
    stats_.batch_requests += applied.size();
    if (store_.has_value() && store_->checkpoint_due()) {
      core::Status checkpointed = WriteCheckpoint(/*force_full=*/false);
      if (!checkpointed.ok()) return checkpointed;
    }
    if (!status.ok()) return status;
    // Cadence: at most one check per batch, when the batch crossed a
    // check_every boundary (per-request Apply would have checked in between;
    // batches trade that latency for throughput, see DESIGN.md §14).
    if (options_.check_every > 0 &&
        before / options_.check_every != stats_.requests / options_.check_every) {
      return CheckNow();
    }
  }
  return status;
}

core::Status GuardedEngine::ApplyDefinable(const DefinableChange& change,
                                           BatchReport* report) {
  const relational::RequestSequence requests =
      engine_->MaterializeDefinableChange(change);
  return ApplyBatch(requests, report);
}

core::Status GuardedEngine::GovernedApply(const relational::Request& request) {
  const GovernancePolicy& policy = options_.governance;
  ExecTier tier = engine_->ConfiguredTier();
  int attempts = 0;
  bool repaired = false;
  core::Status last;
  while (true) {
    ++stats_.tier_activations[static_cast<int>(tier)];
    if (tier == ExecTier::kStartOver) {
      // Last rung: rebuild auxiliary state from the trusted input, then
      // muddle through ungoverned at the reference tier — correctness over
      // latency once every governed tier has failed.
      core::Status rebuilt =
          Recover("degradation ladder exhausted: " + last.ToString());
      if (!rebuilt.ok()) return rebuilt;
      ++stats_.start_over_applies;
      return engine_->TryApply(request, ApplyGovernance{}, ExecTier::kNaive);
    }

    core::Status status =
        policy.inject_for_test ? policy.inject_for_test(tier) : core::Status();
    if (status.ok()) {
      status = engine_->TryApply(request, policy.governance, tier);
    }
    if (status.ok()) return status;
    last = status;

    switch (status.code()) {
      case core::StatusCode::kCancelled:
        // The caller stopped waiting; retrying on a slower tier is waste.
        ++stats_.cancellations;
        return status;
      case core::StatusCode::kDeadlineExceeded:
        ++stats_.deadlines_exceeded;
        return status;
      case core::StatusCode::kResourceExhausted:
        ++stats_.budget_breaches;
        break;  // descend: lower tiers hold smaller intermediates
      case core::StatusCode::kCorruption:
        if (!repaired) {
          // Derived state (indexes, plans) is suspect but the tuples are
          // not: rebuild in place and retry the same tier once.
          engine_->RebuildCompiledState();
          ++stats_.index_rebuilds;
          repaired = true;
          continue;
        }
        break;
      default:
        break;
    }

    if (!policy.enable_ladder) return status;
    if (++attempts < policy.attempts_per_tier) continue;
    attempts = 0;
    ++stats_.ladder_fallbacks;
    switch (tier) {
      case ExecTier::kCompiledIndexed:
        tier = ExecTier::kCompiled;
        break;
      case ExecTier::kCompiled:
        tier = ExecTier::kNaive;
        break;
      case ExecTier::kNaive:
      case ExecTier::kStartOver:
        tier = ExecTier::kStartOver;
        break;
    }
  }
}

core::Status GuardedEngine::CheckNow() {
  ++stats_.checks_run;
  // Index (derived-state) corruption is repairable in place: the tuples
  // are intact, so this is not a start-over event and does not count as a
  // detected corruption of the auxiliary state.
  core::Status indexes = engine_->ValidateIndexes();
  if (!indexes.ok()) {
    engine_->RebuildCompiledState();
    ++stats_.index_rebuilds;
  }
  const std::string violation = Violation();
  if (violation.empty()) return core::Status();

  ++stats_.corruptions_detected;
  stats_.last_detection_step = stats_.requests;
  // Quarantine before any rebuild touches the engine: the corrupt state is
  // evidence, not garbage.
  last_quarantine_ = "corruption detected at step " + std::to_string(stats_.requests) +
                     ": " + violation + "\n" +
                     DescribeAuxDivergence(*engine_, input_, options_.post_init) +
                     "\n" + relational::WriteStructure(engine_->data());
  return Recover(violation);
}

core::Status GuardedEngine::Recover(const std::string& reason) {
  const auto start = std::chrono::steady_clock::now();
  auto fresh = std::make_unique<Engine>(program_, input_.universe_size(),
                                        options_.engine_options);
  if (options_.post_init) options_.post_init(fresh.get());
  const relational::RequestSequence replay =
      relational::StructureAsRequests(input_);
  for (const relational::Request& request : replay) {
    fresh->Apply(request);
  }
  fresh->set_request_counter(stats_.requests);
  stats_.rebuild_requests_replayed += replay.size();
  engine_ = std::move(fresh);
  const double elapsed = SecondsSince(start);
  stats_.last_recovery_seconds = elapsed;
  stats_.recovery_seconds += elapsed;

  const std::string still_bad = Violation();
  if (!still_bad.empty()) {
    return core::Status::Error(
        "start-over recovery failed: the rebuilt state still violates checks (" +
        still_bad + "); original trigger: " + reason);
  }
  ++stats_.recoveries;
  return core::Status();
}

core::Status GuardedEngine::AttachJournal(const std::string& path,
                                          JournalWriterOptions options) {
  if (stats_.requests != 0 || journal_.has_value() || store_.has_value()) {
    return core::Status::Error(
        "AttachJournal must be called on a fresh GuardedEngine (and is "
        "mutually exclusive with AttachDurability)");
  }
  core::Result<JournalWriter> writer = JournalWriter::Open(
      path, *program_->input_vocabulary(), input_.universe_size(), options);
  if (!writer.ok()) return writer.status();
  journal_.emplace(std::move(writer).value());
  for (const relational::Request& request : journal_->recovered()) {
    if (program_->semi_dynamic() &&
        request.kind == relational::RequestKind::kDelete) {
      return core::Status::Error("journal replays a delete into semi-dynamic " +
                                 program_->name());
    }
    engine_->Apply(request);
    relational::ApplyRequest(&input_, request);
    ++stats_.requests;
  }
  return core::Status();
}

std::string GuardedEngine::MakeSessionBlob() const {
  const std::string engine_blob = engine_->Snapshot();
  const std::string input_text = relational::WriteStructure(input_);
  std::ostringstream payload;
  payload << "steps " << stats_.requests << "\n";
  payload << "engine " << engine_blob.size() << "\n" << engine_blob;
  payload << "input " << input_text.size() << "\n" << input_text;
  return relational::WrapChecksummed("session", payload.str());
}

std::string GuardedEngine::MakeSessionDeltaBlob() const {
  DYNFO_CHECK(base_data_.has_value() && base_input_.has_value())
      << "delta checkpoint without a base snapshot";
  const std::string engine_blob = engine_->SnapshotDelta(*base_data_, base_steps_);
  const std::string input_text =
      relational::WriteStructureDelta(*base_input_, input_);
  std::ostringstream payload;
  payload << "base " << base_steps_ << "\n";
  payload << "steps " << stats_.requests << "\n";
  payload << "engine " << engine_blob.size() << "\n" << engine_blob;
  payload << "input " << input_text.size() << "\n" << input_text;
  return relational::WrapChecksummed("session-delta", payload.str());
}

core::Status GuardedEngine::WriteCheckpoint(bool force_full) {
  DYNFO_CHECK(store_.has_value()) << "checkpoint without an attached store";
  const bool is_full = force_full || store_->full_due();
  const std::string blob = is_full ? MakeSessionBlob() : MakeSessionDeltaBlob();
  core::Status status = store_->Checkpoint(blob, is_full);
  if (!status.ok()) return status;
  if (is_full) {
    // Fresh delta base: O(1) copy-on-write copies of both structures.
    base_data_ = engine_->data();
    base_input_ = input_;
    base_steps_ = stats_.requests;
    ++stats_.full_snapshots_written;
  } else {
    ++stats_.checkpoints_written;
  }
  return core::Status();
}

core::Status GuardedEngine::Compact() {
  if (!store_.has_value()) {
    return core::Status::Error("Compact requires AttachDurability");
  }
  return WriteCheckpoint(/*force_full=*/true);
}

core::Status GuardedEngine::AttachDurability(const std::string& dir,
                                             DurabilityOptions options) {
  if (stats_.requests != 0 || journal_.has_value() || store_.has_value()) {
    return core::Status::Error(
        "AttachDurability must be called on a fresh GuardedEngine (and is "
        "mutually exclusive with AttachJournal)");
  }

  if (!DurableStore::Exists(dir)) {
    // Fresh directory: seed it with the current session (which includes any
    // post_init precomputation) as the first full snapshot.
    core::Result<DurableStore> created = DurableStore::Create(
        dir, program_->name(), input_.universe_size(), MakeSessionBlob(),
        stats_.requests, options.store);
    if (!created.ok()) return created.status();
    store_.emplace(std::move(created).value());
    base_data_ = engine_->data();
    base_input_ = input_;
    base_steps_ = stats_.requests;
    return core::Status();
  }

  // Revive: full snapshot, then the delta checkpoint, then at most one
  // segment of journal replay. On any error the wrapper is partially
  // restored — rebuild it before retrying (same contract as
  // RestoreFromSnapshotAndJournal).
  core::Result<DurableStore> opened = DurableStore::Open(
      dir, *program_->input_vocabulary(), input_.universe_size(), options.store);
  if (!opened.ok()) return opened.status();
  DurableStore store = std::move(opened).value();
  if (store.manifest().program != program_->name()) {
    return core::Status::Error("durable store " + dir + " is for program '" +
                               store.manifest().program + "', wrapper runs '" +
                               program_->name() + "'");
  }

  core::Result<SessionParse> full =
      ParseSession(store.recovered().full_blob, /*is_delta=*/false);
  if (!full.ok()) {
    return core::Status::Corruption("durable store " + dir + ": " +
                                    full.status().message());
  }
  core::Status restored = engine_->Restore(full.value().engine_blob);
  if (!restored.ok()) return restored;
  core::Result<relational::Structure> input_restored = relational::ReadStructure(
      full.value().input_text, program_->input_vocabulary());
  if (!input_restored.ok()) {
    return core::Status::Corruption("durable store " + dir + ": session input: " +
                                    input_restored.status().message());
  }
  if (input_restored.value().universe_size() != input_.universe_size()) {
    return core::Status::Error("durable store " + dir +
                               ": session input universe size mismatch");
  }
  input_ = std::move(input_restored).value();
  if (engine_->stats().requests != full.value().steps) {
    return core::Status::Corruption(
        "durable store " + dir + ": session step counters disagree");
  }
  // The delta base is the state at the last FULL snapshot.
  base_data_ = engine_->data();
  base_input_ = input_;
  base_steps_ = full.value().steps;

  if (!store.recovered().delta_blob.empty()) {
    core::Result<SessionParse> delta =
        ParseSession(store.recovered().delta_blob, /*is_delta=*/true);
    if (!delta.ok()) {
      return core::Status::Corruption("durable store " + dir + ": " +
                                      delta.status().message());
    }
    if (delta.value().base != base_steps_) {
      return core::Status::Corruption(
          "durable store " + dir +
          ": delta checkpoint is not chained on the full snapshot");
    }
    core::Status applied = engine_->RestoreDelta(delta.value().engine_blob);
    if (!applied.ok()) return applied;
    applied = relational::ApplyStructureDelta(&input_, delta.value().input_text);
    if (!applied.ok()) {
      return core::Status::Corruption("durable store " + dir +
                                      ": session input delta: " +
                                      applied.message());
    }
  }
  stats_.requests = engine_->stats().requests;
  if (stats_.requests != store.recovered().checkpoint_steps) {
    return core::Status::Corruption(
        "durable store " + dir +
        ": checkpoint step counters disagree with the manifest");
  }

  for (const relational::Request& request : store.recovered().replay) {
    if (program_->semi_dynamic() &&
        request.kind == relational::RequestKind::kDelete) {
      return core::Status::Error("journal replays a delete into semi-dynamic " +
                                 program_->name());
    }
    engine_->Apply(request);
    relational::ApplyRequest(&input_, request);
    ++stats_.requests;
    ++stats_.replayed_on_recovery;
  }
  if (stats_.requests != store.next_seq()) {
    return core::Status::Corruption(
        "durable store " + dir + ": replay ends at step " +
        std::to_string(stats_.requests) + ", store expects " +
        std::to_string(store.next_seq()));
  }

  store_.emplace(std::move(store));
  // Self-heal: if the previous run died in its checkpoint loop, the active
  // segment may already be full — checkpoint now so the replay bound holds
  // for the next recovery too.
  if (store_->checkpoint_due()) {
    return WriteCheckpoint(/*force_full=*/false);
  }
  return core::Status();
}

core::Status RestoreFromSnapshotAndJournal(
    Engine* engine, const std::string& snapshot,
    const relational::RequestSequence& journal_requests) {
  core::Status restored = engine->Restore(snapshot);
  if (!restored.ok()) return restored;
  const uint64_t steps = engine->stats().requests;
  if (steps > journal_requests.size()) {
    return core::Status::Error(
        "journal has " + std::to_string(journal_requests.size()) +
        " records but the snapshot was taken at step " + std::to_string(steps) +
        ": journal records were lost");
  }
  for (size_t i = steps; i < journal_requests.size(); ++i) {
    core::Status valid = relational::ValidateRequest(
        *engine->program().input_vocabulary(), engine->universe_size(),
        journal_requests[i]);
    if (!valid.ok()) return valid;
    if (engine->program().semi_dynamic() &&
        journal_requests[i].kind == relational::RequestKind::kDelete) {
      return core::Status::Error("journal replays a delete into semi-dynamic " +
                                 engine->program().name());
    }
    engine->Apply(journal_requests[i]);
  }
  return core::Status();
}

}  // namespace dynfo::dyn
