/// \file program.h
/// Dyn-FO programs: the paper's (f_n, g_n) pairs in executable form.
///
/// A DynProgram maintains a *data structure* — a finite structure over the
/// data vocabulary tau — in response to requests against the *input*
/// vocabulary sigma. For each request kind it carries first-order update
/// rules; a problem S is "in Dyn-FO" exactly when such a program exists with
/// (1) a first-order definable initial structure, (2) FO update rules, and
/// (3) an FO query whose answer equals membership of the input in S
/// (paper §3.1, conditions 1–4).
///
/// Rules evaluate *synchronously*: every update formula reads the data
/// structure as it was before the request. The paper's temporary relations
/// ("We define a temporary relation T ...", Theorem 4.1) are modeled as
/// `let` rules: they evaluate in order, each seeing the old structure plus
/// earlier lets, and the main updates may read them.

#ifndef DYNFO_DYNFO_PROGRAM_H_
#define DYNFO_DYNFO_PROGRAM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "fo/formula.h"
#include "relational/request.h"
#include "relational/vocabulary.h"

namespace dynfo::dyn {

/// One first-order (re)definition: target relation := { tuple_variables :
/// formula }. The formula's free variables must be among tuple_variables;
/// request parameters $0, $1, ... refer to the updated tuple (or the value
/// of a set request).
struct UpdateRule {
  std::string target;
  std::vector<std::string> tuple_variables;
  fo::FormulaPtr formula;
};

/// The rules fired by one (request kind, input symbol) pair.
struct RequestRules {
  std::vector<UpdateRule> lets;     ///< temporaries, evaluated in order
  std::vector<UpdateRule> updates;  ///< committed atomically against the old state
};

/// A named, parameterless-or-parameterized first-order query against the
/// data structure (e.g. "Connected(x, y)").
struct NamedQuery {
  std::vector<std::string> tuple_variables;
  fo::FormulaPtr formula;
};

/// A complete Dyn-FO program. Build with the setters, then Validate().
class DynProgram {
 public:
  DynProgram(std::string name, std::shared_ptr<const relational::Vocabulary> input,
             std::shared_ptr<const relational::Vocabulary> data);

  const std::string& name() const { return name_; }
  std::shared_ptr<const relational::Vocabulary> input_vocabulary() const {
    return input_;
  }
  std::shared_ptr<const relational::Vocabulary> data_vocabulary() const { return data_; }

  /// First-order initialization of the data structure f_n(empty): rules are
  /// evaluated in order on the all-empty structure (each sees the previous
  /// ones). This implements the paper's condition (4) — the initial
  /// structure is uniformly FO-computable. Programs with *polynomial*
  /// precomputation (Dyn-FO+) instead install arbitrary contents through
  /// Engine::mutable_data(); see engine.h.
  void AddInit(UpdateRule rule) { init_.push_back(std::move(rule)); }

  /// Registers a temporary/let rule for (kind, input symbol name).
  void AddLet(relational::RequestKind kind, const std::string& input_name,
              UpdateRule rule);
  /// Registers a main update rule for (kind, input symbol name).
  void AddUpdate(relational::RequestKind kind, const std::string& input_name,
                 UpdateRule rule);

  /// The boolean query answered by QueryBool (a sentence over tau; it may use
  /// request parameters, supplied at query time).
  void SetBoolQuery(fo::FormulaPtr query) { bool_query_ = std::move(query); }
  const fo::FormulaPtr& bool_query() const { return bool_query_; }

  /// Additional named queries (arbitrary FO is free in Dyn-FO).
  void AddNamedQuery(const std::string& name, NamedQuery query);
  const NamedQuery* FindNamedQuery(const std::string& name) const;

  const std::vector<UpdateRule>& init_rules() const { return init_; }

  /// Rules for a request, or nullptr when none are registered (the engine
  /// then falls back to mirroring the input change directly).
  const RequestRules* RulesFor(relational::RequestKind kind,
                               const std::string& input_name) const;

  using RuleKey = std::pair<relational::RequestKind, std::string>;

  /// Every registered (request, rules) pair — the engine walks this at load
  /// time to compile all update plans before the first request arrives.
  const std::map<RuleKey, RequestRules>& rules() const { return rules_; }

  /// Structural well-formedness: every target exists in tau with matching
  /// arity, free variables are covered by tuple variables, mentioned
  /// relations exist (lets may be referenced only after definition), and
  /// parameter indices fit the triggering request.
  core::Status Validate() const;

  /// Maximum quantifier depth over all rules and queries — the paper's
  /// parallel-time measure (FO = CRAM[1]).
  int MaxQuantifierDepth() const;

  /// Maximum variable width over all rules and queries — the paper's space
  /// measure ("space corresponds to number of variables", §2).
  int MaxVariableWidth() const;

  /// Marks the program as Dyn_s (semi-dynamic, §3.1): the engine refuses
  /// delete requests instead of silently letting auxiliary state go stale.
  void SetSemiDynamic(bool value) { semi_dynamic_ = value; }
  bool semi_dynamic() const { return semi_dynamic_; }

 private:
  std::string name_;
  std::shared_ptr<const relational::Vocabulary> input_;
  std::shared_ptr<const relational::Vocabulary> data_;
  std::vector<UpdateRule> init_;
  std::map<RuleKey, RequestRules> rules_;
  fo::FormulaPtr bool_query_;
  std::map<std::string, NamedQuery> named_queries_;
  bool semi_dynamic_ = false;
};

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_PROGRAM_H_
