/// \file engine.h
/// Executes a DynProgram against a stream of requests.
///
/// The engine owns the data structure f_n(r-bar) and implements g_n: on each
/// request it evaluates the program's update formulas against the *old*
/// structure (synchronous semantics) and commits the results atomically.
///
/// Two orthogonal execution choices, both semantics-preserving (and verified
/// so by tests):
///   * eval_mode — which evaluator computes formula results (naive
///     substitute-and-test vs. the relational-algebra compiler);
///   * use_delta — when an update formula syntactically decomposes over a
///     base relation ("(B(x-bar) & keep) | delta", with B the target itself
///     or any other data relation), apply it as a diff instead of rebuilding
///     the relation. With compiled plans and indexes on, the removal side
///     runs a semi-naive program (fo/plan.h, DeltaProgram) that emits only
///     the changed tuples, deltas propagate between lets and update targets
///     across the rule DAG within one Apply (copy-on-write relation versions
///     plus op-chain provenance), and non-delta-safe rules fall back to the
///     full-materialization path. This is the sequential-implementation
///     analogue of the paper's parallel O(1)-time update: only the changed
///     tuples are touched. See DESIGN.md §11.

#ifndef DYNFO_DYNFO_ENGINE_H_
#define DYNFO_DYNFO_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cancel.h"
#include "dynfo/program.h"
#include "fo/eval_algebra.h"
#include "fo/eval_context.h"
#include "fo/plan.h"
#include "relational/request.h"
#include "relational/structure.h"

namespace dynfo::dyn {

enum class EvalMode {
  kNaive,    ///< reference evaluator; O(n^arity) points per rule
  kAlgebra,  ///< relational-algebra compilation (default)
};

/// The degradation ladder's execution tiers, fastest first. A governed
/// Apply may be pinned to a tier (overriding the engine's configured
/// options for that one request); the recovery layer descends the ladder
/// when a tier fails (see dynfo/recovery.h and DESIGN.md §10).
enum class ExecTier {
  kCompiledIndexed = 0,  ///< compiled plans probing persistent indexes
  kCompiled = 1,         ///< compiled plans, index probes disabled
  kNaive = 2,            ///< reference substitute-and-test evaluator
  kStartOver = 3,        ///< rebuild from the input structure, then retry
};

inline const char* ExecTierName(ExecTier tier) {
  switch (tier) {
    case ExecTier::kCompiledIndexed:
      return "compiled+indexed";
    case ExecTier::kCompiled:
      return "compiled";
    case ExecTier::kNaive:
      return "naive";
    case ExecTier::kStartOver:
      return "start-over";
  }
  return "?";
}

/// Per-Apply resource governance. Default-constructed = inactive: TryApply
/// then runs exactly the legacy ungoverned path (no governor, no polls, no
/// request validation). Any non-default field activates governed execution.
struct ApplyGovernance {
  /// Wall-clock budget per Apply in milliseconds. 0 = no deadline;
  /// negative = already expired (pins the timeout path in tests).
  int64_t deadline_ms = 0;
  /// Caller-held cancellation flag, polled at chunk boundaries.
  const core::CancelToken* cancel = nullptr;
  /// Memory/cardinality budget for materialized intermediates.
  core::ResourceLimits limits;

  // Chaos/test injectors (core/cancel.h, core/budget.h).
  uint64_t trip_after_checks = 0;        ///< cancel at the k-th governor poll
  uint64_t stall_at_check = 0;           ///< stall the k-th poll ...
  int stall_ms = 0;                      ///< ... for this many milliseconds
  uint64_t fail_alloc_after_charges = 0; ///< injected allocation failure

  bool active() const {
    return deadline_ms != 0 || cancel != nullptr || limits.active() ||
           trip_after_checks != 0 || stall_at_check != 0 ||
           fail_alloc_after_charges != 0;
  }
};

/// What a governed Apply observed, for callers tracking governance cost.
struct ApplyReport {
  core::StatusCode code = core::StatusCode::kOk;
  uint64_t governor_checks = 0;
  uint64_t tuples_charged = 0;
  uint64_t bytes_charged = 0;
};

/// What a batched Apply observed. On a non-OK TryApplyBatch the engine
/// holds exactly the first `applied` requests of the batch (the
/// fully-applied prefix); the failing request and everything after it are
/// untouched.
struct BatchReport {
  core::StatusCode code = core::StatusCode::kOk;
  size_t applied = 0;  ///< length of the fully-applied prefix
  uint64_t governor_checks = 0;
  uint64_t tuples_charged = 0;
  uint64_t bytes_charged = 0;
};

/// An FO-definable bulk change (Schwentick, Vortmeier & Zeume, "Dynamic
/// Complexity under Definable Changes"): one synchronous step inserting or
/// deleting the WHOLE definable tuple set { tuple_variables : formula }
/// into/from an input relation, instead of a single tuple. The formula is
/// evaluated against the engine's current data structure (auxiliary
/// relations included), then the change set is expanded into a
/// canonically-ordered sequence of single-tuple requests and fed through
/// the batched Apply pipeline — the faithful simulation of a definable
/// change by the paper's single-tuple model.
struct DefinableChange {
  /// kInsert or kDelete (kSetConstant has no definable form).
  relational::RequestKind mode = relational::RequestKind::kInsert;
  std::string target;  ///< input relation receiving the change set
  /// Columns of the change set; the formula's free variables must be among
  /// these, like an UpdateRule's.
  std::vector<std::string> tuple_variables;
  fo::FormulaPtr formula;  ///< selects the change set over the data structure
};

struct EngineOptions {
  EvalMode eval_mode = EvalMode::kAlgebra;
  /// Apply target-preserving rules as in-place diffs. Only honored in
  /// kAlgebra mode; kNaive always recomputes (it is the reference).
  bool use_delta = true;
  /// Threads used per request (1 = fully sequential). Parallelism operates at
  /// two levels, mirroring the paper's CRAM model: all of a request's update
  /// rules evaluate concurrently (synchronous semantics — every rule reads
  /// only the old structure), and within a rule the algebra operators
  /// partition their row ranges. Results are identical for every thread
  /// count; see DESIGN.md "Parallel execution".
  int num_threads = 1;
  /// Minimum rows per chunk for the data-parallel algebra operators.
  size_t parallel_grain = 256;
  /// Compile each formula to a reusable plan once at load time instead of
  /// re-planning on every evaluation (fo/plan.h). Only meaningful in kAlgebra
  /// mode; off = the pre-plan-cache behavior, kept for bench ablation.
  bool use_compiled_plans = true;
  /// Maintain persistent per-column-subset indexes on the stored relations
  /// and let compiled atom joins probe them (relational/index.h). Only
  /// effective with use_compiled_plans.
  bool use_indexes = true;
  /// Let eligible stored relations (arity <= 2) use the packed-bitmap
  /// backend, chosen per relation by a density cost model at commit
  /// boundaries, and answer whole requests through lowered word-parallel
  /// kernels when every update rule of the request class lowers
  /// (DESIGN.md §13). Off by default: the hash backend stays the reference;
  /// the CLI and benchmarks opt in. Only meaningful in kAlgebra mode with
  /// compiled plans.
  bool use_dense_relations = false;
  /// With use_dense_relations, pin every representable relation to the
  /// dense backend instead of consulting the cost model (CLI
  /// --backend=dense; conversion-churn tests).
  bool force_dense_backend = false;
};

/// Runs one DynProgram at one universe size. Apply/Query must be called from
/// one thread at a time; with EngineOptions::num_threads > 1 the engine fans
/// work out internally over the global thread pool.
class Engine {
 public:
  struct Stats {
    uint64_t requests = 0;
    uint64_t relations_recomputed = 0;
    uint64_t delta_applications = 0;
    uint64_t tuples_inserted = 0;
    uint64_t tuples_erased = 0;
    /// Total tuples materialized across ALL paths: full-recompute result
    /// sizes plus every tuple applied through a delta path. The O(delta)
    /// claim is tuples_delta_written / tuples_written approaching 1 on
    /// delta-friendly workloads.
    uint64_t tuples_written = 0;
    /// Tuples applied (successful erases + inserts) through delta paths —
    /// in-place diffs, copy-on-write versions, and op-chain replays — rather
    /// than full rematerialization.
    uint64_t tuples_delta_written = 0;
    /// Rule applications (lets and updates) whose removal side ran a bounded
    /// semi-naive program (or had keep ≡ true) — the O(delta) path.
    uint64_t delta_rules = 0;
    /// Rule applications that had delta configured (use_delta, algebra mode)
    /// but fell back to full rematerialization — not decomposable, removal
    /// side not delta-safe, or the semi-naive gates (compiled plans +
    /// indexes) off for the request.
    uint64_t fallback_recomputes = 0;
    /// Requests whose update rules were evaluated concurrently.
    uint64_t parallel_update_batches = 0;
    /// ApplyBatch/TryApplyBatch calls that applied at least one request,
    /// and the requests they applied (each also counted in `requests`).
    uint64_t batches = 0;
    uint64_t batch_requests = 0;
    /// Requests answered entirely by the dense kernel fast path: every
    /// update rule executed as word-parallel bitmap kernels and committed
    /// as a whole-plane rewrite. The path skips the wall-clock timers
    /// (chrono reads would dominate its sub-microsecond budget), so these
    /// requests contribute nothing to *_seconds.
    uint64_t dense_applies = 0;
    /// Summed wall time of individual update-rule evaluations (thread-seconds).
    double rule_eval_seconds = 0;
    /// Elapsed wall time of the update-evaluation phases across requests.
    double update_wall_seconds = 0;
    /// Elapsed wall time of the post-evaluation commit phases (delta
    /// replays, relation swaps, index maintenance) across requests.
    double commit_seconds = 0;
    /// Cumulative evaluation seconds per target relation.
    std::map<std::string, double> rule_seconds;

    /// Average concurrency achieved during update evaluation: summed
    /// per-rule time over elapsed time (1.0 = sequential; approaches
    /// num_threads under perfect scaling).
    double ThreadUtilization() const {
      return update_wall_seconds > 0 ? rule_eval_seconds / update_wall_seconds : 0;
    }
  };

  Engine(std::shared_ptr<const DynProgram> program, size_t universe_size,
         EngineOptions options = {});

  const DynProgram& program() const { return *program_; }
  std::shared_ptr<const DynProgram> program_ptr() const { return program_; }
  const EngineOptions& options() const { return options_; }
  size_t universe_size() const { return data_.universe_size(); }

  /// Responds to one request against the input vocabulary. CHECK-fails on
  /// malformed requests; trusted-caller form of TryApply with no governance.
  void Apply(const relational::Request& request);

  /// Governed Apply: evaluates under `governance` (deadline, cancellation,
  /// resource budget), optionally pinned to an execution `tier` that
  /// overrides the engine's configured evaluator/plan/index options for
  /// this one request. On any non-OK return — kCancelled,
  /// kDeadlineExceeded, kResourceExhausted, or kError for an invalid
  /// request — the engine state is bit-identical to the pre-call state
  /// (evaluate-then-commit; mid-request temporaries are rolled back) and
  /// the stats counters are untouched. `report`, when non-null, receives
  /// the governor's poll/charge accounting even on failure.
  core::Status TryApply(const relational::Request& request,
                        const ApplyGovernance& governance = {},
                        std::optional<ExecTier> tier = std::nullopt,
                        ApplyReport* report = nullptr);

  /// Applies a whole batch of requests as consecutive synchronous Dyn-FO
  /// steps — bit-identical to calling Apply on each request in order (each
  /// request sees its predecessors' effects) — while paying the batch-level
  /// constants once: one governance/governor setup, one validation sweep,
  /// and (through the recovery layer) one group-commit journal record and
  /// one fsync. CHECK-fails on malformed requests; trusted-caller form of
  /// TryApplyBatch with no governance.
  void ApplyBatch(std::span<const relational::Request> requests);

  /// Governed batched Apply. The governance budget (deadline, cancellation,
  /// resource limits) covers the WHOLE batch under a single governor.
  /// Abort contract (prefix atomicity): each request remains individually
  /// atomic, so a mid-batch stop returns non-OK with the engine at the last
  /// fully-applied prefix — `report->applied` says how long it is — and no
  /// effect of the failing request. A validation failure rejects the whole
  /// batch before anything applies. An empty batch is an OK no-op.
  core::Status TryApplyBatch(std::span<const relational::Request> requests,
                             const ApplyGovernance& governance = {},
                             BatchReport* report = nullptr);

  /// Materializes a definable change against the CURRENT data structure:
  /// evaluates the formula through the configured evaluator (compiled plans
  /// and indexes included) and expands the result into single-tuple
  /// requests in canonical (sorted-tuple) order — deterministic across
  /// every engine configuration. The result feeds TryApplyBatch (or the
  /// recovery layer's batched pipeline). CHECK-fails if the target is not
  /// an input relation of matching arity or the mode is kSetConstant.
  relational::RequestSequence MaterializeDefinableChange(
      const DefinableChange& change) const;

  /// Materialize + TryApplyBatch in one synchronous step.
  core::Status TryApplyDefinable(const DefinableChange& change,
                                 const ApplyGovernance& governance = {},
                                 BatchReport* report = nullptr);

  /// The tier this engine's configured options correspond to.
  ExecTier ConfiguredTier() const;

  /// Cross-checks every relation's persistent indexes against its tuples;
  /// kCorruption with the first inconsistency found. O(total tuples).
  core::Status ValidateIndexes() const;

  /// Drops every derived artifact — persistent indexes, delta plans, the
  /// compiled-plan cache — and recompiles from the program. The repair move
  /// for index/plan corruption: tuple data is untouched.
  void RebuildCompiledState();

  /// Evaluates the program's boolean query (optionally parameterized).
  bool QueryBool(std::vector<relational::Element> params = {}) const;

  /// Evaluates a named query as a relation.
  relational::Relation QueryRelation(const std::string& name,
                                     std::vector<relational::Element> params = {}) const;

  /// Evaluates an ad-hoc FO sentence against the data structure — any
  /// first-order question is "free" in the Dyn-FO model.
  bool QuerySentence(const fo::FormulaPtr& sentence,
                     std::vector<relational::Element> params = {}) const;

  const relational::Structure& data() const { return data_; }

  /// Mutable access for Dyn-FO+ programs: polynomial precomputation installs
  /// the initial structure directly (paper §3.1's relaxation of condition 4).
  relational::Structure* mutable_data() { return &data_; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Counters from the shared formula evaluator: operator counts, plan-cache
  /// hit rate, index probes/builds, dense kernel work. See fo/eval_stats.h.
  /// backend_conversions is engine-owned (conversions happen at commit
  /// boundaries, outside any evaluator call) and folded in here.
  fo::EvalStats eval_stats() const {
    fo::EvalStats stats = algebra_.stats();
    stats.backend_conversions += backend_conversions_;
    return stats;
  }
  void ResetEvalStats() {
    algebra_.ResetStats();
    backend_conversions_ = 0;
  }

  /// The per-relation backend policy this engine's options induce.
  relational::BackendPolicy backend_policy() const;
  size_t plan_cache_size() const { return algebra_.plan_cache_size(); }

  /// A point-in-time view of the engine state: a copy-on-write copy of the
  /// data structure plus the request counter it was taken at. The copy is
  /// O(#relations + overlay), never O(stored tuples) — relation copies
  /// share their base storage (relational/relation.h) and only private
  /// overlays are duplicated — so taking a view on every committed write is
  /// cheap. Queries against the view are read-only and never mutate the
  /// shared base, so any number of views coexist with the live engine.
  struct StateView {
    relational::Structure data;
    uint64_t version = 0;  ///< stats().requests at capture time
  };

  /// O(1) structural snapshot for concurrent readers (DESIGN.md §15). The
  /// serializing Snapshot() below walks every tuple; this only copies
  /// relation handles.
  StateView SnapshotView() const { return {data_, stats_.requests}; }

  /// Serializes the full engine state — the data structure (auxiliary
  /// relations plus mirrored input) and the request/step counter — as a
  /// versioned, checksummed text blob. Execution options are NOT state and
  /// are not serialized; a snapshot restores into an engine built with any
  /// options (all modes are bit-identical, see program_equivalence_test).
  std::string Snapshot() const;

  /// Restores a snapshot produced by Snapshot() on an engine built from
  /// the same program at the same universe size. Corrupt, truncated, or
  /// mismatched snapshots yield an error Status and leave the engine
  /// untouched — never a crash.
  core::Status Restore(const std::string& snapshot);

  /// Serializes only the difference between `base` — a copy of data() taken
  /// at step `base_steps`, O(1) via copy-on-write — and the current state,
  /// as a checksummed "snapshot-delta" blob. With the CoW base still shared
  /// this costs O(changed tuples), not O(state): the incremental-checkpoint
  /// seam (DESIGN.md §12).
  std::string SnapshotDelta(const relational::Structure& base,
                            uint64_t base_steps) const;

  /// Applies a snapshot delta on top of the engine's current state, which
  /// must be at exactly the delta's base step count (i.e. the full snapshot
  /// the delta was written against has just been restored). Atomic: on any
  /// error the engine is untouched. Unlike Restore, compiled plans and the
  /// plan cache survive — the program and vocabulary are unchanged.
  core::Status RestoreDelta(const std::string& blob);

  /// Overrides the request/step counter; recovery paths use this to keep
  /// the counter monotone across a start-over rebuild.
  void set_request_counter(uint64_t requests) { stats_.requests = requests; }

  /// Swaps in a new program mid-run, keeping the data structure and request
  /// counter. The programs must share vocabulary objects (same tau/sigma).
  /// Every compiled artifact keyed to the old program — the delta-plan map
  /// and the evaluator's plan cache — is invalidated, and the new program's
  /// plans are compiled (and their indexes registered) before returning.
  core::Status ReloadProgram(std::shared_ptr<const DynProgram> program);

 private:
  /// How a rule decomposes as `(base(x-bar) ∧ keep) ∨ additions`; see file
  /// comment. `base` is the rule's own target when the formula is
  /// target-preserving (the classic shape), otherwise any data relation
  /// whose atom carries exactly the tuple variables — which is how deltas
  /// propagate through lets across the rule DAG.
  struct DeltaPlan {
    bool applicable = false;
    std::string base;          ///< relation the decomposition reads
    fo::FormulaPtr keep;       ///< old base tuple survives iff this holds (may be True)
    fo::FormulaPtr additions;  ///< tuples to add (may be False)
    /// Compiled semi-naive removal program for the keep-filter (fo/plan.h);
    /// null until compiled, bounded only when delta-safe. Compiled lazily by
    /// PlanFor under the kAlgebra + use_delta + use_compiled_plans gates.
    std::shared_ptr<const fo::DeltaProgram> removals;
  };

  /// One update rule lowered to a dense kernel program; part of a bundle.
  struct DenseRuleEntry {
    int target_index = -1;  ///< data-vocabulary index of the rule's target
    int arity = 0;
    fo::DenseProgramPtr program;
  };
  /// A request class's update rules lowered as a unit. Eligible only when
  /// the class has no lets, every update rule lowers, and every target is
  /// dense-representable — the remaining per-request conditions (targets
  /// currently dense-backed, no live indexes) are checked at Apply time.
  struct DenseRuleBundle {
    bool eligible = false;
    std::vector<DenseRuleEntry> entries;
    std::vector<int> view_inputs;  ///< relations probed with slot arguments
    int mirror_relation = -1;      ///< same-named input mirror, -1 if shadowed
    int mirror_constant = -1;      ///< constant index for kSetConstant
  };
  /// One-entry-per-request-kind memo for TryDenseApply's lookup chain
  /// (target name → rules → bundle): workloads hammer the same few request
  /// classes, so the two map walks almost always resolve to the previous
  /// answer. Pointers alias this engine's program_/dense_rules_, so copies
  /// reset to empty (the copied-from maps are not ours) and
  /// BuildDenseBundles invalidates.
  struct DenseLookupMemo {
    DenseLookupMemo() = default;
    DenseLookupMemo(const DenseLookupMemo&) {}
    DenseLookupMemo& operator=(const DenseLookupMemo&) {
      Clear();
      return *this;
    }
    struct Entry {
      std::string target;
      const DenseRuleBundle* bundle = nullptr;  ///< null = memo slot empty
    };
    Entry by_kind[3];  ///< indexed by RequestKind
    void Clear() {
      for (Entry& entry : by_kind) entry = Entry();
    }
  };

  relational::Relation EvalRuleFull(const UpdateRule& rule, const fo::EvalContext& ctx,
                                    EvalMode mode) const;
  const DeltaPlan& PlanFor(const UpdateRule& rule);

  /// The per-request core shared by TryApply and TryApplyBatch: tier
  /// resolution, the governed dense path, lets, staged evaluation, the
  /// abort point, and the commit. `governor` null = the legacy ungoverned
  /// path; non-null = governed under the CALLER's governor, which a batch
  /// shares across all of its requests (one deadline/budget for the whole
  /// batch). The caller owns request validation and report filling.
  core::Status ApplyCore(const relational::Request& request,
                         const core::ExecGovernor* governor,
                         std::optional<ExecTier> tier);

  /// Lowers every request class's update rules to dense bundles (and the
  /// boolean query); no-op unless the dense gates are on.
  void BuildDenseBundles();

  enum class DenseApplyOutcome {
    kIneligible,  ///< conditions not met; caller runs the legacy path
    kApplied,     ///< committed (stats updated); caller returns OK
    kAborted,     ///< governor stopped mid-kernel; nothing was mutated
  };
  /// The whole-request dense kernel path: executes every lowered update rule
  /// into exec-local planes, then commits them as whole-plane rewrites.
  DenseApplyOutcome TryDenseApply(const relational::Request& request,
                                  const core::ExecGovernor* governor);

  /// Re-runs the backend cost model on one relation after a commit-point
  /// mutation, accumulating conversions into the engine's counter.
  void ReapplyBackend(int relation_index);

  /// Compiles every formula the program can execute (delta keeps/additions,
  /// full rules, lets, queries) and registers the plans' indexes on `data_`,
  /// so the hot Apply path never plans and its first probe never builds.
  /// No-op outside kAlgebra mode or with use_compiled_plans off.
  void PrecompileProgram();

  /// Evaluation options derived from EngineOptions (operator-level threads
  /// plus the compiled-plan/index gates).
  fo::EvalOptions eval_options() const {
    return {options_.num_threads, options_.parallel_grain,
            options_.use_compiled_plans, options_.use_indexes};
  }

  std::shared_ptr<const DynProgram> program_;
  EngineOptions options_;
  relational::Structure data_;
  fo::AlgebraEvaluator algebra_;
  std::map<const UpdateRule*, DeltaPlan> plans_;
  /// Dense bundles keyed by the program's RequestRules objects (stable for
  /// the program's lifetime; invalidated wherever plans_ is).
  std::map<const RequestRules*, DenseRuleBundle> dense_rules_;
  DenseLookupMemo dense_memo_;
  fo::DenseProgramPtr dense_query_;  ///< bool_query lowered to rank 0
  /// When the lowered bool query is a single slot-free nullary atom (PARITY's
  /// `b`), the relation index whose stored bit IS the answer; -1 otherwise.
  /// QueryBool then reads the bit plane directly instead of launching a
  /// kernel for one bit.
  int dense_query_bit_ = -1;
  /// Backend conversions decided by this engine at commit boundaries.
  /// Engine-owned rather than summed from relations: relation copies (CoW
  /// staging, rollback) would double- or under-count per-value counters.
  uint64_t backend_conversions_ = 0;
  Stats stats_;
};

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_ENGINE_H_
