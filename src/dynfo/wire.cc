#include "dynfo/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "core/check.h"
#include "relational/tuple.h"

namespace dynfo::dyn::wire {

namespace {

using relational::Element;
using relational::Request;
using relational::Tuple;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Writes all of `data`, restarting on EINTR and short writes. MSG_NOSIGNAL
/// turns a dead peer into EPIPE instead of a process-killing SIGPIPE; when
/// the fd is not a socket (ENOTSOCK — tests pipe frames through pipes),
/// falls back to write().
core::Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return core::Status::Error(Errno("write"));
    }
    done += static_cast<size_t>(n);
  }
  return core::Status();
}

/// Reads exactly `size` bytes. `*clean_eof` reports EOF before the first
/// byte (the caller decides whether that is orderly).
core::Status ReadAll(int fd, char* data, size_t size, bool* clean_eof) {
  *clean_eof = false;
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return core::Status::Error(Errno("read"));
    }
    if (n == 0) {
      if (done == 0) {
        *clean_eof = true;
        return core::Status::Cancelled("eof");
      }
      return core::Status::Error("connection closed mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  return core::Status();
}

}  // namespace

int ExitCodeFor(core::StatusCode code) {
  switch (code) {
    case core::StatusCode::kOk:
      return 0;
    case core::StatusCode::kError:
      return 1;
    case core::StatusCode::kCancelled:
      return 3;
    case core::StatusCode::kDeadlineExceeded:
      return 4;
    case core::StatusCode::kResourceExhausted:
      return 5;
    case core::StatusCode::kCorruption:
      return 6;
  }
  return 1;
}

core::StatusCode StatusCodeForExit(int exit_code) {
  switch (exit_code) {
    case 0:
      return core::StatusCode::kOk;
    case 3:
      return core::StatusCode::kCancelled;
    case 4:
      return core::StatusCode::kDeadlineExceeded;
    case 5:
      return core::StatusCode::kResourceExhausted;
    case 6:
      return core::StatusCode::kCorruption;
    default:
      return core::StatusCode::kError;
  }
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string word;
  while (ss >> word) out.push_back(word);
  return out;
}

bool ParseElements(const std::vector<std::string>& words, size_t start,
                   std::vector<Element>* out, std::string* error) {
  for (size_t i = start; i < words.size(); ++i) {
    uint64_t value = 0;
    bool ok = !words[i].empty();
    for (char c : words[i]) {
      if (c < '0' || c > '9') {
        ok = false;
        break;
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
      if (value > 0xffffffffULL) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "'" + words[i] + "' is not a universe element";
      }
      return false;
    }
    out->push_back(static_cast<Element>(value));
  }
  return true;
}

bool IsMutationCommand(const std::string& word) {
  return word == "ins" || word == "del" || word == "set";
}

bool ParseMutation(const std::vector<std::string>& words, Request* out,
                   std::string* error) {
  if (error != nullptr) error->clear();
  DYNFO_CHECK(!words.empty());
  const std::string& command = words[0];
  if (command == "ins" || command == "del") {
    if (words.size() < 2) {
      if (error != nullptr) *error = command + " needs a relation name";
      return false;
    }
    std::vector<Element> elements;
    if (!ParseElements(words, 2, &elements, error)) return false;
    Tuple t;
    for (Element e : elements) t = t.Append(e);
    *out = command == "ins" ? Request::Insert(words[1], t)
                            : Request::Delete(words[1], t);
    return true;
  }
  if (command == "set") {
    std::vector<Element> elements;
    if (words.size() != 3 || !ParseElements(words, 2, &elements, nullptr)) {
      if (error != nullptr) *error = "usage: set <constant> <value>";
      return false;
    }
    *out = Request::SetConstant(words[1], elements[0]);
    return true;
  }
  return false;  // not a mutation; error stays empty
}

core::Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return core::Status::Error("frame too large: " +
                               std::to_string(payload.size()) + " bytes");
  }
  char header[4];
  const uint32_t size = static_cast<uint32_t>(payload.size());
  header[0] = static_cast<char>((size >> 24) & 0xff);
  header[1] = static_cast<char>((size >> 16) & 0xff);
  header[2] = static_cast<char>((size >> 8) & 0xff);
  header[3] = static_cast<char>(size & 0xff);
  // One buffer, one send: a frame must never interleave with another
  // writer's frame on the same fd (callers serialize per connection anyway,
  // but a single write also keeps small requests in one segment).
  std::string buffer;
  buffer.reserve(4 + payload.size());
  buffer.append(header, 4);
  buffer.append(payload);
  return WriteAll(fd, buffer.data(), buffer.size());
}

core::Status ReadFrame(int fd, std::string* payload, size_t max_bytes) {
  char header[4];
  bool clean_eof = false;
  core::Status got = ReadAll(fd, header, 4, &clean_eof);
  if (!got.ok()) return got;
  const uint32_t size = (static_cast<uint32_t>(static_cast<unsigned char>(header[0])) << 24) |
                        (static_cast<uint32_t>(static_cast<unsigned char>(header[1])) << 16) |
                        (static_cast<uint32_t>(static_cast<unsigned char>(header[2])) << 8) |
                        static_cast<uint32_t>(static_cast<unsigned char>(header[3]));
  if (size > max_bytes) {
    return core::Status::Error("frame length " + std::to_string(size) +
                               " exceeds limit " + std::to_string(max_bytes));
  }
  payload->assign(size, '\0');
  if (size == 0) return core::Status();
  return ReadAll(fd, payload->data(), size, &clean_eof);
}

bool IsEof(const core::Status& status) {
  return status.code() == core::StatusCode::kCancelled &&
         status.message() == "eof";
}

std::string EncodeResponse(int code, std::string_view body) {
  std::string out = std::to_string(code);
  out.push_back(' ');
  out.append(body);
  return out;
}

bool DecodeResponse(const std::string& frame, int* code, std::string* body) {
  size_t i = 0;
  while (i < frame.size() && frame[i] >= '0' && frame[i] <= '9') ++i;
  if (i == 0 || i > 3) return false;
  *code = std::stoi(frame.substr(0, i));
  if (i < frame.size() && frame[i] == ' ') ++i;
  *body = frame.substr(i);
  return true;
}

bool ParseAddress(const std::string& spec, Address* out, std::string* error) {
  if (spec.rfind("unix:", 0) == 0) {
    out->kind = Address::Kind::kUnix;
    out->path = spec.substr(5);
    if (out->path.empty()) {
      if (error != nullptr) *error = "unix: needs a socket path";
      return false;
    }
    if (out->path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    return true;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out->kind = Address::Kind::kTcp;
    std::string rest = spec.substr(4);
    std::string port_text = rest;
    size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      out->host = rest.substr(0, colon);
      port_text = rest.substr(colon + 1);
    } else {
      out->host = "127.0.0.1";
    }
    try {
      out->port = std::stoi(port_text);
    } catch (...) {
      out->port = -1;
    }
    if (out->port < 0 || out->port > 65535) {
      if (error != nullptr) *error = "bad tcp port '" + port_text + "'";
      return false;
    }
    return true;
  }
  if (error != nullptr) {
    *error = "bad address '" + spec + "' (want unix:/path or tcp:[host:]port)";
  }
  return false;
}

core::Result<int> Listen(const Address& address) {
  if (address.kind == Address::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return core::Status::Error(Errno("socket"));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, address.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(address.path.c_str());  // stale socket from a killed server
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      core::Status status = core::Status::Error(Errno("bind"));
      ::close(fd);
      return status;
    }
    if (::listen(fd, 64) < 0) {
      core::Status status = core::Status::Error(Errno("listen"));
      ::close(fd);
      return status;
    }
    return fd;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return core::Status::Error(Errno("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(address.port));
  if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return core::Status::Error("bad tcp host '" + address.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    core::Status status = core::Status::Error(Errno("bind"));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    core::Status status = core::Status::Error(Errno("listen"));
    ::close(fd);
    return status;
  }
  return fd;
}

core::Result<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return core::Status::Error(Errno("getsockname"));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

core::Result<int> Dial(const Address& address) {
  if (address.kind == Address::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return core::Status::Error(Errno("socket"));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, address.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      core::Status status = core::Status::Error(Errno("connect"));
      ::close(fd);
      return status;
    }
    return fd;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return core::Status::Error(Errno("socket"));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(address.port));
  if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return core::Status::Error("bad tcp host '" + address.host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    core::Status status = core::Status::Error(Errno("connect"));
    ::close(fd);
    return status;
  }
  return fd;
}

int BackoffMs(const RetryPolicy& policy, int retry, core::Rng* rng) {
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 0; i < retry; ++i) {
    backoff *= policy.multiplier;
    if (backoff >= static_cast<double>(policy.max_backoff_ms)) break;
  }
  if (backoff > static_cast<double>(policy.max_backoff_ms)) {
    backoff = static_cast<double>(policy.max_backoff_ms);
  }
  const double jitter = 0.5 + 0.5 * rng->UnitDouble();
  int ms = static_cast<int>(backoff * jitter);
  return ms < 1 ? 1 : ms;
}

Client::Client(Address address, RetryPolicy policy)
    : address_(std::move(address)),
      policy_(policy),
      rng_(policy.jitter_seed) {}

Client::~Client() { HardClose(); }

core::Status Client::Connect() {
  if (fd_ >= 0) return core::Status();
  core::Result<int> dialed = Dial(address_);
  if (!dialed.ok()) return dialed.status();
  fd_ = dialed.value();
  // Every successful dial after the first is a reconnect, whether it
  // followed a transport failure or a deliberate HardClose (churn).
  if (ever_connected_) ++counters_.reconnects;
  ever_connected_ = true;
  return core::Status();
}

void Client::HardClose() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

core::Status Client::Call(const std::string& request, Response* response) {
  ++counters_.calls;
  core::Status last = core::Status::Error("no attempts made");
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(policy_, attempt - 1, &rng_)));
    }
    core::Status connected = Connect();
    if (!connected.ok()) {
      last = connected;
      ++counters_.transport_retries;
      continue;
    }
    core::Status sent = WriteFrame(fd_, request);
    if (sent.ok()) {
      std::string frame;
      sent = ReadFrame(fd_, &frame);
      if (sent.ok()) {
        int code = 0;
        std::string body;
        if (!DecodeResponse(frame, &code, &body)) {
          last = core::Status::Error("malformed response frame");
          HardClose();
          ++counters_.transport_retries;
          continue;
        }
        response->code = code;
        response->body = std::move(body);
        if (code == ExitCodeFor(core::StatusCode::kResourceExhausted)) {
          // Admission rejection: the one response the policy resubmits.
          last = core::Status::ResourceExhausted(response->body);
          ++counters_.resource_retries;
          continue;
        }
        if (code == 0) return core::Status();
        return core::Status::WithCode(StatusCodeForExit(code),
                                      response->body.empty() ? "request failed"
                                                             : response->body);
      }
    }
    // Transport failure (send or receive): the connection is unusable and
    // the request's fate unknown — reconnect and resubmit. The soak's
    // linearizability check tolerates this because reads are idempotent and
    // write effects are checked against the service's applied history, not
    // the client's submission count.
    last = sent;
    HardClose();
    ++counters_.transport_retries;
  }
  return last;
}

}  // namespace dynfo::dyn::wire
