/// \file verifier.h
/// Oracle-checked execution: the correctness harness for Dyn-FO programs.
///
/// A Verifier replays a request sequence into (a) the dynamic Engine and
/// (b) the plain input structure (the paper's eval_{n,sigma}), and after
/// every request compares the program's boolean query against an
/// independent static oracle. This is how each theorem's construction is
/// validated over long random histories.

#ifndef DYNFO_DYNFO_VERIFIER_H_
#define DYNFO_DYNFO_VERIFIER_H_

#include <functional>
#include <memory>
#include <string>

#include "dynfo/engine.h"
#include "relational/request.h"

namespace dynfo::dyn {

/// Ground truth for a boolean query, computed from scratch on the input.
using Oracle = std::function<bool(const relational::Structure&)>;

/// An optional deeper check run after every request (e.g. auxiliary-relation
/// invariants: "F is a spanning forest", "PV matches forest paths"). Returns
/// an empty string when satisfied, else a description of the violation.
using InvariantCheck =
    std::function<std::string(const relational::Structure& input, const Engine& engine)>;

struct VerifierResult {
  bool ok = true;
  size_t steps_executed = 0;
  std::string failure;  ///< empty when ok

  std::string ToString() const {
    return ok ? "OK after " + std::to_string(steps_executed) + " steps"
              : "FAILED at step " + std::to_string(steps_executed) + ": " + failure;
  }
};

struct VerifierOptions {
  EngineOptions engine_options;
  /// Check the boolean query after every request (vs. only at the end).
  bool check_every_step = true;
  /// Additional structural invariant, may be null.
  InvariantCheck invariant;
};

/// Replays `requests` at universe size `universe_size`, cross-checking the
/// program against the oracle. Stops at the first divergence.
VerifierResult VerifyProgram(std::shared_ptr<const DynProgram> program, Oracle oracle,
                             size_t universe_size,
                             const relational::RequestSequence& requests,
                             const VerifierOptions& options = {});

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_VERIFIER_H_
