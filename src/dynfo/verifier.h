/// \file verifier.h
/// Oracle-checked execution: the correctness harness for Dyn-FO programs.
///
/// A Verifier replays a request sequence into (a) the dynamic Engine and
/// (b) the plain input structure (the paper's eval_{n,sigma}), and after
/// every request compares the program's boolean query against an
/// independent static oracle. This is how each theorem's construction is
/// validated over long random histories.

#ifndef DYNFO_DYNFO_VERIFIER_H_
#define DYNFO_DYNFO_VERIFIER_H_

#include <functional>
#include <memory>
#include <string>

#include "dynfo/engine.h"
#include "relational/request.h"

namespace dynfo::dyn {

/// Ground truth for a boolean query, computed from scratch on the input.
using Oracle = std::function<bool(const relational::Structure&)>;

/// An optional deeper check run after every request (e.g. auxiliary-relation
/// invariants: "F is a spanning forest", "PV matches forest paths"). Returns
/// an empty string when satisfied, else a description of the violation.
using InvariantCheck =
    std::function<std::string(const relational::Structure& input, const Engine& engine)>;

struct VerifierResult {
  bool ok = true;
  size_t steps_executed = 0;
  std::string failure;  ///< empty when ok

  std::string ToString() const {
    return ok ? "OK after " + std::to_string(steps_executed) + " steps"
              : "FAILED at step " + std::to_string(steps_executed) + ": " + failure;
  }
};

/// Post-construction hook (e.g. InstallPlusRelation for Dyn-FO+ programs
/// whose precomputation is installed natively).
using EnginePostInit = std::function<void(Engine*)>;

struct VerifierOptions {
  EngineOptions engine_options;
  /// Check the boolean query after every request (vs. only at the end).
  bool check_every_step = true;
  /// Additional structural invariant, may be null.
  InvariantCheck invariant;
  /// Applied to every engine the verifier builds (the engine under test
  /// and the start-over reference used for failure diagnostics).
  EnginePostInit post_init;
};

/// Replays `requests` at universe size `universe_size`, cross-checking the
/// program against the oracle. Stops at the first divergence; the failure
/// message names the first auxiliary relation diverging from a start-over
/// reference (see DescribeAuxDivergence).
VerifierResult VerifyProgram(std::shared_ptr<const DynProgram> program, Oracle oracle,
                             size_t universe_size,
                             const relational::RequestSequence& requests,
                             const VerifierOptions& options = {});

/// Failure forensics: rebuilds a reference engine from scratch (program
/// initialization + post_init + replay of the current input as the
/// canonical request history) and names the FIRST data relation whose
/// contents diverge from `engine`, with a symmetric-difference sample (up
/// to three tuples per side) and differing constants. Returns a
/// description of the divergence, or a note that the engine matches the
/// start-over reference exactly (then the defect is in the query, or in
/// legitimately history-dependent state).
std::string DescribeAuxDivergence(const Engine& engine,
                                  const relational::Structure& input,
                                  const EnginePostInit& post_init = nullptr);

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_VERIFIER_H_
