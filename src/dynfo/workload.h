/// \file workload.h
/// Reproducible random request-sequence generators.
///
/// Two flavours: a fully generic generator over any input vocabulary, and a
/// graph-aware generator producing realistic edge churn (inserting edges
/// that are absent, deleting edges that exist) with optional structural
/// constraints — acyclicity preservation for REACH(acyclic) and Corollary
/// 4.3, forest shape for LCA, degree bounds for matching workloads.

#ifndef DYNFO_DYNFO_WORKLOAD_H_
#define DYNFO_DYNFO_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "core/rng.h"
#include "relational/request.h"
#include "relational/vocabulary.h"

namespace dynfo::dyn {

struct GenericWorkloadOptions {
  size_t num_requests = 100;
  double insert_fraction = 0.6;  ///< remaining mass splits delete/set
  double set_fraction = 0.05;    ///< probability of a set(constant) request
  uint64_t seed = 1;
};

/// Uniformly random requests over all relations/constants of the vocabulary.
relational::RequestSequence MakeGenericWorkload(const relational::Vocabulary& input,
                                                size_t universe_size,
                                                const GenericWorkloadOptions& options);

struct GraphWorkloadOptions {
  size_t num_requests = 100;
  double insert_fraction = 0.6;
  double set_fraction = 0.0;  ///< probability of set(s)/set(t) requests
  bool allow_self_loops = false;
  /// Canonicalize edges to u <= v: the convention for undirected problems
  /// (the program symmetrizes internally; the raw input then never holds two
  /// orientations of one edge, keeping program and oracle views aligned).
  bool undirected = false;
  /// Inserts must keep the digraph acyclic (checked against a shadow graph).
  bool preserve_acyclic = false;
  /// Inserts must keep the graph a directed forest (indegree <= 1, acyclic).
  bool forest_shape = false;
  /// If >= 0, inserts keep every vertex degree at most this bound.
  int max_degree = -1;
  uint64_t seed = 1;
};

/// Edge churn on the binary relation `edge_relation`: inserts draw from the
/// currently-absent edges (subject to the structural constraints), deletes
/// from the currently-present ones. Degenerate steps (nothing insertable /
/// deletable) fall back to the other action.
relational::RequestSequence MakeGraphWorkload(const relational::Vocabulary& input,
                                              const std::string& edge_relation,
                                              size_t universe_size,
                                              const GraphWorkloadOptions& options);

struct WeightedGraphWorkloadOptions {
  size_t num_requests = 100;
  double insert_fraction = 0.6;
  double set_fraction = 0.0;
  uint64_t seed = 1;
};

/// Churn on a ternary weighted-edge relation W(u, v, w) honoring Theorem
/// 4.4's memoryless contract: weights are distinct across live edges, each
/// unordered pair u < v carries at most one weight, no self loops. Deletes
/// quote the edge's true weight. Edge count stays below the number of
/// distinct weights (= universe size).
relational::RequestSequence MakeWeightedGraphWorkload(
    const relational::Vocabulary& input, const std::string& weight_relation,
    size_t universe_size, const WeightedGraphWorkloadOptions& options);

struct SlotStringWorkloadOptions {
  size_t num_requests = 100;
  double insert_fraction = 0.6;
  /// Upper bound on simultaneously occupied positions (e.g. the Dyck
  /// program needs < n/2 - 1 so offset-encoded surpluses stay in range).
  size_t max_chars = 0;  ///< 0 = universe_size
  uint64_t seed = 1;
};

/// Edits to a string living on position slots: each unary relation in
/// `character_relations` marks the positions holding that character; at most
/// one character occupies a slot. Inserts target free slots; deletes remove
/// the character actually present.
relational::RequestSequence MakeSlotStringWorkload(
    const std::vector<std::string>& character_relations, size_t universe_size,
    const SlotStringWorkloadOptions& options);

}  // namespace dynfo::dyn

#endif  // DYNFO_DYNFO_WORKLOAD_H_
