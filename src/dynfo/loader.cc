#include "dynfo/loader.h"

#include <optional>
#include <sstream>
#include <vector>

#include "fo/parser.h"

namespace dynfo::dyn {

namespace {

core::Status Err(size_t line, const std::string& message) {
  return core::Status::Error("line " + std::to_string(line) + ": " + message);
}

std::string Strip(const std::string& raw) {
  std::string s = raw;
  size_t hash = s.find('#');
  if (hash != std::string::npos) s.erase(hash);
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Splits "head rest" at the first space run.
std::pair<std::string, std::string> SplitWord(const std::string& s) {
  size_t space = s.find_first_of(" \t");
  if (space == std::string::npos) return {s, ""};
  size_t rest = s.find_first_not_of(" \t", space);
  return {s.substr(0, space), rest == std::string::npos ? "" : s.substr(rest)};
}

/// Parses "Name(v1, v2, ...)" into name + variable list.
core::Result<std::pair<std::string, std::vector<std::string>>> ParseHead(
    const std::string& text, size_t line) {
  size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')') {
    return Err(line, "expected Name(vars...): " + text);
  }
  std::string name = Strip(text.substr(0, open));
  std::vector<std::string> variables;
  std::string inner = text.substr(open + 1, text.size() - open - 2);
  std::stringstream ss(inner);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    std::string v = Strip(piece);
    if (!v.empty()) variables.push_back(v);
  }
  if (name.empty()) return Err(line, "missing name before '('");
  return std::make_pair(name, variables);
}

struct SymbolDeclarations {
  std::shared_ptr<relational::Vocabulary> vocabulary =
      std::make_shared<relational::Vocabulary>();
};

core::Status ParseDeclaration(SymbolDeclarations* out, const std::string& text,
                              size_t line) {
  auto [kind, rest] = SplitWord(text);
  if (kind == "relation") {
    size_t slash = rest.find('/');
    if (slash == std::string::npos) return Err(line, "expected relation Name/arity");
    std::string name = Strip(rest.substr(0, slash));
    int arity = 0;
    try {
      arity = std::stoi(rest.substr(slash + 1));
    } catch (...) {
      return Err(line, "bad arity in: " + rest);
    }
    if (arity < 0 || arity > relational::Tuple::kMaxArity) {
      return Err(line, "arity out of range in: " + rest);
    }
    out->vocabulary->AddRelation(name, arity);
    return core::Status();
  }
  if (kind == "constant") {
    std::string name = Strip(rest);
    if (name.empty()) return Err(line, "constant needs a name");
    out->vocabulary->AddConstant(name);
    return core::Status();
  }
  return Err(line, "expected 'relation' or 'constant', got: " + kind);
}

}  // namespace

core::Result<std::shared_ptr<const DynProgram>> LoadProgramFromText(
    const std::string& text) {
  std::stringstream stream(text);
  std::string raw;
  size_t line_number = 0;

  std::string program_name;
  SymbolDeclarations input, data;
  bool have_input = false, have_data = false, semi_dynamic = false;
  std::unique_ptr<fo::ParserEnvironment> formulas;  // built once data is known

  struct PendingRule {
    bool is_let;
    relational::RequestKind kind;
    std::string input_symbol;
    UpdateRule rule;
  };
  std::vector<UpdateRule> init_rules;
  std::vector<PendingRule> rules;
  fo::FormulaPtr bool_query;
  std::vector<std::pair<std::string, NamedQuery>> named_queries;

  enum class Block { kNone, kInput, kData, kOn };
  Block block = Block::kNone;
  relational::RequestKind on_kind = relational::RequestKind::kInsert;
  std::string on_symbol;

  auto need_formulas = [&]() -> core::Status {
    if (formulas != nullptr) return core::Status();
    if (!have_data) return core::Status::Error("data { } block must come first");
    formulas = std::make_unique<fo::ParserEnvironment>(data.vocabulary);
    return core::Status();
  };

  auto parse_assignment =
      [&](const std::string& s,
          size_t line) -> core::Result<std::pair<std::string, std::string>> {
    size_t assign = s.find(":=");
    if (assign == std::string::npos) return Err(line, "expected ':=' in: " + s);
    return std::make_pair(Strip(s.substr(0, assign)), Strip(s.substr(assign + 2)));
  };

  auto parse_rule = [&](const std::string& s, size_t line) -> core::Result<UpdateRule> {
    auto head_body = parse_assignment(s, line);
    if (!head_body.ok()) return head_body.status();
    auto head = ParseHead(head_body.value().first, line);
    if (!head.ok()) return head.status();
    core::Result<fo::FormulaPtr> formula = formulas->Parse(head_body.value().second);
    if (!formula.ok()) return Err(line, formula.status().message());
    return UpdateRule{head.value().first, head.value().second, formula.value()};
  };

  auto paren_balance = [](const std::string& s) {
    int balance = 0;
    for (char c : s) {
      if (c == '(') ++balance;
      if (c == ')') --balance;
    }
    return balance;
  };

  while (std::getline(stream, raw)) {
    ++line_number;
    std::string s = Strip(raw);
    if (s.empty()) continue;
    // Logical lines: a formula may span physical lines until its
    // parentheses balance.
    while (paren_balance(s) > 0 && std::getline(stream, raw)) {
      ++line_number;
      std::string more = Strip(raw);
      if (more.empty()) continue;
      s += " " + more;
    }

    if (s == "}") {
      if (block == Block::kNone) return Err(line_number, "unmatched '}'");
      if (block == Block::kInput) have_input = true;
      if (block == Block::kData) have_data = true;
      block = Block::kNone;
      continue;
    }

    if (block == Block::kInput) {
      core::Status status = ParseDeclaration(&input, s, line_number);
      if (!status.ok()) return status;
      continue;
    }
    if (block == Block::kData) {
      core::Status status = ParseDeclaration(&data, s, line_number);
      if (!status.ok()) return status;
      continue;
    }
    if (block == Block::kOn) {
      core::Status status = need_formulas();
      if (!status.ok()) return status;
      bool is_let = false;
      std::string body = s;
      auto [first, rest] = SplitWord(s);
      if (first == "let") {
        is_let = true;
        body = rest;
      }
      core::Result<UpdateRule> rule = parse_rule(body, line_number);
      if (!rule.ok()) return rule.status();
      rules.push_back(PendingRule{is_let, on_kind, on_symbol, rule.value()});
      continue;
    }

    auto [keyword, rest] = SplitWord(s);
    if (keyword == "program") {
      program_name = rest;
      continue;
    }
    if (keyword == "input" && Strip(rest) == "{") {
      block = Block::kInput;
      continue;
    }
    if (keyword == "data" && Strip(rest) == "{") {
      block = Block::kData;
      continue;
    }
    if (keyword == "semidynamic") {
      semi_dynamic = true;
      continue;
    }
    if (keyword == "macro") {
      core::Status status = need_formulas();
      if (!status.ok()) return status;
      auto head_body = parse_assignment(rest, line_number);
      if (!head_body.ok()) return head_body.status();
      auto head = ParseHead(head_body.value().first, line_number);
      if (!head.ok()) return head.status();
      status = formulas->DefineMacro(head.value().first, head.value().second,
                                     head_body.value().second);
      if (!status.ok()) return Err(line_number, status.message());
      continue;
    }
    if (keyword == "init") {
      core::Status status = need_formulas();
      if (!status.ok()) return status;
      core::Result<UpdateRule> rule = parse_rule(rest, line_number);
      if (!rule.ok()) return rule.status();
      init_rules.push_back(rule.value());
      continue;
    }
    if (keyword == "on") {
      auto [kind_word, symbol_brace] = SplitWord(rest);
      auto [symbol, brace] = SplitWord(symbol_brace);
      if (Strip(brace) != "{") return Err(line_number, "expected '{' after 'on ...'");
      if (kind_word == "insert") {
        on_kind = relational::RequestKind::kInsert;
      } else if (kind_word == "delete") {
        on_kind = relational::RequestKind::kDelete;
      } else if (kind_word == "set") {
        on_kind = relational::RequestKind::kSetConstant;
      } else {
        return Err(line_number, "expected insert/delete/set, got " + kind_word);
      }
      on_symbol = symbol;
      block = Block::kOn;
      continue;
    }
    if (keyword == "query") {
      core::Status status = need_formulas();
      if (!status.ok()) return status;
      if (Strip(rest).rfind(":=", 0) == 0) {
        // Boolean query: "query := <sentence>".
        core::Result<fo::FormulaPtr> formula =
            formulas->Parse(Strip(Strip(rest).substr(2)));
        if (!formula.ok()) return Err(line_number, formula.status().message());
        bool_query = formula.value();
        continue;
      }
      core::Result<UpdateRule> rule = parse_rule(rest, line_number);
      if (!rule.ok()) return rule.status();
      named_queries.emplace_back(
          rule.value().target,
          NamedQuery{rule.value().tuple_variables, rule.value().formula});
      continue;
    }
    return Err(line_number, "unrecognized directive: " + keyword);
  }

  if (block != Block::kNone) return core::Status::Error("unterminated block");
  if (program_name.empty()) return core::Status::Error("missing 'program <name>'");
  if (!have_input) return core::Status::Error("missing input { } block");
  if (!have_data) return core::Status::Error("missing data { } block");

  auto program =
      std::make_shared<DynProgram>(program_name, input.vocabulary, data.vocabulary);
  for (UpdateRule& rule : init_rules) program->AddInit(std::move(rule));
  for (PendingRule& pending : rules) {
    if (pending.is_let) {
      program->AddLet(pending.kind, pending.input_symbol, std::move(pending.rule));
    } else {
      program->AddUpdate(pending.kind, pending.input_symbol, std::move(pending.rule));
    }
  }
  if (bool_query != nullptr) program->SetBoolQuery(bool_query);
  for (auto& [name, query] : named_queries) program->AddNamedQuery(name, query);
  program->SetSemiDynamic(semi_dynamic);

  core::Status valid = program->Validate();
  if (!valid.ok()) return valid;
  return std::shared_ptr<const DynProgram>(program);
}

}  // namespace dynfo::dyn
