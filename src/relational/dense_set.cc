#include "relational/dense_set.h"

#include <bit>

namespace dynfo::relational {

void DenseSet::RecountSize() {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  size_ = total;
}

bool DenseSet::CheckTailBitsZero() const {
  const uint64_t mask = tail_mask();
  if (mask == ~uint64_t{0}) return true;
  if (arity_ <= 1) {
    return (words_.back() & ~mask) == 0;
  }
  for (size_t row = 0; row < universe_; ++row) {
    if ((words_[row * words_per_row_ + words_per_row_ - 1] & ~mask) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace dynfo::relational
