/// \file serialize.h
/// A plain-text serialization for finite structures, so sessions can be
/// saved and restored (used by tools/dynfo_cli's save/load commands) and
/// golden-tested.
///
/// Format (line oriented, '#' comments):
///   structure n=<universe size>
///   rel <name> <e1> <e2> ...      # one line per tuple
///   const <name> <value>
///   end
///
/// Relations/constants absent from the text are empty/zero; unknown names
/// or out-of-universe elements are errors. The vocabulary itself is not
/// serialized — the reader supplies it, and the text is validated against
/// it (a structure is only meaningful relative to its schema).
///
/// Parsing is hardened against hostile bytes: every numeric token must be
/// a full decimal number, no trailing tokens are tolerated, and the
/// universe size is bounded by the Element range. Malformed input always
/// yields an error Status, never a crash.
///
/// For durable state (snapshots, anything that crosses a process
/// boundary), the checksummed container adds a versioned header and an
/// FNV-1a trailer so that truncation or any byte corruption is detected
/// before contents are trusted:
///   dynfo <kind> v1 bytes=<payload size>
///   <payload>
///   checksum fnv1a <16 hex digits>

#ifndef DYNFO_RELATIONAL_SERIALIZE_H_
#define DYNFO_RELATIONAL_SERIALIZE_H_

#include <memory>
#include <string>

#include "core/status.h"
#include "relational/structure.h"

namespace dynfo::relational {

/// Serializes the structure (deterministic: tuples in sorted order).
std::string WriteStructure(const Structure& structure);

/// Parses a structure over the given vocabulary.
core::Result<Structure> ReadStructure(const std::string& text,
                                      std::shared_ptr<const Vocabulary> vocabulary);

/// Wraps an arbitrary payload in the versioned, checksummed container.
/// `kind` names the content ("structure", "snapshot", ...) and must be a
/// single whitespace-free token; readers reject mismatched kinds.
std::string WrapChecksummed(const std::string& kind, const std::string& payload);

/// Verifies the container (kind, version, length, checksum) and returns
/// the payload. Any truncation or byte corruption is an error.
core::Result<std::string> UnwrapChecksummed(const std::string& kind,
                                            const std::string& text);

/// WriteStructure/ReadStructure composed with the checksummed container —
/// the durable on-disk form of a structure.
std::string WriteStructureChecksummed(const Structure& structure);
core::Result<Structure> ReadStructureChecksummed(
    const std::string& text, std::shared_ptr<const Vocabulary> vocabulary);

/// Serializes only the difference current − base (incremental checkpoints:
/// base is the CoW copy taken at the last full snapshot, so the diff costs
/// O(overlay), not O(state)). Format, same line discipline as structures:
///   delta n=<universe size>
///   add <name> <e1> <e2> ...      # tuple in current, not in base
///   del <name> <e1> <e2> ...      # tuple in base, not in current
///   const <name> <value>          # changed constants only
///   end
/// Both structures must share vocabulary and universe size.
std::string WriteStructureDelta(const Structure& base, const Structure& current);

/// Applies a delta in place. STRICT: an `add` of a tuple already present,
/// a `del` of a tuple absent, or a `const` equal to the current value is an
/// error — a delta only composes with the exact base it was written
/// against, and silently tolerating mismatches would let a checkpoint
/// apply to the wrong snapshot undetected.
core::Status ApplyStructureDelta(Structure* structure, const std::string& text);

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_SERIALIZE_H_
