/// \file serialize.h
/// A plain-text serialization for finite structures, so sessions can be
/// saved and restored (used by tools/dynfo_cli's save/load commands) and
/// golden-tested.
///
/// Format (line oriented, '#' comments):
///   structure n=<universe size>
///   rel <name> <e1> <e2> ...      # one line per tuple
///   const <name> <value>
///   end
///
/// Relations/constants absent from the text are empty/zero; unknown names
/// or out-of-universe elements are errors. The vocabulary itself is not
/// serialized — the reader supplies it, and the text is validated against
/// it (a structure is only meaningful relative to its schema).

#ifndef DYNFO_RELATIONAL_SERIALIZE_H_
#define DYNFO_RELATIONAL_SERIALIZE_H_

#include <memory>
#include <string>

#include "core/status.h"
#include "relational/structure.h"

namespace dynfo::relational {

/// Serializes the structure (deterministic: tuples in sorted order).
std::string WriteStructure(const Structure& structure);

/// Parses a structure over the given vocabulary.
core::Result<Structure> ReadStructure(const std::string& text,
                                      std::shared_ptr<const Vocabulary> vocabulary);

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_SERIALIZE_H_
