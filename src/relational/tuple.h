/// \file tuple.h
/// Fixed-capacity tuples of universe elements.
///
/// A tuple is a point in {0..n-1}^a for a relation of arity `a`. The library
/// caps arity at Tuple::kMaxArity (4): every construction in the paper uses
/// auxiliary relations of arity at most 3 (PV in Theorem 4.1), and the cap
/// lets tuples live inline with no heap traffic on the hot evaluation paths.

#ifndef DYNFO_RELATIONAL_TUPLE_H_
#define DYNFO_RELATIONAL_TUPLE_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "core/check.h"

namespace dynfo::relational {

/// A universe element. Universes are {0, 1, ..., n-1} with n < 2^32.
using Element = uint32_t;

/// An immutable-by-convention, inline tuple of at most kMaxArity elements.
class Tuple {
 public:
  static constexpr int kMaxArity = 4;

  Tuple() : size_(0), data_{} {}

  Tuple(std::initializer_list<Element> elements) : size_(0), data_{} {
    DYNFO_CHECK(elements.size() <= kMaxArity) << "tuple arity above kMaxArity";
    for (Element e : elements) data_[size_++] = e;
  }

  /// Builds a tuple from `size` elements starting at `data`.
  static Tuple FromSpan(const Element* data, int size) {
    DYNFO_CHECK(size >= 0 && size <= kMaxArity);
    Tuple t;
    t.size_ = static_cast<uint8_t>(size);
    for (int i = 0; i < size; ++i) t.data_[i] = data[i];
    return t;
  }

  int size() const { return size_; }

  Element operator[](int i) const {
    DYNFO_CHECK(i >= 0 && i < size_);
    return data_[i];
  }

  /// Appends an element, returning the extended tuple.
  Tuple Append(Element e) const {
    DYNFO_CHECK(size_ < kMaxArity);
    Tuple t = *this;
    t.data_[t.size_++] = e;
    return t;
  }

  /// Concatenates two tuples.
  Tuple Concat(const Tuple& other) const {
    DYNFO_CHECK(size_ + other.size_ <= kMaxArity);
    Tuple t = *this;
    for (int i = 0; i < other.size_; ++i) t.data_[t.size_++] = other.data_[i];
    return t;
  }

  /// Projects onto the given index positions (in order, duplicates allowed).
  Tuple Project(std::initializer_list<int> positions) const {
    Tuple t;
    for (int p : positions) t = t.Append((*this)[p]);
    return t;
  }

  bool operator==(const Tuple& other) const {
    if (size_ != other.size_) return false;
    for (int i = 0; i < size_; ++i) {
      if (data_[i] != other.data_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Lexicographic order (shorter tuples first); used for deterministic output.
  bool operator<(const Tuple& other) const {
    if (size_ != other.size_) return size_ < other.size_;
    for (int i = 0; i < size_; ++i) {
      if (data_[i] != other.data_[i]) return data_[i] < other.data_[i];
    }
    return false;
  }

  /// E.g. "(3, 1, 4)".
  std::string ToString() const {
    std::string s = "(";
    for (int i = 0; i < size_; ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(data_[i]);
    }
    s += ")";
    return s;
  }

  /// 64-bit hash suitable for unordered containers.
  uint64_t Hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ size_;
    for (int i = 0; i < size_; ++i) {
      h ^= data_[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
    }
    return h;
  }

 private:
  uint8_t size_;
  std::array<Element, kMaxArity> data_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return static_cast<size_t>(t.Hash()); }
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_TUPLE_H_
