#include "relational/request.h"

namespace dynfo::relational {

std::string Request::ToString() const {
  switch (kind) {
    case RequestKind::kInsert:
      return "ins(" + target + ", " + tuple.ToString() + ")";
    case RequestKind::kDelete:
      return "del(" + target + ", " + tuple.ToString() + ")";
    case RequestKind::kSetConstant:
      return "set(" + target + ", " + std::to_string(value) + ")";
  }
  DYNFO_UNREACHABLE();
}

void ApplyRequest(Structure* structure, const Request& request) {
  DYNFO_CHECK(structure != nullptr);
  const size_t n = structure->universe_size();
  switch (request.kind) {
    case RequestKind::kInsert:
    case RequestKind::kDelete: {
      Relation& rel = structure->relation(request.target);
      DYNFO_CHECK(request.tuple.size() == rel.arity())
          << "arity mismatch for " << request.target;
      for (int i = 0; i < request.tuple.size(); ++i) {
        DYNFO_CHECK(request.tuple[i] < n) << "element outside universe";
      }
      if (request.kind == RequestKind::kInsert) {
        rel.Insert(request.tuple);
      } else {
        rel.Erase(request.tuple);
      }
      return;
    }
    case RequestKind::kSetConstant:
      structure->set_constant(request.target, request.value);
      return;
  }
  DYNFO_UNREACHABLE();
}

core::Status ValidateRequest(const Vocabulary& vocabulary, size_t universe_size,
                             const Request& request) {
  switch (request.kind) {
    case RequestKind::kInsert:
    case RequestKind::kDelete: {
      const int index = vocabulary.RelationIndex(request.target);
      if (index < 0) {
        return core::Status::Error("unknown relation " + request.target);
      }
      if (request.tuple.size() != vocabulary.relation(index).arity) {
        return core::Status::Error("arity mismatch for " + request.target);
      }
      for (int i = 0; i < request.tuple.size(); ++i) {
        if (request.tuple[i] >= universe_size) {
          return core::Status::Error("element outside universe in " +
                                     request.ToString());
        }
      }
      return core::Status();
    }
    case RequestKind::kSetConstant:
      if (vocabulary.ConstantIndex(request.target) < 0) {
        return core::Status::Error("unknown constant " + request.target);
      }
      if (request.value >= universe_size) {
        return core::Status::Error("constant value outside universe in " +
                                   request.ToString());
      }
      return core::Status();
  }
  DYNFO_UNREACHABLE();
}

Structure EvalRequests(std::shared_ptr<const Vocabulary> vocabulary, size_t universe_size,
                       const RequestSequence& requests) {
  Structure structure(std::move(vocabulary), universe_size);
  for (const Request& request : requests) {
    ApplyRequest(&structure, request);
  }
  return structure;
}

RequestSequence StructureAsRequests(const Structure& structure) {
  RequestSequence out;
  const Vocabulary& vocab = structure.vocabulary();
  for (int r = 0; r < vocab.num_relations(); ++r) {
    for (const Tuple& t : structure.relation(r).SortedTuples()) {
      out.push_back(Request::Insert(vocab.relation(r).name, t));
    }
  }
  for (int c = 0; c < vocab.num_constants(); ++c) {
    if (structure.constant(c) != 0) {
      out.push_back(Request::SetConstant(vocab.constant(c), structure.constant(c)));
    }
  }
  return out;
}

}  // namespace dynfo::relational
