#include "relational/request.h"

namespace dynfo::relational {

std::string Request::ToString() const {
  switch (kind) {
    case RequestKind::kInsert:
      return "ins(" + target + ", " + tuple.ToString() + ")";
    case RequestKind::kDelete:
      return "del(" + target + ", " + tuple.ToString() + ")";
    case RequestKind::kSetConstant:
      return "set(" + target + ", " + std::to_string(value) + ")";
  }
  DYNFO_UNREACHABLE();
}

void ApplyRequest(Structure* structure, const Request& request) {
  DYNFO_CHECK(structure != nullptr);
  const size_t n = structure->universe_size();
  switch (request.kind) {
    case RequestKind::kInsert:
    case RequestKind::kDelete: {
      Relation& rel = structure->relation(request.target);
      DYNFO_CHECK(request.tuple.size() == rel.arity())
          << "arity mismatch for " << request.target;
      for (int i = 0; i < request.tuple.size(); ++i) {
        DYNFO_CHECK(request.tuple[i] < n) << "element outside universe";
      }
      if (request.kind == RequestKind::kInsert) {
        rel.Insert(request.tuple);
      } else {
        rel.Erase(request.tuple);
      }
      return;
    }
    case RequestKind::kSetConstant:
      structure->set_constant(request.target, request.value);
      return;
  }
  DYNFO_UNREACHABLE();
}

Structure EvalRequests(std::shared_ptr<const Vocabulary> vocabulary, size_t universe_size,
                       const RequestSequence& requests) {
  Structure structure(std::move(vocabulary), universe_size);
  for (const Request& request : requests) {
    ApplyRequest(&structure, request);
  }
  return structure;
}

}  // namespace dynfo::relational
