/// \file request.h
/// The dynamic request model of the paper (Equation 3.1).
///
/// R_{n,sigma} = { ins(i, a-bar), del(i, a-bar), set(j, a) }: single-tuple
/// inserts and deletes on input relations, and assignments to constants.
/// eval_{n,sigma} replays a request sequence from the empty initial
/// structure; it is the ground truth that dynamic programs are checked
/// against.

#ifndef DYNFO_RELATIONAL_REQUEST_H_
#define DYNFO_RELATIONAL_REQUEST_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "relational/structure.h"

namespace dynfo::relational {

enum class RequestKind {
  kInsert,       ///< ins(i, a-bar): add tuple to input relation i
  kDelete,       ///< del(i, a-bar): remove tuple from input relation i
  kSetConstant,  ///< set(j, a): assign constant j the value a
};

/// One request against an input structure.
struct Request {
  RequestKind kind;
  std::string target;  ///< relation name (ins/del) or constant name (set)
  Tuple tuple;         ///< tuple for ins/del; unused for set
  Element value = 0;   ///< value for set; unused for ins/del

  static Request Insert(std::string relation, Tuple t) {
    return Request{RequestKind::kInsert, std::move(relation), t, 0};
  }
  static Request Delete(std::string relation, Tuple t) {
    return Request{RequestKind::kDelete, std::move(relation), t, 0};
  }
  static Request SetConstant(std::string constant, Element value) {
    return Request{RequestKind::kSetConstant, std::move(constant), Tuple{}, value};
  }

  bool operator==(const Request& other) const {
    return kind == other.kind && target == other.target && tuple == other.tuple &&
           value == other.value;
  }

  /// E.g. "ins(E, (1, 2))".
  std::string ToString() const;
};

using RequestSequence = std::vector<Request>;

/// Applies one request to a structure in place (the step function of
/// eval_{n,sigma}). Inserting a present tuple / deleting an absent one is a
/// no-op, as in the paper. CHECK-fails on unknown names, arity mismatches,
/// or out-of-universe elements; callers replaying untrusted requests must
/// ValidateRequest first.
void ApplyRequest(Structure* structure, const Request& request);

/// Checks a request against a vocabulary and universe size without
/// applying it: the target must exist with the right shape and every
/// element must be in range. The recoverable-error form of ApplyRequest's
/// preconditions, used by the restore/replay paths.
core::Status ValidateRequest(const Vocabulary& vocabulary, size_t universe_size,
                             const Request& request);

/// Replays a whole sequence from the empty structure: eval_{n,sigma}(r-bar).
Structure EvalRequests(std::shared_ptr<const Vocabulary> vocabulary, size_t universe_size,
                       const RequestSequence& requests);

/// The canonical request history reaching `structure` from empty: one
/// insert per tuple (relations in vocabulary order, tuples sorted) and one
/// set per nonzero constant. Deterministic; replaying it through
/// EvalRequests reproduces `structure` exactly. This is the "start over"
/// move of the recovery layer: a dynamic program re-initialized and fed
/// this sequence rebuilds correct auxiliary state for the current input.
RequestSequence StructureAsRequests(const Structure& structure);

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_REQUEST_H_
