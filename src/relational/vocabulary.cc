#include "relational/vocabulary.h"

#include "core/check.h"
#include "relational/tuple.h"

namespace dynfo::relational {

void Vocabulary::CheckNameFresh(const std::string& name) const {
  DYNFO_CHECK(!name.empty()) << "symbol names must be nonempty";
  DYNFO_CHECK(relation_index_.find(name) == relation_index_.end())
      << "duplicate symbol name: " << name;
  DYNFO_CHECK(constant_index_.find(name) == constant_index_.end())
      << "duplicate symbol name: " << name;
}

int Vocabulary::AddRelation(const std::string& name, int arity) {
  CheckNameFresh(name);
  DYNFO_CHECK(arity >= 0 && arity <= Tuple::kMaxArity)
      << "relation " << name << " has unsupported arity " << arity;
  int index = num_relations();
  relations_.push_back(RelationSymbol{name, arity});
  relation_index_[name] = index;
  return index;
}

int Vocabulary::AddConstant(const std::string& name) {
  CheckNameFresh(name);
  int index = num_constants();
  constants_.push_back(name);
  constant_index_[name] = index;
  return index;
}

const RelationSymbol& Vocabulary::relation(int index) const {
  DYNFO_CHECK(index >= 0 && index < num_relations());
  return relations_[index];
}

const std::string& Vocabulary::constant(int index) const {
  DYNFO_CHECK(index >= 0 && index < num_constants());
  return constants_[index];
}

int Vocabulary::RelationIndex(const std::string& name) const {
  auto it = relation_index_.find(name);
  return it == relation_index_.end() ? -1 : it->second;
}

int Vocabulary::ConstantIndex(const std::string& name) const {
  auto it = constant_index_.find(name);
  return it == constant_index_.end() ? -1 : it->second;
}

int Vocabulary::ArityOf(const std::string& name) const {
  int index = RelationIndex(name);
  DYNFO_CHECK(index >= 0) << "unknown relation: " << name;
  return relations_[index].arity;
}

std::string Vocabulary::ToString() const {
  std::string s = "<";
  for (int i = 0; i < num_relations(); ++i) {
    if (i > 0) s += ", ";
    s += relations_[i].name + "^" + std::to_string(relations_[i].arity);
  }
  if (num_constants() > 0) {
    s += "; ";
    for (int i = 0; i < num_constants(); ++i) {
      if (i > 0) s += ", ";
      s += constants_[i];
    }
  }
  s += ">";
  return s;
}

}  // namespace dynfo::relational
