#include "relational/serialize.h"

#include <sstream>
#include <vector>

#include "core/text.h"

namespace dynfo::relational {

namespace {

/// Emits a dense bitmap page: the word array with zero runs run-length
/// encoded as "z<count>" and live words as 16-digit hex. The overlay is
/// folded by the caller, so page bytes are a pure function of the logical
/// contents plus the backend flag — flattening never changes a snapshot.
void WriteDensePage(std::ostringstream* out, const std::string& name,
                    const DenseSet& set) {
  *out << "dense " << name << " words=" << set.num_words();
  const uint64_t* words = set.words();
  const size_t count = set.num_words();
  for (size_t i = 0; i < count;) {
    if (words[i] == 0) {
      size_t run = 1;
      while (i + run < count && words[i + run] == 0) ++run;
      *out << " z" << run;
      i += run;
    } else {
      *out << " " << core::HexU64(words[i]);
      ++i;
    }
  }
  *out << "\n";
}

}  // namespace

std::string WriteStructure(const Structure& structure) {
  std::ostringstream out;
  out << "structure n=" << structure.universe_size() << "\n";
  const Vocabulary& vocab = structure.vocabulary();
  for (int i = 0; i < vocab.num_relations(); ++i) {
    const std::string& name = vocab.relation(i).name;
    const Relation& rel = structure.relation(i);
    if (rel.backend() == RelationBackend::kDense) {
      WriteDensePage(&out, name, rel.DenseContents());
      continue;
    }
    for (const Tuple& t : rel.SortedTuples()) {
      out << "rel " << name;
      for (int p = 0; p < t.size(); ++p) out << " " << t[p];
      out << "\n";
    }
  }
  for (int j = 0; j < vocab.num_constants(); ++j) {
    out << "const " << vocab.constant(j) << " " << structure.constant(j) << "\n";
  }
  out << "end\n";
  return out.str();
}

namespace {

core::Status Err(size_t line, const std::string& message) {
  return core::Status::Error("line " + std::to_string(line) + ": " + message);
}

/// Universes are {0..n-1} with n <= 2^32 (Element is uint32_t); accepting a
/// larger header would make the per-element range checks wrap on the cast.
constexpr uint64_t kMaxUniverse = uint64_t{1} << 32;

/// Strictly parses the next whitespace token as an in-universe element.
bool NextElement(std::istringstream* words, uint64_t universe_size,
                 Element* out) {
  std::string token;
  if (!(*words >> token)) return false;
  uint64_t value = 0;
  if (!core::ParseU64(token, &value) || value >= universe_size) return false;
  *out = static_cast<Element>(value);
  return true;
}

bool HasTrailingTokens(std::istringstream* words) {
  std::string extra;
  return static_cast<bool>(*words >> extra);
}

}  // namespace

core::Result<Structure> ReadStructure(const std::string& text,
                                      std::shared_ptr<const Vocabulary> vocabulary) {
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  bool saw_end = false;
  std::unique_ptr<Structure> structure;

  while (std::getline(in, line)) {
    ++line_number;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;
    if (saw_end) return Err(line_number, "content after 'end'");

    if (keyword == "structure") {
      std::string size_field;
      if (saw_header || !(words >> size_field) || size_field.rfind("n=", 0) != 0) {
        return Err(line_number, "expected a single 'structure n=<size>' header");
      }
      uint64_t n = 0;
      if (!core::ParseU64(size_field.substr(2), &n)) {
        return Err(line_number, "bad universe size: " + size_field);
      }
      if (n == 0) return Err(line_number, "universes are nonempty");
      if (n > kMaxUniverse) {
        return Err(line_number, "universe size above element range: " + size_field);
      }
      if (HasTrailingTokens(&words)) {
        return Err(line_number, "trailing tokens after header");
      }
      structure = std::make_unique<Structure>(vocabulary, static_cast<size_t>(n));
      saw_header = true;
      continue;
    }
    if (!saw_header) return Err(line_number, "missing 'structure n=...' header");

    if (keyword == "rel") {
      std::string name;
      if (!(words >> name)) return Err(line_number, "rel needs a relation name");
      int index = vocabulary->RelationIndex(name);
      if (index < 0) return Err(line_number, "unknown relation " + name);
      const int arity = vocabulary->relation(index).arity;
      Tuple t;
      for (int p = 0; p < arity; ++p) {
        Element value = 0;
        if (!NextElement(&words, structure->universe_size(), &value)) {
          return Err(line_number, name + " tuple malformed or outside universe");
        }
        t = t.Append(value);
      }
      if (HasTrailingTokens(&words)) return Err(line_number, name + " tuple too long");
      structure->relation(index).Insert(t);
      continue;
    }
    if (keyword == "dense") {
      std::string name;
      if (!(words >> name)) return Err(line_number, "dense needs a relation name");
      int index = vocabulary->RelationIndex(name);
      if (index < 0) return Err(line_number, "unknown relation " + name);
      const int arity = vocabulary->relation(index).arity;
      if (arity > DenseSet::kMaxDenseArity) {
        return Err(line_number, name + " has arity above the dense maximum");
      }
      Relation& rel = structure->relation(index);
      if (rel.backend() == RelationBackend::kDense || !rel.empty()) {
        return Err(line_number, "duplicate page for relation " + name);
      }
      const size_t n = structure->universe_size();
      const size_t expected_words = DenseSet::WordsFor(arity, n);
      std::string words_field;
      if (!(words >> words_field) || words_field.rfind("words=", 0) != 0) {
        return Err(line_number, "dense needs a words=<count> field");
      }
      uint64_t declared = 0;
      if (!core::ParseU64(words_field.substr(6), &declared) ||
          declared != expected_words) {
        return Err(line_number, "dense word count does not match " + name +
                                    "'s shape over this universe");
      }
      DenseSet* target = rel.BeginDenseRewrite(n);
      uint64_t* page = target->mutable_words();
      size_t filled = 0;
      std::string token;
      while (words >> token) {
        if (token[0] == 'z') {
          uint64_t run = 0;
          if (!core::ParseU64(token.substr(1), &run) || run == 0 ||
              run > expected_words - filled) {
            return Err(line_number, "bad zero run in dense page");
          }
          filled += static_cast<size_t>(run);  // page starts zeroed
          continue;
        }
        uint64_t value = 0;
        if (token.size() != 16 || !core::ParseHexU64(token, &value) ||
            filled >= expected_words) {
          return Err(line_number, "bad word in dense page");
        }
        page[filled++] = value;
      }
      if (filled != expected_words) {
        return Err(line_number, "dense page for " + name + " holds " +
                                    std::to_string(filled) + " words, want " +
                                    std::to_string(expected_words));
      }
      if (!target->CheckTailBitsZero()) {
        return Err(line_number, "dense page sets bits outside the universe");
      }
      rel.FinishDenseRewrite();
      continue;
    }
    if (keyword == "const") {
      std::string name;
      if (!(words >> name)) return Err(line_number, "const needs name value");
      if (vocabulary->ConstantIndex(name) < 0) {
        return Err(line_number, "unknown constant " + name);
      }
      Element value = 0;
      if (!NextElement(&words, structure->universe_size(), &value)) {
        return Err(line_number, "constant malformed or outside universe");
      }
      if (HasTrailingTokens(&words)) {
        return Err(line_number, "trailing tokens after const");
      }
      structure->set_constant(name, value);
      continue;
    }
    if (keyword == "end") {
      if (HasTrailingTokens(&words)) return Err(line_number, "trailing tokens after end");
      saw_end = true;
      continue;
    }
    return Err(line_number, "unrecognized keyword " + keyword);
  }
  if (!saw_header) return core::Status::Error("empty input");
  if (!saw_end) return core::Status::Error("missing 'end'");
  return std::move(*structure);
}

std::string WrapChecksummed(const std::string& kind, const std::string& payload) {
  std::string out = "dynfo " + kind + " v1 bytes=" + std::to_string(payload.size()) +
                    "\n" + payload;
  out += "checksum fnv1a " + core::HexU64(core::Fnv1a64(payload)) + "\n";
  return out;
}

core::Result<std::string> UnwrapChecksummed(const std::string& kind,
                                            const std::string& text) {
  const size_t header_end = text.find('\n');
  if (header_end == std::string::npos) {
    return core::Status::Error("missing container header");
  }
  std::istringstream header(text.substr(0, header_end));
  std::string magic, got_kind, version, bytes_field;
  if (!(header >> magic >> got_kind >> version >> bytes_field) || magic != "dynfo" ||
      version != "v1" || bytes_field.rfind("bytes=", 0) != 0) {
    return core::Status::Error("malformed container header");
  }
  if (got_kind != kind) {
    return core::Status::Error("container holds '" + got_kind + "', expected '" +
                               kind + "'");
  }
  std::string extra;
  if (header >> extra) return core::Status::Error("trailing tokens in header");
  uint64_t bytes = 0;
  if (!core::ParseU64(bytes_field.substr(6), &bytes)) {
    return core::Status::Error("bad payload length");
  }
  const size_t payload_begin = header_end + 1;
  if (text.size() < payload_begin + bytes) {
    return core::Status::Error("container truncated (payload incomplete)");
  }
  std::string payload = text.substr(payload_begin, bytes);

  // Trailer: byte-exact "checksum fnv1a <16 hex>\n" and nothing after it,
  // so even whitespace damage or appended bytes are detected.
  const std::string trailer = text.substr(payload_begin + bytes);
  const std::string prefix = "checksum fnv1a ";
  if (trailer.size() != prefix.size() + 17 ||
      trailer.compare(0, prefix.size(), prefix) != 0 || trailer.back() != '\n') {
    return core::Status::Error("container truncated (missing checksum trailer)");
  }
  uint64_t expected = 0;
  if (!core::ParseHexU64(trailer.substr(prefix.size(), 16), &expected)) {
    return core::Status::Error("malformed checksum");
  }
  if (core::Fnv1a64(payload) != expected) {
    return core::Status::Error("checksum mismatch: container is corrupt");
  }
  return payload;
}

std::string WriteStructureChecksummed(const Structure& structure) {
  return WrapChecksummed("structure", WriteStructure(structure));
}

core::Result<Structure> ReadStructureChecksummed(
    const std::string& text, std::shared_ptr<const Vocabulary> vocabulary) {
  core::Result<std::string> payload = UnwrapChecksummed("structure", text);
  if (!payload.ok()) return payload.status();
  return ReadStructure(payload.value(), std::move(vocabulary));
}

std::string WriteStructureDelta(const Structure& base, const Structure& current) {
  const Vocabulary& vocab = current.vocabulary();
  DYNFO_CHECK(&base.vocabulary() == &vocab ||
              base.vocabulary().ToString() == vocab.ToString())
      << "delta across vocabularies";
  DYNFO_CHECK(base.universe_size() == current.universe_size())
      << "delta across universe sizes";
  std::ostringstream out;
  out << "delta n=" << current.universe_size() << "\n";
  std::vector<Tuple> added, removed;
  for (int i = 0; i < vocab.num_relations(); ++i) {
    added.clear();
    removed.clear();
    current.relation(i).DiffFrom(base.relation(i), &added, &removed);
    const std::string& name = vocab.relation(i).name;
    if (current.relation(i).backend() != base.relation(i).backend()) {
      out << "backend " << name << " "
          << (current.relation(i).backend() == RelationBackend::kDense
                  ? "dense"
                  : "hash")
          << "\n";
    }
    for (const Tuple& t : added) {
      out << "add " << name;
      for (int p = 0; p < t.size(); ++p) out << " " << t[p];
      out << "\n";
    }
    for (const Tuple& t : removed) {
      out << "del " << name;
      for (int p = 0; p < t.size(); ++p) out << " " << t[p];
      out << "\n";
    }
  }
  for (int j = 0; j < vocab.num_constants(); ++j) {
    if (base.constant(j) != current.constant(j)) {
      out << "const " << vocab.constant(j) << " " << current.constant(j) << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

core::Status ApplyStructureDelta(Structure* structure, const std::string& text) {
  const Vocabulary& vocab = structure->vocabulary();
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  bool saw_end = false;

  while (std::getline(in, line)) {
    ++line_number;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;
    if (saw_end) return Err(line_number, "content after 'end'");

    if (keyword == "delta") {
      std::string size_field;
      if (saw_header || !(words >> size_field) || size_field.rfind("n=", 0) != 0) {
        return Err(line_number, "expected a single 'delta n=<size>' header");
      }
      uint64_t n = 0;
      if (!core::ParseU64(size_field.substr(2), &n) ||
          n != structure->universe_size()) {
        return Err(line_number,
                   "delta universe size does not match the base structure");
      }
      if (HasTrailingTokens(&words)) {
        return Err(line_number, "trailing tokens after header");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) return Err(line_number, "missing 'delta n=...' header");

    if (keyword == "add" || keyword == "del") {
      std::string name;
      if (!(words >> name)) {
        return Err(line_number, keyword + " needs a relation name");
      }
      int index = vocab.RelationIndex(name);
      if (index < 0) return Err(line_number, "unknown relation " + name);
      const int arity = vocab.relation(index).arity;
      Tuple t;
      for (int p = 0; p < arity; ++p) {
        Element value = 0;
        if (!NextElement(&words, structure->universe_size(), &value)) {
          return Err(line_number, name + " tuple malformed or outside universe");
        }
        t = t.Append(value);
      }
      if (HasTrailingTokens(&words)) {
        return Err(line_number, name + " tuple too long");
      }
      if (keyword == "add") {
        if (!structure->relation(index).Insert(t)) {
          return Err(line_number, "delta adds " + t.ToString() + " to " + name +
                                      " but it is already present (delta "
                                      "applied to the wrong base)");
        }
      } else {
        if (!structure->relation(index).Erase(t)) {
          return Err(line_number, "delta removes " + t.ToString() + " from " +
                                      name +
                                      " but it is absent (delta applied to "
                                      "the wrong base)");
        }
      }
      continue;
    }
    if (keyword == "backend") {
      std::string name, which;
      if (!(words >> name >> which) || (which != "dense" && which != "hash")) {
        return Err(line_number, "backend needs <relation> dense|hash");
      }
      int index = vocab.RelationIndex(name);
      if (index < 0) return Err(line_number, "unknown relation " + name);
      if (HasTrailingTokens(&words)) {
        return Err(line_number, "trailing tokens after backend");
      }
      const RelationBackend want = which == "dense" ? RelationBackend::kDense
                                                    : RelationBackend::kHash;
      Relation& rel = structure->relation(index);
      if (rel.backend() == want) {
        return Err(line_number, "delta sets " + name + " to its current " +
                                    which +
                                    " backend (delta applied to the wrong "
                                    "base)");
      }
      if (want == RelationBackend::kDense &&
          (rel.arity() > DenseSet::kMaxDenseArity)) {
        return Err(line_number, name + " has arity above the dense maximum");
      }
      rel.ForceBackend(want, structure->universe_size());
      continue;
    }
    if (keyword == "const") {
      std::string name;
      if (!(words >> name)) return Err(line_number, "const needs name value");
      int index = vocab.ConstantIndex(name);
      if (index < 0) return Err(line_number, "unknown constant " + name);
      Element value = 0;
      if (!NextElement(&words, structure->universe_size(), &value)) {
        return Err(line_number, "constant malformed or outside universe");
      }
      if (HasTrailingTokens(&words)) {
        return Err(line_number, "trailing tokens after const");
      }
      if (structure->constant(index) == value) {
        return Err(line_number, "delta sets constant " + name +
                                    " to its current value (delta applied to "
                                    "the wrong base)");
      }
      structure->set_constant(name, value);
      continue;
    }
    if (keyword == "end") {
      if (HasTrailingTokens(&words)) {
        return Err(line_number, "trailing tokens after end");
      }
      saw_end = true;
      continue;
    }
    return Err(line_number, "unrecognized keyword " + keyword);
  }
  if (!saw_header) return core::Status::Error("empty delta");
  if (!saw_end) return core::Status::Error("missing 'end'");
  return core::Status();
}

}  // namespace dynfo::relational
