#include "relational/serialize.h"

#include <sstream>
#include <vector>

namespace dynfo::relational {

std::string WriteStructure(const Structure& structure) {
  std::ostringstream out;
  out << "structure n=" << structure.universe_size() << "\n";
  const Vocabulary& vocab = structure.vocabulary();
  for (int i = 0; i < vocab.num_relations(); ++i) {
    const std::string& name = vocab.relation(i).name;
    for (const Tuple& t : structure.relation(i).SortedTuples()) {
      out << "rel " << name;
      for (int p = 0; p < t.size(); ++p) out << " " << t[p];
      out << "\n";
    }
  }
  for (int j = 0; j < vocab.num_constants(); ++j) {
    out << "const " << vocab.constant(j) << " " << structure.constant(j) << "\n";
  }
  out << "end\n";
  return out.str();
}

namespace {

core::Status Err(size_t line, const std::string& message) {
  return core::Status::Error("line " + std::to_string(line) + ": " + message);
}

}  // namespace

core::Result<Structure> ReadStructure(const std::string& text,
                                      std::shared_ptr<const Vocabulary> vocabulary) {
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  bool saw_end = false;
  std::unique_ptr<Structure> structure;

  while (std::getline(in, line)) {
    ++line_number;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;
    if (saw_end) return Err(line_number, "content after 'end'");

    if (keyword == "structure") {
      std::string size_field;
      if (saw_header || !(words >> size_field) || size_field.rfind("n=", 0) != 0) {
        return Err(line_number, "expected a single 'structure n=<size>' header");
      }
      size_t n = 0;
      try {
        n = std::stoul(size_field.substr(2));
      } catch (...) {
        return Err(line_number, "bad universe size: " + size_field);
      }
      if (n == 0) return Err(line_number, "universes are nonempty");
      structure = std::make_unique<Structure>(vocabulary, n);
      saw_header = true;
      continue;
    }
    if (!saw_header) return Err(line_number, "missing 'structure n=...' header");

    if (keyword == "rel") {
      std::string name;
      if (!(words >> name)) return Err(line_number, "rel needs a relation name");
      int index = vocabulary->RelationIndex(name);
      if (index < 0) return Err(line_number, "unknown relation " + name);
      const int arity = vocabulary->relation(index).arity;
      Tuple t;
      uint64_t value = 0;
      for (int p = 0; p < arity; ++p) {
        if (!(words >> value)) return Err(line_number, name + " tuple too short");
        if (value >= structure->universe_size()) {
          return Err(line_number, "element outside universe");
        }
        t = t.Append(static_cast<Element>(value));
      }
      if (words >> value) return Err(line_number, name + " tuple too long");
      structure->relation(index).Insert(t);
      continue;
    }
    if (keyword == "const") {
      std::string name;
      uint64_t value = 0;
      if (!(words >> name >> value)) return Err(line_number, "const needs name value");
      if (vocabulary->ConstantIndex(name) < 0) {
        return Err(line_number, "unknown constant " + name);
      }
      if (value >= structure->universe_size()) {
        return Err(line_number, "constant outside universe");
      }
      structure->set_constant(name, static_cast<Element>(value));
      continue;
    }
    if (keyword == "end") {
      saw_end = true;
      continue;
    }
    return Err(line_number, "unrecognized keyword " + keyword);
  }
  if (!saw_header) return core::Status::Error("empty input");
  if (!saw_end) return core::Status::Error("missing 'end'");
  return std::move(*structure);
}

}  // namespace dynfo::relational
