#include "relational/index.h"

namespace dynfo::relational {

TupleIndex::TupleIndex(std::vector<int> positions) : positions_(std::move(positions)) {
  for (size_t i = 0; i < positions_.size(); ++i) {
    DYNFO_CHECK(positions_[i] >= 0 && positions_[i] < Tuple::kMaxArity);
    DYNFO_CHECK(i == 0 || positions_[i - 1] < positions_[i])
        << "index positions must be sorted and distinct";
  }
}

Tuple TupleIndex::KeyFor(const Tuple& t) const {
  Tuple key;
  for (int p : positions_) key = key.Append(t[p]);
  return key;
}

void TupleIndex::Add(const Tuple& t) {
  buckets_[KeyFor(t)].push_back(t);
  ++entries_;
}

void TupleIndex::Remove(const Tuple& t) {
  auto it = buckets_.find(KeyFor(t));
  if (it == buckets_.end()) return;
  std::vector<Tuple>& bucket = it->second;
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] != t) continue;
    bucket[i] = bucket.back();
    bucket.pop_back();
    --entries_;
    if (bucket.empty()) buckets_.erase(it);
    return;
  }
}

void TupleIndex::Clear() {
  buckets_.clear();
  entries_ = 0;
}

std::string TupleIndex::CorruptForTest(core::Rng* rng) {
  if (buckets_.empty()) return "";
  size_t target = rng->Below(buckets_.size());
  auto it = buckets_.begin();
  for (size_t i = 0; i < target; ++i) ++it;
  std::vector<Tuple>& bucket = it->second;
  const size_t slot = rng->Below(bucket.size());
  switch (rng->Below(3)) {
    case 0: {  // drop an entry
      std::string what = "dropped " + bucket[slot].ToString();
      bucket[slot] = bucket.back();
      bucket.pop_back();
      --entries_;
      if (bucket.empty()) buckets_.erase(it);
      return what;
    }
    case 1: {  // duplicate an entry
      std::string what = "duplicated " + bucket[slot].ToString();
      bucket.push_back(bucket[slot]);
      ++entries_;
      return what;
    }
    default: {  // flip one component of an entry (bit rot)
      const Tuple original = bucket[slot];
      if (original.size() == 0) {  // nothing to flip in a 0-ary tuple
        bucket[slot] = bucket.back();
        bucket.pop_back();
        --entries_;
        if (bucket.empty()) buckets_.erase(it);
        return "dropped ()";
      }
      const int flip = static_cast<int>(rng->Below(original.size()));
      Tuple mutated;
      for (int i = 0; i < original.size(); ++i) {
        mutated = mutated.Append(i == flip ? original[i] ^ 1u : original[i]);
      }
      bucket[slot] = mutated;
      return "mutated " + original.ToString() + " -> " + mutated.ToString();
    }
  }
}

}  // namespace dynfo::relational
