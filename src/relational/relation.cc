#include "relational/relation.h"

#include <algorithm>

namespace dynfo::relational {
namespace {

/// Cost-model constants. Arity <= 1 bitmaps cost n/8 bytes — effectively
/// free — so any representable universe goes dense under kAuto. Arity-2
/// planes cost n^2/8 bytes, so they are capped, always dense for tiny
/// universes, and otherwise density-gated with hysteresis (enter at 1/64
/// occupancy, leave below 1/256) so churn around the threshold does not
/// thrash O(n^2/64) conversions.
constexpr size_t kMaxDenseVectorUniverse = size_t{1} << 22;  // 512 KiB bitmap
constexpr size_t kMaxDensePlaneUniverse = 8192;              // 8 MiB plane
constexpr size_t kAlwaysDensePairUniverse = 64;
constexpr size_t kDenseEnterDivisor = 64;
constexpr size_t kDenseExitDivisor = 256;

}  // namespace

bool Relation::WantsDense() const {
  if (universe_ == 0 || arity_ > DenseSet::kMaxDenseArity) return false;
  switch (policy_) {
    case BackendPolicy::kHashOnly:
      return false;
    case BackendPolicy::kForceDense:
      return arity_ <= 1 ? universe_ <= kMaxDenseVectorUniverse
                         : universe_ <= kMaxDensePlaneUniverse;
    case BackendPolicy::kAuto:
      break;
  }
  if (arity_ <= 1) return universe_ <= kMaxDenseVectorUniverse;
  if (universe_ > kMaxDensePlaneUniverse) return false;
  if (universe_ <= kAlwaysDensePairUniverse) return true;
  const size_t cells = universe_ * universe_;
  const size_t divisor =
      dense_ != nullptr ? kDenseExitDivisor : kDenseEnterDivisor;
  return size_ * divisor >= cells;
}

bool Relation::ReconsiderBackend() {
  const bool want_dense = WantsDense();
  if (want_dense == (dense_ != nullptr)) return false;
  ConvertBackendInternal(want_dense);
  return true;
}

void Relation::ForceBackend(RelationBackend backend, size_t universe) {
  if (universe != 0) universe_ = universe;
  const bool to_dense = backend == RelationBackend::kDense;
  if (to_dense == (dense_ != nullptr)) return;
  DYNFO_CHECK(!to_dense ||
              (universe_ > 0 && arity_ <= DenseSet::kMaxDenseArity))
      << "dense backend needs a known universe and arity <= 2";
  ConvertBackendInternal(to_dense);
}

void Relation::ConvertBackendInternal(bool to_dense) {
  if (to_dense) {
    DYNFO_CHECK(universe_ > 0 && arity_ <= DenseSet::kMaxDenseArity);
    auto rebuilt = std::make_shared<DenseSet>(arity_, universe_);
    for (const Tuple& t : *this) rebuilt->Insert(t);
    dense_ = std::move(rebuilt);
    base_.reset();
  } else {
    auto rebuilt = std::make_shared<TupleSet>();
    rebuilt->Reserve(size_);
    for (const Tuple& t : *this) rebuilt->Insert(t);
    base_ = std::move(rebuilt);
    dense_.reset();
  }
  added_.Clear();
  removed_.Clear();
  ++conversions_;
}

const DenseSet* Relation::PrepareDenseView() {
  if (dense_ == nullptr) return nullptr;
  if (!added_.empty() || !removed_.empty()) {
    if (dense_.use_count() > 1) {
      auto folded = std::make_shared<DenseSet>(DenseContents());
      dense_ = std::move(folded);
      added_.Clear();
      removed_.Clear();
    } else {
      FlattenOverlay();
    }
  }
  return dense_.get();
}

DenseSet* Relation::BeginDenseRewrite(size_t universe) {
  DYNFO_CHECK(universe > 0 && arity_ <= DenseSet::kMaxDenseArity);
  universe_ = universe;
  if (dense_ == nullptr || dense_.use_count() > 1 ||
      dense_->universe() != universe) {
    dense_ = std::make_shared<DenseSet>(arity_, universe);
  } else {
    dense_->Clear();
  }
  base_.reset();
  added_.Clear();
  removed_.Clear();
  indexes_.clear();
  return dense_.get();
}

DenseSet Relation::DenseContents() const {
  DYNFO_CHECK(dense_ != nullptr);
  DenseSet out = *dense_;
  for (const Tuple& t : added_) out.Insert(t);
  for (const Tuple& t : removed_) out.Erase(t);
  return out;
}

const TupleIndex& Relation::EnsureIndex(const std::vector<int>& positions,
                                        bool* built_now) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  for (const std::unique_ptr<TupleIndex>& index : indexes_) {
    if (index->positions() == positions) {
      if (built_now != nullptr) *built_now = false;
      return *index;
    }
  }
  auto index = std::make_unique<TupleIndex>(positions);
  for (int p : positions) {
    DYNFO_CHECK(p < arity_) << "index position beyond relation arity";
  }
  for (const Tuple& t : *this) index->Add(t);
  indexes_.push_back(std::move(index));
  if (built_now != nullptr) *built_now = true;
  return *indexes_.back();
}

core::Status Relation::ValidateIndexes() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  for (size_t i = 0; i < indexes_.size(); ++i) {
    const TupleIndex& index = *indexes_[i];
    if (index.num_entries() != size_) {
      return core::Status::Error(
          "index " + std::to_string(i) + " holds " +
          std::to_string(index.num_entries()) + " entries, relation holds " +
          std::to_string(size_) + " tuples");
    }
    for (const Tuple& t : *this) {
      const std::vector<Tuple>* bucket = index.Find(index.KeyFor(t));
      size_t copies = 0;
      if (bucket != nullptr) {
        for (const Tuple& entry : *bucket) {
          if (entry == t) ++copies;
        }
      }
      if (copies != 1) {
        return core::Status::Error("index " + std::to_string(i) + " holds " +
                                   std::to_string(copies) + " copies of " +
                                   t.ToString() + " (want exactly 1)");
      }
    }
  }
  return core::Status();
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(begin(), end());
  std::sort(out.begin(), out.end());
  return out;
}

void Relation::DiffFrom(const Relation& old, std::vector<Tuple>* added,
                        std::vector<Tuple>* removed) const {
  DYNFO_CHECK(arity_ == old.arity_) << "diff across arities";
  const size_t added_start = added->size();
  const size_t removed_start = removed->size();
  if ((base_ != nullptr && base_ == old.base_) ||
      (dense_ != nullptr && dense_ == old.dense_)) {
    // Shared base: only overlay tuples can differ. Dedup candidates with a
    // scratch set so a tuple in both overlays is classified once.
    TupleSet candidates;
    auto consider = [&](const Tuple& t) {
      if (!candidates.Insert(t)) return;
      const bool now = Contains(t);
      const bool before = old.Contains(t);
      if (now && !before) added->push_back(t);
      if (!now && before) removed->push_back(t);
    };
    for (const Tuple& t : added_) consider(t);
    for (const Tuple& t : removed_) consider(t);
    for (const Tuple& t : old.added_) consider(t);
    for (const Tuple& t : old.removed_) consider(t);
  } else {
    for (const Tuple& t : *this) {
      if (!old.Contains(t)) added->push_back(t);
    }
    for (const Tuple& t : old) {
      if (!Contains(t)) removed->push_back(t);
    }
  }
  std::sort(added->begin() + added_start, added->end());
  std::sort(removed->begin() + removed_start, removed->end());
}

std::string Relation::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const Tuple& t : SortedTuples()) {
    if (!first) s += ", ";
    first = false;
    s += t.ToString();
  }
  s += "}";
  return s;
}

}  // namespace dynfo::relational
