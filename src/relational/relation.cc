#include "relational/relation.h"

#include <algorithm>

namespace dynfo::relational {

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::string Relation::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const Tuple& t : SortedTuples()) {
    if (!first) s += ", ";
    first = false;
    s += t.ToString();
  }
  s += "}";
  return s;
}

}  // namespace dynfo::relational
