#include "relational/relation.h"

#include <algorithm>

namespace dynfo::relational {

const TupleIndex& Relation::EnsureIndex(const std::vector<int>& positions,
                                        bool* built_now) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  for (const std::unique_ptr<TupleIndex>& index : indexes_) {
    if (index->positions() == positions) {
      if (built_now != nullptr) *built_now = false;
      return *index;
    }
  }
  auto index = std::make_unique<TupleIndex>(positions);
  for (int p : positions) {
    DYNFO_CHECK(p < arity_) << "index position beyond relation arity";
  }
  for (const Tuple& t : *this) index->Add(t);
  indexes_.push_back(std::move(index));
  if (built_now != nullptr) *built_now = true;
  return *indexes_.back();
}

core::Status Relation::ValidateIndexes() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  for (size_t i = 0; i < indexes_.size(); ++i) {
    const TupleIndex& index = *indexes_[i];
    if (index.num_entries() != size_) {
      return core::Status::Error(
          "index " + std::to_string(i) + " holds " +
          std::to_string(index.num_entries()) + " entries, relation holds " +
          std::to_string(size_) + " tuples");
    }
    for (const Tuple& t : *this) {
      const std::vector<Tuple>* bucket = index.Find(index.KeyFor(t));
      size_t copies = 0;
      if (bucket != nullptr) {
        for (const Tuple& entry : *bucket) {
          if (entry == t) ++copies;
        }
      }
      if (copies != 1) {
        return core::Status::Error("index " + std::to_string(i) + " holds " +
                                   std::to_string(copies) + " copies of " +
                                   t.ToString() + " (want exactly 1)");
      }
    }
  }
  return core::Status();
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(begin(), end());
  std::sort(out.begin(), out.end());
  return out;
}

void Relation::DiffFrom(const Relation& old, std::vector<Tuple>* added,
                        std::vector<Tuple>* removed) const {
  DYNFO_CHECK(arity_ == old.arity_) << "diff across arities";
  const size_t added_start = added->size();
  const size_t removed_start = removed->size();
  if (base_ != nullptr && base_ == old.base_) {
    // Shared base: only overlay tuples can differ. Dedup candidates with a
    // scratch set so a tuple in both overlays is classified once.
    TupleSet candidates;
    auto consider = [&](const Tuple& t) {
      if (!candidates.Insert(t)) return;
      const bool now = Contains(t);
      const bool before = old.Contains(t);
      if (now && !before) added->push_back(t);
      if (!now && before) removed->push_back(t);
    };
    for (const Tuple& t : added_) consider(t);
    for (const Tuple& t : removed_) consider(t);
    for (const Tuple& t : old.added_) consider(t);
    for (const Tuple& t : old.removed_) consider(t);
  } else {
    for (const Tuple& t : *this) {
      if (!old.Contains(t)) added->push_back(t);
    }
    for (const Tuple& t : old) {
      if (!Contains(t)) removed->push_back(t);
    }
  }
  std::sort(added->begin() + added_start, added->end());
  std::sort(removed->begin() + removed_start, removed->end());
}

std::string Relation::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const Tuple& t : SortedTuples()) {
    if (!first) s += ", ";
    first = false;
    s += t.ToString();
  }
  s += "}";
  return s;
}

}  // namespace dynfo::relational
