/// \file structure.h
/// Finite logical structures (relational database instances).
///
/// A structure A = <{0..n-1}, R1^A, ..., Rr^A, c1^A, ..., cs^A> over a
/// vocabulary (paper §2). The universe is always an initial segment of the
/// naturals, so the numeric predicates <=, BIT and constants min/max are
/// available "for free" as in the paper's logic L(tau).

#ifndef DYNFO_RELATIONAL_STRUCTURE_H_
#define DYNFO_RELATIONAL_STRUCTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/vocabulary.h"

namespace dynfo::relational {

/// A finite structure: universe {0..n-1}, one Relation per relation symbol,
/// one element per constant symbol. Copyable (relations are value types).
class Structure {
 public:
  /// Creates the structure with all relations empty and all constants 0 —
  /// this is the paper's initial structure A_0^n (modulo the active-domain
  /// relation, which problems that need it add themselves).
  Structure(std::shared_ptr<const Vocabulary> vocabulary, size_t universe_size);

  size_t universe_size() const { return universe_size_; }
  const Vocabulary& vocabulary() const { return *vocabulary_; }
  std::shared_ptr<const Vocabulary> vocabulary_ptr() const { return vocabulary_; }

  Relation& relation(int index) {
    DYNFO_CHECK(index >= 0 && index < static_cast<int>(relations_.size()));
    return relations_[index];
  }
  const Relation& relation(int index) const {
    DYNFO_CHECK(index >= 0 && index < static_cast<int>(relations_.size()));
    return relations_[index];
  }

  /// Named accessors; CHECK-fail on unknown names.
  Relation& relation(const std::string& name);
  const Relation& relation(const std::string& name) const;

  Element constant(int index) const {
    DYNFO_CHECK(index >= 0 && index < static_cast<int>(constants_.size()));
    return constants_[index];
  }
  Element constant(const std::string& name) const;

  void set_constant(int index, Element value);
  void set_constant(const std::string& name, Element value);

  /// Stamps `policy` (with this structure's universe) on every relation,
  /// converting backends where the cost model asks for it. Returns the
  /// number of conversions performed.
  size_t ConfigureBackends(BackendPolicy policy);

  /// Structures are equal iff same universe size and identical relation
  /// contents and constant values (vocabularies must be compatible).
  bool operator==(const Structure& other) const;
  bool operator!=(const Structure& other) const { return !(*this == other); }

  /// Multi-line dump for debugging and golden tests.
  std::string ToString() const;

 private:
  std::shared_ptr<const Vocabulary> vocabulary_;
  size_t universe_size_;
  std::vector<Relation> relations_;
  std::vector<Element> constants_;
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_STRUCTURE_H_
