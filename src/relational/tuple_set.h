/// \file tuple_set.h
/// An open-addressing flat hash set of Tuples.
///
/// Relation storage is the single hottest container in the engine: every
/// membership probe, delta insert/erase, and full-relation scan goes through
/// it. std::unordered_set allocates one node per tuple and chases a pointer
/// per probe; this set stores tuples inline in a flat slot array with linear
/// probing, so probes touch one cache line and inserts allocate only on
/// growth.
///
/// Deletions leave tombstones; the table rehashes when full+tombstone slots
/// exceed 7/8 of capacity (growing only when live tuples dominate, otherwise
/// rehashing in place to purge tombstones). Iteration order is unspecified,
/// matching the std::unordered_set contract the engine already had — callers
/// needing determinism sort (Relation::SortedTuples).

#ifndef DYNFO_RELATIONAL_TUPLE_SET_H_
#define DYNFO_RELATIONAL_TUPLE_SET_H_

#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "relational/tuple.h"

namespace dynfo::relational {

class TupleSet {
 public:
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = const Tuple&;

    const_iterator(const TupleSet* set, size_t index) : set_(set), index_(index) {
      SkipToFull();
    }

    const Tuple& operator*() const { return set_->slots_[index_]; }
    const Tuple* operator->() const { return &set_->slots_[index_]; }

    const_iterator& operator++() {
      ++index_;
      SkipToFull();
      return *this;
    }

    bool operator==(const const_iterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const const_iterator& other) const { return !(*this == other); }

   private:
    void SkipToFull() {
      while (index_ < set_->states_.size() && set_->states_[index_] != kFull) {
        ++index_;
      }
    }

    const TupleSet* set_;
    size_t index_;
  };

  TupleSet() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Contains(const Tuple& t) const { return FindSlot(t) != kNotFound; }

  /// Inserts a tuple; returns true if it was not already present.
  bool Insert(const Tuple& t) {
    if (states_.empty() || (used_ + 1) * 8 > states_.size() * 7) Rehash();
    const size_t mask = states_.size() - 1;
    size_t index = static_cast<size_t>(t.Hash()) & mask;
    size_t target = kNotFound;  // first tombstone passed, reusable
    while (true) {
      const uint8_t state = states_[index];
      if (state == kEmpty) {
        if (target == kNotFound) {
          target = index;
          ++used_;  // consuming a fresh slot, not a tombstone
        }
        break;
      }
      if (state == kTombstone) {
        if (target == kNotFound) target = index;
      } else if (slots_[index] == t) {
        return false;
      }
      index = (index + 1) & mask;
    }
    slots_[target] = t;
    states_[target] = kFull;
    ++size_;
    return true;
  }

  /// Erases a tuple; returns true if it was present.
  bool Erase(const Tuple& t) {
    const size_t index = FindSlot(t);
    if (index == kNotFound) return false;
    states_[index] = kTombstone;
    --size_;
    return true;
  }

  void Clear() {
    slots_.clear();
    states_.clear();
    size_ = 0;
    used_ = 0;
  }

  /// Pre-sizes the table so ~n live tuples fit without further growth (used
  /// by Relation compaction, where the merged cardinality is known up front).
  void Reserve(size_t n) {
    size_t capacity = kMinCapacity;
    while ((n + 1) * 8 > capacity * 7 || (n + 1) * 2 > capacity) capacity *= 2;
    if (capacity > states_.size()) RehashTo(capacity);
  }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, states_.size()); }

  /// Set equality, independent of slot layout and insertion history.
  bool operator==(const TupleSet& other) const {
    if (size_ != other.size_) return false;
    for (const Tuple& t : *this) {
      if (!other.Contains(t)) return false;
    }
    return true;
  }
  bool operator!=(const TupleSet& other) const { return !(*this == other); }

 private:
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kFull = 1;
  static constexpr uint8_t kTombstone = 2;
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  size_t FindSlot(const Tuple& t) const {
    if (states_.empty()) return kNotFound;
    const size_t mask = states_.size() - 1;
    size_t index = static_cast<size_t>(t.Hash()) & mask;
    while (true) {
      const uint8_t state = states_[index];
      if (state == kEmpty) return kNotFound;
      if (state == kFull && slots_[index] == t) return index;
      index = (index + 1) & mask;
    }
  }

  /// Rebuilds the table: doubles capacity when live tuples fill more than
  /// half the slots, otherwise keeps the size and just purges tombstones.
  void Rehash() {
    size_t capacity = states_.empty() ? kMinCapacity : states_.size();
    if ((size_ + 1) * 2 > capacity) capacity *= 2;
    RehashTo(capacity);
  }

  void RehashTo(size_t capacity) {
    std::vector<Tuple> old_slots = std::move(slots_);
    std::vector<uint8_t> old_states = std::move(states_);
    slots_.assign(capacity, Tuple());
    states_.assign(capacity, kEmpty);
    used_ = 0;
    const size_t mask = capacity - 1;
    for (size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) continue;
      size_t index = static_cast<size_t>(old_slots[i].Hash()) & mask;
      while (states_[index] == kFull) index = (index + 1) & mask;
      slots_[index] = old_slots[i];
      states_[index] = kFull;
      ++used_;
    }
  }

  std::vector<Tuple> slots_;
  std::vector<uint8_t> states_;
  size_t size_ = 0;  ///< live tuples
  size_t used_ = 0;  ///< full + tombstone slots (probe-chain occupancy)
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_TUPLE_SET_H_
