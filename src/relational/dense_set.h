/// \file dense_set.h
/// Packed-bitmap storage for low-arity relations over {0..n-1}.
///
/// Dyn-FO is the paper's *parallel* class (FO = CRAM[1] = AC^0); the hardware
/// analogue of a bounded-depth parallel circuit is word-level bit-parallelism.
/// DenseSet stores a relation of arity 0, 1, or 2 over universe {0..n-1} as a
/// packed array of uint64_t words:
///
///   * arity 0 — one word, bit 0 is the proposition;
///   * arity 1 — ceil(n/64) words, element e lives at word e/64, bit e%64;
///   * arity 2 — n row-major planes of ceil(n/64) words each: tuple (a, b)
///     lives at word a*words_per_row + b/64, bit b%64.
///
/// Membership, insertion, and deletion are single word ops; cardinality is a
/// popcount sweep; iteration is a ctz scan. Word-parallel kernels (fo/plan
/// lowering) operate on the words() span directly.
///
/// Invariant: bits outside the valid range (the tail of the last word of each
/// row, for universes not divisible by 64) are always zero. Kernels rely on
/// this to make whole-word AND/OR/NOT + popcount exact; writers through
/// mutable_words() must preserve it (see CheckTailBitsZero).

#ifndef DYNFO_RELATIONAL_DENSE_SET_H_
#define DYNFO_RELATIONAL_DENSE_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.h"
#include "relational/tuple.h"

namespace dynfo::relational {

/// A dense bitmap set of tuples with arity <= 2 over universe {0..n-1}.
/// Value-semantic; copy is a word-array copy.
class DenseSet {
 public:
  /// Largest arity a DenseSet can store.
  static constexpr int kMaxDenseArity = 2;

  /// Words needed per row (arity 2) or per vector (arity <= 1).
  static size_t WordsPerRowFor(int arity, size_t universe) {
    DYNFO_CHECK(arity >= 0 && arity <= kMaxDenseArity);
    DYNFO_CHECK(universe > 0);
    return arity == 0 ? 1 : (universe + 63) / 64;
  }

  /// Total word count for a given shape.
  static size_t WordsFor(int arity, size_t universe) {
    const size_t per_row = WordsPerRowFor(arity, universe);
    return arity == 2 ? universe * per_row : per_row;
  }

  DenseSet(int arity, size_t universe)
      : arity_(arity),
        universe_(universe),
        words_per_row_(WordsPerRowFor(arity, universe)),
        size_(0),
        words_(WordsFor(arity, universe), 0) {}

  int arity() const { return arity_; }
  size_t universe() const { return universe_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_words() const { return words_.size(); }
  size_t words_per_row() const { return words_per_row_; }

  /// Valid-bit mask for the last word of a row (all-ones when the universe is
  /// a multiple of 64, and for the arity-0 proposition word bit 0 only).
  uint64_t tail_mask() const {
    if (arity_ == 0) return uint64_t{1};
    const size_t rem = universe_ % 64;
    return rem == 0 ? ~uint64_t{0} : ((uint64_t{1} << rem) - 1);
  }

  const uint64_t* words() const { return words_.data(); }

  /// Raw write access for deserialization and kernels. The caller must keep
  /// tail bits zero and call RecountSize() before the set is read again.
  uint64_t* mutable_words() { return words_.data(); }

  /// Recomputes the cached cardinality from the words (popcount sweep).
  void RecountSize();

  /// True when every invalid (tail) bit is zero. Used to validate words
  /// arriving from deserialization.
  bool CheckTailBitsZero() const;

  bool Contains(const Tuple& t) const {
    const size_t w = WordIndex(t);
    return (words_[w] >> BitIndex(t)) & uint64_t{1};
  }

  /// Inserts `t`; returns true when it was newly added.
  bool Insert(const Tuple& t) {
    const size_t w = WordIndex(t);
    const uint64_t mask = uint64_t{1} << BitIndex(t);
    if ((words_[w] & mask) != 0) return false;
    words_[w] |= mask;
    ++size_;
    return true;
  }

  /// Erases `t`; returns true when it was present.
  bool Erase(const Tuple& t) {
    const size_t w = WordIndex(t);
    const uint64_t mask = uint64_t{1} << BitIndex(t);
    if ((words_[w] & mask) == 0) return false;
    words_[w] &= ~mask;
    --size_;
    return true;
  }

  void Clear() {
    std::fill(words_.begin(), words_.end(), uint64_t{0});
    size_ = 0;
  }

  /// Start of the word plane for row `a` (arity 2 only).
  const uint64_t* row(Element a) const {
    DYNFO_CHECK(arity_ == 2 && a < universe_);
    return words_.data() + static_cast<size_t>(a) * words_per_row_;
  }

  /// Forward iteration in lexicographic tuple order via ctz scan.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = const Tuple&;

    const_iterator() : set_(nullptr), word_(0), bits_(0) {}

    const_iterator(const DenseSet* set, bool at_end) : set_(set) {
      if (at_end) {
        word_ = set->words_.size();
        bits_ = 0;
      } else {
        // Settle() advances to word 0 first (unsigned wraparound).
        word_ = static_cast<size_t>(-1);
        bits_ = 0;
        Settle();
      }
    }

    reference operator*() const { return current_; }
    pointer operator->() const { return &current_; }

    const_iterator& operator++() {
      bits_ &= bits_ - 1;  // consume lowest set bit
      Settle();
      return *this;
    }

    const_iterator operator++(int) {
      const_iterator out = *this;
      ++*this;
      return out;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.word_ == b.word_ && a.bits_ == b.bits_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    void Settle() {
      while (bits_ == 0) {
        ++word_;
        if (word_ >= set_->words_.size()) {
          word_ = set_->words_.size();
          return;
        }
        bits_ = set_->words_[word_];
      }
      const Element bit = static_cast<Element>(std::countr_zero(bits_));
      switch (set_->arity_) {
        case 0:
          current_ = Tuple{};
          break;
        case 1:
          current_ = Tuple{static_cast<Element>(word_ * 64 + bit)};
          break;
        default: {
          const size_t per_row = set_->words_per_row_;
          current_ = Tuple{static_cast<Element>(word_ / per_row),
                           static_cast<Element>((word_ % per_row) * 64 + bit)};
          break;
        }
      }
    }

    const DenseSet* set_;
    size_t word_;    // word currently being scanned; words_.size() at end
    uint64_t bits_;  // unconsumed bits of words_[word_]
    Tuple current_;
  };

  const_iterator begin() const { return const_iterator(this, /*at_end=*/false); }
  const_iterator end() const { return const_iterator(this, /*at_end=*/true); }

  bool operator==(const DenseSet& other) const {
    return arity_ == other.arity_ && universe_ == other.universe_ &&
           words_ == other.words_;
  }
  bool operator!=(const DenseSet& other) const { return !(*this == other); }

 private:
  size_t WordIndex(const Tuple& t) const {
    DYNFO_CHECK(t.size() == arity_) << "tuple arity mismatch";
    switch (arity_) {
      case 0:
        return 0;
      case 1:
        DYNFO_CHECK(t[0] < universe_) << "element outside dense universe";
        return static_cast<size_t>(t[0]) / 64;
      default:
        DYNFO_CHECK(t[0] < universe_ && t[1] < universe_)
            << "element outside dense universe";
        return static_cast<size_t>(t[0]) * words_per_row_ +
               static_cast<size_t>(t[1]) / 64;
    }
  }

  unsigned BitIndex(const Tuple& t) const {
    return arity_ == 0 ? 0u
                       : static_cast<unsigned>(t[arity_ - 1] % 64);
  }

  int arity_;
  size_t universe_;
  size_t words_per_row_;
  size_t size_;  // cached popcount of words_
  std::vector<uint64_t> words_;
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_DENSE_SET_H_
