/// \file index.h
/// Persistent secondary indexes on stored relations.
///
/// A TupleIndex groups a relation's tuples by their projection onto a fixed
/// subset of argument positions (the "key"). Compiled update plans register
/// one index per (relation, bound-position-set) they probe; the owning
/// Relation maintains every registered index incrementally — O(1) expected
/// per Insert/Erase — so a join's build side is never reconstructed per
/// update. This is what turns the per-update cost of the hot Apply path from
/// "rehash the whole relation" into "probe the rows the request touches",
/// matching the paper's promise that each update is answered by a fixed
/// FO-definable delta.
///
/// Buckets are small vectors: key sets are chosen by the planner to be
/// selective (request parameters pin them), so the per-key fan-out is the
/// relation's local degree. Removal does a linear scan of the bucket and a
/// swap-pop, which is O(degree) worst case and O(1) in practice.

#ifndef DYNFO_RELATIONAL_INDEX_H_
#define DYNFO_RELATIONAL_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "relational/tuple.h"

namespace dynfo::relational {

class TupleIndex {
 public:
  /// `positions` are distinct argument positions, sorted ascending; keys are
  /// projections of tuples onto these positions in this order.
  explicit TupleIndex(std::vector<int> positions);

  const std::vector<int>& positions() const { return positions_; }

  /// Projects a stored tuple onto the key positions.
  Tuple KeyFor(const Tuple& t) const;

  /// The tuples whose projection equals `key`, or nullptr when none.
  const std::vector<Tuple>* Find(const Tuple& key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  /// Incremental maintenance, driven by the owning Relation.
  void Add(const Tuple& t);
  void Remove(const Tuple& t);
  void Clear();

  size_t num_keys() const { return buckets_.size(); }
  size_t num_entries() const { return entries_; }

  /// Deliberately damages the index — removes, duplicates, or mutates one
  /// entry chosen by `rng` — so consistency checks can be tested against
  /// realistic corruption (pair with core::FaultInjector::rng()). Returns a
  /// description of the damage, or "" if the index is empty.
  std::string CorruptForTest(core::Rng* rng);

 private:
  std::vector<int> positions_;
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHash> buckets_;
  size_t entries_ = 0;
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_INDEX_H_
