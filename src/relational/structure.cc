#include "relational/structure.h"

namespace dynfo::relational {

Structure::Structure(std::shared_ptr<const Vocabulary> vocabulary, size_t universe_size)
    : vocabulary_(std::move(vocabulary)), universe_size_(universe_size) {
  DYNFO_CHECK(vocabulary_ != nullptr);
  DYNFO_CHECK(universe_size_ > 0) << "universes are nonempty by definition";
  relations_.reserve(vocabulary_->num_relations());
  for (int i = 0; i < vocabulary_->num_relations(); ++i) {
    relations_.emplace_back(vocabulary_->relation(i).arity);
  }
  constants_.assign(vocabulary_->num_constants(), 0);
}

Relation& Structure::relation(const std::string& name) {
  int index = vocabulary_->RelationIndex(name);
  DYNFO_CHECK(index >= 0) << "unknown relation: " << name;
  return relations_[index];
}

const Relation& Structure::relation(const std::string& name) const {
  int index = vocabulary_->RelationIndex(name);
  DYNFO_CHECK(index >= 0) << "unknown relation: " << name;
  return relations_[index];
}

Element Structure::constant(const std::string& name) const {
  int index = vocabulary_->ConstantIndex(name);
  DYNFO_CHECK(index >= 0) << "unknown constant: " << name;
  return constants_[index];
}

void Structure::set_constant(int index, Element value) {
  DYNFO_CHECK(index >= 0 && index < static_cast<int>(constants_.size()));
  DYNFO_CHECK(value < universe_size_) << "constant value outside universe";
  constants_[index] = value;
}

void Structure::set_constant(const std::string& name, Element value) {
  int index = vocabulary_->ConstantIndex(name);
  DYNFO_CHECK(index >= 0) << "unknown constant: " << name;
  set_constant(index, value);
}

size_t Structure::ConfigureBackends(BackendPolicy policy) {
  size_t conversions = 0;
  for (Relation& r : relations_) {
    if (r.ConfigureBackend(policy, universe_size_)) ++conversions;
  }
  return conversions;
}

bool Structure::operator==(const Structure& other) const {
  if (universe_size_ != other.universe_size_) return false;
  if (relations_.size() != other.relations_.size()) return false;
  if (constants_ != other.constants_) return false;
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i] != other.relations_[i]) return false;
  }
  return true;
}

std::string Structure::ToString() const {
  std::string s = "Structure(n=" + std::to_string(universe_size_) + ")\n";
  for (int i = 0; i < vocabulary_->num_relations(); ++i) {
    s += "  " + vocabulary_->relation(i).name + " = " + relations_[i].ToString() + "\n";
  }
  for (int i = 0; i < vocabulary_->num_constants(); ++i) {
    s += "  " + vocabulary_->constant(i) + " = " + std::to_string(constants_[i]) + "\n";
  }
  return s;
}

}  // namespace dynfo::relational
