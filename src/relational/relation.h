/// \file relation.h
/// A finite relation: a set of tuples of fixed arity over {0..n-1}.

#ifndef DYNFO_RELATIONAL_RELATION_H_
#define DYNFO_RELATIONAL_RELATION_H_

#include <unordered_set>
#include <vector>

#include "relational/tuple.h"

namespace dynfo::relational {

/// Mutable tuple set with O(1) expected membership/insert/erase. Iteration
/// order is unspecified; use SortedTuples() where determinism matters.
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {
    DYNFO_CHECK(arity >= 0 && arity <= Tuple::kMaxArity);
  }

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  bool Contains(const Tuple& t) const {
    DYNFO_CHECK(t.size() == arity_);
    return tuples_.find(t) != tuples_.end();
  }

  /// Inserts a tuple; returns true if it was not already present.
  bool Insert(const Tuple& t) {
    DYNFO_CHECK(t.size() == arity_);
    return tuples_.insert(t).second;
  }

  /// Erases a tuple; returns true if it was present.
  bool Erase(const Tuple& t) {
    DYNFO_CHECK(t.size() == arity_);
    return tuples_.erase(t) > 0;
  }

  void Clear() { tuples_.clear(); }

  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  /// All tuples in lexicographic order (deterministic).
  std::vector<Tuple> SortedTuples() const;

  /// Set equality (arity and contents).
  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// E.g. "{(0, 1), (1, 2)}".
  std::string ToString() const;

 private:
  int arity_;
  std::unordered_set<Tuple, TupleHash> tuples_;
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_RELATION_H_
