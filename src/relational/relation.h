/// \file relation.h
/// A finite relation: a set of tuples of fixed arity over {0..n-1}, stored
/// copy-on-write.

#ifndef DYNFO_RELATIONAL_RELATION_H_
#define DYNFO_RELATIONAL_RELATION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "relational/index.h"
#include "relational/tuple_set.h"

namespace dynfo::relational {

/// Mutable tuple set with O(1) expected membership/insert/erase and O(1)
/// copies. Storage is copy-on-write versioned: a relation holds a shared
/// immutable base table (see tuple_set.h) plus a private overlay diff, so
/// Engine::Snapshot() and the evaluate-then-commit staging copies inside
/// Engine::TryApply share the base instead of deep-copying O(state) tuples.
/// A tuple is present iff it is in `added`, or in `base` and not in
/// `removed`. The base is mutated directly while uniquely owned; once it is
/// shared, writes land in the overlay, which is folded into a fresh private
/// base when it outgrows half the base (amortized O(1) per write) or folded
/// back in place as soon as the relation is sole owner again.
///
/// Iteration order is unspecified; use SortedTuples() where determinism
/// matters.
///
/// A relation additionally owns persistent secondary indexes (see index.h),
/// registered lazily by compiled query plans through EnsureIndex() and
/// maintained incrementally by every Insert/Erase/Clear. Indexes are derived
/// state: they never affect equality, are dropped (and lazily rebuilt) on
/// copy, and follow the tuples on move.
///
/// Thread-safety: concurrent *readers* — including concurrent EnsureIndex
/// calls, which synchronize on an internal mutex, and concurrent copies,
/// which only bump the shared base's refcount — are safe; mutation must be
/// externally serialized against all access, which the engine's synchronous
/// update semantics already guarantees (rules read the old structure
/// concurrently, commits are single-threaded). A staged copy may be mutated
/// while other threads read the original: the base is shared then, so writes
/// go to the copy's private overlay and never touch shared slots.
class Relation {
 public:
  /// Iterates `added` first, then `base` minus `removed`.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = const Tuple&;

    const Tuple& operator*() const { return *it_; }
    const Tuple* operator->() const { return &*it_; }

    const_iterator& operator++() {
      ++it_;
      Settle();
      return *this;
    }

    bool operator==(const const_iterator& other) const {
      return in_added_ == other.in_added_ && it_ == other.it_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class Relation;
    const_iterator(const Relation* rel, bool at_end)
        : rel_(rel),
          in_added_(!at_end),
          it_(at_end ? rel->BaseOrEmpty().end() : rel->added_.begin()) {
      Settle();
    }

    void Settle() {
      if (in_added_ && it_ == rel_->added_.end()) {
        in_added_ = false;
        it_ = rel_->BaseOrEmpty().begin();
      }
      if (!in_added_ && !rel_->removed_.empty()) {
        const TupleSet::const_iterator base_end = rel_->BaseOrEmpty().end();
        while (it_ != base_end && rel_->removed_.Contains(*it_)) ++it_;
      }
    }

    const Relation* rel_;
    bool in_added_;
    TupleSet::const_iterator it_;
  };

  explicit Relation(int arity) : arity_(arity) {
    DYNFO_CHECK(arity >= 0 && arity <= Tuple::kMaxArity);
  }

  Relation(const Relation& other)
      : arity_(other.arity_),
        base_(other.base_),
        added_(other.added_),
        removed_(other.removed_),
        size_(other.size_) {}
  Relation& operator=(const Relation& other) {
    if (this == &other) return *this;
    arity_ = other.arity_;
    base_ = other.base_;
    added_ = other.added_;
    removed_ = other.removed_;
    size_ = other.size_;
    indexes_.clear();  // stale for the new contents; rebuilt on demand
    return *this;
  }
  Relation(Relation&& other) noexcept
      : arity_(other.arity_),
        base_(std::move(other.base_)),
        added_(std::move(other.added_)),
        removed_(std::move(other.removed_)),
        size_(other.size_),
        indexes_(std::move(other.indexes_)) {}
  Relation& operator=(Relation&& other) noexcept {
    if (this == &other) return *this;
    arity_ = other.arity_;
    base_ = std::move(other.base_);
    added_ = std::move(other.added_);
    removed_ = std::move(other.removed_);
    size_ = other.size_;
    indexes_ = std::move(other.indexes_);
    return *this;
  }

  int arity() const { return arity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Contains(const Tuple& t) const {
    DYNFO_CHECK(t.size() == arity_);
    if (added_.empty() && removed_.empty()) {
      return base_ != nullptr && base_->Contains(t);
    }
    if (added_.Contains(t)) return true;
    return base_ != nullptr && !removed_.Contains(t) && base_->Contains(t);
  }

  /// Inserts a tuple; returns true if it was not already present.
  bool Insert(const Tuple& t) {
    DYNFO_CHECK(t.size() == arity_);
    if (!InsertTuple(t)) return false;
    ++size_;
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Add(t);
    return true;
  }

  /// Erases a tuple; returns true if it was present.
  bool Erase(const Tuple& t) {
    DYNFO_CHECK(t.size() == arity_);
    if (!EraseTuple(t)) return false;
    --size_;
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Remove(t);
    return true;
  }

  void Clear() {
    base_.reset();
    added_.Clear();
    removed_.Clear();
    size_ = 0;
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Clear();
  }

  const_iterator begin() const { return const_iterator(this, false); }
  const_iterator end() const { return const_iterator(this, true); }

  /// True when this relation and `other` currently share the same base
  /// version with no private divergence (an O(1) structural check; used by
  /// tests and stats, never required for correctness).
  bool SharesStorageWith(const Relation& other) const {
    return base_ != nullptr && base_ == other.base_;
  }

  /// Tuples living in the private overlay rather than the shared base
  /// (observability hook for copy-on-write behaviour).
  size_t OverlaySize() const { return added_.size() + removed_.size(); }

  /// The index keyed on `positions` (sorted, distinct argument positions),
  /// building it from the current contents on first request. Safe to call
  /// from concurrent readers. `built_now`, when non-null, reports whether
  /// this call constructed the index (for build-vs-probe accounting).
  const TupleIndex& EnsureIndex(const std::vector<int>& positions,
                                bool* built_now = nullptr) const;

  size_t num_indexes() const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return indexes_.size();
  }

  /// Discards every secondary index (tuples untouched). The recovery path
  /// calls this when ValidateIndexes() reports corruption: plans re-register
  /// and rebuild indexes from the tuple set on their next execution.
  void DropIndexes() {
    std::lock_guard<std::mutex> lock(index_mutex_);
    indexes_.clear();
  }

  /// Checks every index against the tuple set: each stored tuple appears in
  /// its bucket exactly once and bucket totals match the relation size (so
  /// there are no phantom entries either). Error describes the first
  /// inconsistency found.
  core::Status ValidateIndexes() const;

  /// Test hook: mutable access to index `i` for fault-injection tests.
  TupleIndex* MutableIndexForTest(size_t i) {
    DYNFO_CHECK(i < indexes_.size());
    return indexes_[i].get();
  }

  /// All tuples in lexicographic order (deterministic).
  std::vector<Tuple> SortedTuples() const;

  /// The set difference against an older version of this relation:
  /// `added` receives this∖old, `removed` receives old∖this, both in
  /// lexicographic order (appended to the given vectors). When the two
  /// relations still share a base version — the incremental-checkpoint
  /// case, where `old` is the CoW copy taken at the last snapshot — the
  /// cost is O(overlay), independent of relation size; otherwise it falls
  /// back to a full O(|this| + |old|) scan.
  void DiffFrom(const Relation& old, std::vector<Tuple>* added,
                std::vector<Tuple>* removed) const;

  /// Set equality (arity and contents; indexes are derived state and do not
  /// participate).
  bool operator==(const Relation& other) const {
    if (arity_ != other.arity_ || size_ != other.size_) return false;
    if (base_ == other.base_ && added_.empty() && other.added_.empty() &&
        removed_.empty() && other.removed_.empty()) {
      return true;  // same version, trivially equal
    }
    for (const Tuple& t : *this) {
      if (!other.Contains(t)) return false;
    }
    return true;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// E.g. "{(0, 1), (1, 2)}".
  std::string ToString() const;

 private:
  /// Overlay writes are only worth folding away once they dominate probe and
  /// iteration cost; the slack keeps tiny relations from compacting eagerly.
  static constexpr size_t kCompactSlack = 64;

  const TupleSet& BaseOrEmpty() const {
    static const TupleSet* const kEmptySet = new TupleSet();
    return base_ != nullptr ? *base_ : *kEmptySet;
  }

  bool BaseShared() const { return base_ != nullptr && base_.use_count() > 1; }

  TupleSet& OwnedBase() {
    if (base_ == nullptr) base_ = std::make_shared<TupleSet>();
    return *base_;
  }

  bool InsertTuple(const Tuple& t) {
    if (!BaseShared()) {
      if (!added_.empty() || !removed_.empty()) FlattenOverlay();
      return OwnedBase().Insert(t);
    }
    if (removed_.Erase(t)) return true;  // resurrects a base tuple
    if (base_->Contains(t)) return false;
    if (!added_.Insert(t)) return false;
    MaybeCompact();
    return true;
  }

  bool EraseTuple(const Tuple& t) {
    if (!BaseShared()) {
      if (!added_.empty() || !removed_.empty()) FlattenOverlay();
      return base_ != nullptr && base_->Erase(t);
    }
    if (added_.Erase(t)) return true;
    if (!base_->Contains(t) || !removed_.Insert(t)) return false;
    MaybeCompact();
    return true;
  }

  /// Folds the overlay into the base in place. Only legal while the base is
  /// uniquely owned (or absent): shared slots are never written.
  void FlattenOverlay() {
    TupleSet& base = OwnedBase();
    for (const Tuple& t : added_) base.Insert(t);
    for (const Tuple& t : removed_) base.Erase(t);
    added_.Clear();
    removed_.Clear();
  }

  /// Rebuilds a fresh private base from the logical contents once the
  /// overlay outgrows half the shared base — bounds per-probe overhead and
  /// amortizes the O(state) rebuild against the overlay writes that paid
  /// for it.
  void MaybeCompact() {
    if (added_.size() + removed_.size() <=
        base_->size() / 2 + kCompactSlack) {
      return;
    }
    auto merged = std::make_shared<TupleSet>();
    merged->Reserve(base_->size() + added_.size());
    for (const Tuple& t : *this) merged->Insert(t);
    base_ = std::move(merged);
    added_.Clear();
    removed_.Clear();
  }

  int arity_;
  /// Copy-on-write versioned storage (see class comment): nullable shared
  /// base, immutable while shared, plus the private overlay diff. Invariant:
  /// the overlay is empty whenever base_ is null, added_ ∩ base = ∅, and
  /// removed_ ⊆ base. size_ caches |added| + |base| − |removed|.
  std::shared_ptr<TupleSet> base_;
  TupleSet added_;
  TupleSet removed_;
  size_t size_ = 0;
  /// Lazily registered, incrementally maintained. Mutable because
  /// registration happens under const access during plan execution; guarded
  /// by index_mutex_ (see thread-safety note above). unique_ptr elements
  /// keep returned references stable across vector growth.
  mutable std::vector<std::unique_ptr<TupleIndex>> indexes_;
  mutable std::mutex index_mutex_;
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_RELATION_H_
