/// \file relation.h
/// A finite relation: a set of tuples of fixed arity over {0..n-1}.

#ifndef DYNFO_RELATIONAL_RELATION_H_
#define DYNFO_RELATIONAL_RELATION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "relational/index.h"
#include "relational/tuple_set.h"

namespace dynfo::relational {

/// Mutable tuple set with O(1) expected membership/insert/erase, stored in an
/// open-addressing flat table (see tuple_set.h). Iteration order is
/// unspecified; use SortedTuples() where determinism matters.
///
/// A relation additionally owns persistent secondary indexes (see index.h),
/// registered lazily by compiled query plans through EnsureIndex() and
/// maintained incrementally by every Insert/Erase/Clear. Indexes are derived
/// state: they never affect equality, are dropped (and lazily rebuilt) on
/// copy, and follow the tuples on move.
///
/// Thread-safety: concurrent *readers* — including concurrent EnsureIndex
/// calls, which synchronize on an internal mutex — are safe; mutation must
/// be externally serialized against all access, which the engine's
/// synchronous update semantics already guarantees (rules read the old
/// structure concurrently, commits are single-threaded).
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {
    DYNFO_CHECK(arity >= 0 && arity <= Tuple::kMaxArity);
  }

  Relation(const Relation& other) : arity_(other.arity_), tuples_(other.tuples_) {}
  Relation& operator=(const Relation& other) {
    if (this == &other) return *this;
    arity_ = other.arity_;
    tuples_ = other.tuples_;
    indexes_.clear();  // stale for the new contents; rebuilt on demand
    return *this;
  }
  Relation(Relation&& other) noexcept
      : arity_(other.arity_),
        tuples_(std::move(other.tuples_)),
        indexes_(std::move(other.indexes_)) {}
  Relation& operator=(Relation&& other) noexcept {
    if (this == &other) return *this;
    arity_ = other.arity_;
    tuples_ = std::move(other.tuples_);
    indexes_ = std::move(other.indexes_);
    return *this;
  }

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  bool Contains(const Tuple& t) const {
    DYNFO_CHECK(t.size() == arity_);
    return tuples_.Contains(t);
  }

  /// Inserts a tuple; returns true if it was not already present.
  bool Insert(const Tuple& t) {
    DYNFO_CHECK(t.size() == arity_);
    if (!tuples_.Insert(t)) return false;
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Add(t);
    return true;
  }

  /// Erases a tuple; returns true if it was present.
  bool Erase(const Tuple& t) {
    DYNFO_CHECK(t.size() == arity_);
    if (!tuples_.Erase(t)) return false;
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Remove(t);
    return true;
  }

  void Clear() {
    tuples_.Clear();
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Clear();
  }

  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  /// The index keyed on `positions` (sorted, distinct argument positions),
  /// building it from the current contents on first request. Safe to call
  /// from concurrent readers. `built_now`, when non-null, reports whether
  /// this call constructed the index (for build-vs-probe accounting).
  const TupleIndex& EnsureIndex(const std::vector<int>& positions,
                                bool* built_now = nullptr) const;

  size_t num_indexes() const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return indexes_.size();
  }

  /// Discards every secondary index (tuples untouched). The recovery path
  /// calls this when ValidateIndexes() reports corruption: plans re-register
  /// and rebuild indexes from the tuple set on their next execution.
  void DropIndexes() {
    std::lock_guard<std::mutex> lock(index_mutex_);
    indexes_.clear();
  }

  /// Checks every index against the tuple set: each stored tuple appears in
  /// its bucket exactly once and bucket totals match the relation size (so
  /// there are no phantom entries either). Error describes the first
  /// inconsistency found.
  core::Status ValidateIndexes() const;

  /// Test hook: mutable access to index `i` for fault-injection tests.
  TupleIndex* MutableIndexForTest(size_t i) {
    DYNFO_CHECK(i < indexes_.size());
    return indexes_[i].get();
  }

  /// All tuples in lexicographic order (deterministic).
  std::vector<Tuple> SortedTuples() const;

  /// Set equality (arity and contents; indexes are derived state and do not
  /// participate).
  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// E.g. "{(0, 1), (1, 2)}".
  std::string ToString() const;

 private:
  int arity_;
  TupleSet tuples_;
  /// Lazily registered, incrementally maintained. Mutable because
  /// registration happens under const access during plan execution; guarded
  /// by index_mutex_ (see thread-safety note above). unique_ptr elements
  /// keep returned references stable across vector growth.
  mutable std::vector<std::unique_ptr<TupleIndex>> indexes_;
  mutable std::mutex index_mutex_;
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_RELATION_H_
