/// \file relation.h
/// A finite relation: a set of tuples of fixed arity over {0..n-1}, stored
/// copy-on-write with a per-relation choice of physical backend.

#ifndef DYNFO_RELATIONAL_RELATION_H_
#define DYNFO_RELATIONAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "relational/dense_set.h"
#include "relational/index.h"
#include "relational/tuple_set.h"

namespace dynfo::relational {

/// Per-relation storage policy. kHashOnly is the default for standalone
/// Relations (unit tests, scratch values); the engine stamps kAuto on every
/// relation it owns when EngineOptions::use_dense_relations is set, and the
/// CLI can force either backend for ablations.
enum class BackendPolicy : uint8_t {
  kHashOnly,    ///< always hash (TupleSet) storage
  kAuto,        ///< cost model picks per relation, with hysteresis
  kForceDense,  ///< dense whenever representable (arity <= 2, universe known)
};

/// The physical backend currently holding the base version.
enum class RelationBackend : uint8_t { kHash, kDense };

/// Mutable tuple set with O(1) expected membership/insert/erase and O(1)
/// copies. Storage is copy-on-write versioned: a relation holds a shared
/// immutable base table plus a private overlay diff, so Engine::Snapshot()
/// and the evaluate-then-commit staging copies inside Engine::TryApply share
/// the base instead of deep-copying O(state) tuples. A tuple is present iff
/// it is in `added`, or in `base` and not in `removed`. The base is mutated
/// directly while uniquely owned; once it is shared, writes land in the
/// overlay, which is folded into a fresh private base when it outgrows half
/// the base (amortized O(1) per write) or folded back in place as soon as
/// the relation is sole owner again.
///
/// The base has two interchangeable physical forms: a hash TupleSet (any
/// arity, sparse-friendly) or a packed-bitmap DenseSet (arity <= 2 over a
/// known universe; see dense_set.h) picked by a cost model under kAuto.
/// Exactly one of the two base pointers is active; the overlay is always a
/// TupleSet pair regardless of backend, so CoW/abort-atomicity semantics are
/// identical in both modes. Conversions happen only at explicit
/// ConfigureBackend/ReconsiderBackend calls — the engine invokes those at
/// deterministic commit boundaries, making the backend a pure function of
/// (options, committed history) and keeping same-option engines bit-exact.
///
/// Iteration order is unspecified; use SortedTuples() where determinism
/// matters.
///
/// A relation additionally owns persistent secondary indexes (see index.h),
/// registered lazily by compiled query plans through EnsureIndex() and
/// maintained incrementally by every Insert/Erase/Clear. Indexes are derived
/// state: they never affect equality, are dropped (and lazily rebuilt) on
/// copy, and follow the tuples on move.
///
/// Thread-safety: concurrent *readers* — including concurrent EnsureIndex
/// calls, which synchronize on an internal mutex, and concurrent copies,
/// which only bump the shared base's refcount — are safe; mutation must be
/// externally serialized against all access, which the engine's synchronous
/// update semantics already guarantees (rules read the old structure
/// concurrently, commits are single-threaded). A staged copy may be mutated
/// while other threads read the original: the base is shared then, so writes
/// go to the copy's private overlay and never touch shared slots.
class Relation {
 public:
  /// Iterates `added` first, then `base` minus `removed`. The base phase
  /// walks whichever backend is active; the inactive iterator is parked at a
  /// fixed sentinel so iterator equality stays a plain field compare.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = const Tuple&;

    const Tuple& operator*() const {
      return (!in_added_ && rel_->dense_ != nullptr) ? *dit_ : *hit_;
    }
    const Tuple* operator->() const { return &**this; }

    const_iterator& operator++() {
      if (!in_added_ && rel_->dense_ != nullptr) {
        ++dit_;
      } else {
        ++hit_;
      }
      Settle();
      return *this;
    }

    bool operator==(const const_iterator& other) const {
      return in_added_ == other.in_added_ && hit_ == other.hit_ &&
             dit_ == other.dit_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class Relation;
    const_iterator(const Relation* rel, bool at_end)
        : rel_(rel),
          in_added_(!at_end),
          hit_(at_end ? (rel->dense_ != nullptr ? rel->added_.end()
                                                : rel->BaseOrEmpty().end())
                      : rel->added_.begin()),
          dit_(at_end && rel->dense_ != nullptr ? rel->dense_->end()
                                                : DenseSet::const_iterator()) {
      Settle();
    }

    void Settle() {
      if (in_added_ && hit_ == rel_->added_.end()) {
        in_added_ = false;
        if (rel_->dense_ != nullptr) {
          dit_ = rel_->dense_->begin();  // hit_ stays parked at added_.end()
        } else {
          hit_ = rel_->BaseOrEmpty().begin();
        }
      }
      if (!in_added_ && !rel_->removed_.empty()) {
        if (rel_->dense_ != nullptr) {
          const DenseSet::const_iterator dense_end = rel_->dense_->end();
          while (dit_ != dense_end && rel_->removed_.Contains(*dit_)) ++dit_;
        } else {
          const TupleSet::const_iterator base_end = rel_->BaseOrEmpty().end();
          while (hit_ != base_end && rel_->removed_.Contains(*hit_)) ++hit_;
        }
      }
    }

    const Relation* rel_;
    bool in_added_;
    TupleSet::const_iterator hit_;
    DenseSet::const_iterator dit_;
  };

  explicit Relation(int arity) : arity_(arity) {
    DYNFO_CHECK(arity >= 0 && arity <= Tuple::kMaxArity);
  }

  Relation(const Relation& other)
      : arity_(other.arity_),
        base_(other.base_),
        dense_(other.dense_),
        added_(other.added_),
        removed_(other.removed_),
        size_(other.size_),
        policy_(other.policy_),
        universe_(other.universe_),
        conversions_(other.conversions_) {}
  Relation& operator=(const Relation& other) {
    if (this == &other) return *this;
    arity_ = other.arity_;
    base_ = other.base_;
    dense_ = other.dense_;
    added_ = other.added_;
    removed_ = other.removed_;
    size_ = other.size_;
    policy_ = other.policy_;
    universe_ = other.universe_;
    conversions_ = other.conversions_;
    indexes_.clear();  // stale for the new contents; rebuilt on demand
    return *this;
  }
  Relation(Relation&& other) noexcept
      : arity_(other.arity_),
        base_(std::move(other.base_)),
        dense_(std::move(other.dense_)),
        added_(std::move(other.added_)),
        removed_(std::move(other.removed_)),
        size_(other.size_),
        policy_(other.policy_),
        universe_(other.universe_),
        conversions_(other.conversions_),
        indexes_(std::move(other.indexes_)) {}
  Relation& operator=(Relation&& other) noexcept {
    if (this == &other) return *this;
    arity_ = other.arity_;
    base_ = std::move(other.base_);
    dense_ = std::move(other.dense_);
    added_ = std::move(other.added_);
    removed_ = std::move(other.removed_);
    size_ = other.size_;
    policy_ = other.policy_;
    universe_ = other.universe_;
    conversions_ = other.conversions_;
    indexes_ = std::move(other.indexes_);
    return *this;
  }

  int arity() const { return arity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Contains(const Tuple& t) const {
    DYNFO_CHECK(t.size() == arity_);
    if (added_.empty() && removed_.empty()) return BaseContains(t);
    if (added_.Contains(t)) return true;
    return !removed_.Contains(t) && BaseContains(t);
  }

  /// Inserts a tuple; returns true if it was not already present.
  bool Insert(const Tuple& t) {
    DYNFO_CHECK(t.size() == arity_);
    if (!InsertTuple(t)) return false;
    ++size_;
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Add(t);
    return true;
  }

  /// Erases a tuple; returns true if it was present.
  bool Erase(const Tuple& t) {
    DYNFO_CHECK(t.size() == arity_);
    if (!EraseTuple(t)) return false;
    --size_;
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Remove(t);
    return true;
  }

  /// Empties the relation, keeping the current backend kind (a cleared dense
  /// relation stays dense so backend state survives transient empties).
  void Clear() {
    if (dense_ != nullptr) {
      if (dense_.use_count() > 1) {
        dense_ = std::make_shared<DenseSet>(arity_, dense_->universe());
      } else {
        dense_->Clear();
      }
    }
    base_.reset();
    added_.Clear();
    removed_.Clear();
    size_ = 0;
    for (const std::unique_ptr<TupleIndex>& index : indexes_) index->Clear();
  }

  const_iterator begin() const { return const_iterator(this, false); }
  const_iterator end() const { return const_iterator(this, true); }

  // ---------------------------------------------------------------------
  // Backend selection (see BackendPolicy).

  /// Stamps the policy and universe and immediately reconsiders the backend.
  /// Returns true when a conversion happened. The engine calls this on every
  /// relation it owns at construction, after Restore, and after each commit
  /// (full-recompute commits replace the Relation value wholesale, wiping the
  /// stamp). Within the arity-2 hysteresis band the current backend is kept,
  /// so a restored backend is never flipped by re-stamping.
  bool ConfigureBackend(BackendPolicy policy, size_t universe) {
    policy_ = policy;
    universe_ = universe;
    return ReconsiderBackend();
  }

  /// Re-evaluates the cost model against the current size and converts when
  /// the desired backend differs. Returns true when a conversion happened.
  bool ReconsiderBackend();

  /// Forces a specific backend regardless of policy (delta restore and
  /// forced-churn tests). `universe` must be nonzero for kDense.
  void ForceBackend(RelationBackend backend, size_t universe);

  RelationBackend backend() const {
    return dense_ != nullptr ? RelationBackend::kDense : RelationBackend::kHash;
  }
  BackendPolicy backend_policy() const { return policy_; }
  size_t backend_universe() const { return universe_; }

  /// Conversions performed on this value lineage (copied with the value;
  /// engine-level totals are tracked by the engine itself).
  uint64_t backend_conversions() const { return conversions_; }

  /// The dense base when it exactly represents the contents (dense backend,
  /// empty overlay); nullptr otherwise. Kernels read words through this.
  const DenseSet* DenseBaseView() const {
    return (dense_ != nullptr && added_.empty() && removed_.empty())
               ? dense_.get()
               : nullptr;
  }

  /// Makes DenseBaseView() available when the backend is dense: folds the
  /// overlay into a private base (copying first if the base is shared).
  /// Logical contents are unchanged, so snapshots and indexes are unaffected.
  /// Returns nullptr when the backend is hash.
  const DenseSet* PrepareDenseView();

  /// Begins a wholesale dense rewrite of the contents: returns a uniquely
  /// owned, correctly shaped, zeroed base for the caller to fill via
  /// mutable_words(), dropping any overlay and indexes. The caller must call
  /// FinishDenseRewrite() before the relation is read again. Used by the
  /// engine's dense commit path so a kernel result lands without per-tuple
  /// traffic.
  DenseSet* BeginDenseRewrite(size_t universe);
  void FinishDenseRewrite() {
    dense_->RecountSize();
    size_ = dense_->size();
  }

  /// The logical contents as a DenseSet (base plus folded overlay). Requires
  /// the dense backend. Used by serialization so emitted bitmap pages never
  /// depend on overlay state.
  DenseSet DenseContents() const;

  /// True when this relation and `other` currently share the same base
  /// version with no private divergence (an O(1) structural check; used by
  /// tests and stats, never required for correctness).
  bool SharesStorageWith(const Relation& other) const {
    return (base_ != nullptr && base_ == other.base_) ||
           (dense_ != nullptr && dense_ == other.dense_);
  }

  /// Tuples living in the private overlay rather than the shared base
  /// (observability hook for copy-on-write behaviour).
  size_t OverlaySize() const { return added_.size() + removed_.size(); }

  /// The index keyed on `positions` (sorted, distinct argument positions),
  /// building it from the current contents on first request. Safe to call
  /// from concurrent readers. `built_now`, when non-null, reports whether
  /// this call constructed the index (for build-vs-probe accounting).
  const TupleIndex& EnsureIndex(const std::vector<int>& positions,
                                bool* built_now = nullptr) const;

  size_t num_indexes() const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return indexes_.size();
  }

  /// Discards every secondary index (tuples untouched). The recovery path
  /// calls this when ValidateIndexes() reports corruption: plans re-register
  /// and rebuild indexes from the tuple set on their next execution.
  void DropIndexes() {
    std::lock_guard<std::mutex> lock(index_mutex_);
    indexes_.clear();
  }

  /// Checks every index against the tuple set: each stored tuple appears in
  /// its bucket exactly once and bucket totals match the relation size (so
  /// there are no phantom entries either). Error describes the first
  /// inconsistency found.
  core::Status ValidateIndexes() const;

  /// Test hook: mutable access to index `i` for fault-injection tests.
  TupleIndex* MutableIndexForTest(size_t i) {
    DYNFO_CHECK(i < indexes_.size());
    return indexes_[i].get();
  }

  /// All tuples in lexicographic order (deterministic).
  std::vector<Tuple> SortedTuples() const;

  /// The set difference against an older version of this relation:
  /// `added` receives this∖old, `removed` receives old∖this, both in
  /// lexicographic order (appended to the given vectors). When the two
  /// relations still share a base version — the incremental-checkpoint
  /// case, where `old` is the CoW copy taken at the last snapshot — the
  /// cost is O(overlay), independent of relation size; otherwise it falls
  /// back to a full O(|this| + |old|) scan.
  void DiffFrom(const Relation& old, std::vector<Tuple>* added,
                std::vector<Tuple>* removed) const;

  /// Set equality (arity and contents; backend choice, policy, and indexes
  /// are physical/derived state and do not participate).
  bool operator==(const Relation& other) const {
    if (arity_ != other.arity_ || size_ != other.size_) return false;
    if (base_ == other.base_ && dense_ == other.dense_ && added_.empty() &&
        other.added_.empty() && removed_.empty() && other.removed_.empty()) {
      return true;  // same version, trivially equal
    }
    for (const Tuple& t : *this) {
      if (!other.Contains(t)) return false;
    }
    return true;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// E.g. "{(0, 1), (1, 2)}".
  std::string ToString() const;

 private:
  /// Overlay writes are only worth folding away once they dominate probe and
  /// iteration cost; the slack keeps tiny relations from compacting eagerly.
  static constexpr size_t kCompactSlack = 64;

  const TupleSet& BaseOrEmpty() const {
    static const TupleSet* const kEmptySet = new TupleSet();
    return base_ != nullptr ? *base_ : *kEmptySet;
  }

  bool BaseContains(const Tuple& t) const {
    if (dense_ != nullptr) return dense_->Contains(t);
    return base_ != nullptr && base_->Contains(t);
  }

  size_t BaseSize() const {
    if (dense_ != nullptr) return dense_->size();
    return base_ != nullptr ? base_->size() : 0;
  }

  bool BaseShared() const {
    return (base_ != nullptr && base_.use_count() > 1) ||
           (dense_ != nullptr && dense_.use_count() > 1);
  }

  TupleSet& OwnedBase() {
    DYNFO_CHECK(dense_ == nullptr);
    if (base_ == nullptr) base_ = std::make_shared<TupleSet>();
    return *base_;
  }

  bool InsertTuple(const Tuple& t) {
    if (!BaseShared()) {
      if (!added_.empty() || !removed_.empty()) FlattenOverlay();
      if (dense_ != nullptr) return dense_->Insert(t);
      return OwnedBase().Insert(t);
    }
    if (removed_.Erase(t)) return true;  // resurrects a base tuple
    if (BaseContains(t)) return false;
    if (!added_.Insert(t)) return false;
    MaybeCompact();
    return true;
  }

  bool EraseTuple(const Tuple& t) {
    if (!BaseShared()) {
      if (!added_.empty() || !removed_.empty()) FlattenOverlay();
      if (dense_ != nullptr) return dense_->Erase(t);
      return base_ != nullptr && base_->Erase(t);
    }
    if (added_.Erase(t)) return true;
    if (!BaseContains(t) || !removed_.Insert(t)) return false;
    MaybeCompact();
    return true;
  }

  /// Folds the overlay into the base in place. Only legal while the base is
  /// uniquely owned (or absent): shared slots are never written.
  void FlattenOverlay() {
    if (dense_ != nullptr) {
      for (const Tuple& t : added_) dense_->Insert(t);
      for (const Tuple& t : removed_) dense_->Erase(t);
    } else {
      TupleSet& base = OwnedBase();
      for (const Tuple& t : added_) base.Insert(t);
      for (const Tuple& t : removed_) base.Erase(t);
    }
    added_.Clear();
    removed_.Clear();
  }

  /// Rebuilds a fresh private base from the logical contents once the
  /// overlay outgrows half the shared base — bounds per-probe overhead and
  /// amortizes the O(state) rebuild against the overlay writes that paid
  /// for it. Keeps the current backend kind.
  void MaybeCompact() {
    if (added_.size() + removed_.size() <= BaseSize() / 2 + kCompactSlack) {
      return;
    }
    if (dense_ != nullptr) {
      auto merged = std::make_shared<DenseSet>(DenseContents());
      dense_ = std::move(merged);
    } else {
      auto merged = std::make_shared<TupleSet>();
      merged->Reserve(base_->size() + added_.size());
      for (const Tuple& t : *this) merged->Insert(t);
      base_ = std::move(merged);
    }
    added_.Clear();
    removed_.Clear();
  }

  /// The backend the cost model wants for the current policy/size/universe.
  bool WantsDense() const;

  /// Rebuilds the base in the other physical form (contents preserved,
  /// overlay folded, indexes untouched — they are keyed on tuples, which do
  /// not change).
  void ConvertBackendInternal(bool to_dense);

  int arity_;
  /// Copy-on-write versioned storage (see class comment): at most one of
  /// base_ (hash) / dense_ (bitmap) is non-null — the active backend —
  /// immutable while shared, plus the private overlay diff. Invariant:
  /// the overlay is empty whenever both bases are null, added_ ∩ base = ∅,
  /// and removed_ ⊆ base. size_ caches |added| + |base| − |removed|.
  std::shared_ptr<TupleSet> base_;
  std::shared_ptr<DenseSet> dense_;
  TupleSet added_;
  TupleSet removed_;
  size_t size_ = 0;
  BackendPolicy policy_ = BackendPolicy::kHashOnly;
  size_t universe_ = 0;  ///< 0 = unknown (hash only)
  uint64_t conversions_ = 0;
  /// Lazily registered, incrementally maintained. Mutable because
  /// registration happens under const access during plan execution; guarded
  /// by index_mutex_ (see thread-safety note above). unique_ptr elements
  /// keep returned references stable across vector growth.
  mutable std::vector<std::unique_ptr<TupleIndex>> indexes_;
  mutable std::mutex index_mutex_;
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_RELATION_H_
