/// \file vocabulary.h
/// Relational vocabularies (database schemas).
///
/// A vocabulary tau = <R1^{a1}, ..., Rr^{ar}, c1, ..., cs> is a tuple of
/// relation symbols with fixed arities plus constant symbols (paper §2).

#ifndef DYNFO_RELATIONAL_VOCABULARY_H_
#define DYNFO_RELATIONAL_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace dynfo::relational {

/// A relation symbol: a name and an arity.
struct RelationSymbol {
  std::string name;
  int arity;
};

/// A finite vocabulary of relation and constant symbols. Immutable once
/// shared with a Structure; build it fully before constructing structures.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Declares a relation symbol; returns its index. Names must be unique
  /// across relations and constants. Arity must be in [0, Tuple::kMaxArity].
  int AddRelation(const std::string& name, int arity);

  /// Declares a constant symbol; returns its index.
  int AddConstant(const std::string& name);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  int num_constants() const { return static_cast<int>(constants_.size()); }

  const RelationSymbol& relation(int index) const;
  const std::string& constant(int index) const;

  /// Index of the named relation, or -1 if absent.
  int RelationIndex(const std::string& name) const;
  /// Index of the named constant, or -1 if absent.
  int ConstantIndex(const std::string& name) const;

  /// Arity of the named relation. CHECK-fails if absent.
  int ArityOf(const std::string& name) const;

  /// E.g. "<E^2, F^2, PV^3; s, t>".
  std::string ToString() const;

 private:
  void CheckNameFresh(const std::string& name) const;

  std::vector<RelationSymbol> relations_;
  std::vector<std::string> constants_;
  std::unordered_map<std::string, int> relation_index_;
  std::unordered_map<std::string, int> constant_index_;
};

}  // namespace dynfo::relational

#endif  // DYNFO_RELATIONAL_VOCABULARY_H_
