#include "graph/mst.h"

#include <algorithm>

#include "graph/union_find.h"

namespace dynfo::graph {

std::vector<WeightedEdge> KruskalMsf(size_t n, std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  UnionFind components(n);
  std::vector<WeightedEdge> forest;
  for (const WeightedEdge& e : edges) {
    if (e.u == e.v) continue;
    if (components.Union(e.u, e.v)) forest.push_back(e);
  }
  return forest;
}

std::vector<WeightedEdge> EdgesFromWeightRelation(const relational::Relation& w) {
  DYNFO_CHECK(w.arity() == 3);
  std::vector<WeightedEdge> edges;
  for (const relational::Tuple& t : w) {
    if (t[0] < t[1]) edges.push_back({t[0], t[1], t[2]});
  }
  return edges;
}

uint64_t TotalWeight(const std::vector<WeightedEdge>& edges) {
  uint64_t total = 0;
  for (const WeightedEdge& e : edges) total += e.weight;
  return total;
}

}  // namespace dynfo::graph
