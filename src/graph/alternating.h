/// \file alternating.h
/// Alternating graph reachability — REACH_a, the paper's P-complete problem
/// (Proposition 5.5), equivalent to the monotone circuit value problem.
///
/// In an alternating graph some vertices are *universal*. Vertex x "reaches"
/// t inductively: t reaches t; an existential x reaches t if some successor
/// does; a universal x reaches t if it has at least one successor and all
/// successors do. REACH_a asks whether s reaches t. The fixpoint needs at
/// most n iterations of a first-order operator — REACH_a ∈ FO[n] — which is
/// exactly what Theorem 5.14's PAD construction exploits.

#ifndef DYNFO_GRAPH_ALTERNATING_H_
#define DYNFO_GRAPH_ALTERNATING_H_

#include <vector>

#include "graph/graph.h"

namespace dynfo::graph {

/// Computes the set { x : x reaches t } by fixpoint iteration.
std::vector<bool> AlternatingReachSet(const Digraph& g,
                                      const std::vector<bool>& universal, Vertex t);

/// REACH_a: does s reach t?
bool AlternatingReachable(const Digraph& g, const std::vector<bool>& universal,
                          Vertex s, Vertex t);

/// A monotone boolean circuit evaluated through AlternatingReachable
/// (CVAL ≡ REACH_a, Proposition 5.5): gate g is an AND (universal) or OR
/// (existential) over its input wires; inputs are 0-successor vertices,
/// where a true input is modeled as the target t itself... concretely:
/// value(g) = AlternatingReachable from g to the distinguished true-node.
/// Provided as a convenience for tests/examples.
struct MonotoneCircuit {
  size_t num_nodes = 0;          ///< node 0 is the distinguished TRUE input
  std::vector<bool> is_and;      ///< per node; ORs otherwise
  std::vector<std::pair<Vertex, Vertex>> wires;  ///< gate -> operand edges

  /// Evaluates the gate `output` (true inputs must wire to node 0).
  bool Eval(Vertex output) const;
};

}  // namespace dynfo::graph

#endif  // DYNFO_GRAPH_ALTERNATING_H_
