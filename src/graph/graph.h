/// \file graph.h
/// Plain graph containers used by static oracles and baselines.
///
/// These are deliberately ordinary adjacency-set graphs: the point of the
/// library is that the *Dyn-FO programs* answer dynamic queries; the graph
/// module supplies the independent ground truth they are checked against and
/// the classical baselines they are benchmarked against.

#ifndef DYNFO_GRAPH_GRAPH_H_
#define DYNFO_GRAPH_GRAPH_H_

#include <set>
#include <vector>

#include "core/check.h"
#include "relational/relation.h"

namespace dynfo::graph {

using Vertex = uint32_t;

/// A simple undirected graph on vertices {0..n-1} (no parallel edges; self
/// loops allowed but ignored by most algorithms).
class UndirectedGraph {
 public:
  explicit UndirectedGraph(size_t n) : adjacency_(n) {}

  size_t num_vertices() const { return adjacency_.size(); }

  bool HasEdge(Vertex u, Vertex v) const {
    CheckVertex(u);
    CheckVertex(v);
    return adjacency_[u].count(v) > 0;
  }

  /// Returns true if the edge was new.
  bool AddEdge(Vertex u, Vertex v) {
    CheckVertex(u);
    CheckVertex(v);
    bool fresh = adjacency_[u].insert(v).second;
    adjacency_[v].insert(u);
    return fresh;
  }

  /// Returns true if the edge was present.
  bool RemoveEdge(Vertex u, Vertex v) {
    CheckVertex(u);
    CheckVertex(v);
    bool present = adjacency_[u].erase(v) > 0;
    adjacency_[v].erase(u);
    return present;
  }

  const std::set<Vertex>& Neighbors(Vertex u) const {
    CheckVertex(u);
    return adjacency_[u];
  }

  size_t num_edges() const {
    size_t twice = 0;
    for (const auto& adj : adjacency_) twice += adj.size();
    return twice / 2;  // self loops undercount; acceptable for diagnostics
  }

  /// Builds from a symmetric (or to-be-symmetrized) binary relation.
  static UndirectedGraph FromRelation(const relational::Relation& edges, size_t n);

 private:
  void CheckVertex(Vertex v) const {
    DYNFO_CHECK(v < adjacency_.size()) << "vertex out of range";
  }

  std::vector<std::set<Vertex>> adjacency_;
};

/// A simple directed graph on {0..n-1}.
class Digraph {
 public:
  explicit Digraph(size_t n) : out_(n), in_(n) {}

  size_t num_vertices() const { return out_.size(); }

  bool HasEdge(Vertex u, Vertex v) const {
    CheckVertex(u);
    CheckVertex(v);
    return out_[u].count(v) > 0;
  }

  bool AddEdge(Vertex u, Vertex v) {
    CheckVertex(u);
    CheckVertex(v);
    bool fresh = out_[u].insert(v).second;
    in_[v].insert(u);
    return fresh;
  }

  bool RemoveEdge(Vertex u, Vertex v) {
    CheckVertex(u);
    CheckVertex(v);
    bool present = out_[u].erase(v) > 0;
    in_[v].erase(u);
    return present;
  }

  const std::set<Vertex>& OutNeighbors(Vertex u) const {
    CheckVertex(u);
    return out_[u];
  }
  const std::set<Vertex>& InNeighbors(Vertex u) const {
    CheckVertex(u);
    return in_[u];
  }

  size_t num_edges() const {
    size_t count = 0;
    for (const auto& adj : out_) count += adj.size();
    return count;
  }

  static Digraph FromRelation(const relational::Relation& edges, size_t n);

 private:
  void CheckVertex(Vertex v) const {
    DYNFO_CHECK(v < out_.size()) << "vertex out of range";
  }

  std::vector<std::set<Vertex>> out_;
  std::vector<std::set<Vertex>> in_;
};

}  // namespace dynfo::graph

#endif  // DYNFO_GRAPH_GRAPH_H_
