/// \file dynamic_connectivity.h
/// A classical fully dynamic connectivity baseline.
///
/// Maintains a spanning forest with parent pointers; inserts use find-root
/// (amortized cheap), deletes of forest edges BFS the smaller side for a
/// replacement among the non-tree edges. This is the textbook
/// O(sqrt-ish / linear worst case) structure the benchmarks pit against the
/// Dyn-FO program — the hand-coded counterpart of Theorem 4.1's relations F
/// and PV.

#ifndef DYNFO_GRAPH_DYNAMIC_CONNECTIVITY_H_
#define DYNFO_GRAPH_DYNAMIC_CONNECTIVITY_H_

#include <cstdint>
#include <set>
#include <vector>

#include "graph/graph.h"

namespace dynfo::graph {

class DynamicConnectivity {
 public:
  explicit DynamicConnectivity(size_t n);

  size_t num_vertices() const { return forest_.num_vertices(); }

  /// Adds an undirected edge; no-op if present. Returns true if the edge
  /// joined two components.
  bool AddEdge(Vertex u, Vertex v);

  /// Removes an undirected edge; no-op if absent. Returns true if the edge
  /// removal split a component (no replacement edge was found).
  bool RemoveEdge(Vertex u, Vertex v);

  bool HasEdge(Vertex u, Vertex v) const { return edges_.HasEdge(u, v); }

  bool Connected(Vertex u, Vertex v) const;

  size_t num_components() const { return components_; }

 private:
  /// Representative of v's tree (BFS to the smallest vertex — forest edges
  /// only). Kept simple on purpose: this is a baseline, not the contender.
  Vertex Root(Vertex v) const;

  UndirectedGraph edges_;   // all edges
  UndirectedGraph forest_;  // spanning forest subset
  size_t components_;
};

}  // namespace dynfo::graph

#endif  // DYNFO_GRAPH_DYNAMIC_CONNECTIVITY_H_
