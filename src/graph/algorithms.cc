#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace dynfo::graph {

bool Reachable(const UndirectedGraph& g, Vertex source, Vertex target) {
  if (source == target) return true;
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<Vertex> frontier{source};
  seen[source] = true;
  while (!frontier.empty()) {
    Vertex u = frontier.front();
    frontier.pop_front();
    for (Vertex v : g.Neighbors(u)) {
      if (v == target) return true;
      if (!seen[v]) {
        seen[v] = true;
        frontier.push_back(v);
      }
    }
  }
  return false;
}

bool Reachable(const Digraph& g, Vertex source, Vertex target) {
  if (source == target) return true;
  std::vector<bool> seen = ReachableSet(g, source);
  return seen[target];
}

std::vector<Vertex> ConnectedComponents(const UndirectedGraph& g) {
  const size_t n = g.num_vertices();
  std::vector<Vertex> component(n, 0);
  std::vector<bool> seen(n, false);
  for (Vertex start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::deque<Vertex> frontier{start};
    seen[start] = true;
    component[start] = start;
    while (!frontier.empty()) {
      Vertex u = frontier.front();
      frontier.pop_front();
      for (Vertex v : g.Neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          component[v] = start;
          frontier.push_back(v);
        }
      }
    }
  }
  return component;
}

size_t CountComponents(const UndirectedGraph& g) {
  std::vector<Vertex> component = ConnectedComponents(g);
  size_t count = 0;
  for (Vertex v = 0; v < component.size(); ++v) {
    if (component[v] == v) ++count;
  }
  return count;
}

bool IsBipartite(const UndirectedGraph& g) {
  const size_t n = g.num_vertices();
  std::vector<int> color(n, -1);
  for (Vertex start = 0; start < n; ++start) {
    if (color[start] >= 0) continue;
    color[start] = 0;
    std::deque<Vertex> frontier{start};
    while (!frontier.empty()) {
      Vertex u = frontier.front();
      frontier.pop_front();
      for (Vertex v : g.Neighbors(u)) {
        if (color[v] < 0) {
          color[v] = 1 - color[u];
          frontier.push_back(v);
        } else if (color[v] == color[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

namespace {

/// One augmenting-path step of unit-capacity max flow on the residual graph.
bool Augment(std::vector<std::vector<int>>& capacity, Vertex source, Vertex target) {
  const size_t n = capacity.size();
  std::vector<int> parent(n, -1);
  std::deque<Vertex> frontier{source};
  parent[source] = static_cast<int>(source);
  while (!frontier.empty() && parent[target] < 0) {
    Vertex u = frontier.front();
    frontier.pop_front();
    for (Vertex v = 0; v < n; ++v) {
      if (capacity[u][v] > 0 && parent[v] < 0) {
        parent[v] = static_cast<int>(u);
        frontier.push_back(v);
      }
    }
  }
  if (parent[target] < 0) return false;
  Vertex v = target;
  while (v != source) {
    Vertex u = static_cast<Vertex>(parent[v]);
    --capacity[u][v];
    ++capacity[v][u];
    v = u;
  }
  return true;
}

}  // namespace

bool KEdgeConnected(const UndirectedGraph& g, Vertex source, Vertex target, int k) {
  DYNFO_CHECK(k >= 1);
  if (source == target) return true;
  const size_t n = g.num_vertices();
  // Undirected unit-capacity edges: capacity 1 in both directions.
  std::vector<std::vector<int>> capacity(n, std::vector<int>(n, 0));
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.Neighbors(u)) capacity[u][v] = 1;
  }
  int flow = 0;
  while (flow < k && Augment(capacity, source, target)) ++flow;
  return flow >= k;
}

std::vector<bool> ReachableSet(const Digraph& g, Vertex source) {
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<Vertex> frontier{source};
  seen[source] = true;
  while (!frontier.empty()) {
    Vertex u = frontier.front();
    frontier.pop_front();
    for (Vertex v : g.OutNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        frontier.push_back(v);
      }
    }
  }
  return seen;
}

std::vector<bool> TransitiveClosure(const Digraph& g) {
  const size_t n = g.num_vertices();
  std::vector<bool> closure(n * n, false);
  for (Vertex u = 0; u < n; ++u) {
    std::vector<bool> seen = ReachableSet(g, u);
    for (Vertex v = 0; v < n; ++v) closure[u * n + v] = seen[v];
  }
  return closure;
}

bool IsAcyclic(const Digraph& g) {
  const size_t n = g.num_vertices();
  std::vector<int> indegree(n, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.OutNeighbors(u)) ++indegree[v];
  }
  std::deque<Vertex> frontier;
  for (Vertex v = 0; v < n; ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  size_t removed = 0;
  while (!frontier.empty()) {
    Vertex u = frontier.front();
    frontier.pop_front();
    ++removed;
    for (Vertex v : g.OutNeighbors(u)) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  return removed == n;
}

Digraph TransitiveReduction(const Digraph& g) {
  DYNFO_CHECK(IsAcyclic(g)) << "transitive reduction oracle requires a DAG";
  const size_t n = g.num_vertices();
  std::vector<bool> closure = TransitiveClosure(g);
  auto reaches = [&](Vertex u, Vertex v) { return closure[u * n + v]; };
  Digraph out(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.OutNeighbors(u)) {
      // (u, v) is redundant iff some other successor w of u reaches v.
      bool redundant = false;
      for (Vertex w : g.OutNeighbors(u)) {
        if (w != v && reaches(w, v)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) out.AddEdge(u, v);
    }
  }
  return out;
}

bool IsMaximalMatching(const UndirectedGraph& g,
                       const std::vector<std::pair<Vertex, Vertex>>& matching) {
  const size_t n = g.num_vertices();
  std::vector<bool> matched(n, false);
  for (const auto& [u, v] : matching) {
    if (!g.HasEdge(u, v)) return false;          // not a subset of the edges
    if (matched[u] || matched[v]) return false;  // not vertex-disjoint
    matched[u] = true;
    matched[v] = true;
  }
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.Neighbors(u)) {
      if (u != v && !matched[u] && !matched[v]) return false;  // extendable
    }
  }
  return true;
}

std::optional<Vertex> LowestCommonAncestor(const Digraph& forest, Vertex x, Vertex y) {
  const size_t n = forest.num_vertices();
  // Verify forest shape: indegree <= 1 and acyclic.
  for (Vertex v = 0; v < n; ++v) {
    DYNFO_CHECK(forest.InNeighbors(v).size() <= 1) << "not a forest: indegree > 1";
  }
  DYNFO_CHECK(IsAcyclic(forest)) << "not a forest: cycle present";

  auto ancestors = [&](Vertex v) {
    std::vector<Vertex> chain{v};
    Vertex current = v;
    while (!forest.InNeighbors(current).empty()) {
      current = *forest.InNeighbors(current).begin();
      chain.push_back(current);
    }
    return chain;
  };
  std::vector<Vertex> ax = ancestors(x);
  std::vector<Vertex> ay = ancestors(y);
  // Deepest vertex on both chains = first element of ax contained in ay.
  for (Vertex candidate : ax) {
    if (std::find(ay.begin(), ay.end(), candidate) != ay.end()) return candidate;
  }
  return std::nullopt;
}

}  // namespace dynfo::graph
