#include "graph/alternating.h"

namespace dynfo::graph {

std::vector<bool> AlternatingReachSet(const Digraph& g,
                                      const std::vector<bool>& universal, Vertex t) {
  const size_t n = g.num_vertices();
  DYNFO_CHECK(universal.size() == n);
  std::vector<bool> reach(n, false);
  reach[t] = true;
  // Monotone fixpoint: at most n rounds, each adding >= 1 vertex.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Vertex x = 0; x < n; ++x) {
      if (reach[x]) continue;
      const auto& successors = g.OutNeighbors(x);
      if (successors.empty()) continue;
      bool value;
      if (universal[x]) {
        value = true;
        for (Vertex y : successors) value = value && reach[y];
      } else {
        value = false;
        for (Vertex y : successors) value = value || reach[y];
      }
      if (value) {
        reach[x] = true;
        changed = true;
      }
    }
  }
  return reach;
}

bool AlternatingReachable(const Digraph& g, const std::vector<bool>& universal,
                          Vertex s, Vertex t) {
  return AlternatingReachSet(g, universal, t)[s];
}

bool MonotoneCircuit::Eval(Vertex output) const {
  Digraph g(num_nodes);
  for (const auto& [from, to] : wires) g.AddEdge(from, to);
  std::vector<bool> universal(num_nodes, false);
  for (Vertex v = 0; v < num_nodes; ++v) universal[v] = is_and[v];
  return AlternatingReachable(g, universal, output, /*t=*/0);
}

}  // namespace dynfo::graph
