#include "graph/graph.h"

namespace dynfo::graph {

UndirectedGraph UndirectedGraph::FromRelation(const relational::Relation& edges,
                                              size_t n) {
  DYNFO_CHECK(edges.arity() == 2);
  UndirectedGraph g(n);
  for (const relational::Tuple& t : edges) {
    g.AddEdge(t[0], t[1]);
  }
  return g;
}

Digraph Digraph::FromRelation(const relational::Relation& edges, size_t n) {
  DYNFO_CHECK(edges.arity() == 2);
  Digraph g(n);
  for (const relational::Tuple& t : edges) {
    g.AddEdge(t[0], t[1]);
  }
  return g;
}

}  // namespace dynfo::graph
