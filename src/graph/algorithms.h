/// \file algorithms.h
/// Classical static graph algorithms: the ground-truth oracles for the
/// paper's Dyn-FO constructions, and the "recompute from scratch" baselines
/// the benchmarks compare against.

#ifndef DYNFO_GRAPH_ALGORITHMS_H_
#define DYNFO_GRAPH_ALGORITHMS_H_

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace dynfo::graph {

/// BFS reachability in an undirected graph.
bool Reachable(const UndirectedGraph& g, Vertex source, Vertex target);

/// BFS reachability in a digraph.
bool Reachable(const Digraph& g, Vertex source, Vertex target);

/// Component id per vertex (ids are the smallest vertex of the component).
std::vector<Vertex> ConnectedComponents(const UndirectedGraph& g);

/// Number of connected components.
size_t CountComponents(const UndirectedGraph& g);

/// 2-colorability (ignores self loops: a self loop makes a graph non-bipartite,
/// which this reports correctly).
bool IsBipartite(const UndirectedGraph& g);

/// Whether every pair of vertices in the same component stays connected after
/// removing any k-1 edges — i.e. the component is k-edge-connected between
/// source and target. This is the query form used by Theorem 4.5.2: "are
/// source and target connected by k edge-disjoint paths?", decided via
/// max-flow (edge capacity 1, Ford-Fulkerson on the undirected graph).
bool KEdgeConnected(const UndirectedGraph& g, Vertex source, Vertex target, int k);

/// All vertices reachable from `source`.
std::vector<bool> ReachableSet(const Digraph& g, Vertex source);

/// Full transitive closure as a boolean matrix (n x n, row-major).
std::vector<bool> TransitiveClosure(const Digraph& g);

/// Whether the digraph is acyclic.
bool IsAcyclic(const Digraph& g);

/// Transitive reduction of a DAG: the unique minimal subgraph with the same
/// transitive closure. CHECK-fails on cyclic input.
Digraph TransitiveReduction(const Digraph& g);

/// Whether `matching` (a set of disjoint edges) is a *maximal* matching of g:
/// no edge of g has both endpoints unmatched.
bool IsMaximalMatching(const UndirectedGraph& g,
                       const std::vector<std::pair<Vertex, Vertex>>& matching);

/// Lowest common ancestor of x and y in a directed forest with edges parent
/// -> child; nullopt when they share no ancestor. CHECK-fails if the graph is
/// not a forest.
std::optional<Vertex> LowestCommonAncestor(const Digraph& forest, Vertex x, Vertex y);

}  // namespace dynfo::graph

#endif  // DYNFO_GRAPH_ALGORITHMS_H_
