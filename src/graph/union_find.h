/// \file union_find.h
/// Disjoint-set forest with path halving and union by size — the classical
/// incremental-connectivity baseline the benchmarks compare Dyn-FO against
/// (union-find handles inserts only; the fully dynamic baseline in
/// dynamic_connectivity.h handles deletes by rebuilding).

#ifndef DYNFO_GRAPH_UNION_FIND_H_
#define DYNFO_GRAPH_UNION_FIND_H_

#include <numeric>
#include <vector>

#include "core/check.h"

namespace dynfo::graph {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t num_elements() const { return parent_.size(); }

  uint32_t Find(uint32_t x) {
    DYNFO_CHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace dynfo::graph

#endif  // DYNFO_GRAPH_UNION_FIND_H_
