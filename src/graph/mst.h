/// \file mst.h
/// Minimum spanning forests (static oracle for Theorem 4.4).

#ifndef DYNFO_GRAPH_MST_H_
#define DYNFO_GRAPH_MST_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"

namespace dynfo::graph {

struct WeightedEdge {
  uint32_t u;
  uint32_t v;
  uint32_t weight;
};

/// Kruskal's algorithm. With distinct weights the result is the unique
/// minimum spanning forest; ties break by (weight, u, v) order.
std::vector<WeightedEdge> KruskalMsf(size_t n, std::vector<WeightedEdge> edges);

/// Reads weighted edges out of a ternary relation W(u, v, w), dropping
/// mirrored orientations (keeps u <= v) and self loops.
std::vector<WeightedEdge> EdgesFromWeightRelation(const relational::Relation& w);

/// Total weight of an edge list.
uint64_t TotalWeight(const std::vector<WeightedEdge>& edges);

}  // namespace dynfo::graph

#endif  // DYNFO_GRAPH_MST_H_
