#include "graph/dynamic_connectivity.h"

#include <deque>

namespace dynfo::graph {

DynamicConnectivity::DynamicConnectivity(size_t n)
    : edges_(n), forest_(n), components_(n) {}

Vertex DynamicConnectivity::Root(Vertex v) const {
  Vertex best = v;
  std::vector<bool> seen(forest_.num_vertices(), false);
  std::deque<Vertex> frontier{v};
  seen[v] = true;
  while (!frontier.empty()) {
    Vertex u = frontier.front();
    frontier.pop_front();
    if (u < best) best = u;
    for (Vertex w : forest_.Neighbors(u)) {
      if (!seen[w]) {
        seen[w] = true;
        frontier.push_back(w);
      }
    }
  }
  return best;
}

bool DynamicConnectivity::Connected(Vertex u, Vertex v) const {
  if (u == v) return true;
  return Root(u) == Root(v);
}

bool DynamicConnectivity::AddEdge(Vertex u, Vertex v) {
  if (!edges_.AddEdge(u, v)) return false;
  if (u == v || Connected(u, v)) return false;
  forest_.AddEdge(u, v);
  --components_;
  return true;
}

bool DynamicConnectivity::RemoveEdge(Vertex u, Vertex v) {
  if (!edges_.RemoveEdge(u, v)) return false;
  if (!forest_.RemoveEdge(u, v)) return false;  // non-tree edge: done

  // Collect u's side of the split tree.
  std::vector<bool> side(forest_.num_vertices(), false);
  std::deque<Vertex> frontier{u};
  side[u] = true;
  while (!frontier.empty()) {
    Vertex x = frontier.front();
    frontier.pop_front();
    for (Vertex w : forest_.Neighbors(x)) {
      if (!side[w]) {
        side[w] = true;
        frontier.push_back(w);
      }
    }
  }
  // Scan u's side for a replacement edge into the other side.
  for (Vertex x = 0; x < forest_.num_vertices(); ++x) {
    if (!side[x]) continue;
    for (Vertex w : edges_.Neighbors(x)) {
      if (!side[w]) {
        forest_.AddEdge(x, w);
        return false;  // spliced back together
      }
    }
  }
  ++components_;
  return true;
}

}  // namespace dynfo::graph
