/// \file builder.h
/// A small combinator DSL for constructing formulas in C++.
///
/// Wraps FormulaPtr in a value type `F` overloading &&, ||, ! so update
/// formulas read close to the paper's notation:
///
///   Term x = V("x"), y = V("y");
///   F f = Rel("F", {x, y}) || (EqT(x, P0()) && !Rel("P", {P0(), P1()}));

#ifndef DYNFO_FO_BUILDER_H_
#define DYNFO_FO_BUILDER_H_

#include <string>
#include <vector>

#include "fo/formula.h"

namespace dynfo::fo {

/// A formula wrapper enabling operator syntax. Converts implicitly *to*
/// FormulaPtr but only explicitly *from* it — an implicit converting
/// constructor would make `!some_formula_ptr` ambiguous everywhere.
struct F {
  FormulaPtr ptr;

  explicit F(FormulaPtr p) : ptr(std::move(p)) {}
  operator FormulaPtr() const { return ptr; }
  const Formula& operator*() const { return *ptr; }
  const Formula* operator->() const { return ptr.get(); }
};

inline F operator&&(const F& a, const F& b) { return F(Formula::And({a.ptr, b.ptr})); }
inline F operator||(const F& a, const F& b) { return F(Formula::Or({a.ptr, b.ptr})); }
inline F operator!(const F& a) { return F(Formula::Not(a.ptr)); }

/// Variable term shorthand.
inline Term V(const std::string& name) { return Term::Var(name); }
/// Constant-symbol term shorthand.
inline Term C(const std::string& name) { return Term::Const(name); }
/// Request parameters: P0 is the paper's `a`, P1 its `b`, etc.
inline Term P0() { return Term::Param(0); }
inline Term P1() { return Term::Param(1); }
inline Term P2() { return Term::Param(2); }
/// Numeric literal term.
inline Term N(relational::Element value) { return Term::Number(value); }

inline F Rel(const std::string& name, std::vector<Term> args) {
  return F(Formula::Atom(name, std::move(args)));
}
inline F EqT(Term a, Term b) { return F(Formula::Eq(std::move(a), std::move(b))); }
inline F LeT(Term a, Term b) { return F(Formula::Le(std::move(a), std::move(b))); }
inline F BitT(Term a, Term b) { return F(Formula::Bit(std::move(a), std::move(b))); }
inline F LtT(Term a, Term b) {
  return F(Formula::And({Formula::Le(a, b), Formula::Not(Formula::Eq(a, b))}));
}
inline F TrueF() { return F(Formula::True()); }
inline F FalseF() { return F(Formula::False()); }

inline F Exists(std::vector<std::string> vars, const F& body) {
  return F(Formula::Exists(std::move(vars), body.ptr));
}
inline F Forall(std::vector<std::string> vars, const F& body) {
  return F(Formula::Forall(std::move(vars), body.ptr));
}
inline F Implies(const F& a, const F& b) { return F(Formula::Implies(a.ptr, b.ptr)); }
inline F Iff(const F& a, const F& b) { return F(Formula::Iff(a.ptr, b.ptr)); }

/// n-ary conveniences.
inline F AndAll(std::vector<FormulaPtr> fs) { return F(Formula::And(std::move(fs))); }
inline F OrAll(std::vector<FormulaPtr> fs) { return F(Formula::Or(std::move(fs))); }

/// The paper's Eq(x, y, c, d) abbreviation:
/// (x = c & y = d) | (x = d & y = c) — "edge {x,y} is the edge {c,d}".
inline F EqEdge(const Term& x, const Term& y, const Term& c, const Term& d) {
  return (EqT(x, c) && EqT(y, d)) || (EqT(x, d) && EqT(y, c));
}

}  // namespace dynfo::fo

#endif  // DYNFO_FO_BUILDER_H_
