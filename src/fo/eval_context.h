/// \file eval_context.h
/// Shared evaluation context: the structure under evaluation plus the
/// request-parameter binding, and variable environments.

#ifndef DYNFO_FO_EVAL_CONTEXT_H_
#define DYNFO_FO_EVAL_CONTEXT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/cancel.h"
#include "core/thread_pool.h"
#include "fo/term.h"
#include "relational/structure.h"

namespace dynfo::fo {

/// Parallel-execution knobs for set-based evaluation. Defaults are strictly
/// sequential; evaluators with num_threads > 1 partition row ranges across
/// the global thread pool in chunks of at least `parallel_grain` items.
/// Results are always identical to sequential execution (the operators merge
/// per-chunk buffers deterministically).
struct EvalOptions {
  int num_threads = 1;
  size_t parallel_grain = 256;
  /// Compile formulas to reusable operator-tree plans once and execute the
  /// cached plan thereafter (see fo/plan.h), instead of re-running the greedy
  /// planner on every evaluation. Observationally equivalent; ablate with
  /// bench_evaluators.
  bool use_compiled_plans = true;
  /// Let compiled atom joins probe persistent per-column-subset indexes on
  /// the stored relations (see relational/index.h) instead of rebuilding a
  /// hash build side per join. Only effective with use_compiled_plans.
  bool use_indexes = true;

  core::ParallelOptions Policy() const { return {num_threads, parallel_grain}; }
};

/// What a formula is evaluated against: a structure (universe, relations,
/// constants) and the values of the request parameters $0, $1, ...
struct EvalContext {
  const relational::Structure* structure = nullptr;
  std::vector<relational::Element> parameters;
  EvalOptions options;
  /// Resource-governance authority for this evaluation (core/cancel.h).
  /// Null = ungoverned: ShouldStop()/Charge() reduce to one pointer compare,
  /// keeping the default hot path overhead-free.
  const core::ExecGovernor* governor = nullptr;

  explicit EvalContext(const relational::Structure& s,
                       std::vector<relational::Element> params = {},
                       EvalOptions opts = {})
      : structure(&s), parameters(std::move(params)), options(opts) {}

  size_t universe_size() const { return structure->universe_size(); }

  /// Polls the governor; true = abort the current operator and return a
  /// partial (to-be-discarded) result. Evaluator loops call this every
  /// core::kGovernorStride rows and at operator entry.
  bool ShouldStop() const { return core::GovernorStop(governor); }

  /// Charges `rows` materialized rows of width `width` against the budget.
  /// False = budget breached (the governor is now tripped); bail out.
  bool Charge(size_t rows, size_t width) const {
    if (governor == nullptr) return true;
    // Estimated footprint: elements plus per-row container overhead.
    return governor->ChargeRows(rows, width * sizeof(relational::Element) + 16);
  }

  /// Parallel policy with the governor attached, so chunk claims inside the
  /// thread pool observe the same stop authority as sequential loops.
  core::ParallelOptions Policy() const {
    core::ParallelOptions policy = options.Policy();
    policy.governor = governor;
    return policy;
  }
};

/// A stack-shaped variable environment (push on quantifier entry, pop on
/// exit). Lookups scan from the top so shadowing works naturally.
class Env {
 public:
  void Push(const std::string& name, relational::Element value) {
    bindings_.emplace_back(name, value);
  }
  void Pop() { bindings_.pop_back(); }
  void Set(relational::Element value) { bindings_.back().second = value; }

  std::optional<relational::Element> Lookup(const std::string& name) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return std::nullopt;
  }

  size_t size() const { return bindings_.size(); }

 private:
  std::vector<std::pair<std::string, relational::Element>> bindings_;
};

/// Evaluates a term. CHECK-fails on unbound variables or missing parameters.
relational::Element EvalTerm(const Term& term, const EvalContext& ctx, const Env& env);

/// Evaluates a term that contains no variables; nullopt if it is a variable.
std::optional<relational::Element> GroundTerm(const Term& term, const EvalContext& ctx);

}  // namespace dynfo::fo

#endif  // DYNFO_FO_EVAL_CONTEXT_H_
