/// \file named_relation.h
/// Intermediate results of set-based formula evaluation.
///
/// A NamedRelation is a set of rows over *named* columns (variable names) —
/// the working representation of the algebra evaluator, like an intermediate
/// result in a relational query plan. Unlike relational::Relation, rows may
/// be wider than Tuple::kMaxArity (joins accumulate columns).

#ifndef DYNFO_FO_NAMED_RELATION_H_
#define DYNFO_FO_NAMED_RELATION_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/check.h"
#include "core/small_vector.h"
#include "core/thread_pool.h"
#include "relational/tuple.h"

namespace dynfo::fo {

/// Intermediate rows use small-buffer storage: up to 8 variables live inline
/// with no heap traffic (the paper's update formulas use ≤ 8 variables; wider
/// joins spill to the heap transparently). See core/small_vector.h.
using Row = core::SmallVector<relational::Element, 8>;

struct RowHash {
  size_t operator()(const Row& row) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ row.size();
    for (relational::Element e : row) {
      h ^= e + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
    }
    return static_cast<size_t>(h);
  }
};

using RowSet = std::unordered_set<Row, RowHash>;

/// A deduplicated set of rows over named columns. Column names are distinct.
class NamedRelation {
 public:
  /// An empty-schema relation containing one empty row: the identity of the
  /// natural join, i.e. "true".
  static NamedRelation Unit() {
    NamedRelation unit({});
    unit.rows_.insert(Row{});
    return unit;
  }

  /// No rows over the given columns: "false".
  explicit NamedRelation(std::vector<std::string> columns);

  /// All of {0..n-1}^k over the given columns.
  static NamedRelation FullUniverse(std::vector<std::string> columns, size_t n);

  const std::vector<std::string>& columns() const { return columns_; }
  int width() const { return static_cast<int>(columns_.size()); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const RowSet& rows() const { return rows_; }

  /// Index of a column, or -1.
  int ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const { return ColumnIndex(name) >= 0; }

  /// Adds a row (width must match). Returns true if newly inserted.
  bool AddRow(Row row);

  /// Projection onto `keep` (a subset of columns), deduplicated.
  NamedRelation Project(const std::vector<std::string>& keep) const;

  /// Natural join on the shared columns (cross product when none shared).
  /// The probe side (*this) is partitioned across threads per `parallel`;
  /// per-chunk outputs are merged in chunk order, so the result is identical
  /// to sequential execution.
  NamedRelation Join(const NamedRelation& other,
                     const core::ParallelOptions& parallel = {}) const;

  /// Semi-join: rows of *this matching some row of `other` on the shared
  /// columns. Requires other's columns ⊆ this's columns. The probe side is
  /// partitioned like Join's.
  NamedRelation SemiJoin(const NamedRelation& other, bool anti,
                         const core::ParallelOptions& parallel = {}) const;

  /// Set union; the two column sets must be equal (order may differ).
  NamedRelation Union(const NamedRelation& other) const;

  /// Rows of the full universe^k not in *this. The n^k grid is partitioned
  /// across threads per `parallel`.
  NamedRelation ComplementWithin(size_t n,
                                 const core::ParallelOptions& parallel = {}) const;

  /// Extends with new columns ranging over the whole universe (cross
  /// product). New columns must be fresh. The output has |this| * n^new
  /// rows, so governed callers pass their governor: the odometer polls it
  /// every core::kGovernorStride emitted rows and stops early on a trip.
  NamedRelation PadWithUniverse(const std::vector<std::string>& new_columns,
                                size_t n,
                                const core::ExecGovernor* governor = nullptr) const;

  /// Reorders columns to `order` (a permutation of columns()).
  NamedRelation Reorder(const std::vector<std::string>& order) const;

  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  RowSet rows_;
};

}  // namespace dynfo::fo

#endif  // DYNFO_FO_NAMED_RELATION_H_
