#include "fo/plan.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "core/check.h"

namespace dynfo::fo {

namespace {

bool IsQuantifierFree(const Formula& f) {
  if (f.kind() == FormulaKind::kExists || f.kind() == FormulaKind::kForall) return false;
  for (const FormulaPtr& child : f.children()) {
    if (!IsQuantifierFree(*child)) return false;
  }
  return true;
}

bool Subset(const std::vector<std::string>& small, const std::vector<std::string>& big) {
  for (const std::string& s : small) {
    if (std::find(big.begin(), big.end(), s) == big.end()) return false;
  }
  return true;
}

std::vector<std::string> SetMinus(const std::vector<std::string>& a,
                                  const std::vector<std::string>& b) {
  std::vector<std::string> out;
  for (const std::string& s : a) {
    if (std::find(b.begin(), b.end(), s) == b.end()) out.push_back(s);
  }
  return out;
}

int IndexOf(const std::vector<std::string>& names, const std::string& name) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::vector<int> AtomAccess::KeyPositions() const {
  std::vector<int> out;
  out.reserve(key.size());
  for (const KeyPart& part : key) out.push_back(part.position);
  return out;
}

PlanPtr PlanCompiler::Compile(const FormulaPtr& formula) const {
  DYNFO_CHECK(formula != nullptr);
  return CompileNode(*formula);
}

PlanPtr PlanCompiler::CompileNode(const Formula& f) const {
  switch (f.kind()) {
    case FormulaKind::kTrue: {
      auto plan = std::make_shared<Plan>();
      plan->kind = PlanKind::kUnit;
      return plan;
    }
    case FormulaKind::kFalse: {
      auto plan = std::make_shared<Plan>();
      plan->kind = PlanKind::kEmpty;
      return plan;
    }
    case FormulaKind::kAtom:
      return CompileAtomScan(f);
    case FormulaKind::kEq:
    case FormulaKind::kLe:
    case FormulaKind::kBit:
      return CompileNumeric(f);
    case FormulaKind::kNot: {
      auto plan = std::make_shared<Plan>();
      plan->kind = PlanKind::kComplement;
      plan->children.push_back(CompileNode(*f.children()[0]));
      plan->columns = plan->children[0]->columns;
      return plan;
    }
    case FormulaKind::kAnd:
      return CompileAnd(f);
    case FormulaKind::kOr:
      return CompileOr(f);
    case FormulaKind::kExists:
      return CompileExists(f);
    case FormulaKind::kForall:
      return CompileForall(f);
  }
  DYNFO_UNREACHABLE();
}

AtomAccess PlanCompiler::CompileAtom(const Formula& f,
                                     const std::vector<std::string>& bound) const {
  AtomAccess access;
  access.relation_name = f.relation();
  access.relation_index = vocabulary_.RelationIndex(f.relation());
  DYNFO_CHECK(access.relation_index >= 0)
      << "unknown relation in atom: " << f.relation();
  const std::vector<Term>& args = f.args();
  access.arity = static_cast<int>(args.size());
  for (int pos = 0; pos < static_cast<int>(args.size()); ++pos) {
    const Term& t = args[pos];
    if (!t.is_variable()) {
      // Ground term (constant symbol, parameter, min/max, literal): value
      // resolved per execution, position known now.
      access.key.push_back({pos, -1, t});
      continue;
    }
    int column = IndexOf(bound, t.name());
    if (column >= 0) {
      access.key.push_back({pos, column, Term::Min()});
      continue;
    }
    int first = IndexOf(access.new_columns, t.name());
    if (first >= 0) {
      access.dup_checks.push_back({pos, access.extend_positions[first]});
    } else {
      access.new_columns.push_back(t.name());
      access.extend_positions.push_back(pos);
    }
  }
  return access;
}

PlanPtr PlanCompiler::CompileAtomScan(const Formula& f) const {
  auto plan = std::make_shared<Plan>();
  plan->kind = PlanKind::kAtomScan;
  plan->atom = CompileAtom(f, /*bound=*/{});
  plan->columns = plan->atom.new_columns;
  return plan;
}

PlanPtr PlanCompiler::CompileNumeric(const Formula& f) const {
  auto plan = std::make_shared<Plan>();
  plan->kind = PlanKind::kNumeric;
  plan->numeric_kind = f.kind();
  plan->left = f.left();
  plan->right = f.right();
  // Variable-ness is static, so the output schema is too (the legacy
  // SatNumeric branch taken at runtime is always the same one).
  const bool lv = f.left().is_variable();
  const bool rv = f.right().is_variable();
  if (lv && rv) {
    if (f.left().name() == f.right().name()) {
      plan->columns = {f.left().name()};
    } else {
      plan->columns = {f.left().name(), f.right().name()};
    }
  } else if (lv) {
    plan->columns = {f.left().name()};
  } else if (rv) {
    plan->columns = {f.right().name()};
  }
  return plan;
}

PlanPtr PlanCompiler::CompileAnd(const Formula& f) const {
  // Replays the legacy greedy planner (eval_algebra.cc, SatAnd) against a
  // *simulated* accumulator schema. Runtime-size costs become static
  // heuristics: the operator-class ordering (equality extension < atom join
  // < filtered extension < full-Sat join) is preserved; among atoms, ones
  // with more key parts and fewer fresh variables are preferred, standing in
  // for "smaller build side".
  const std::vector<std::string> target_columns = f.FreeVariables();
  std::vector<FormulaPtr> pending = f.children();
  std::vector<std::vector<std::string>> free;
  free.reserve(pending.size());
  for (const FormulaPtr& c : pending) free.push_back(c->FreeVariables());

  std::vector<std::string> bound;  // simulated accumulator schema
  std::vector<ConjStep> steps;

  auto erase_at = [&](size_t i) {
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(i));
    free.erase(free.begin() + static_cast<ptrdiff_t>(i));
  };

  while (!pending.empty()) {
    // Phase 1: conjuncts whose variables are all bound act as filters.
    bool progressed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!Subset(free[i], bound)) continue;
      const FormulaPtr& c = pending[i];
      ConjStep step;
      step.columns_before = bound;
      if (IsQuantifierFree(*c) || c->kind() == FormulaKind::kForall) {
        step.kind = ConjStepKind::kFilterRows;
        step.formula = c;
      } else if (c->kind() == FormulaKind::kNot) {
        step.kind = ConjStepKind::kSemiJoin;
        step.anti = true;
        step.child = CompileNode(*c->children()[0]);
      } else {
        step.kind = ConjStepKind::kSemiJoin;
        step.child = CompileNode(*c);
      }
      steps.push_back(std::move(step));
      erase_at(i);
      progressed = true;
      break;
    }
    if (progressed) continue;

    // Phase 2: choose the cheapest generator for some unbound variable(s).
    constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
    constexpr uint64_t kCostEqExtend = 1;
    constexpr uint64_t kCostAtomBase = 1000;
    constexpr uint64_t kCostUnionExtend = 100 * 1000;
    constexpr uint64_t kCostFilterExtend = 1000 * 1000;
    enum class Choice {
      kNone, kEqExtend, kAtomJoin, kUnionExtend, kFilterExtend, kSatJoin
    };

    // True when disjunct `d` can feed a kUnionExtend step for `var`: a
    // relation atom whose only fresh variable is `var`, or an equality
    // pinning `var` to a bound variable or ground term. Either way the
    // branch yields candidate values without ranging over the universe.
    auto union_branch_ok = [&](const Formula& d, const std::string& var) {
      if (d.kind() == FormulaKind::kAtom) {
        bool contains_var = false;
        for (const Term& t : d.args()) {
          if (!t.is_variable()) continue;
          if (t.name() == var) {
            contains_var = true;
          } else if (IndexOf(bound, t.name()) < 0) {
            return false;  // a second fresh variable
          }
        }
        return contains_var;
      }
      if (d.kind() == FormulaKind::kEq) {
        const Term& l = d.left();
        const Term& r = d.right();
        const bool left_is_var = l.is_variable() && l.name() == var;
        const bool right_is_var = r.is_variable() && r.name() == var;
        if (left_is_var == right_is_var) return false;  // neither, or var = var
        const Term& other = left_is_var ? r : l;
        return !other.is_variable() || IndexOf(bound, other.name()) >= 0;
      }
      return false;
    };
    Choice best_choice = Choice::kNone;
    size_t best_index = 0;
    uint64_t best_cost = kInf;

    for (size_t i = 0; i < pending.size(); ++i) {
      const FormulaPtr& c = pending[i];
      std::vector<std::string> unbound = SetMinus(free[i], bound);
      uint64_t cost = kInf;
      Choice choice = Choice::kNone;
      if (c->kind() == FormulaKind::kEq && unbound.size() == 1) {
        const Term& l = c->left();
        const Term& r = c->right();
        bool left_is_unbound = l.is_variable() && l.name() == unbound[0];
        const Term& other = left_is_unbound ? r : l;
        if (!other.is_variable() || other.name() != unbound[0]) {
          choice = Choice::kEqExtend;
          cost = kCostEqExtend;
        }
      }
      if (choice == Choice::kNone && c->kind() == FormulaKind::kAtom) {
        choice = Choice::kAtomJoin;
        // Selectivity proxy: each key part narrows the probe, each fresh
        // variable widens the fan-out.
        const size_t fresh = unbound.size();
        size_t keyed = 0;
        for (const Term& t : c->args()) {
          if (!t.is_variable() || IndexOf(bound, t.name()) >= 0) ++keyed;
        }
        cost = kCostAtomBase + 100 * fresh - 10 * keyed;
      }
      if (choice == Choice::kNone && c->kind() == FormulaKind::kOr &&
          unbound.size() == 1) {
        bool all_branches_ok = true;
        for (const FormulaPtr& d : c->children()) {
          if (!union_branch_ok(*d, unbound[0])) {
            all_branches_ok = false;
            break;
          }
        }
        if (all_branches_ok) {
          choice = Choice::kUnionExtend;
          cost = kCostUnionExtend;
        }
      }
      if (choice == Choice::kNone && unbound.size() == 1 && IsQuantifierFree(*c)) {
        choice = Choice::kFilterExtend;
        cost = kCostFilterExtend;
      }
      if (choice == Choice::kNone) {
        choice = Choice::kSatJoin;
        cost = kInf - 1;  // last resort, but always applicable
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_choice = choice;
        best_index = i;
      }
    }

    DYNFO_CHECK(best_choice != Choice::kNone);
    const FormulaPtr c = pending[best_index];
    std::vector<std::string> unbound = SetMinus(free[best_index], bound);
    ConjStep step;
    step.columns_before = bound;
    switch (best_choice) {
      case Choice::kEqExtend: {
        const Term& l = c->left();
        const Term& r = c->right();
        bool left_is_unbound = l.is_variable() && l.name() == unbound[0];
        const Term& other = left_is_unbound ? r : l;
        step.kind = ConjStepKind::kEqExtend;
        step.var = unbound[0];
        if (other.is_variable()) {
          step.eq_from_column = true;
          step.eq_source_column = IndexOf(bound, other.name());
          DYNFO_CHECK(step.eq_source_column >= 0);
        } else {
          step.eq_term = other;
        }
        bound.push_back(unbound[0]);
        break;
      }
      case Choice::kAtomJoin: {
        step.kind = ConjStepKind::kIndexJoin;
        step.probe = CompileAtom(*c, bound);
        step.scan = CompileAtom(*c, /*bound=*/{});
        for (const std::string& name : step.probe.new_columns) bound.push_back(name);
        break;
      }
      case Choice::kUnionExtend: {
        step.kind = ConjStepKind::kUnionExtend;
        step.var = unbound[0];
        step.formula = c;  // the index-less fallback filters with this
        for (const FormulaPtr& d : c->children()) {
          ExtendBranch branch;
          if (d->kind() == FormulaKind::kAtom) {
            branch.is_atom = true;
            branch.atom = CompileAtom(*d, bound);
            DYNFO_CHECK(branch.atom.new_columns ==
                        std::vector<std::string>{unbound[0]});
          } else {
            const Term& l = d->left();
            const bool left_is_var = l.is_variable() && l.name() == unbound[0];
            const Term& other = left_is_var ? d->right() : d->left();
            if (other.is_variable()) {
              branch.eq_from_column = true;
              branch.eq_source_column = IndexOf(bound, other.name());
              DYNFO_CHECK(branch.eq_source_column >= 0);
            } else {
              branch.eq_term = other;
            }
          }
          step.union_branches.push_back(std::move(branch));
        }
        bound.push_back(unbound[0]);
        break;
      }
      case Choice::kFilterExtend: {
        step.kind = ConjStepKind::kFilterExtend;
        step.var = unbound[0];
        step.formula = c;
        bound.push_back(unbound[0]);
        break;
      }
      case Choice::kSatJoin: {
        step.kind = ConjStepKind::kSatJoin;
        step.child = CompileNode(*c);
        // Natural join appends the child's non-shared columns in its order.
        for (const std::string& name : SetMinus(step.child->columns, bound)) {
          bound.push_back(name);
        }
        break;
      }
      case Choice::kNone:
        DYNFO_UNREACHABLE();
    }
    steps.push_back(std::move(step));
    erase_at(best_index);
  }

  // Invariant: processing every conjunct binds every free variable.
  DYNFO_CHECK(bound.size() == target_columns.size());
  auto plan = std::make_shared<Plan>();
  plan->kind = PlanKind::kConjunction;
  plan->columns = std::move(bound);
  plan->steps = std::move(steps);
  return plan;
}

PlanPtr PlanCompiler::CompileOr(const Formula& f) const {
  auto plan = std::make_shared<Plan>();
  plan->kind = PlanKind::kUnion;
  plan->columns = f.FreeVariables();
  for (const FormulaPtr& child : f.children()) {
    PlanPtr sub = CompileNode(*child);
    std::vector<int> sources;
    sources.reserve(plan->columns.size());
    int pads = 0;
    for (const std::string& name : plan->columns) {
      int column = IndexOf(sub->columns, name);
      if (column >= 0) {
        sources.push_back(column);
      } else {
        sources.push_back(-(pads + 1));
        ++pads;
      }
    }
    plan->children.push_back(std::move(sub));
    plan->union_sources.push_back(std::move(sources));
    plan->union_pad_counts.push_back(pads);
  }
  return plan;
}

PlanPtr PlanCompiler::CompileExists(const Formula& f) const {
  PlanPtr child = CompileNode(*f.children()[0]);
  auto plan = std::make_shared<Plan>();
  plan->kind = PlanKind::kProject;
  plan->columns = SetMinus(child->columns, f.variables());
  plan->project_positions.reserve(plan->columns.size());
  for (const std::string& name : plan->columns) {
    plan->project_positions.push_back(IndexOf(child->columns, name));
  }
  plan->children.push_back(std::move(child));
  return plan;
}

PlanPtr PlanCompiler::CompileForall(const Formula& f) const {
  PlanPtr child = CompileNode(*f.children()[0]);
  // Quantified variables actually occurring free in the body.
  std::vector<std::string> quantified;
  for (const std::string& v : f.variables()) {
    if (IndexOf(child->columns, v) >= 0) quantified.push_back(v);
  }
  if (quantified.empty()) return child;  // forall over absent variables is a no-op

  auto plan = std::make_shared<Plan>();
  plan->kind = PlanKind::kForallGroup;
  plan->columns = SetMinus(child->columns, quantified);
  plan->keep_positions.reserve(plan->columns.size());
  for (const std::string& name : plan->columns) {
    plan->keep_positions.push_back(IndexOf(child->columns, name));
  }
  plan->group_arity = static_cast<int>(quantified.size());
  plan->children.push_back(std::move(child));
  return plan;
}

bool PlanIsDeltaBounded(const Plan& plan) {
  switch (plan.kind) {
    case PlanKind::kUnit:
    case PlanKind::kEmpty:
    case PlanKind::kAtomScan:  // rows come from a stored relation
      return true;
    case PlanKind::kNumeric:
      // Ground comparisons are constant; a variable side ranges over the
      // whole universe.
      return plan.columns.empty();
    case PlanKind::kComplement:
      return false;
    case PlanKind::kConjunction:
      for (const ConjStep& step : plan.steps) {
        switch (step.kind) {
          case ConjStepKind::kFilterRows:
          case ConjStepKind::kEqExtend:
          case ConjStepKind::kIndexJoin:
          // Every kUnionExtend branch draws values from a stored relation or
          // a bound term, never the universe.
          case ConjStepKind::kUnionExtend:
            break;
          case ConjStepKind::kSemiJoin:
          case ConjStepKind::kSatJoin:
            if (!PlanIsDeltaBounded(*step.child)) return false;
            break;
          case ConjStepKind::kFilterExtend:
            return false;
        }
      }
      return true;
    case PlanKind::kUnion:
      for (int pads : plan.union_pad_counts) {
        if (pads > 0) return false;
      }
      for (const PlanPtr& child : plan.children) {
        if (!PlanIsDeltaBounded(*child)) return false;
      }
      return true;
    case PlanKind::kProject:
    case PlanKind::kForallGroup:
      return PlanIsDeltaBounded(*plan.children[0]);
  }
  DYNFO_UNREACHABLE();
}

DeltaProgram CompileDeltaRemovals(const PlanCompiler& compiler,
                                  const FormulaPtr& not_keep,
                                  const std::vector<std::string>& tuple_variables,
                                  int base_relation_index, int base_arity) {
  DYNFO_CHECK(static_cast<int>(tuple_variables.size()) == base_arity);
  DeltaProgram program;
  program.base_relation_index = base_relation_index;
  program.base_arity = base_arity;
  if (not_keep == nullptr) {
    program.bounded = true;  // keep ≡ true: the removal side is empty
    return program;
  }
  program.remove_plan = compiler.Compile(not_keep);
  if (!PlanIsDeltaBounded(*program.remove_plan)) return program;

  // Map each plan column to the base position its tuple variable names.
  std::vector<std::pair<int, int>> position_column;  // (base position, column)
  const std::vector<std::string>& columns = program.remove_plan->columns;
  for (size_t c = 0; c < columns.size(); ++c) {
    const int position = IndexOf(tuple_variables, columns[c]);
    if (position < 0) return program;  // a free variable outside the tuple
    position_column.push_back({position, static_cast<int>(c)});
  }
  std::sort(position_column.begin(), position_column.end());
  for (const auto& [position, column] : position_column) {
    program.key_positions.push_back(position);
    program.key_source_columns.push_back(column);
  }
  if (position_column.size() == tuple_variables.size()) {
    program.covers_all_positions = true;
    program.full_tuple_sources.assign(tuple_variables.size(), -1);
    for (const auto& [position, column] : position_column) {
      program.full_tuple_sources[static_cast<size_t>(position)] = column;
    }
  }
  program.bounded = true;
  return program;
}

void RegisterPlanIndexes(const Plan& plan, const relational::Structure& structure,
                         AtomicEvalStats* stats) {
  auto ensure = [&](const AtomAccess& access) {
    if (access.key.empty()) return;
    bool built = false;
    structure.relation(access.relation_index).EnsureIndex(access.KeyPositions(), &built);
    if (built && stats != nullptr) {
      stats->index_builds.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (plan.kind == PlanKind::kAtomScan) ensure(plan.atom);
  for (const ConjStep& step : plan.steps) {
    // `step.scan` is only exercised with indexes disabled, so only the probe
    // access registers an index.
    if (step.kind == ConjStepKind::kIndexJoin) ensure(step.probe);
    if (step.kind == ConjStepKind::kUnionExtend) {
      for (const ExtendBranch& branch : step.union_branches) {
        if (branch.is_atom) ensure(branch.atom);
      }
    }
    if (step.child != nullptr) RegisterPlanIndexes(*step.child, structure, stats);
  }
  for (const PlanPtr& child : plan.children) {
    RegisterPlanIndexes(*child, structure, stats);
  }
}

void RegisterDeltaProgramIndexes(const DeltaProgram& program,
                                 const relational::Structure& structure,
                                 AtomicEvalStats* stats) {
  if (!program.bounded || program.remove_plan == nullptr) return;
  RegisterPlanIndexes(*program.remove_plan, structure, stats);
  if (program.covers_all_positions || program.key_positions.empty()) return;
  bool built = false;
  structure.relation(program.base_relation_index)
      .EnsureIndex(program.key_positions, &built);
  if (built && stats != nullptr) {
    stats->index_builds.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Dense kernel lowering (see plan.h). The lowerer walks the formula with a
// slot *stack*: the free slots first, quantified variables pushed on top (so
// the quantified variable is always the highest slot, which is what the
// row-wise reductions in plan_exec.cc expect). Any refusal makes the whole
// lowering fail — there are no partially dense programs.

namespace {

class DenseLowerer {
 public:
  explicit DenseLowerer(const relational::Vocabulary& vocabulary)
      : vocabulary_(vocabulary) {}

  DenseOpPtr Lower(const Formula& f, std::vector<std::string>* slots) {
    const int rank = static_cast<int>(slots->size());
    if (rank > 2) return nullptr;
    auto op = std::make_shared<DenseOp>();
    op->rank = rank;
    switch (f.kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        op->kind = DenseOpKind::kConst;
        op->const_value = f.kind() == FormulaKind::kTrue;
        return op;
      case FormulaKind::kAtom: {
        op->kind = DenseOpKind::kAtom;
        op->relation_index = vocabulary_.RelationIndex(f.relation());
        if (op->relation_index < 0) return nullptr;
        op->relation_arity = vocabulary_.relation(op->relation_index).arity;
        bool has_slot_arg = false;
        for (const Term& arg : f.args()) {
          std::optional<DenseTerm> lowered = LowerTerm(arg, *slots);
          if (!lowered.has_value()) return nullptr;
          has_slot_arg |= lowered->kind == DenseTerm::Kind::kSlot;
          op->args.push_back(*lowered);
        }
        if (has_slot_arg) {
          // Slot-dependent atoms read packed words, so the relation must be
          // dense-representable; ground-only atoms stay scalar probes and
          // work against any backend and arity.
          if (op->relation_arity > relational::DenseSet::kMaxDenseArity) {
            return nullptr;
          }
          view_relations_.push_back(op->relation_index);
        }
        return op;
      }
      case FormulaKind::kEq:
      case FormulaKind::kLe:
      case FormulaKind::kBit: {
        op->kind = DenseOpKind::kNumeric;
        op->numeric_kind = f.kind();
        std::optional<DenseTerm> left = LowerTerm(f.left(), *slots);
        std::optional<DenseTerm> right = LowerTerm(f.right(), *slots);
        if (!left.has_value() || !right.has_value()) return nullptr;
        op->left = *left;
        op->right = *right;
        return op;
      }
      case FormulaKind::kNot: {
        op->kind = DenseOpKind::kNot;
        DenseOpPtr child = Lower(*f.children()[0], slots);
        if (child == nullptr) return nullptr;
        op->children.push_back(std::move(child));
        return op;
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        op->kind = f.kind() == FormulaKind::kAnd ? DenseOpKind::kAnd
                                                 : DenseOpKind::kOr;
        for (const FormulaPtr& child_formula : f.children()) {
          DenseOpPtr child = Lower(*child_formula, slots);
          if (child == nullptr) return nullptr;
          op->children.push_back(std::move(child));
        }
        return op;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        op->kind = f.kind() == FormulaKind::kExists ? DenseOpKind::kExists
                                                    : DenseOpKind::kForall;
        op->quantified = static_cast<int>(f.variables().size());
        if (rank + op->quantified > 2) return nullptr;
        for (const std::string& v : f.variables()) slots->push_back(v);
        DenseOpPtr child = Lower(*f.children()[0], slots);
        slots->resize(static_cast<size_t>(rank));
        if (child == nullptr) return nullptr;
        op->children.push_back(std::move(child));
        return op;
      }
    }
    return nullptr;
  }

  std::vector<int> TakeViewRelations() {
    std::sort(view_relations_.begin(), view_relations_.end());
    view_relations_.erase(
        std::unique(view_relations_.begin(), view_relations_.end()),
        view_relations_.end());
    return std::move(view_relations_);
  }

 private:
  std::optional<DenseTerm> LowerTerm(const Term& term,
                                     const std::vector<std::string>& slots) {
    DenseTerm out;
    switch (term.kind()) {
      case TermKind::kVariable: {
        // Innermost binding wins, mirroring Env shadowing.
        for (int i = static_cast<int>(slots.size()) - 1; i >= 0; --i) {
          if (slots[static_cast<size_t>(i)] == term.name()) {
            out.kind = DenseTerm::Kind::kSlot;
            out.index = i;
            return out;
          }
        }
        return std::nullopt;
      }
      case TermKind::kConstantSymbol: {
        const int index = vocabulary_.ConstantIndex(term.name());
        if (index < 0) return std::nullopt;
        out.kind = DenseTerm::Kind::kConstant;
        out.index = index;
        return out;
      }
      case TermKind::kParameter:
        out.kind = DenseTerm::Kind::kParam;
        out.index = term.index();
        return out;
      case TermKind::kMin:
        out.kind = DenseTerm::Kind::kLiteral;
        out.value = 0;
        return out;
      case TermKind::kMax:
        out.kind = DenseTerm::Kind::kMax;
        return out;
      case TermKind::kNumber:
        out.kind = DenseTerm::Kind::kLiteral;
        out.value = term.value();
        return out;
    }
    return std::nullopt;
  }

  const relational::Vocabulary& vocabulary_;
  std::vector<int> view_relations_;
};

}  // namespace

DenseProgramPtr LowerToDense(const FormulaPtr& formula,
                             const std::vector<std::string>& slots,
                             const relational::Vocabulary& vocabulary) {
  if (formula == nullptr || slots.size() > 2) return nullptr;
  DenseLowerer lowerer(vocabulary);
  std::vector<std::string> scope = slots;
  DenseOpPtr root = lowerer.Lower(*formula, &scope);
  if (root == nullptr) return nullptr;
  auto program = std::make_shared<DenseProgram>();
  program->rank = static_cast<int>(slots.size());
  program->root = std::move(root);
  program->view_relations = lowerer.TakeViewRelations();
  return program;
}

}  // namespace dynfo::fo
