/// \file eval_algebra.h
/// The optimized evaluator: compiles formulas to relational algebra.
///
/// Satisfying sets are computed bottom-up as NamedRelations: atoms scan
/// stored relations, conjunctions are planned greedily (filters first, then
/// the cheapest generator — hash joins on shared variables, constant-time
/// equality extensions, filtered extensions), disjunctions pad-and-union,
/// quantifiers project (exists) or group-count (forall). Negations become
/// anti-semi-joins inside conjunctions and complements only as a last
/// resort.
///
/// The evaluator is observationally equivalent to NaiveEvaluator (enforced
/// by property tests) but asymptotically faster on the paper's update
/// formulas, whose bounded "request locality" the planner exploits: atoms
/// like Eq(u, v, a, b) pin quantified variables to the request parameters.

#ifndef DYNFO_FO_EVAL_ALGEBRA_H_
#define DYNFO_FO_EVAL_ALGEBRA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fo/eval_context.h"
#include "fo/formula.h"
#include "fo/named_relation.h"
#include "relational/relation.h"

namespace dynfo::fo {

class AlgebraEvaluator {
 public:
  /// Work counters, exposed for the evaluator-ablation benchmark.
  struct Stats {
    uint64_t joins = 0;
    uint64_t semi_joins = 0;
    uint64_t equality_extensions = 0;
    uint64_t filtered_extensions = 0;
    uint64_t filter_row_evals = 0;
    uint64_t complements = 0;
    uint64_t pads = 0;
  };

  AlgebraEvaluator() = default;

  /// The satisfying set of `formula`: one row per assignment of its free
  /// variables (columns == free variables, order unspecified) that makes the
  /// formula true. Parameters/constants are resolved through `ctx`.
  NamedRelation Sat(const FormulaPtr& formula, const EvalContext& ctx) const;

  /// Truth of a sentence (no free variables).
  bool HoldsSentence(const FormulaPtr& formula, const EvalContext& ctx) const;

  /// Materializes { x-bar : formula(x-bar) } with x-bar = `tuple_variables`
  /// in order; same contract as NaiveEvaluator::EvaluateAsRelation.
  relational::Relation EvaluateAsRelation(const FormulaPtr& formula,
                                          const std::vector<std::string>& tuple_variables,
                                          const EvalContext& ctx) const;

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  NamedRelation SatAtom(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatNumeric(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatAnd(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatOr(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatNot(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatExists(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatForall(const Formula& formula, const EvalContext& ctx) const;

  /// Extends `acc` with unbound variable `var` := value of `term` per row.
  NamedRelation ExtendByEquality(const NamedRelation& acc, const std::string& var,
                                 const Term& term, const EvalContext& ctx) const;
  /// Extends `acc` with `var` ranging over the universe, keeping rows where
  /// `conjunct` holds (naive per-row evaluation).
  NamedRelation ExtendByFilter(const NamedRelation& acc, const std::string& var,
                               const FormulaPtr& conjunct, const EvalContext& ctx) const;
  /// Keeps rows of `acc` where the fully-bound `conjunct` holds.
  NamedRelation FilterRows(const NamedRelation& acc, const FormulaPtr& conjunct,
                           const EvalContext& ctx) const;

  mutable Stats stats_;
};

}  // namespace dynfo::fo

#endif  // DYNFO_FO_EVAL_ALGEBRA_H_
