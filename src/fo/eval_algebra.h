/// \file eval_algebra.h
/// The optimized evaluator: compiles formulas to relational algebra.
///
/// Satisfying sets are computed bottom-up as NamedRelations: atoms scan
/// stored relations, conjunctions are planned greedily (filters first, then
/// the cheapest generator — hash joins on shared variables, constant-time
/// equality extensions, filtered extensions), disjunctions pad-and-union,
/// quantifiers project (exists) or group-count (forall). Negations become
/// anti-semi-joins inside conjunctions and complements only as a last
/// resort.
///
/// By default (EvalOptions::use_compiled_plans) the greedy planning happens
/// once per formula: Sat compiles the formula to a reusable operator tree
/// (fo/plan.h), caches it keyed by formula identity, and replays it on every
/// later call — the hot Apply path does zero per-update planning. With the
/// gate off, each call re-plans from scratch (the pre-plan-cache behavior,
/// kept for ablation).
///
/// The evaluator is observationally equivalent to NaiveEvaluator (enforced
/// by property tests) but asymptotically faster on the paper's update
/// formulas, whose bounded "request locality" the planner exploits: atoms
/// like Eq(u, v, a, b) pin quantified variables to the request parameters.

#ifndef DYNFO_FO_EVAL_ALGEBRA_H_
#define DYNFO_FO_EVAL_ALGEBRA_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fo/eval_context.h"
#include "fo/eval_stats.h"
#include "fo/formula.h"
#include "fo/named_relation.h"
#include "fo/plan.h"
#include "relational/relation.h"

namespace dynfo::fo {

class AlgebraEvaluator {
 public:
  /// Work counters, exposed for the evaluator-ablation benchmark (see
  /// fo/eval_stats.h; shared with the compiled-plan executor).
  using Stats = EvalStats;

  AlgebraEvaluator() = default;
  /// Copying snapshots the counters and drops the plan cache (plans are
  /// recompiled lazily); keeps Engine copyable despite the cache mutex.
  AlgebraEvaluator(const AlgebraEvaluator& other) : stats_(other.stats_) {}
  AlgebraEvaluator& operator=(const AlgebraEvaluator& other) {
    if (this != &other) {
      stats_ = other.stats_;
      ClearPlanCache();
    }
    return *this;
  }

  /// The satisfying set of `formula`: one row per assignment of its free
  /// variables (columns == free variables, order unspecified) that makes the
  /// formula true. Parameters/constants are resolved through `ctx`.
  NamedRelation Sat(const FormulaPtr& formula, const EvalContext& ctx) const;

  /// Compiles (or fetches) the cached plan for `formula` without executing
  /// it, so callers can pay compilation at load time and register the plan's
  /// indexes (RegisterPlanIndexes) before the first update arrives.
  PlanPtr Precompile(const FormulaPtr& formula, const EvalContext& ctx) const;

  /// Drops every cached plan. Call when formulas may be recompiled against a
  /// different vocabulary or when the program is reloaded/restored.
  void ClearPlanCache() const;
  size_t plan_cache_size() const;

  /// Truth of a sentence (no free variables).
  bool HoldsSentence(const FormulaPtr& formula, const EvalContext& ctx) const;

  /// Materializes { x-bar : formula(x-bar) } with x-bar = `tuple_variables`
  /// in order; same contract as NaiveEvaluator::EvaluateAsRelation.
  relational::Relation EvaluateAsRelation(const FormulaPtr& formula,
                                          const std::vector<std::string>& tuple_variables,
                                          const EvalContext& ctx) const;

  /// Compiles the removal side of delta rule R' = (R ∧ keep) ∨ additions
  /// (see fo/plan.h, DeltaProgram). `not_keep` is ¬keep in NNF, or null when
  /// keep ≡ true. Counted as a planner run; the caller owns the result, so
  /// no cache entry is created.
  DeltaProgram CompileDeltaRemovals(const FormulaPtr& not_keep,
                                    const std::vector<std::string>& tuple_variables,
                                    int base_relation_index, int base_arity,
                                    const EvalContext& ctx) const;

  /// Runs a bounded removal program (ExecuteDeltaRemovals) with this
  /// evaluator's shared counters.
  std::vector<relational::Tuple> DeltaRemovals(const DeltaProgram& program,
                                               const EvalContext& ctx) const;

  /// A snapshot of the counters. (Internally they are atomics so that one
  /// evaluator may serve concurrent rule evaluations; see EvalOptions.)
  Stats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// The live atomic counters, for executors that run outside this
  /// evaluator's call tree but account into the same budget (the engine's
  /// dense kernel path).
  AtomicEvalStats* live_stats() const { return &stats_; }

 private:
  /// Legacy per-call evaluation (re-plans conjunctions every time); the
  /// use_compiled_plans=false path, and the recursion entry for all Sat*
  /// helpers below.
  NamedRelation SatClassic(const FormulaPtr& formula, const EvalContext& ctx) const;

  /// Cache lookup/compile for the compiled path. A cache entry pins the
  /// FormulaPtr (so the pointer key cannot be reused by a new formula) and
  /// remembers the vocabulary it was compiled against; a vocabulary mismatch
  /// recompiles in place.
  PlanPtr PlanFor(const FormulaPtr& formula, const EvalContext& ctx) const;

  NamedRelation SatAtom(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatNumeric(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatAnd(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatOr(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatNot(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatExists(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatForall(const Formula& formula, const EvalContext& ctx) const;

  /// Extends `acc` with unbound variable `var` := value of `term` per row.
  NamedRelation ExtendByEquality(const NamedRelation& acc, const std::string& var,
                                 const Term& term, const EvalContext& ctx) const;
  /// Extends `acc` with `var` ranging over the universe, keeping rows where
  /// `conjunct` holds (naive per-row evaluation).
  NamedRelation ExtendByFilter(const NamedRelation& acc, const std::string& var,
                               const FormulaPtr& conjunct, const EvalContext& ctx) const;
  /// Keeps rows of `acc` where the fully-bound `conjunct` holds.
  NamedRelation FilterRows(const NamedRelation& acc, const FormulaPtr& conjunct,
                           const EvalContext& ctx) const;

  struct PlanCacheEntry {
    FormulaPtr formula;  ///< pins the key pointer for the entry's lifetime
    const relational::Vocabulary* vocabulary = nullptr;
    PlanPtr plan;
  };

  /// Counters are relaxed atomics: the evaluator is logically const and may
  /// run on several threads at once (rule-level parallelism). See
  /// fo/eval_stats.h.
  mutable AtomicEvalStats stats_;

  /// Compiled plans keyed by formula identity (formulas are immutable and
  /// shared). Guarded by plan_mutex_; compilation happens outside the lock,
  /// so a racing first call may compile twice — both results are identical
  /// and one wins. Bounded: the cache clears wholesale if it ever exceeds
  /// kMaxCachedPlans (a program has a fixed set of formulas, so this only
  /// trips for pathological callers streaming fresh formulas).
  static constexpr size_t kMaxCachedPlans = 4096;
  mutable std::mutex plan_mutex_;
  mutable std::unordered_map<const Formula*, PlanCacheEntry> plan_cache_;
};

}  // namespace dynfo::fo

#endif  // DYNFO_FO_EVAL_ALGEBRA_H_
