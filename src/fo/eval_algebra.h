/// \file eval_algebra.h
/// The optimized evaluator: compiles formulas to relational algebra.
///
/// Satisfying sets are computed bottom-up as NamedRelations: atoms scan
/// stored relations, conjunctions are planned greedily (filters first, then
/// the cheapest generator — hash joins on shared variables, constant-time
/// equality extensions, filtered extensions), disjunctions pad-and-union,
/// quantifiers project (exists) or group-count (forall). Negations become
/// anti-semi-joins inside conjunctions and complements only as a last
/// resort.
///
/// The evaluator is observationally equivalent to NaiveEvaluator (enforced
/// by property tests) but asymptotically faster on the paper's update
/// formulas, whose bounded "request locality" the planner exploits: atoms
/// like Eq(u, v, a, b) pin quantified variables to the request parameters.

#ifndef DYNFO_FO_EVAL_ALGEBRA_H_
#define DYNFO_FO_EVAL_ALGEBRA_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "fo/eval_context.h"
#include "fo/formula.h"
#include "fo/named_relation.h"
#include "relational/relation.h"

namespace dynfo::fo {

class AlgebraEvaluator {
 public:
  /// Work counters, exposed for the evaluator-ablation benchmark.
  struct Stats {
    uint64_t joins = 0;
    uint64_t semi_joins = 0;
    uint64_t equality_extensions = 0;
    uint64_t filtered_extensions = 0;
    uint64_t filter_row_evals = 0;
    uint64_t complements = 0;
    uint64_t pads = 0;
  };

  AlgebraEvaluator() = default;

  /// The satisfying set of `formula`: one row per assignment of its free
  /// variables (columns == free variables, order unspecified) that makes the
  /// formula true. Parameters/constants are resolved through `ctx`.
  NamedRelation Sat(const FormulaPtr& formula, const EvalContext& ctx) const;

  /// Truth of a sentence (no free variables).
  bool HoldsSentence(const FormulaPtr& formula, const EvalContext& ctx) const;

  /// Materializes { x-bar : formula(x-bar) } with x-bar = `tuple_variables`
  /// in order; same contract as NaiveEvaluator::EvaluateAsRelation.
  relational::Relation EvaluateAsRelation(const FormulaPtr& formula,
                                          const std::vector<std::string>& tuple_variables,
                                          const EvalContext& ctx) const;

  /// A snapshot of the counters. (Internally they are atomics so that one
  /// evaluator may serve concurrent rule evaluations; see EvalOptions.)
  Stats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

 private:
  NamedRelation SatAtom(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatNumeric(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatAnd(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatOr(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatNot(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatExists(const Formula& formula, const EvalContext& ctx) const;
  NamedRelation SatForall(const Formula& formula, const EvalContext& ctx) const;

  /// Extends `acc` with unbound variable `var` := value of `term` per row.
  NamedRelation ExtendByEquality(const NamedRelation& acc, const std::string& var,
                                 const Term& term, const EvalContext& ctx) const;
  /// Extends `acc` with `var` ranging over the universe, keeping rows where
  /// `conjunct` holds (naive per-row evaluation).
  NamedRelation ExtendByFilter(const NamedRelation& acc, const std::string& var,
                               const FormulaPtr& conjunct, const EvalContext& ctx) const;
  /// Keeps rows of `acc` where the fully-bound `conjunct` holds.
  NamedRelation FilterRows(const NamedRelation& acc, const FormulaPtr& conjunct,
                           const EvalContext& ctx) const;

  /// Lock-free counterpart of Stats: the evaluator is logically const and may
  /// run on several threads at once (rule-level parallelism), so counters are
  /// atomics updated with relaxed ordering (they are diagnostics, not
  /// synchronization).
  struct AtomicStats {
    std::atomic<uint64_t> joins{0};
    std::atomic<uint64_t> semi_joins{0};
    std::atomic<uint64_t> equality_extensions{0};
    std::atomic<uint64_t> filtered_extensions{0};
    std::atomic<uint64_t> filter_row_evals{0};
    std::atomic<uint64_t> complements{0};
    std::atomic<uint64_t> pads{0};

    AtomicStats() = default;
    // Copying snapshots the counters (keeps AlgebraEvaluator — and Engine —
    // copyable). Not meant to run concurrently with updates to `other`.
    AtomicStats(const AtomicStats& other) { *this = other; }
    AtomicStats& operator=(const AtomicStats& other) {
      joins = other.joins.load(std::memory_order_relaxed);
      semi_joins = other.semi_joins.load(std::memory_order_relaxed);
      equality_extensions = other.equality_extensions.load(std::memory_order_relaxed);
      filtered_extensions = other.filtered_extensions.load(std::memory_order_relaxed);
      filter_row_evals = other.filter_row_evals.load(std::memory_order_relaxed);
      complements = other.complements.load(std::memory_order_relaxed);
      pads = other.pads.load(std::memory_order_relaxed);
      return *this;
    }

    Stats Snapshot() const {
      Stats out;
      out.joins = joins.load(std::memory_order_relaxed);
      out.semi_joins = semi_joins.load(std::memory_order_relaxed);
      out.equality_extensions = equality_extensions.load(std::memory_order_relaxed);
      out.filtered_extensions = filtered_extensions.load(std::memory_order_relaxed);
      out.filter_row_evals = filter_row_evals.load(std::memory_order_relaxed);
      out.complements = complements.load(std::memory_order_relaxed);
      out.pads = pads.load(std::memory_order_relaxed);
      return out;
    }
    void Reset() {
      joins = 0;
      semi_joins = 0;
      equality_extensions = 0;
      filtered_extensions = 0;
      filter_row_evals = 0;
      complements = 0;
      pads = 0;
    }
  };

  mutable AtomicStats stats_;
};

}  // namespace dynfo::fo

#endif  // DYNFO_FO_EVAL_ALGEBRA_H_
