#include "fo/formula.h"

#include <algorithm>

namespace dynfo::fo {

// Factories build a node via the private constructor and fill its fields
// before publishing the shared_ptr; no node is mutated after a factory
// returns, so sharing subtrees is safe.

FormulaPtr Formula::True() {
  static const FormulaPtr kTrue = [] {
    auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kTrue));
    return FormulaPtr(f);
  }();
  return kTrue;
}

FormulaPtr Formula::False() {
  static const FormulaPtr kFalse = [] {
    auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kFalse));
    return FormulaPtr(f);
  }();
  return kFalse;
}

FormulaPtr Formula::Atom(std::string relation, std::vector<Term> args) {
  DYNFO_CHECK(!relation.empty());
  DYNFO_CHECK(args.size() <= relational::Tuple::kMaxArity)
      << "atom arity above Tuple::kMaxArity";
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kAtom));
  f->relation_ = std::move(relation);
  f->terms_ = std::move(args);
  return f;
}

FormulaPtr Formula::Eq(Term left, Term right) {
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kEq));
  f->terms_ = {std::move(left), std::move(right)};
  return f;
}

FormulaPtr Formula::Le(Term left, Term right) {
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kLe));
  f->terms_ = {std::move(left), std::move(right)};
  return f;
}

FormulaPtr Formula::Bit(Term left, Term right) {
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kBit));
  f->terms_ = {std::move(left), std::move(right)};
  return f;
}

FormulaPtr Formula::Not(FormulaPtr operand) {
  DYNFO_CHECK(operand != nullptr);
  if (operand->kind() == FormulaKind::kTrue) return False();
  if (operand->kind() == FormulaKind::kFalse) return True();
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kNot));
  f->children_ = {std::move(operand)};
  return f;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> operands) {
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& op : operands) {
    DYNFO_CHECK(op != nullptr);
    if (op->kind() == FormulaKind::kTrue) continue;
    if (op->kind() == FormulaKind::kFalse) return False();
    if (op->kind() == FormulaKind::kAnd) {
      flat.insert(flat.end(), op->children_.begin(), op->children_.end());
    } else {
      flat.push_back(std::move(op));
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kAnd));
  f->children_ = std::move(flat);
  return f;
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> operands) {
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& op : operands) {
    DYNFO_CHECK(op != nullptr);
    if (op->kind() == FormulaKind::kFalse) continue;
    if (op->kind() == FormulaKind::kTrue) return True();
    if (op->kind() == FormulaKind::kOr) {
      flat.insert(flat.end(), op->children_.begin(), op->children_.end());
    } else {
      flat.push_back(std::move(op));
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kOr));
  f->children_ = std::move(flat);
  return f;
}

FormulaPtr Formula::Implies(FormulaPtr left, FormulaPtr right) {
  return Or({Not(std::move(left)), std::move(right)});
}

FormulaPtr Formula::Iff(FormulaPtr left, FormulaPtr right) {
  return And({Implies(left, right), Implies(right, left)});
}

FormulaPtr Formula::Exists(std::vector<std::string> variables, FormulaPtr body) {
  DYNFO_CHECK(body != nullptr);
  DYNFO_CHECK(!variables.empty()) << "quantifier with no variables";
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kExists));
  f->variables_ = std::move(variables);
  f->children_ = {std::move(body)};
  return f;
}

FormulaPtr Formula::Forall(std::vector<std::string> variables, FormulaPtr body) {
  DYNFO_CHECK(body != nullptr);
  DYNFO_CHECK(!variables.empty()) << "quantifier with no variables";
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kForall));
  f->variables_ = std::move(variables);
  f->children_ = {std::move(body)};
  return f;
}

const std::string& Formula::relation() const {
  DYNFO_CHECK(kind_ == FormulaKind::kAtom);
  return relation_;
}

const std::vector<Term>& Formula::args() const {
  DYNFO_CHECK(kind_ == FormulaKind::kAtom);
  return terms_;
}

const Term& Formula::left() const {
  DYNFO_CHECK(kind_ == FormulaKind::kEq || kind_ == FormulaKind::kLe ||
              kind_ == FormulaKind::kBit);
  return terms_[0];
}

const Term& Formula::right() const {
  DYNFO_CHECK(kind_ == FormulaKind::kEq || kind_ == FormulaKind::kLe ||
              kind_ == FormulaKind::kBit);
  return terms_[1];
}

const std::vector<std::string>& Formula::variables() const {
  DYNFO_CHECK(kind_ == FormulaKind::kExists || kind_ == FormulaKind::kForall);
  return variables_;
}

void Formula::CollectFreeVariables(std::set<std::string>* out,
                                   std::set<std::string>* bound) const {
  auto visit_term = [&](const Term& t) {
    if (t.is_variable() && bound->find(t.name()) == bound->end()) {
      out->insert(t.name());
    }
  };
  for (const Term& t : terms_) visit_term(t);
  if (kind_ == FormulaKind::kExists || kind_ == FormulaKind::kForall) {
    std::vector<std::string> newly_bound;
    for (const std::string& v : variables_) {
      if (bound->insert(v).second) newly_bound.push_back(v);
    }
    children_[0]->CollectFreeVariables(out, bound);
    for (const std::string& v : newly_bound) bound->erase(v);
    return;
  }
  for (const FormulaPtr& child : children_) {
    child->CollectFreeVariables(out, bound);
  }
}

std::vector<std::string> Formula::FreeVariables() const {
  std::set<std::string> out;
  std::set<std::string> bound;
  CollectFreeVariables(&out, &bound);
  return std::vector<std::string>(out.begin(), out.end());
}

int Formula::QuantifierDepth() const {
  int depth = 0;
  for (const FormulaPtr& child : children_) {
    depth = std::max(depth, child->QuantifierDepth());
  }
  if (kind_ == FormulaKind::kExists || kind_ == FormulaKind::kForall) {
    depth += 1;
  }
  return depth;
}

namespace {
void CollectVariables(const Formula& f, std::set<std::string>* out) {
  if (f.kind() == FormulaKind::kAtom) {
    for (const Term& t : f.args()) {
      if (t.is_variable()) out->insert(t.name());
    }
  } else if (f.kind() == FormulaKind::kEq || f.kind() == FormulaKind::kLe ||
             f.kind() == FormulaKind::kBit) {
    if (f.left().is_variable()) out->insert(f.left().name());
    if (f.right().is_variable()) out->insert(f.right().name());
  } else if (f.kind() == FormulaKind::kExists || f.kind() == FormulaKind::kForall) {
    for (const std::string& v : f.variables()) out->insert(v);
  }
  for (const FormulaPtr& child : f.children()) CollectVariables(*child, out);
}
}  // namespace

int Formula::VariableWidth() const {
  std::set<std::string> variables;
  CollectVariables(*this, &variables);
  return static_cast<int>(variables.size());
}

int Formula::Size() const {
  int size = 1;
  for (const FormulaPtr& child : children_) size += child->Size();
  return size;
}

int Formula::MaxParameterIndex() const {
  int max_index = -1;
  for (const Term& t : terms_) {
    if (t.kind() == TermKind::kParameter) max_index = std::max(max_index, t.index());
  }
  for (const FormulaPtr& child : children_) {
    max_index = std::max(max_index, child->MaxParameterIndex());
  }
  return max_index;
}

void Formula::CollectRelations(std::set<std::string>* out) const {
  if (kind_ == FormulaKind::kAtom) out->insert(relation_);
  for (const FormulaPtr& child : children_) child->CollectRelations(out);
}

std::set<std::string> Formula::MentionedRelations() const {
  std::set<std::string> out;
  CollectRelations(&out);
  return out;
}

namespace {

Term SubstituteTerm(const Term& t, const std::map<std::string, Term>& map) {
  if (!t.is_variable()) return t;
  auto it = map.find(t.name());
  return it == map.end() ? t : it->second;
}

/// Variables mentioned by any term in the substitution's range.
std::set<std::string> RangeVariables(const std::map<std::string, Term>& map) {
  std::set<std::string> out;
  for (const auto& [from, to] : map) {
    if (to.is_variable()) out.insert(to.name());
  }
  return out;
}

std::string FreshName(const std::string& base, const std::set<std::string>& avoid) {
  for (int i = 0;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (avoid.find(candidate) == avoid.end()) return candidate;
  }
}

}  // namespace

FormulaPtr Formula::Substitute(const FormulaPtr& formula,
                               const std::map<std::string, Term>& map) {
  DYNFO_CHECK(formula != nullptr);
  if (map.empty()) return formula;
  switch (formula->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return formula;
    case FormulaKind::kAtom: {
      std::vector<Term> args;
      args.reserve(formula->args().size());
      for (const Term& t : formula->args()) args.push_back(SubstituteTerm(t, map));
      return Atom(formula->relation(), std::move(args));
    }
    case FormulaKind::kEq:
      return Eq(SubstituteTerm(formula->left(), map),
                SubstituteTerm(formula->right(), map));
    case FormulaKind::kLe:
      return Le(SubstituteTerm(formula->left(), map),
                SubstituteTerm(formula->right(), map));
    case FormulaKind::kBit:
      return Bit(SubstituteTerm(formula->left(), map),
                 SubstituteTerm(formula->right(), map));
    case FormulaKind::kNot:
      return Not(Substitute(formula->children()[0], map));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> children;
      children.reserve(formula->children().size());
      for (const FormulaPtr& child : formula->children()) {
        children.push_back(Substitute(child, map));
      }
      return formula->kind() == FormulaKind::kAnd ? And(std::move(children))
                                                  : Or(std::move(children));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // Drop mappings shadowed by the quantifier; rename bound variables that
      // would capture a variable of the substitution's range.
      std::map<std::string, Term> inner(map);
      for (const std::string& v : formula->variables()) inner.erase(v);
      std::set<std::string> range = RangeVariables(inner);
      std::vector<std::string> bound = formula->variables();
      FormulaPtr body = formula->children()[0];
      for (std::string& v : bound) {
        if (range.find(v) != range.end()) {
          std::set<std::string> avoid = range;
          for (const std::string& b : bound) avoid.insert(b);
          for (const std::string& fv : body->FreeVariables()) avoid.insert(fv);
          std::string fresh = FreshName(v, avoid);
          body = Substitute(body, {{v, Term::Var(fresh)}});
          v = fresh;
        }
      }
      body = Substitute(body, inner);
      return formula->kind() == FormulaKind::kExists ? Exists(std::move(bound), body)
                                                     : Forall(std::move(bound), body);
    }
  }
  DYNFO_UNREACHABLE();
}

namespace {

std::string JoinTerms(const std::vector<Term>& terms) {
  std::string s;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) s += ", ";
    s += terms[i].ToString();
  }
  return s;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string s;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) s += " ";
    s += names[i];
  }
  return s;
}

}  // namespace

std::string Formula::ToString() const {
  switch (kind_) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kAtom:
      return relation_ + "(" + JoinTerms(terms_) + ")";
    case FormulaKind::kEq:
      return terms_[0].ToString() + " = " + terms_[1].ToString();
    case FormulaKind::kLe:
      return terms_[0].ToString() + " <= " + terms_[1].ToString();
    case FormulaKind::kBit:
      return "BIT(" + terms_[0].ToString() + ", " + terms_[1].ToString() + ")";
    case FormulaKind::kNot:
      return "!(" + children_[0]->ToString() + ")";
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const char* op = kind_ == FormulaKind::kAnd ? " & " : " | ";
      std::string s = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) s += op;
        s += children_[i]->ToString();
      }
      return s + ")";
    }
    case FormulaKind::kExists:
      return "(exists " + JoinNames(variables_) + ". " + children_[0]->ToString() + ")";
    case FormulaKind::kForall:
      return "(forall " + JoinNames(variables_) + ". " + children_[0]->ToString() + ")";
  }
  DYNFO_UNREACHABLE();
}

}  // namespace dynfo::fo
