/// \file normalize.h
/// Formula normal forms and structural transformations.
///
/// NNF (negation normal form) pushes every negation down to atoms/numeric
/// predicates, dualizing connectives and quantifiers on the way — the
/// standard preprocessing for set-based evaluation. Provided as a library
/// utility with equivalence guaranteed by property tests; the algebra
/// evaluator's planner handles negation contextually and does not require
/// it.

#ifndef DYNFO_FO_NORMALIZE_H_
#define DYNFO_FO_NORMALIZE_H_

#include "fo/formula.h"

namespace dynfo::fo {

/// Negation normal form: negations appear only directly above atoms and
/// numeric predicates. Logically equivalent to the input on every
/// structure (property-tested against both evaluators).
FormulaPtr ToNnf(const FormulaPtr& formula);

/// True iff negations appear only directly above atoms/=/<=/BIT.
bool IsNnf(const FormulaPtr& formula);

/// Structural equality of formulas (same tree up to shared subterms).
bool StructurallyEqual(const FormulaPtr& a, const FormulaPtr& b);

}  // namespace dynfo::fo

#endif  // DYNFO_FO_NORMALIZE_H_
