/// \file term.h
/// First-order terms over the paper's logic L(tau).
///
/// Terms are variables, vocabulary constant symbols, the numeric constants
/// min/max, numeric literals, or *request parameters*. Parameters are the
/// paper's `a`, `b` in "ins(E, a, b)": placeholders bound to the updated
/// tuple's components when a Dyn-FO update formula runs.

#ifndef DYNFO_FO_TERM_H_
#define DYNFO_FO_TERM_H_

#include <string>

#include "core/check.h"
#include "relational/tuple.h"

namespace dynfo::fo {

enum class TermKind {
  kVariable,        ///< a first-order variable, identified by name
  kConstantSymbol,  ///< a constant symbol of the vocabulary
  kParameter,       ///< component i of the current request's tuple
  kMin,             ///< the numeric constant 0
  kMax,             ///< the numeric constant n-1
  kNumber,          ///< a fixed numeric literal (definable from min/BIT; convenience)
};

/// An immutable first-order term (a small value type).
class Term {
 public:
  static Term Var(std::string name) {
    DYNFO_CHECK(!name.empty());
    Term t(TermKind::kVariable);
    t.name_ = std::move(name);
    return t;
  }
  static Term Const(std::string name) {
    DYNFO_CHECK(!name.empty());
    Term t(TermKind::kConstantSymbol);
    t.name_ = std::move(name);
    return t;
  }
  static Term Param(int index) {
    DYNFO_CHECK(index >= 0 && index < relational::Tuple::kMaxArity);
    Term t(TermKind::kParameter);
    t.index_ = index;
    return t;
  }
  static Term Min() { return Term(TermKind::kMin); }
  static Term Max() { return Term(TermKind::kMax); }
  static Term Number(relational::Element value) {
    Term t(TermKind::kNumber);
    t.value_ = value;
    return t;
  }

  TermKind kind() const { return kind_; }

  /// Variable or constant-symbol name. CHECK-fails for other kinds.
  const std::string& name() const {
    DYNFO_CHECK(kind_ == TermKind::kVariable || kind_ == TermKind::kConstantSymbol);
    return name_;
  }

  /// Parameter index. CHECK-fails unless kind() == kParameter.
  int index() const {
    DYNFO_CHECK(kind_ == TermKind::kParameter);
    return index_;
  }

  /// Literal value. CHECK-fails unless kind() == kNumber.
  relational::Element value() const {
    DYNFO_CHECK(kind_ == TermKind::kNumber);
    return value_;
  }

  bool is_variable() const { return kind_ == TermKind::kVariable; }

  bool operator==(const Term& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
      case TermKind::kVariable:
      case TermKind::kConstantSymbol:
        return name_ == other.name_;
      case TermKind::kParameter:
        return index_ == other.index_;
      case TermKind::kNumber:
        return value_ == other.value_;
      case TermKind::kMin:
      case TermKind::kMax:
        return true;
    }
    DYNFO_UNREACHABLE();
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

  std::string ToString() const {
    switch (kind_) {
      case TermKind::kVariable:
      case TermKind::kConstantSymbol:
        return name_;
      case TermKind::kParameter:
        return "$" + std::to_string(index_);
      case TermKind::kMin:
        return "min";
      case TermKind::kMax:
        return "max";
      case TermKind::kNumber:
        return std::to_string(value_);
    }
    DYNFO_UNREACHABLE();
  }

 private:
  explicit Term(TermKind kind) : kind_(kind) {}

  TermKind kind_;
  std::string name_;
  int index_ = 0;
  relational::Element value_ = 0;
};

}  // namespace dynfo::fo

#endif  // DYNFO_FO_TERM_H_
