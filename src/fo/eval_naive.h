/// \file eval_naive.h
/// The reference evaluator: textbook substitute-and-test semantics.
///
/// Deliberately simple — a direct transcription of the Tarskian truth
/// definition with backtracking over quantified variables — so that it can
/// serve as the oracle the optimized algebra evaluator is property-tested
/// against. Complexity: O(n^q) per point where q is the number of nested
/// quantified variables.

#ifndef DYNFO_FO_EVAL_NAIVE_H_
#define DYNFO_FO_EVAL_NAIVE_H_

#include <string>
#include <vector>

#include "fo/eval_context.h"
#include "fo/formula.h"
#include "relational/relation.h"

namespace dynfo::fo {

class NaiveEvaluator {
 public:
  /// Truth of `formula` under `env` (must bind all free variables).
  static bool Holds(const Formula& formula, const EvalContext& ctx, Env* env);

  /// Truth of a sentence (no free variables).
  static bool HoldsSentence(const FormulaPtr& formula, const EvalContext& ctx);

  /// Materializes { x-bar in n^k : formula(x-bar) } where x-bar is
  /// `tuple_variables` in order. Variables of the formula not listed must not
  /// be free; listed variables need not occur (they are then unconstrained).
  static relational::Relation EvaluateAsRelation(
      const FormulaPtr& formula, const std::vector<std::string>& tuple_variables,
      const EvalContext& ctx);
};

}  // namespace dynfo::fo

#endif  // DYNFO_FO_EVAL_NAIVE_H_
