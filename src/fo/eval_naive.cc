#include "fo/eval_naive.h"

#include <algorithm>

#include "core/cancel.h"

namespace dynfo::fo {

namespace {

/// Backtracking search over a quantifier block: returns true iff some
/// (kExists) / every (kForall) assignment of variables[index..] satisfies the
/// body.
bool QuantifierSearch(const Formula& quantifier, size_t index, const EvalContext& ctx,
                      Env* env) {
  const std::vector<std::string>& variables = quantifier.variables();
  if (index == variables.size()) {
    return NaiveEvaluator::Holds(*quantifier.children()[0], ctx, env);
  }
  const bool existential = quantifier.kind() == FormulaKind::kExists;
  const size_t n = ctx.universe_size();
  // Only the outermost quantifier level polls: inner levels are bounded by
  // n iterations each and the caller discards results after a trip anyway.
  const bool poll = index == 0 && ctx.governor != nullptr;
  env->Push(variables[index], 0);
  for (size_t value = 0; value < n; ++value) {
    if (poll && (value % 64) == 0 && ctx.ShouldStop()) break;
    env->Set(static_cast<relational::Element>(value));
    bool result = QuantifierSearch(quantifier, index + 1, ctx, env);
    if (result == existential) {
      env->Pop();
      return existential;
    }
  }
  env->Pop();
  return !existential;
}

}  // namespace

bool NaiveEvaluator::Holds(const Formula& formula, const EvalContext& ctx, Env* env) {
  switch (formula.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom: {
      const relational::Relation& rel = ctx.structure->relation(formula.relation());
      DYNFO_CHECK(static_cast<int>(formula.args().size()) == rel.arity())
          << "atom arity mismatch for " << formula.relation();
      relational::Tuple t;
      for (const Term& term : formula.args()) {
        t = t.Append(EvalTerm(term, ctx, *env));
      }
      return rel.Contains(t);
    }
    case FormulaKind::kEq:
      return EvalTerm(formula.left(), ctx, *env) == EvalTerm(formula.right(), ctx, *env);
    case FormulaKind::kLe:
      return EvalTerm(formula.left(), ctx, *env) <= EvalTerm(formula.right(), ctx, *env);
    case FormulaKind::kBit: {
      relational::Element x = EvalTerm(formula.left(), ctx, *env);
      relational::Element y = EvalTerm(formula.right(), ctx, *env);
      return y < 32 && ((x >> y) & 1u) != 0;
    }
    case FormulaKind::kNot:
      return !Holds(*formula.children()[0], ctx, env);
    case FormulaKind::kAnd:
      for (const FormulaPtr& child : formula.children()) {
        if (!Holds(*child, ctx, env)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const FormulaPtr& child : formula.children()) {
        if (Holds(*child, ctx, env)) return true;
      }
      return false;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return QuantifierSearch(formula, 0, ctx, env);
  }
  DYNFO_UNREACHABLE();
}

bool NaiveEvaluator::HoldsSentence(const FormulaPtr& formula, const EvalContext& ctx) {
  DYNFO_CHECK(formula != nullptr);
  DYNFO_CHECK(formula->FreeVariables().empty())
      << "sentence expected, but free variables remain: " << formula->ToString();
  Env env;
  return Holds(*formula, ctx, &env);
}

relational::Relation NaiveEvaluator::EvaluateAsRelation(
    const FormulaPtr& formula, const std::vector<std::string>& tuple_variables,
    const EvalContext& ctx) {
  DYNFO_CHECK(formula != nullptr);
  // Every free variable of the formula must be one of the tuple variables.
  std::vector<std::string> free = formula->FreeVariables();
  for (const std::string& v : free) {
    DYNFO_CHECK(std::find(tuple_variables.begin(), tuple_variables.end(), v) !=
                tuple_variables.end())
        << "free variable " << v << " not among the tuple variables";
  }
  const int arity = static_cast<int>(tuple_variables.size());
  DYNFO_CHECK(arity <= relational::Tuple::kMaxArity);
  relational::Relation out(arity);
  const size_t n = ctx.universe_size();

  // Odometer enumeration of n^arity assignments.
  std::vector<relational::Element> point(arity, 0);
  size_t polls = 0;
  while (true) {
    if (ctx.governor != nullptr &&
        (polls++ % core::kGovernorStride) == 0 && ctx.ShouldStop()) {
      break;
    }
    Env local;
    for (int i = 0; i < arity; ++i) local.Push(tuple_variables[i], point[i]);
    if (Holds(*formula, ctx, &local)) {
      relational::Tuple t;
      for (int i = 0; i < arity; ++i) t = t.Append(point[i]);
      out.Insert(t);
    }
    int i = arity - 1;
    while (i >= 0 && point[i] + 1 == n) {
      point[i] = 0;
      --i;
    }
    if (i < 0) break;
    ++point[i];
  }
  ctx.Charge(out.size(), static_cast<size_t>(arity));
  return out;
}

}  // namespace dynfo::fo
