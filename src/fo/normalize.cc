#include "fo/normalize.h"

namespace dynfo::fo {

namespace {

FormulaPtr Nnf(const FormulaPtr& f, bool negated);

FormulaPtr NnfChildren(const FormulaPtr& f, bool negated) {
  std::vector<FormulaPtr> children;
  children.reserve(f->children().size());
  for (const FormulaPtr& child : f->children()) {
    children.push_back(Nnf(child, negated));
  }
  // Under negation, And and Or dualize (De Morgan).
  const bool conjunctive = (f->kind() == FormulaKind::kAnd) != negated;
  return conjunctive ? Formula::And(std::move(children))
                     : Formula::Or(std::move(children));
}

FormulaPtr Nnf(const FormulaPtr& f, bool negated) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return negated ? Formula::False() : Formula::True();
    case FormulaKind::kFalse:
      return negated ? Formula::True() : Formula::False();
    case FormulaKind::kAtom:
    case FormulaKind::kEq:
    case FormulaKind::kLe:
    case FormulaKind::kBit:
      return negated ? Formula::Not(f) : f;
    case FormulaKind::kNot:
      return Nnf(f->children()[0], !negated);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return NnfChildren(f, negated);
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      FormulaPtr body = Nnf(f->children()[0], negated);
      const bool existential = (f->kind() == FormulaKind::kExists) != negated;
      return existential ? Formula::Exists(f->variables(), body)
                         : Formula::Forall(f->variables(), body);
    }
  }
  DYNFO_UNREACHABLE();
}

}  // namespace

FormulaPtr ToNnf(const FormulaPtr& formula) {
  DYNFO_CHECK(formula != nullptr);
  return Nnf(formula, /*negated=*/false);
}

bool IsNnf(const FormulaPtr& formula) {
  DYNFO_CHECK(formula != nullptr);
  if (formula->kind() == FormulaKind::kNot) {
    FormulaKind inner = formula->children()[0]->kind();
    return inner == FormulaKind::kAtom || inner == FormulaKind::kEq ||
           inner == FormulaKind::kLe || inner == FormulaKind::kBit;
  }
  for (const FormulaPtr& child : formula->children()) {
    if (!IsNnf(child)) return false;
  }
  return true;
}

bool StructurallyEqual(const FormulaPtr& a, const FormulaPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kAtom:
      if (a->relation() != b->relation() || a->args().size() != b->args().size()) {
        return false;
      }
      for (size_t i = 0; i < a->args().size(); ++i) {
        if (a->args()[i] != b->args()[i]) return false;
      }
      return true;
    case FormulaKind::kEq:
    case FormulaKind::kLe:
    case FormulaKind::kBit:
      return a->left() == b->left() && a->right() == b->right();
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      if (a->variables() != b->variables()) return false;
      [[fallthrough]];
    case FormulaKind::kNot:
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      if (a->children().size() != b->children().size()) return false;
      for (size_t i = 0; i < a->children().size(); ++i) {
        if (!StructurallyEqual(a->children()[i], b->children()[i])) return false;
      }
      return true;
    }
  }
  DYNFO_UNREACHABLE();
}

}  // namespace dynfo::fo
