/// \file parser.h
/// A text syntax for first-order formulas, with the paper's abbreviation
/// style ("Eq(x, y, c, d)", "P(x, y)") available as user-defined macros.
///
/// Grammar (precedence low to high):
///   formula := iff
///   iff     := implies ('<->' implies)*
///   implies := or ('->' or)*            (right associative)
///   or      := and ('|' and)*
///   and     := unary ('&' unary)*
///   unary   := '!' unary
///            | ('exists' | 'forall') ident+ '.' unary
///            | comparison | '(' formula ')' | 'true' | 'false'
///   comparison := term ('=' | '!=' | '<=' | '<') term
///            | 'BIT' '(' term ',' term ')'
///            | name '(' term* ')'       (relation atom or macro call)
///   term    := 'min' | 'max' | number | '$' number | ident
///
/// An identifier denotes a declared constant symbol if the vocabulary has
/// one, otherwise a variable. '$k' is request parameter k. Macros expand by
/// capture-avoiding substitution of the argument terms.

#ifndef DYNFO_FO_PARSER_H_
#define DYNFO_FO_PARSER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "fo/formula.h"
#include "relational/vocabulary.h"

namespace dynfo::fo {

/// Shared parsing context: which names are constants, which are relations
/// (with arities), and the macro table.
class ParserEnvironment {
 public:
  explicit ParserEnvironment(
      std::shared_ptr<const relational::Vocabulary> vocabulary)
      : vocabulary_(std::move(vocabulary)) {}

  /// Defines a macro: name(params...) expands to `body` with the call's
  /// argument terms substituted for the parameter variables. Macros may use
  /// previously defined macros in their body (expansion happens at
  /// definition parse time). Macro names must not collide with relations.
  core::Status DefineMacro(const std::string& name,
                           std::vector<std::string> parameters,
                           const std::string& body);

  /// Parses a formula.
  core::Result<FormulaPtr> Parse(const std::string& text) const;

  const relational::Vocabulary& vocabulary() const { return *vocabulary_; }

 private:
  friend class ParserImpl;

  struct Macro {
    std::vector<std::string> parameters;
    FormulaPtr body;
  };

  std::shared_ptr<const relational::Vocabulary> vocabulary_;
  std::map<std::string, Macro> macros_;
};

/// One-shot convenience without macros.
core::Result<FormulaPtr> ParseFormula(
    const std::string& text, std::shared_ptr<const relational::Vocabulary> vocabulary);

}  // namespace dynfo::fo

#endif  // DYNFO_FO_PARSER_H_
