#include "fo/eval_context.h"

namespace dynfo::fo {

relational::Element EvalTerm(const Term& term, const EvalContext& ctx, const Env& env) {
  switch (term.kind()) {
    case TermKind::kVariable: {
      std::optional<relational::Element> value = env.Lookup(term.name());
      DYNFO_CHECK(value.has_value()) << "unbound variable: " << term.name();
      return *value;
    }
    case TermKind::kConstantSymbol:
      return ctx.structure->constant(term.name());
    case TermKind::kParameter:
      DYNFO_CHECK(term.index() < static_cast<int>(ctx.parameters.size()))
          << "request parameter $" << term.index() << " not bound";
      return ctx.parameters[term.index()];
    case TermKind::kMin:
      return 0;
    case TermKind::kMax:
      return static_cast<relational::Element>(ctx.universe_size() - 1);
    case TermKind::kNumber:
      DYNFO_CHECK(term.value() < ctx.universe_size())
          << "numeric literal outside universe";
      return term.value();
  }
  DYNFO_UNREACHABLE();
}

std::optional<relational::Element> GroundTerm(const Term& term, const EvalContext& ctx) {
  if (term.is_variable()) return std::nullopt;
  static const Env kEmptyEnv;
  return EvalTerm(term, ctx, kEmptyEnv);
}

}  // namespace dynfo::fo
