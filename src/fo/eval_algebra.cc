#include "fo/eval_algebra.h"

#include <algorithm>
#include <limits>

#include "core/cancel.h"
#include "core/thread_pool.h"
#include "fo/eval_naive.h"

namespace dynfo::fo {

namespace {

bool IsQuantifierFree(const Formula& f) {
  if (f.kind() == FormulaKind::kExists || f.kind() == FormulaKind::kForall) return false;
  for (const FormulaPtr& child : f.children()) {
    if (!IsQuantifierFree(*child)) return false;
  }
  return true;
}

bool Subset(const std::vector<std::string>& small, const std::vector<std::string>& big) {
  for (const std::string& s : small) {
    if (std::find(big.begin(), big.end(), s) == big.end()) return false;
  }
  return true;
}

std::vector<std::string> SetMinus(const std::vector<std::string>& a,
                                  const std::vector<std::string>& b) {
  std::vector<std::string> out;
  for (const std::string& s : a) {
    if (std::find(b.begin(), b.end(), s) == b.end()) out.push_back(s);
  }
  return out;
}

Env EnvFromRow(const std::vector<std::string>& columns, const Row& row) {
  Env env;
  for (size_t i = 0; i < columns.size(); ++i) env.Push(columns[i], row[i]);
  return env;
}

std::vector<const Row*> GatherRows(const RowSet& rows) {
  std::vector<const Row*> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(&row);
  return out;
}

/// Strided governor poll for sequential loops (see plan_exec.cc twin).
bool StridedStop(const EvalContext& ctx, size_t* counter) {
  if (ctx.governor == nullptr) return false;
  return ((*counter)++ % core::kGovernorStride) == 0 && ctx.ShouldStop();
}

}  // namespace

NamedRelation AlgebraEvaluator::Sat(const FormulaPtr& formula,
                                    const EvalContext& ctx) const {
  DYNFO_CHECK(formula != nullptr);
  if (ctx.options.use_compiled_plans) {
    return ExecutePlan(*PlanFor(formula, ctx), ctx, &stats_);
  }
  return SatClassic(formula, ctx);
}

PlanPtr AlgebraEvaluator::PlanFor(const FormulaPtr& formula,
                                  const EvalContext& ctx) const {
  const relational::Vocabulary* vocabulary = &ctx.structure->vocabulary();
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    auto it = plan_cache_.find(formula.get());
    if (it != plan_cache_.end() && it->second.vocabulary == vocabulary) {
      ++stats_.plan_cache_hits;
      return it->second.plan;
    }
  }
  ++stats_.plan_cache_misses;
  ++stats_.planner_runs;
  PlanPtr plan = PlanCompiler(*vocabulary).Compile(formula);
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    if (plan_cache_.size() >= kMaxCachedPlans) plan_cache_.clear();
    plan_cache_[formula.get()] = {formula, vocabulary, plan};
  }
  return plan;
}

PlanPtr AlgebraEvaluator::Precompile(const FormulaPtr& formula,
                                     const EvalContext& ctx) const {
  DYNFO_CHECK(formula != nullptr);
  return PlanFor(formula, ctx);
}

DeltaProgram AlgebraEvaluator::CompileDeltaRemovals(
    const FormulaPtr& not_keep, const std::vector<std::string>& tuple_variables,
    int base_relation_index, int base_arity, const EvalContext& ctx) const {
  if (not_keep != nullptr) ++stats_.planner_runs;
  return fo::CompileDeltaRemovals(PlanCompiler(ctx.structure->vocabulary()),
                                  not_keep, tuple_variables,
                                  base_relation_index, base_arity);
}

std::vector<relational::Tuple> AlgebraEvaluator::DeltaRemovals(
    const DeltaProgram& program, const EvalContext& ctx) const {
  return ExecuteDeltaRemovals(program, ctx, &stats_);
}

void AlgebraEvaluator::ClearPlanCache() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  plan_cache_.clear();
}

size_t AlgebraEvaluator::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return plan_cache_.size();
}

NamedRelation AlgebraEvaluator::SatClassic(const FormulaPtr& formula,
                                           const EvalContext& ctx) const {
  DYNFO_CHECK(formula != nullptr);
  // Entry poll: a tripped governor prunes whole subtrees before they start.
  if (ctx.ShouldStop()) return NamedRelation(formula->FreeVariables());
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return NamedRelation::Unit();
    case FormulaKind::kFalse:
      return NamedRelation({});
    case FormulaKind::kAtom:
      return SatAtom(*formula, ctx);
    case FormulaKind::kEq:
    case FormulaKind::kLe:
    case FormulaKind::kBit:
      return SatNumeric(*formula, ctx);
    case FormulaKind::kNot:
      return SatNot(*formula, ctx);
    case FormulaKind::kAnd:
      return SatAnd(*formula, ctx);
    case FormulaKind::kOr:
      return SatOr(*formula, ctx);
    case FormulaKind::kExists:
      return SatExists(*formula, ctx);
    case FormulaKind::kForall:
      return SatForall(*formula, ctx);
  }
  DYNFO_UNREACHABLE();
}

NamedRelation AlgebraEvaluator::SatAtom(const Formula& formula,
                                        const EvalContext& ctx) const {
  const relational::Relation& rel = ctx.structure->relation(formula.relation());
  const std::vector<Term>& args = formula.args();
  DYNFO_CHECK(static_cast<int>(args.size()) == rel.arity())
      << "atom arity mismatch for " << formula.relation();

  // Positions: ground value, or index into the output columns.
  struct Position {
    bool ground;
    relational::Element value;  // if ground
    int column;                 // if variable
  };
  std::vector<std::string> columns;
  std::vector<Position> positions;
  positions.reserve(args.size());
  for (const Term& t : args) {
    std::optional<relational::Element> ground = GroundTerm(t, ctx);
    if (ground.has_value()) {
      positions.push_back({true, *ground, -1});
      continue;
    }
    int column = -1;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == t.name()) column = static_cast<int>(i);
    }
    if (column < 0) {
      column = static_cast<int>(columns.size());
      columns.push_back(t.name());
    }
    positions.push_back({false, 0, column});
  }

  NamedRelation out(columns);
  Row row(columns.size(), 0);
  size_t polls = 0;
  for (const relational::Tuple& t : rel) {
    if (StridedStop(ctx, &polls)) break;
    bool match = true;
    // First pass: ground checks and variable binding; repeated variables must
    // agree, which we check with a second pass once all are bound.
    std::fill(row.begin(), row.end(), 0);
    std::vector<bool> bound(columns.size(), false);
    for (int i = 0; i < t.size() && match; ++i) {
      const Position& p = positions[i];
      if (p.ground) {
        match = t[i] == p.value;
      } else if (!bound[p.column]) {
        row[p.column] = t[i];
        bound[p.column] = true;
      } else {
        match = row[p.column] == t[i];
      }
    }
    if (match) out.AddRow(row);
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation AlgebraEvaluator::SatNumeric(const Formula& formula,
                                           const EvalContext& ctx) const {
  const size_t n = ctx.universe_size();
  const Term& lhs = formula.left();
  const Term& rhs = formula.right();
  std::optional<relational::Element> lg = GroundTerm(lhs, ctx);
  std::optional<relational::Element> rg = GroundTerm(rhs, ctx);

  auto holds = [&](relational::Element a, relational::Element b) {
    switch (formula.kind()) {
      case FormulaKind::kEq:
        return a == b;
      case FormulaKind::kLe:
        return a <= b;
      case FormulaKind::kBit:
        return b < 32 && ((a >> b) & 1u) != 0;
      default:
        DYNFO_UNREACHABLE();
    }
  };

  if (lg && rg) {
    return holds(*lg, *rg) ? NamedRelation::Unit() : NamedRelation({});
  }
  if (lg || rg) {
    // Exactly one variable: enumerate its n candidate values.
    const std::string& var = lg ? rhs.name() : lhs.name();
    NamedRelation out({var});
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      bool ok = lg ? holds(*lg, e) : holds(e, *rg);
      if (ok) out.AddRow({e});
    }
    return out;
  }
  // Two variables.
  if (lhs.name() == rhs.name()) {
    // Reflexive case, e.g. x = x or BIT(x, x).
    NamedRelation out({lhs.name()});
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      if (holds(e, e)) out.AddRow({e});
    }
    return out;
  }
  if (formula.kind() == FormulaKind::kEq) {
    // Diagonal: n rows, not n^2.
    NamedRelation out({lhs.name(), rhs.name()});
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      out.AddRow({e, e});
    }
    return out;
  }
  NamedRelation out({lhs.name(), rhs.name()});
  size_t polls = 0;
  for (size_t a = 0; a < n; ++a) {
    if (StridedStop(ctx, &polls)) break;
    for (size_t b = 0; b < n; ++b) {
      if (holds(static_cast<relational::Element>(a), static_cast<relational::Element>(b))) {
        out.AddRow({static_cast<relational::Element>(a),
                    static_cast<relational::Element>(b)});
      }
    }
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation AlgebraEvaluator::SatNot(const Formula& formula,
                                       const EvalContext& ctx) const {
  const FormulaPtr& inner = formula.children()[0];
  NamedRelation sat = SatClassic(inner, ctx);
  ++stats_.complements;
  return sat.ComplementWithin(ctx.universe_size(), ctx.Policy());
}

NamedRelation AlgebraEvaluator::FilterRows(const NamedRelation& acc,
                                           const FormulaPtr& conjunct,
                                           const EvalContext& ctx) const {
  NamedRelation out(acc.columns());
  stats_.filter_row_evals.fetch_add(acc.size(), std::memory_order_relaxed);

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      Env env = EnvFromRow(acc.columns(), row);
      if (NaiveEvaluator::Holds(*conjunct, ctx, &env)) out.AddRow(row);
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  // Each row is checked independently against the immutable structure;
  // per-chunk keep-lists merge into the result set afterwards.
  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<const Row*>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<const Row*>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       Env env = EnvFromRow(acc.columns(), *rows[i]);
                       if (NaiveEvaluator::Holds(*conjunct, ctx, &env)) {
                         buffer.push_back(rows[i]);
                       }
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (const std::vector<const Row*>& buffer : buffers) {
    for (const Row* row : buffer) out.AddRow(*row);
  }
  return out;
}

NamedRelation AlgebraEvaluator::ExtendByEquality(const NamedRelation& acc,
                                                 const std::string& var,
                                                 const Term& term,
                                                 const EvalContext& ctx) const {
  ++stats_.equality_extensions;
  std::vector<std::string> columns = acc.columns();
  columns.push_back(var);
  NamedRelation out(columns);
  size_t polls = 0;
  for (const Row& row : acc.rows()) {
    if (StridedStop(ctx, &polls)) break;
    Env env = EnvFromRow(acc.columns(), row);
    relational::Element value = EvalTerm(term, ctx, env);
    Row extended = row;
    extended.push_back(value);
    out.AddRow(std::move(extended));
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation AlgebraEvaluator::ExtendByFilter(const NamedRelation& acc,
                                               const std::string& var,
                                               const FormulaPtr& conjunct,
                                               const EvalContext& ctx) const {
  ++stats_.filtered_extensions;
  const size_t n = ctx.universe_size();
  std::vector<std::string> columns = acc.columns();
  columns.push_back(var);
  NamedRelation out(columns);
  stats_.filter_row_evals.fetch_add(acc.size() * n, std::memory_order_relaxed);

  auto extend_one = [&](const Row& row, std::vector<Row>* sink) {
    Env env = EnvFromRow(acc.columns(), row);
    env.Push(var, 0);
    for (size_t v = 0; v < n; ++v) {
      env.Set(static_cast<relational::Element>(v));
      if (NaiveEvaluator::Holds(*conjunct, ctx, &env)) {
        Row extended = row;
        extended.push_back(static_cast<relational::Element>(v));
        sink->push_back(std::move(extended));
      }
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    std::vector<Row> extensions;
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      extensions.clear();
      extend_one(row, &extensions);
      for (Row& extended : extensions) out.AddRow(std::move(extended));
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       extend_one(*rows[i], &buffer);
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& extended : buffer) out.AddRow(std::move(extended));
  }
  return out;
}

NamedRelation AlgebraEvaluator::SatAnd(const Formula& formula,
                                       const EvalContext& ctx) const {
  const std::vector<std::string> target_columns = formula.FreeVariables();
  std::vector<FormulaPtr> pending = formula.children();
  // Cache each conjunct's free variables.
  std::vector<std::vector<std::string>> free;
  free.reserve(pending.size());
  for (const FormulaPtr& c : pending) free.push_back(c->FreeVariables());

  NamedRelation acc = NamedRelation::Unit();

  auto erase_at = [&](size_t i) {
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(i));
    free.erase(free.begin() + static_cast<ptrdiff_t>(i));
  };

  while (!pending.empty()) {
    // One governor poll per planner iteration: a trip aborts the whole
    // conjunction with a partial (discarded) result.
    if (ctx.ShouldStop()) return NamedRelation(target_columns);
    // Phase 1: conjuncts whose variables are all bound act as filters.
    bool progressed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!Subset(free[i], acc.columns())) continue;
      const FormulaPtr& c = pending[i];
      if (IsQuantifierFree(*c) || c->kind() == FormulaKind::kForall) {
        // Universally quantified filters are evaluated per row: their Sat
        // requires padding the body's disjuncts to the full variable cross
        // product (n^k rows), which dwarfs |acc| * n^q naive evaluation.
        acc = FilterRows(acc, c, ctx);
      } else if (c->kind() == FormulaKind::kNot) {
        ++stats_.semi_joins;
        acc = acc.SemiJoin(SatClassic(c->children()[0], ctx), /*anti=*/true,
                           ctx.Policy());
        ctx.Charge(acc.size(), acc.width());
      } else {
        ++stats_.semi_joins;
        acc = acc.SemiJoin(SatClassic(c, ctx), /*anti=*/false, ctx.Policy());
        ctx.Charge(acc.size(), acc.width());
      }
      erase_at(i);
      progressed = true;
      break;
    }
    if (progressed) continue;
    if (acc.empty()) break;  // nothing downstream can add rows

    // Phase 2: choose the cheapest generator for some unbound variable(s).
    constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
    enum class Choice { kNone, kEqExtend, kAtomJoin, kFilterExtend, kSatJoin };
    Choice best_plan = Choice::kNone;
    size_t best_index = 0;
    uint64_t best_cost = kInf;
    const uint64_t n = ctx.universe_size();

    for (size_t i = 0; i < pending.size(); ++i) {
      const FormulaPtr& c = pending[i];
      std::vector<std::string> unbound = SetMinus(free[i], acc.columns());
      uint64_t cost = kInf;
      Choice plan = Choice::kNone;
      if (c->kind() == FormulaKind::kEq && unbound.size() == 1) {
        // x = t with t computable per row: constant-cost extension.
        const Term& l = c->left();
        const Term& r = c->right();
        bool left_is_unbound = l.is_variable() && l.name() == unbound[0];
        const Term& other = left_is_unbound ? r : l;
        if (!other.is_variable() || other.name() != unbound[0]) {
          plan = Choice::kEqExtend;
          cost = acc.size() + 1;
        }
      }
      if (plan == Choice::kNone && c->kind() == FormulaKind::kAtom) {
        plan = Choice::kAtomJoin;
        cost = ctx.structure->relation(c->relation()).size() + acc.size();
      }
      if (plan == Choice::kNone && unbound.size() == 1 && IsQuantifierFree(*c)) {
        plan = Choice::kFilterExtend;
        cost = acc.size() * n;
      }
      if (plan == Choice::kNone) {
        plan = Choice::kSatJoin;
        cost = kInf - 1;  // last resort, but always applicable
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_plan = plan;
        best_index = i;
      }
    }

    DYNFO_CHECK(best_plan != Choice::kNone);
    const FormulaPtr c = pending[best_index];
    std::vector<std::string> unbound = SetMinus(free[best_index], acc.columns());
    switch (best_plan) {
      case Choice::kEqExtend: {
        const Term& l = c->left();
        const Term& r = c->right();
        bool left_is_unbound = l.is_variable() && l.name() == unbound[0];
        acc = ExtendByEquality(acc, unbound[0], left_is_unbound ? r : l, ctx);
        break;
      }
      case Choice::kAtomJoin:
        ++stats_.joins;
        acc = acc.Join(SatAtom(*c, ctx), ctx.Policy());
        ctx.Charge(acc.size(), acc.width());
        break;
      case Choice::kFilterExtend:
        acc = ExtendByFilter(acc, unbound[0], c, ctx);
        break;
      case Choice::kSatJoin:
        ++stats_.joins;
        acc = acc.Join(SatClassic(c, ctx), ctx.Policy());
        ctx.Charge(acc.size(), acc.width());
        break;
      case Choice::kNone:
        DYNFO_UNREACHABLE();
    }
    erase_at(best_index);
  }

  if (acc.empty()) return NamedRelation(target_columns);
  // Invariant: processing every conjunct binds every free variable.
  DYNFO_CHECK(acc.columns().size() == target_columns.size());
  return acc;
}

NamedRelation AlgebraEvaluator::SatOr(const Formula& formula,
                                      const EvalContext& ctx) const {
  const std::vector<std::string> target_columns = formula.FreeVariables();
  NamedRelation out(target_columns);
  const size_t n = ctx.universe_size();
  for (const FormulaPtr& child : formula.children()) {
    if (ctx.ShouldStop()) break;
    NamedRelation sat = SatClassic(child, ctx);
    std::vector<std::string> missing = SetMinus(target_columns, sat.columns());
    if (!missing.empty()) {
      ++stats_.pads;
      sat = sat.PadWithUniverse(missing, n, ctx.governor);
    }
    out = out.Union(sat);
    ctx.Charge(out.size(), out.width());
  }
  return out;
}

NamedRelation AlgebraEvaluator::SatExists(const Formula& formula,
                                          const EvalContext& ctx) const {
  NamedRelation sat = SatClassic(formula.children()[0], ctx);
  std::vector<std::string> keep = SetMinus(sat.columns(), formula.variables());
  return sat.Project(keep);
}

NamedRelation AlgebraEvaluator::SatForall(const Formula& formula,
                                          const EvalContext& ctx) const {
  const FormulaPtr& body = formula.children()[0];
  NamedRelation sat = SatClassic(body, ctx);
  // Quantified variables actually occurring free in the body.
  std::vector<std::string> quantified;
  for (const std::string& v : formula.variables()) {
    if (sat.HasColumn(v)) quantified.push_back(v);
  }
  if (quantified.empty()) return sat;  // forall over absent variables is a no-op

  const size_t n = ctx.universe_size();
  uint64_t required = 1;
  for (size_t i = 0; i < quantified.size(); ++i) {
    DYNFO_CHECK(required <= std::numeric_limits<uint64_t>::max() / n)
        << "forall group size overflow";
    required *= n;
  }

  std::vector<std::string> keep = SetMinus(sat.columns(), quantified);
  // Count, for each assignment of the kept variables, how many assignments of
  // the quantified variables satisfy the body; keep those hitting n^k.
  std::vector<int> keep_positions;
  keep_positions.reserve(keep.size());
  for (const std::string& name : keep) keep_positions.push_back(sat.ColumnIndex(name));

  std::unordered_map<Row, uint64_t, RowHash> counts;
  size_t polls = 0;
  for (const Row& row : sat.rows()) {
    if (StridedStop(ctx, &polls)) break;
    Row key;
    key.reserve(keep_positions.size());
    for (int p : keep_positions) key.push_back(row[p]);
    ++counts[key];
  }
  ctx.Charge(counts.size(), keep_positions.size());
  NamedRelation out(keep);
  for (const auto& [key, count] : counts) {
    if (count == required) out.AddRow(key);
  }
  return out;
}

bool AlgebraEvaluator::HoldsSentence(const FormulaPtr& formula,
                                     const EvalContext& ctx) const {
  DYNFO_CHECK(formula != nullptr);
  DYNFO_CHECK(formula->FreeVariables().empty())
      << "sentence expected: " << formula->ToString();
  return !Sat(formula, ctx).empty();
}

relational::Relation AlgebraEvaluator::EvaluateAsRelation(
    const FormulaPtr& formula, const std::vector<std::string>& tuple_variables,
    const EvalContext& ctx) const {
  DYNFO_CHECK(formula != nullptr);
  std::vector<std::string> free = formula->FreeVariables();
  DYNFO_CHECK(Subset(free, tuple_variables))
      << "free variables not among the tuple variables: " << formula->ToString();
  const int arity = static_cast<int>(tuple_variables.size());
  DYNFO_CHECK(arity <= relational::Tuple::kMaxArity);

  NamedRelation sat = Sat(formula, ctx);
  std::vector<std::string> missing = SetMinus(tuple_variables, sat.columns());
  if (!missing.empty()) {
    ++stats_.pads;
    sat = sat.PadWithUniverse(missing, ctx.universe_size(), ctx.governor);
  }
  sat = sat.Reorder(tuple_variables);

  relational::Relation out(arity);
  size_t polls = 0;
  for (const Row& row : sat.rows()) {
    if (StridedStop(ctx, &polls)) break;
    relational::Tuple t;
    for (relational::Element e : row) t = t.Append(e);
    out.Insert(t);
  }
  ctx.Charge(out.size(), static_cast<size_t>(arity));
  return out;
}

}  // namespace dynfo::fo
