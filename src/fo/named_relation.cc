#include "fo/named_relation.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "core/cancel.h"

namespace dynfo::fo {

namespace {

/// Hash map from a join key (a projected row) to the rows carrying it.
using KeyIndex = std::unordered_map<Row, std::vector<const Row*>, RowHash>;

Row ProjectRow(const Row& row, const std::vector<int>& positions) {
  Row out;
  out.reserve(positions.size());
  for (int p : positions) out.push_back(row[p]);
  return out;
}

/// Snapshot of a row set as a contiguous, partitionable array. The set is
/// not mutated while chunks read through the pointers.
std::vector<const Row*> GatherRows(const RowSet& rows) {
  std::vector<const Row*> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(&row);
  return out;
}

/// Strided governor poll for the single-chunk (sequential) operator paths;
/// the parallel paths are governed at chunk claims by the thread pool.
bool StridedStop(const core::ExecGovernor* governor, size_t* counter) {
  if (governor == nullptr) return false;
  return ((*counter)++ % core::kGovernorStride) == 0 && governor->ShouldStop();
}

}  // namespace

NamedRelation::NamedRelation(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      DYNFO_CHECK(columns_[i] != columns_[j]) << "duplicate column " << columns_[i];
    }
  }
}

NamedRelation NamedRelation::FullUniverse(std::vector<std::string> columns, size_t n) {
  NamedRelation out(std::move(columns));
  const int k = out.width();
  Row row(k, 0);
  while (true) {
    out.rows_.insert(row);
    int i = k - 1;
    while (i >= 0 && row[i] + 1 == n) {
      row[i] = 0;
      --i;
    }
    if (i < 0) break;
    ++row[i];
  }
  return out;
}

int NamedRelation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

bool NamedRelation::AddRow(Row row) {
  DYNFO_CHECK(row.size() == columns_.size()) << "row width mismatch";
  return rows_.insert(std::move(row)).second;
}

NamedRelation NamedRelation::Project(const std::vector<std::string>& keep) const {
  std::vector<int> positions;
  positions.reserve(keep.size());
  for (const std::string& name : keep) {
    int index = ColumnIndex(name);
    DYNFO_CHECK(index >= 0) << "projection onto missing column " << name;
    positions.push_back(index);
  }
  NamedRelation out(keep);
  for (const Row& row : rows_) out.rows_.insert(ProjectRow(row, positions));
  return out;
}

NamedRelation NamedRelation::Join(const NamedRelation& other,
                                  const core::ParallelOptions& parallel) const {
  // Shared columns, and the positions of other's non-shared columns.
  std::vector<int> left_key;
  std::vector<int> right_key;
  std::vector<int> right_extra;
  std::vector<std::string> out_columns = columns_;
  for (size_t j = 0; j < other.columns_.size(); ++j) {
    int left_index = ColumnIndex(other.columns_[j]);
    if (left_index >= 0) {
      left_key.push_back(left_index);
      right_key.push_back(static_cast<int>(j));
    } else {
      right_extra.push_back(static_cast<int>(j));
      out_columns.push_back(other.columns_[j]);
    }
  }

  NamedRelation out(out_columns);
  // Build the hash index on the smaller side by key; probe with the other.
  // For simplicity we always index `other` (callers put the smaller relation
  // second when they care; sizes here are modest).
  KeyIndex index;
  index.reserve(other.rows_.size());
  for (const Row& row : other.rows_) {
    index[ProjectRow(row, right_key)].push_back(&row);
  }

  auto probe_one = [&](const Row& row, std::vector<Row>* sink) {
    auto it = index.find(ProjectRow(row, left_key));
    if (it == index.end()) return;
    for (const Row* match : it->second) {
      Row combined = row;
      combined.reserve(row.size() + right_extra.size());
      for (int p : right_extra) combined.push_back((*match)[p]);
      sink->push_back(std::move(combined));
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const size_t num_chunks = pool.PlanChunks(0, rows_.size(), parallel);
  if (num_chunks <= 1) {
    std::vector<Row> matches;
    size_t polls = 0;
    for (const Row& row : rows_) {
      if (StridedStop(parallel.governor, &polls)) break;
      matches.clear();
      probe_one(row, &matches);
      for (Row& combined : matches) out.rows_.insert(std::move(combined));
    }
    return out;
  }

  // Partition the probe side; the index is read-only during the scan.
  std::vector<const Row*> probe = GatherRows(rows_);
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, probe.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       probe_one(*probe[i], &buffer);
                     }
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& combined : buffer) out.rows_.insert(std::move(combined));
  }
  return out;
}

NamedRelation NamedRelation::SemiJoin(const NamedRelation& other, bool anti,
                                      const core::ParallelOptions& parallel) const {
  std::vector<int> left_key;
  std::vector<int> right_key;
  for (size_t j = 0; j < other.columns_.size(); ++j) {
    int left_index = ColumnIndex(other.columns_[j]);
    DYNFO_CHECK(left_index >= 0)
        << "semi-join filter has column " << other.columns_[j] << " not in the input";
    left_key.push_back(left_index);
    right_key.push_back(static_cast<int>(j));
  }
  RowSet keys;
  keys.reserve(other.rows_.size());
  for (const Row& row : other.rows_) keys.insert(ProjectRow(row, right_key));

  NamedRelation out(columns_);
  core::ThreadPool& pool = core::ThreadPool::Global();
  const size_t num_chunks = pool.PlanChunks(0, rows_.size(), parallel);
  if (num_chunks <= 1) {
    size_t polls = 0;
    for (const Row& row : rows_) {
      if (StridedStop(parallel.governor, &polls)) break;
      bool match = keys.find(ProjectRow(row, left_key)) != keys.end();
      if (match != anti) out.rows_.insert(row);
    }
    return out;
  }

  std::vector<const Row*> probe = GatherRows(rows_);
  std::vector<std::vector<const Row*>> buffers(num_chunks);
  pool.ParallelFor(0, probe.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<const Row*>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       bool match =
                           keys.find(ProjectRow(*probe[i], left_key)) != keys.end();
                       if (match != anti) buffer.push_back(probe[i]);
                     }
                   });
  for (const std::vector<const Row*>& buffer : buffers) {
    for (const Row* row : buffer) out.rows_.insert(*row);
  }
  return out;
}

NamedRelation NamedRelation::Union(const NamedRelation& other) const {
  DYNFO_CHECK(columns_.size() == other.columns_.size())
      << "union of incompatible schemas";
  std::vector<int> positions;
  positions.reserve(columns_.size());
  for (const std::string& name : columns_) {
    int index = other.ColumnIndex(name);
    DYNFO_CHECK(index >= 0) << "union of incompatible schemas: missing " << name;
    positions.push_back(index);
  }
  NamedRelation out(columns_);
  out.rows_ = rows_;
  for (const Row& row : other.rows_) out.rows_.insert(ProjectRow(row, positions));
  return out;
}

NamedRelation NamedRelation::ComplementWithin(size_t n,
                                              const core::ParallelOptions& parallel) const {
  NamedRelation out(columns_);
  const int k = width();
  uint64_t total = 1;
  for (int i = 0; i < k; ++i) {
    DYNFO_CHECK(total <= std::numeric_limits<uint64_t>::max() / n)
        << "complement grid overflow";
    total *= n;
  }

  // Decodes grid index `code` into the mixed-radix row (most-significant
  // column first, matching the sequential odometer's order).
  auto decode = [&](uint64_t code, Row* row) {
    for (int i = k - 1; i >= 0; --i) {
      (*row)[i] = static_cast<relational::Element>(code % n);
      code /= n;
    }
  };
  auto scan = [&](uint64_t chunk_begin, uint64_t chunk_end, auto&& emit) {
    Row row(k, 0);
    decode(chunk_begin, &row);
    size_t polls = 0;
    for (uint64_t code = chunk_begin; code < chunk_end; ++code) {
      if (StridedStop(parallel.governor, &polls)) break;
      if (rows_.find(row) == rows_.end()) emit(row);
      int i = k - 1;
      while (i >= 0 && row[i] + 1 == n) {
        row[i] = 0;
        --i;
      }
      if (i >= 0) ++row[i];
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const size_t num_chunks = pool.PlanChunks(0, total, parallel);
  if (num_chunks <= 1) {
    scan(0, total, [&](const Row& row) { out.rows_.insert(row); });
    return out;
  }
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, total, parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     scan(chunk_begin, chunk_end,
                          [&](const Row& row) { buffer.push_back(row); });
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& row : buffer) out.rows_.insert(std::move(row));
  }
  return out;
}

NamedRelation NamedRelation::PadWithUniverse(const std::vector<std::string>& new_columns,
                                             size_t n,
                                             const core::ExecGovernor* governor) const {
  if (new_columns.empty()) return *this;
  std::vector<std::string> out_columns = columns_;
  for (const std::string& name : new_columns) {
    DYNFO_CHECK(ColumnIndex(name) < 0) << "padding with existing column " << name;
    out_columns.push_back(name);
  }
  NamedRelation out(out_columns);
  const int extra = static_cast<int>(new_columns.size());
  size_t polls = 0;
  for (const Row& base : rows_) {
    if (StridedStop(governor, &polls)) break;
    Row row = base;
    row.resize(base.size() + extra, 0);
    while (true) {
      if (StridedStop(governor, &polls)) break;
      out.rows_.insert(row);
      int i = static_cast<int>(row.size()) - 1;
      while (i >= static_cast<int>(base.size()) && row[i] + 1 == n) {
        row[i] = 0;
        --i;
      }
      if (i < static_cast<int>(base.size())) break;
      ++row[i];
    }
  }
  return out;
}

NamedRelation NamedRelation::Reorder(const std::vector<std::string>& order) const {
  DYNFO_CHECK(order.size() == columns_.size()) << "reorder is not a permutation";
  std::vector<int> positions;
  positions.reserve(order.size());
  for (const std::string& name : order) {
    int index = ColumnIndex(name);
    DYNFO_CHECK(index >= 0) << "reorder is not a permutation: missing " << name;
    positions.push_back(index);
  }
  NamedRelation out(order);
  for (const Row& row : rows_) out.rows_.insert(ProjectRow(row, positions));
  return out;
}

std::string NamedRelation::ToString() const {
  std::string s = "[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) s += ", ";
    s += columns_[i];
  }
  s += "] x " + std::to_string(rows_.size()) + " rows";
  return s;
}

}  // namespace dynfo::fo
