/// \file formula.h
/// First-order formulas over L(tau) (paper §2).
///
/// The language has relation atoms over the vocabulary, the numeric
/// predicates =, <= and BIT(x, y) ("bit y of x, written in binary, is 1"),
/// boolean connectives, and quantifiers over the universe {0..n-1}.
/// Formulas are immutable trees shared via FormulaPtr.

#ifndef DYNFO_FO_FORMULA_H_
#define DYNFO_FO_FORMULA_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fo/term.h"

namespace dynfo::fo {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

enum class FormulaKind {
  kTrue,
  kFalse,
  kAtom,    ///< R(t1, ..., tk)
  kEq,      ///< t1 = t2
  kLe,      ///< t1 <= t2
  kBit,     ///< BIT(t1, t2)
  kNot,
  kAnd,     ///< n-ary conjunction
  kOr,      ///< n-ary disjunction
  kExists,  ///< (exists v1 ... vk) body
  kForall,  ///< (forall v1 ... vk) body
};

/// An immutable first-order formula node.
class Formula {
 public:
  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr Atom(std::string relation, std::vector<Term> args);
  static FormulaPtr Eq(Term left, Term right);
  static FormulaPtr Le(Term left, Term right);
  static FormulaPtr Bit(Term left, Term right);
  static FormulaPtr Not(FormulaPtr operand);
  /// And/Or flatten nested conjunctions/disjunctions of the same kind and
  /// simplify the empty and singleton cases.
  static FormulaPtr And(std::vector<FormulaPtr> operands);
  static FormulaPtr Or(std::vector<FormulaPtr> operands);
  /// Sugar: !left | right and (left -> right) & (right -> left).
  static FormulaPtr Implies(FormulaPtr left, FormulaPtr right);
  static FormulaPtr Iff(FormulaPtr left, FormulaPtr right);
  static FormulaPtr Exists(std::vector<std::string> variables, FormulaPtr body);
  static FormulaPtr Forall(std::vector<std::string> variables, FormulaPtr body);

  FormulaKind kind() const { return kind_; }

  /// Relation name of an atom. CHECK-fails otherwise.
  const std::string& relation() const;
  /// Argument terms of an atom. CHECK-fails otherwise.
  const std::vector<Term>& args() const;
  /// Left/right terms of =, <=, BIT. CHECK-fail otherwise.
  const Term& left() const;
  const Term& right() const;
  /// Children: one for kNot, the operand list for kAnd/kOr, the body (single
  /// element) for quantifiers. Empty otherwise.
  const std::vector<FormulaPtr>& children() const { return children_; }
  /// Quantified variable names. CHECK-fails unless a quantifier.
  const std::vector<std::string>& variables() const;

  /// Free variables, sorted and de-duplicated.
  std::vector<std::string> FreeVariables() const;
  /// Maximum nesting depth of quantifier blocks — the paper's proxy for
  /// parallel time (FO = CRAM[1]: depth = O(1) parallel steps).
  int QuantifierDepth() const;
  /// The number of distinct variables (free or bound) the formula uses —
  /// the paper's proxy for *space* ("space corresponds to number of
  /// variables", §2). Shadowed reuses of a name count once.
  int VariableWidth() const;
  /// Number of AST nodes.
  int Size() const;
  /// Largest parameter index used anywhere, or -1 if none.
  int MaxParameterIndex() const;
  /// Relation names mentioned anywhere in the formula.
  std::set<std::string> MentionedRelations() const;

  /// Capture-avoiding simultaneous substitution of terms for free variables.
  /// Bound variables that would capture a substituted term are renamed.
  static FormulaPtr Substitute(const FormulaPtr& formula,
                               const std::map<std::string, Term>& map);

  std::string ToString() const;

 private:
  explicit Formula(FormulaKind kind) : kind_(kind) {}

  void CollectFreeVariables(std::set<std::string>* out,
                            std::set<std::string>* bound) const;
  void CollectRelations(std::set<std::string>* out) const;

  FormulaKind kind_;
  std::string relation_;
  std::vector<Term> terms_;  // atom args, or {left, right} for =, <=, BIT
  std::vector<FormulaPtr> children_;
  std::vector<std::string> variables_;
};

}  // namespace dynfo::fo

#endif  // DYNFO_FO_FORMULA_H_
