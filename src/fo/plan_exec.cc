/// \file plan_exec.cc
/// Executes compiled plans (fo/plan.h). Operator semantics and counter
/// accounting mirror the legacy evaluator (eval_algebra.cc) exactly — the
/// only behavioral additions are persistent-index probes in place of scans
/// and per-join hash builds, gated by EvalOptions::use_indexes.

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "core/cancel.h"
#include "core/check.h"
#include "core/thread_pool.h"
#include "fo/eval_naive.h"
#include "fo/plan.h"
#include "relational/index.h"
#include "relational/relation.h"

namespace dynfo::fo {

namespace {

Env EnvFromRow(const std::vector<std::string>& columns, const Row& row) {
  Env env;
  for (size_t i = 0; i < columns.size(); ++i) env.Push(columns[i], row[i]);
  return env;
}

std::vector<const Row*> GatherRows(const RowSet& rows) {
  std::vector<const Row*> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(&row);
  return out;
}

void Count(std::atomic<uint64_t>& counter, uint64_t delta = 1) {
  counter.fetch_add(delta, std::memory_order_relaxed);
}

/// Strided governor poll for sequential operator loops: polls once every
/// kGovernorStride iterations (and on the first), so cancellation latency
/// stays bounded without a per-row atomic. Usage:
///   size_t polls = 0;
///   for (...) { if (StridedStop(ctx, &polls)) break; ... }
bool StridedStop(const EvalContext& ctx, size_t* counter) {
  if (ctx.governor == nullptr) return false;
  return ((*counter)++ % core::kGovernorStride) == 0 && ctx.ShouldStop();
}

/// Ground key-part values for one execution (constants, parameters, min/max
/// resolve against the context; column-sourced parts are filled per row).
std::vector<relational::Element> ResolveGroundKey(const AtomAccess& access,
                                                  const EvalContext& ctx) {
  std::vector<relational::Element> out(access.key.size(), 0);
  for (size_t i = 0; i < access.key.size(); ++i) {
    if (access.key[i].source_column >= 0) continue;
    std::optional<relational::Element> value = GroundTerm(access.key[i].ground, ctx);
    DYNFO_CHECK(value.has_value());
    out[i] = *value;
  }
  return out;
}

bool DupChecksPass(const AtomAccess& access, const relational::Tuple& t) {
  for (const AtomAccess::DupCheck& check : access.dup_checks) {
    if (t[check.position] != t[check.first_position]) return false;
  }
  return true;
}

/// Standalone atom scan (key parts are all ground): the kAtomScan node and
/// the build side of the index-less join fallback. Probes the ground-key
/// index when enabled.
NamedRelation ExecuteScan(const AtomAccess& access, const EvalContext& ctx,
                          AtomicEvalStats* stats) {
  const relational::Relation& rel = ctx.structure->relation(access.relation_index);
  DYNFO_CHECK(rel.arity() == access.arity)
      << "atom arity mismatch for " << access.relation_name;
  NamedRelation out(access.new_columns);
  const std::vector<relational::Element> ground = ResolveGroundKey(access, ctx);

  auto emit = [&](const relational::Tuple& t) {
    if (!DupChecksPass(access, t)) return;
    Row row;
    row.reserve(access.extend_positions.size());
    for (int p : access.extend_positions) row.push_back(t[p]);
    out.AddRow(std::move(row));
  };

  if (ctx.options.use_indexes && !access.key.empty()) {
    bool built = false;
    const relational::TupleIndex& index = rel.EnsureIndex(access.KeyPositions(), &built);
    if (built) Count(stats->index_builds);
    relational::Tuple key;
    for (relational::Element value : ground) key = key.Append(value);
    Count(stats->index_probes);
    const std::vector<relational::Tuple>* bucket = index.Find(key);
    if (bucket != nullptr) {
      for (const relational::Tuple& t : *bucket) emit(t);
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  size_t polls = 0;
  for (const relational::Tuple& t : rel) {
    if (StridedStop(ctx, &polls)) break;
    bool match = true;
    for (size_t i = 0; i < access.key.size() && match; ++i) {
      match = t[access.key[i].position] == ground[i];
    }
    if (match) emit(t);
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation ExecuteIndexJoin(const NamedRelation& acc, const ConjStep& step,
                               const EvalContext& ctx, AtomicEvalStats* stats) {
  Count(stats->joins);
  if (!ctx.options.use_indexes) {
    // Legacy shape: hash-join against a freshly scanned build side.
    return acc.Join(ExecuteScan(step.scan, ctx, stats), ctx.options.Policy());
  }

  const AtomAccess& access = step.probe;
  const relational::Relation& rel = ctx.structure->relation(access.relation_index);
  DYNFO_CHECK(rel.arity() == access.arity)
      << "atom arity mismatch for " << access.relation_name;
  Count(stats->indexed_joins);
  bool built = false;
  const relational::TupleIndex& index = rel.EnsureIndex(access.KeyPositions(), &built);
  if (built) Count(stats->index_builds);
  const std::vector<relational::Element> ground = ResolveGroundKey(access, ctx);

  std::vector<std::string> columns = acc.columns();
  for (const std::string& name : access.new_columns) columns.push_back(name);
  NamedRelation out(columns);
  Count(stats->index_probes, acc.size());

  auto probe_one = [&](const Row& row, std::vector<Row>* sink) {
    relational::Tuple key;
    for (size_t i = 0; i < access.key.size(); ++i) {
      const int column = access.key[i].source_column;
      key = key.Append(column >= 0 ? row[column] : ground[i]);
    }
    const std::vector<relational::Tuple>* bucket = index.Find(key);
    if (bucket == nullptr) return;
    for (const relational::Tuple& t : *bucket) {
      if (!DupChecksPass(access, t)) continue;
      Row extended = row;
      for (int p : access.extend_positions) extended.push_back(t[p]);
      sink->push_back(std::move(extended));
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    std::vector<Row> matches;
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      matches.clear();
      probe_one(row, &matches);
      for (Row& extended : matches) out.AddRow(std::move(extended));
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  // Per-chunk buffers merged in chunk order: identical to sequential.
  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       probe_one(*rows[i], &buffer);
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& extended : buffer) out.AddRow(std::move(extended));
  }
  return out;
}

NamedRelation ExecuteFilterRows(const NamedRelation& acc, const ConjStep& step,
                                const EvalContext& ctx, AtomicEvalStats* stats) {
  NamedRelation out(acc.columns());
  Count(stats->filter_row_evals, acc.size());

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      Env env = EnvFromRow(acc.columns(), row);
      if (NaiveEvaluator::Holds(*step.formula, ctx, &env)) out.AddRow(row);
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<const Row*>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<const Row*>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       Env env = EnvFromRow(acc.columns(), *rows[i]);
                       if (NaiveEvaluator::Holds(*step.formula, ctx, &env)) {
                         buffer.push_back(rows[i]);
                       }
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (const std::vector<const Row*>& buffer : buffers) {
    for (const Row* row : buffer) out.AddRow(*row);
  }
  return out;
}

NamedRelation ExecuteEqExtend(const NamedRelation& acc, const ConjStep& step,
                              const EvalContext& ctx, AtomicEvalStats* stats) {
  Count(stats->equality_extensions);
  std::vector<std::string> columns = acc.columns();
  columns.push_back(step.var);
  NamedRelation out(columns);
  relational::Element ground = 0;
  if (!step.eq_from_column) {
    std::optional<relational::Element> value = GroundTerm(step.eq_term, ctx);
    DYNFO_CHECK(value.has_value());
    ground = *value;
  }
  size_t polls = 0;
  for (const Row& row : acc.rows()) {
    if (StridedStop(ctx, &polls)) break;
    Row extended = row;
    extended.push_back(step.eq_from_column ? row[step.eq_source_column] : ground);
    out.AddRow(std::move(extended));
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation ExecuteFilterExtend(const NamedRelation& acc, const ConjStep& step,
                                  const EvalContext& ctx, AtomicEvalStats* stats) {
  Count(stats->filtered_extensions);
  const size_t n = ctx.universe_size();
  std::vector<std::string> columns = acc.columns();
  columns.push_back(step.var);
  NamedRelation out(columns);
  Count(stats->filter_row_evals, acc.size() * n);

  auto extend_one = [&](const Row& row, std::vector<Row>* sink) {
    Env env = EnvFromRow(acc.columns(), row);
    env.Push(step.var, 0);
    for (size_t v = 0; v < n; ++v) {
      env.Set(static_cast<relational::Element>(v));
      if (NaiveEvaluator::Holds(*step.formula, ctx, &env)) {
        Row extended = row;
        extended.push_back(static_cast<relational::Element>(v));
        sink->push_back(std::move(extended));
      }
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    std::vector<Row> extensions;
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      extensions.clear();
      extend_one(row, &extensions);
      for (Row& extended : extensions) out.AddRow(std::move(extended));
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       extend_one(*rows[i], &buffer);
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& extended : buffer) out.AddRow(std::move(extended));
  }
  return out;
}

/// Extends each row by the union of per-branch candidate values: index-probe
/// buckets for atom branches, single pinned values for equality branches.
/// Output-proportional — never visits the universe — unlike the
/// kFilterExtend shape it replaces for disjunctive conjuncts. Duplicate
/// values across branches collapse in the output RowSet.
NamedRelation ExecuteUnionExtend(const NamedRelation& acc, const ConjStep& step,
                                 const EvalContext& ctx, AtomicEvalStats* stats) {
  if (!ctx.options.use_indexes) {
    // Without persistent indexes the per-branch probes would degenerate to
    // per-row relation scans; the legacy extend-and-filter shape is simpler
    // and identically correct.
    return ExecuteFilterExtend(acc, step, ctx, stats);
  }
  Count(stats->filtered_extensions);
  Count(stats->indexed_joins);

  struct BranchState {
    const ExtendBranch* branch;
    const relational::TupleIndex* index = nullptr;  // atom branches
    std::vector<relational::Element> ground;        // atom branches
    relational::Element eq_value = 0;               // ground eq branches
  };
  std::vector<BranchState> states;
  states.reserve(step.union_branches.size());
  for (const ExtendBranch& branch : step.union_branches) {
    BranchState state;
    state.branch = &branch;
    if (branch.is_atom) {
      const relational::Relation& rel =
          ctx.structure->relation(branch.atom.relation_index);
      DYNFO_CHECK(rel.arity() == branch.atom.arity)
          << "atom arity mismatch for " << branch.atom.relation_name;
      bool built = false;
      state.index = &rel.EnsureIndex(branch.atom.KeyPositions(), &built);
      if (built) Count(stats->index_builds);
      state.ground = ResolveGroundKey(branch.atom, ctx);
    } else if (!branch.eq_from_column) {
      std::optional<relational::Element> value = GroundTerm(branch.eq_term, ctx);
      DYNFO_CHECK(value.has_value());
      state.eq_value = *value;
    }
    states.push_back(std::move(state));
  }

  std::vector<std::string> columns = acc.columns();
  columns.push_back(step.var);
  NamedRelation out(columns);
  Count(stats->index_probes, acc.size() * states.size());

  auto extend_one = [&](const Row& row, std::vector<Row>* sink) {
    // Values from different branches may coincide; dedup locally so parallel
    // chunks emit the same multiset the output RowSet would keep anyway.
    std::vector<relational::Element> values;
    for (const BranchState& state : states) {
      const ExtendBranch& branch = *state.branch;
      if (!branch.is_atom) {
        values.push_back(branch.eq_from_column ? row[branch.eq_source_column]
                                               : state.eq_value);
        continue;
      }
      const AtomAccess& access = branch.atom;
      relational::Tuple key;
      for (size_t i = 0; i < access.key.size(); ++i) {
        const int column = access.key[i].source_column;
        key = key.Append(column >= 0 ? row[column] : state.ground[i]);
      }
      const std::vector<relational::Tuple>* bucket = state.index->Find(key);
      if (bucket == nullptr) continue;
      for (const relational::Tuple& t : *bucket) {
        if (!DupChecksPass(access, t)) continue;
        values.push_back(t[access.extend_positions[0]]);
      }
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    for (relational::Element value : values) {
      Row extended = row;
      extended.push_back(value);
      sink->push_back(std::move(extended));
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    std::vector<Row> extensions;
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      extensions.clear();
      extend_one(row, &extensions);
      for (Row& extended : extensions) out.AddRow(std::move(extended));
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       extend_one(*rows[i], &buffer);
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& extended : buffer) out.AddRow(std::move(extended));
  }
  return out;
}

NamedRelation ExecuteConjunction(const Plan& plan, const EvalContext& ctx,
                                 AtomicEvalStats* stats) {
  NamedRelation acc = NamedRelation::Unit();
  for (const ConjStep& step : plan.steps) {
    // One governor poll per pipeline step: a tripped governor aborts the
    // whole conjunction with a partial (discarded) result.
    if (ctx.ShouldStop()) return NamedRelation(plan.columns);
    switch (step.kind) {
      case ConjStepKind::kFilterRows:
        acc = ExecuteFilterRows(acc, step, ctx, stats);
        break;
      case ConjStepKind::kSemiJoin:
        Count(stats->semi_joins);
        acc = acc.SemiJoin(ExecutePlan(*step.child, ctx, stats), step.anti,
                           ctx.Policy());
        break;
      case ConjStepKind::kEqExtend:
        if (acc.empty()) return NamedRelation(plan.columns);
        acc = ExecuteEqExtend(acc, step, ctx, stats);
        break;
      case ConjStepKind::kIndexJoin:
        if (acc.empty()) return NamedRelation(plan.columns);
        acc = ExecuteIndexJoin(acc, step, ctx, stats);
        break;
      case ConjStepKind::kUnionExtend:
        if (acc.empty()) return NamedRelation(plan.columns);
        acc = ExecuteUnionExtend(acc, step, ctx, stats);
        break;
      case ConjStepKind::kFilterExtend:
        if (acc.empty()) return NamedRelation(plan.columns);
        acc = ExecuteFilterExtend(acc, step, ctx, stats);
        break;
      case ConjStepKind::kSatJoin:
        if (acc.empty()) return NamedRelation(plan.columns);
        Count(stats->joins);
        acc = acc.Join(ExecutePlan(*step.child, ctx, stats), ctx.Policy());
        break;
    }
    // The row-level operators charge internally; joins/semi-joins
    // materialize through NamedRelation and are charged here.
    if (step.kind == ConjStepKind::kSemiJoin || step.kind == ConjStepKind::kSatJoin) {
      ctx.Charge(acc.size(), acc.width());
    }
  }
  if (acc.empty()) return NamedRelation(plan.columns);
  DYNFO_CHECK(acc.columns().size() == plan.columns.size());
  return acc;
}

NamedRelation ExecuteNumeric(const Plan& plan, const EvalContext& ctx) {
  const size_t n = ctx.universe_size();
  const Term& lhs = plan.left;
  const Term& rhs = plan.right;
  std::optional<relational::Element> lg = GroundTerm(lhs, ctx);
  std::optional<relational::Element> rg = GroundTerm(rhs, ctx);

  auto holds = [&](relational::Element a, relational::Element b) {
    switch (plan.numeric_kind) {
      case FormulaKind::kEq:
        return a == b;
      case FormulaKind::kLe:
        return a <= b;
      case FormulaKind::kBit:
        return b < 32 && ((a >> b) & 1u) != 0;
      default:
        DYNFO_UNREACHABLE();
    }
  };

  if (lg && rg) {
    return holds(*lg, *rg) ? NamedRelation::Unit() : NamedRelation({});
  }
  if (lg || rg) {
    NamedRelation out(plan.columns);
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      bool ok = lg ? holds(*lg, e) : holds(e, *rg);
      if (ok) out.AddRow({e});
    }
    return out;
  }
  if (lhs.name() == rhs.name()) {
    NamedRelation out(plan.columns);
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      if (holds(e, e)) out.AddRow({e});
    }
    return out;
  }
  if (plan.numeric_kind == FormulaKind::kEq) {
    NamedRelation out(plan.columns);
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      out.AddRow({e, e});
    }
    return out;
  }
  NamedRelation out(plan.columns);
  size_t polls = 0;
  for (size_t a = 0; a < n; ++a) {
    if (StridedStop(ctx, &polls)) break;
    for (size_t b = 0; b < n; ++b) {
      if (holds(static_cast<relational::Element>(a),
                static_cast<relational::Element>(b))) {
        out.AddRow({static_cast<relational::Element>(a),
                    static_cast<relational::Element>(b)});
      }
    }
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation ExecuteUnion(const Plan& plan, const EvalContext& ctx,
                           AtomicEvalStats* stats) {
  NamedRelation out(plan.columns);
  const size_t n = ctx.universe_size();
  size_t polls = 0;
  for (size_t i = 0; i < plan.children.size(); ++i) {
    if (ctx.ShouldStop()) break;
    NamedRelation sat = ExecutePlan(*plan.children[i], ctx, stats);
    const std::vector<int>& sources = plan.union_sources[i];
    const int pads = plan.union_pad_counts[i];
    if (pads > 0) Count(stats->pads);
    if (pads == 0) {
      for (const Row& row : sat.rows()) {
        if (StridedStop(ctx, &polls)) break;
        Row mapped;
        mapped.reserve(sources.size());
        for (int s : sources) mapped.push_back(row[s]);
        out.AddRow(std::move(mapped));
      }
      ctx.Charge(out.size(), out.width());
      continue;
    }
    if (n == 0) continue;  // padding over an empty universe yields nothing
    std::vector<relational::Element> pad(pads, 0);
    for (const Row& row : sat.rows()) {
      if (StridedStop(ctx, &polls)) break;
      std::fill(pad.begin(), pad.end(), 0);
      while (true) {
        // The pad odometer emits n^pads rows per input row, so the poll
        // must live inside the odometer, not just on the outer row loop.
        if (StridedStop(ctx, &polls)) break;
        Row mapped;
        mapped.reserve(sources.size());
        for (int s : sources) {
          mapped.push_back(s >= 0 ? row[s] : pad[static_cast<size_t>(-s - 1)]);
        }
        out.AddRow(std::move(mapped));
        int d = 0;
        while (d < pads) {
          if (static_cast<size_t>(++pad[d]) < n) break;
          pad[d] = 0;
          ++d;
        }
        if (d == pads) break;
      }
    }
    ctx.Charge(out.size(), out.width());
  }
  return out;
}

NamedRelation ExecuteProject(const Plan& plan, const EvalContext& ctx,
                             AtomicEvalStats* stats) {
  NamedRelation sat = ExecutePlan(*plan.children[0], ctx, stats);
  NamedRelation out(plan.columns);
  size_t polls = 0;
  for (const Row& row : sat.rows()) {
    if (StridedStop(ctx, &polls)) break;
    Row projected;
    projected.reserve(plan.project_positions.size());
    for (int p : plan.project_positions) projected.push_back(row[p]);
    out.AddRow(std::move(projected));
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation ExecuteForallGroup(const Plan& plan, const EvalContext& ctx,
                                 AtomicEvalStats* stats) {
  NamedRelation sat = ExecutePlan(*plan.children[0], ctx, stats);
  const size_t n = ctx.universe_size();
  uint64_t required = 1;
  for (int i = 0; i < plan.group_arity; ++i) {
    DYNFO_CHECK(n > 0 && required <= std::numeric_limits<uint64_t>::max() / n)
        << "forall group size overflow";
    required *= n;
  }
  std::unordered_map<Row, uint64_t, RowHash> counts;
  size_t polls = 0;
  for (const Row& row : sat.rows()) {
    if (StridedStop(ctx, &polls)) break;
    Row key;
    key.reserve(plan.keep_positions.size());
    for (int p : plan.keep_positions) key.push_back(row[p]);
    ++counts[key];
  }
  ctx.Charge(counts.size(), plan.keep_positions.size());
  NamedRelation out(plan.columns);
  for (const auto& [key, count] : counts) {
    if (count == required) out.AddRow(key);
  }
  return out;
}

}  // namespace

NamedRelation ExecutePlan(const Plan& plan, const EvalContext& ctx,
                          AtomicEvalStats* stats) {
  // Entry poll: a tripped governor prunes whole subtrees before they start.
  if (ctx.ShouldStop()) return NamedRelation(plan.columns);
  switch (plan.kind) {
    case PlanKind::kUnit:
      return NamedRelation::Unit();
    case PlanKind::kEmpty:
      return NamedRelation(plan.columns);
    case PlanKind::kAtomScan:
      return ExecuteScan(plan.atom, ctx, stats);
    case PlanKind::kNumeric:
      return ExecuteNumeric(plan, ctx);
    case PlanKind::kComplement: {
      NamedRelation sat = ExecutePlan(*plan.children[0], ctx, stats);
      Count(stats->complements);
      return sat.ComplementWithin(ctx.universe_size(), ctx.Policy());
    }
    case PlanKind::kConjunction:
      return ExecuteConjunction(plan, ctx, stats);
    case PlanKind::kUnion:
      return ExecuteUnion(plan, ctx, stats);
    case PlanKind::kProject:
      return ExecuteProject(plan, ctx, stats);
    case PlanKind::kForallGroup:
      return ExecuteForallGroup(plan, ctx, stats);
  }
  DYNFO_UNREACHABLE();
}

std::vector<relational::Tuple> ExecuteDeltaRemovals(const DeltaProgram& program,
                                                    const EvalContext& ctx,
                                                    AtomicEvalStats* stats) {
  DYNFO_CHECK(program.bounded) << "removal program is not delta-safe";
  std::vector<relational::Tuple> out;
  if (program.remove_plan == nullptr) return out;  // keep ≡ true
  const relational::Relation& base =
      ctx.structure->relation(program.base_relation_index);
  DYNFO_CHECK(base.arity() == program.base_arity);
  NamedRelation rows = ExecutePlan(*program.remove_plan, ctx, stats);
  if (rows.empty()) return out;

  if (program.covers_all_positions) {
    // The plan binds every position: rows map bijectively to candidate
    // tuples, so a membership check suffices and no duplicates arise.
    size_t polls = 0;
    for (const Row& row : rows.rows()) {
      if (StridedStop(ctx, &polls)) break;
      relational::Tuple t;
      for (int c : program.full_tuple_sources) t = t.Append(row[c]);
      if (base.Contains(t)) out.push_back(t);
    }
    ctx.Charge(out.size(), static_cast<size_t>(base.arity()));
    return out;
  }

  if (program.key_positions.empty()) {
    // A sentence-shaped condition held: the rule removes every stored tuple.
    out.assign(base.begin(), base.end());
    ctx.Charge(out.size(), static_cast<size_t>(base.arity()));
    return out;
  }

  // Partial cover: expand each (distinct) key row through the base's
  // persistent index. Distinct rows project to distinct keys — every plan
  // column is a key column — so buckets never overlap.
  bool built = false;
  const relational::TupleIndex& index =
      base.EnsureIndex(program.key_positions, &built);
  if (built) Count(stats->index_builds);
  size_t polls = 0;
  for (const Row& row : rows.rows()) {
    if (StridedStop(ctx, &polls)) break;
    relational::Tuple key;
    for (int c : program.key_source_columns) key = key.Append(row[c]);
    Count(stats->index_probes);
    const std::vector<relational::Tuple>* bucket = index.Find(key);
    if (bucket == nullptr) continue;
    out.insert(out.end(), bucket->begin(), bucket->end());
  }
  ctx.Charge(out.size(), static_cast<size_t>(base.arity()));
  return out;
}

}  // namespace dynfo::fo
