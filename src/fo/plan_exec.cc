/// \file plan_exec.cc
/// Executes compiled plans (fo/plan.h). Operator semantics and counter
/// accounting mirror the legacy evaluator (eval_algebra.cc) exactly — the
/// only behavioral additions are persistent-index probes in place of scans
/// and per-join hash builds, gated by EvalOptions::use_indexes.

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_map>

#include "core/cancel.h"
#include "core/check.h"
#include "core/thread_pool.h"
#include "fo/eval_naive.h"
#include "fo/plan.h"
#include "relational/dense_set.h"
#include "relational/index.h"
#include "relational/relation.h"

namespace dynfo::fo {

namespace {

Env EnvFromRow(const std::vector<std::string>& columns, const Row& row) {
  Env env;
  for (size_t i = 0; i < columns.size(); ++i) env.Push(columns[i], row[i]);
  return env;
}

std::vector<const Row*> GatherRows(const RowSet& rows) {
  std::vector<const Row*> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(&row);
  return out;
}

void Count(std::atomic<uint64_t>& counter, uint64_t delta = 1) {
  counter.fetch_add(delta, std::memory_order_relaxed);
}

/// Strided governor poll for sequential operator loops: polls once every
/// kGovernorStride iterations (and on the first), so cancellation latency
/// stays bounded without a per-row atomic. Usage:
///   size_t polls = 0;
///   for (...) { if (StridedStop(ctx, &polls)) break; ... }
bool StridedStop(const EvalContext& ctx, size_t* counter) {
  if (ctx.governor == nullptr) return false;
  return ((*counter)++ % core::kGovernorStride) == 0 && ctx.ShouldStop();
}

/// Ground key-part values for one execution (constants, parameters, min/max
/// resolve against the context; column-sourced parts are filled per row).
std::vector<relational::Element> ResolveGroundKey(const AtomAccess& access,
                                                  const EvalContext& ctx) {
  std::vector<relational::Element> out(access.key.size(), 0);
  for (size_t i = 0; i < access.key.size(); ++i) {
    if (access.key[i].source_column >= 0) continue;
    std::optional<relational::Element> value = GroundTerm(access.key[i].ground, ctx);
    DYNFO_CHECK(value.has_value());
    out[i] = *value;
  }
  return out;
}

bool DupChecksPass(const AtomAccess& access, const relational::Tuple& t) {
  for (const AtomAccess::DupCheck& check : access.dup_checks) {
    if (t[check.position] != t[check.first_position]) return false;
  }
  return true;
}

/// Standalone atom scan (key parts are all ground): the kAtomScan node and
/// the build side of the index-less join fallback. Probes the ground-key
/// index when enabled.
NamedRelation ExecuteScan(const AtomAccess& access, const EvalContext& ctx,
                          AtomicEvalStats* stats) {
  const relational::Relation& rel = ctx.structure->relation(access.relation_index);
  DYNFO_CHECK(rel.arity() == access.arity)
      << "atom arity mismatch for " << access.relation_name;
  NamedRelation out(access.new_columns);
  const std::vector<relational::Element> ground = ResolveGroundKey(access, ctx);

  auto emit = [&](const relational::Tuple& t) {
    if (!DupChecksPass(access, t)) return;
    Row row;
    row.reserve(access.extend_positions.size());
    for (int p : access.extend_positions) row.push_back(t[p]);
    out.AddRow(std::move(row));
  };

  if (ctx.options.use_indexes && !access.key.empty()) {
    bool built = false;
    const relational::TupleIndex& index = rel.EnsureIndex(access.KeyPositions(), &built);
    if (built) Count(stats->index_builds);
    relational::Tuple key;
    for (relational::Element value : ground) key = key.Append(value);
    Count(stats->index_probes);
    const std::vector<relational::Tuple>* bucket = index.Find(key);
    if (bucket != nullptr) {
      for (const relational::Tuple& t : *bucket) emit(t);
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  size_t polls = 0;
  for (const relational::Tuple& t : rel) {
    if (StridedStop(ctx, &polls)) break;
    bool match = true;
    for (size_t i = 0; i < access.key.size() && match; ++i) {
      match = t[access.key[i].position] == ground[i];
    }
    if (match) emit(t);
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation ExecuteIndexJoin(const NamedRelation& acc, const ConjStep& step,
                               const EvalContext& ctx, AtomicEvalStats* stats) {
  Count(stats->joins);
  if (!ctx.options.use_indexes) {
    // Legacy shape: hash-join against a freshly scanned build side.
    return acc.Join(ExecuteScan(step.scan, ctx, stats), ctx.options.Policy());
  }

  const AtomAccess& access = step.probe;
  const relational::Relation& rel = ctx.structure->relation(access.relation_index);
  DYNFO_CHECK(rel.arity() == access.arity)
      << "atom arity mismatch for " << access.relation_name;
  Count(stats->indexed_joins);
  bool built = false;
  const relational::TupleIndex& index = rel.EnsureIndex(access.KeyPositions(), &built);
  if (built) Count(stats->index_builds);
  const std::vector<relational::Element> ground = ResolveGroundKey(access, ctx);

  std::vector<std::string> columns = acc.columns();
  for (const std::string& name : access.new_columns) columns.push_back(name);
  NamedRelation out(columns);
  Count(stats->index_probes, acc.size());

  auto probe_one = [&](const Row& row, std::vector<Row>* sink) {
    relational::Tuple key;
    for (size_t i = 0; i < access.key.size(); ++i) {
      const int column = access.key[i].source_column;
      key = key.Append(column >= 0 ? row[column] : ground[i]);
    }
    const std::vector<relational::Tuple>* bucket = index.Find(key);
    if (bucket == nullptr) return;
    for (const relational::Tuple& t : *bucket) {
      if (!DupChecksPass(access, t)) continue;
      Row extended = row;
      for (int p : access.extend_positions) extended.push_back(t[p]);
      sink->push_back(std::move(extended));
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    std::vector<Row> matches;
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      matches.clear();
      probe_one(row, &matches);
      for (Row& extended : matches) out.AddRow(std::move(extended));
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  // Per-chunk buffers merged in chunk order: identical to sequential.
  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       probe_one(*rows[i], &buffer);
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& extended : buffer) out.AddRow(std::move(extended));
  }
  return out;
}

NamedRelation ExecuteFilterRows(const NamedRelation& acc, const ConjStep& step,
                                const EvalContext& ctx, AtomicEvalStats* stats) {
  NamedRelation out(acc.columns());
  Count(stats->filter_row_evals, acc.size());

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      Env env = EnvFromRow(acc.columns(), row);
      if (NaiveEvaluator::Holds(*step.formula, ctx, &env)) out.AddRow(row);
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<const Row*>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<const Row*>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       Env env = EnvFromRow(acc.columns(), *rows[i]);
                       if (NaiveEvaluator::Holds(*step.formula, ctx, &env)) {
                         buffer.push_back(rows[i]);
                       }
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (const std::vector<const Row*>& buffer : buffers) {
    for (const Row* row : buffer) out.AddRow(*row);
  }
  return out;
}

NamedRelation ExecuteEqExtend(const NamedRelation& acc, const ConjStep& step,
                              const EvalContext& ctx, AtomicEvalStats* stats) {
  Count(stats->equality_extensions);
  std::vector<std::string> columns = acc.columns();
  columns.push_back(step.var);
  NamedRelation out(columns);
  relational::Element ground = 0;
  if (!step.eq_from_column) {
    std::optional<relational::Element> value = GroundTerm(step.eq_term, ctx);
    DYNFO_CHECK(value.has_value());
    ground = *value;
  }
  size_t polls = 0;
  for (const Row& row : acc.rows()) {
    if (StridedStop(ctx, &polls)) break;
    Row extended = row;
    extended.push_back(step.eq_from_column ? row[step.eq_source_column] : ground);
    out.AddRow(std::move(extended));
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation ExecuteFilterExtend(const NamedRelation& acc, const ConjStep& step,
                                  const EvalContext& ctx, AtomicEvalStats* stats) {
  Count(stats->filtered_extensions);
  const size_t n = ctx.universe_size();
  std::vector<std::string> columns = acc.columns();
  columns.push_back(step.var);
  NamedRelation out(columns);
  Count(stats->filter_row_evals, acc.size() * n);

  auto extend_one = [&](const Row& row, std::vector<Row>* sink) {
    Env env = EnvFromRow(acc.columns(), row);
    env.Push(step.var, 0);
    for (size_t v = 0; v < n; ++v) {
      env.Set(static_cast<relational::Element>(v));
      if (NaiveEvaluator::Holds(*step.formula, ctx, &env)) {
        Row extended = row;
        extended.push_back(static_cast<relational::Element>(v));
        sink->push_back(std::move(extended));
      }
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    std::vector<Row> extensions;
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      extensions.clear();
      extend_one(row, &extensions);
      for (Row& extended : extensions) out.AddRow(std::move(extended));
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       extend_one(*rows[i], &buffer);
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& extended : buffer) out.AddRow(std::move(extended));
  }
  return out;
}

/// Extends each row by the union of per-branch candidate values: index-probe
/// buckets for atom branches, single pinned values for equality branches.
/// Output-proportional — never visits the universe — unlike the
/// kFilterExtend shape it replaces for disjunctive conjuncts. Duplicate
/// values across branches collapse in the output RowSet.
NamedRelation ExecuteUnionExtend(const NamedRelation& acc, const ConjStep& step,
                                 const EvalContext& ctx, AtomicEvalStats* stats) {
  if (!ctx.options.use_indexes) {
    // Without persistent indexes the per-branch probes would degenerate to
    // per-row relation scans; the legacy extend-and-filter shape is simpler
    // and identically correct.
    return ExecuteFilterExtend(acc, step, ctx, stats);
  }
  Count(stats->filtered_extensions);
  Count(stats->indexed_joins);

  struct BranchState {
    const ExtendBranch* branch;
    const relational::TupleIndex* index = nullptr;  // atom branches
    std::vector<relational::Element> ground;        // atom branches
    relational::Element eq_value = 0;               // ground eq branches
  };
  std::vector<BranchState> states;
  states.reserve(step.union_branches.size());
  for (const ExtendBranch& branch : step.union_branches) {
    BranchState state;
    state.branch = &branch;
    if (branch.is_atom) {
      const relational::Relation& rel =
          ctx.structure->relation(branch.atom.relation_index);
      DYNFO_CHECK(rel.arity() == branch.atom.arity)
          << "atom arity mismatch for " << branch.atom.relation_name;
      bool built = false;
      state.index = &rel.EnsureIndex(branch.atom.KeyPositions(), &built);
      if (built) Count(stats->index_builds);
      state.ground = ResolveGroundKey(branch.atom, ctx);
    } else if (!branch.eq_from_column) {
      std::optional<relational::Element> value = GroundTerm(branch.eq_term, ctx);
      DYNFO_CHECK(value.has_value());
      state.eq_value = *value;
    }
    states.push_back(std::move(state));
  }

  std::vector<std::string> columns = acc.columns();
  columns.push_back(step.var);
  NamedRelation out(columns);
  Count(stats->index_probes, acc.size() * states.size());

  auto extend_one = [&](const Row& row, std::vector<Row>* sink) {
    // Values from different branches may coincide; dedup locally so parallel
    // chunks emit the same multiset the output RowSet would keep anyway.
    std::vector<relational::Element> values;
    for (const BranchState& state : states) {
      const ExtendBranch& branch = *state.branch;
      if (!branch.is_atom) {
        values.push_back(branch.eq_from_column ? row[branch.eq_source_column]
                                               : state.eq_value);
        continue;
      }
      const AtomAccess& access = branch.atom;
      relational::Tuple key;
      for (size_t i = 0; i < access.key.size(); ++i) {
        const int column = access.key[i].source_column;
        key = key.Append(column >= 0 ? row[column] : state.ground[i]);
      }
      const std::vector<relational::Tuple>* bucket = state.index->Find(key);
      if (bucket == nullptr) continue;
      for (const relational::Tuple& t : *bucket) {
        if (!DupChecksPass(access, t)) continue;
        values.push_back(t[access.extend_positions[0]]);
      }
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    for (relational::Element value : values) {
      Row extended = row;
      extended.push_back(value);
      sink->push_back(std::move(extended));
    }
  };

  core::ThreadPool& pool = core::ThreadPool::Global();
  const core::ParallelOptions parallel = ctx.Policy();
  const size_t num_chunks = pool.PlanChunks(0, acc.size(), parallel);
  if (num_chunks <= 1) {
    std::vector<Row> extensions;
    size_t polls = 0;
    for (const Row& row : acc.rows()) {
      if (StridedStop(ctx, &polls)) break;
      extensions.clear();
      extend_one(row, &extensions);
      for (Row& extended : extensions) out.AddRow(std::move(extended));
    }
    ctx.Charge(out.size(), out.width());
    return out;
  }

  std::vector<const Row*> rows = GatherRows(acc.rows());
  std::vector<std::vector<Row>> buffers(num_chunks);
  pool.ParallelFor(0, rows.size(), parallel,
                   [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                     std::vector<Row>& buffer = buffers[chunk];
                     for (size_t i = chunk_begin; i < chunk_end; ++i) {
                       extend_one(*rows[i], &buffer);
                     }
                     ctx.Charge(buffer.size(), out.width());
                   });
  for (std::vector<Row>& buffer : buffers) {
    for (Row& extended : buffer) out.AddRow(std::move(extended));
  }
  return out;
}

NamedRelation ExecuteConjunction(const Plan& plan, const EvalContext& ctx,
                                 AtomicEvalStats* stats) {
  NamedRelation acc = NamedRelation::Unit();
  for (const ConjStep& step : plan.steps) {
    // One governor poll per pipeline step: a tripped governor aborts the
    // whole conjunction with a partial (discarded) result.
    if (ctx.ShouldStop()) return NamedRelation(plan.columns);
    switch (step.kind) {
      case ConjStepKind::kFilterRows:
        acc = ExecuteFilterRows(acc, step, ctx, stats);
        break;
      case ConjStepKind::kSemiJoin:
        Count(stats->semi_joins);
        acc = acc.SemiJoin(ExecutePlan(*step.child, ctx, stats), step.anti,
                           ctx.Policy());
        break;
      case ConjStepKind::kEqExtend:
        if (acc.empty()) return NamedRelation(plan.columns);
        acc = ExecuteEqExtend(acc, step, ctx, stats);
        break;
      case ConjStepKind::kIndexJoin:
        if (acc.empty()) return NamedRelation(plan.columns);
        acc = ExecuteIndexJoin(acc, step, ctx, stats);
        break;
      case ConjStepKind::kUnionExtend:
        if (acc.empty()) return NamedRelation(plan.columns);
        acc = ExecuteUnionExtend(acc, step, ctx, stats);
        break;
      case ConjStepKind::kFilterExtend:
        if (acc.empty()) return NamedRelation(plan.columns);
        acc = ExecuteFilterExtend(acc, step, ctx, stats);
        break;
      case ConjStepKind::kSatJoin:
        if (acc.empty()) return NamedRelation(plan.columns);
        Count(stats->joins);
        acc = acc.Join(ExecutePlan(*step.child, ctx, stats), ctx.Policy());
        break;
    }
    // The row-level operators charge internally; joins/semi-joins
    // materialize through NamedRelation and are charged here.
    if (step.kind == ConjStepKind::kSemiJoin || step.kind == ConjStepKind::kSatJoin) {
      ctx.Charge(acc.size(), acc.width());
    }
  }
  if (acc.empty()) return NamedRelation(plan.columns);
  DYNFO_CHECK(acc.columns().size() == plan.columns.size());
  return acc;
}

NamedRelation ExecuteNumeric(const Plan& plan, const EvalContext& ctx) {
  const size_t n = ctx.universe_size();
  const Term& lhs = plan.left;
  const Term& rhs = plan.right;
  std::optional<relational::Element> lg = GroundTerm(lhs, ctx);
  std::optional<relational::Element> rg = GroundTerm(rhs, ctx);

  auto holds = [&](relational::Element a, relational::Element b) {
    switch (plan.numeric_kind) {
      case FormulaKind::kEq:
        return a == b;
      case FormulaKind::kLe:
        return a <= b;
      case FormulaKind::kBit:
        return b < 32 && ((a >> b) & 1u) != 0;
      default:
        DYNFO_UNREACHABLE();
    }
  };

  if (lg && rg) {
    return holds(*lg, *rg) ? NamedRelation::Unit() : NamedRelation({});
  }
  if (lg || rg) {
    NamedRelation out(plan.columns);
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      bool ok = lg ? holds(*lg, e) : holds(e, *rg);
      if (ok) out.AddRow({e});
    }
    return out;
  }
  if (lhs.name() == rhs.name()) {
    NamedRelation out(plan.columns);
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      if (holds(e, e)) out.AddRow({e});
    }
    return out;
  }
  if (plan.numeric_kind == FormulaKind::kEq) {
    NamedRelation out(plan.columns);
    for (size_t v = 0; v < n; ++v) {
      relational::Element e = static_cast<relational::Element>(v);
      out.AddRow({e, e});
    }
    return out;
  }
  NamedRelation out(plan.columns);
  size_t polls = 0;
  for (size_t a = 0; a < n; ++a) {
    if (StridedStop(ctx, &polls)) break;
    for (size_t b = 0; b < n; ++b) {
      if (holds(static_cast<relational::Element>(a),
                static_cast<relational::Element>(b))) {
        out.AddRow({static_cast<relational::Element>(a),
                    static_cast<relational::Element>(b)});
      }
    }
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation ExecuteUnion(const Plan& plan, const EvalContext& ctx,
                           AtomicEvalStats* stats) {
  NamedRelation out(plan.columns);
  const size_t n = ctx.universe_size();
  size_t polls = 0;
  for (size_t i = 0; i < plan.children.size(); ++i) {
    if (ctx.ShouldStop()) break;
    NamedRelation sat = ExecutePlan(*plan.children[i], ctx, stats);
    const std::vector<int>& sources = plan.union_sources[i];
    const int pads = plan.union_pad_counts[i];
    if (pads > 0) Count(stats->pads);
    if (pads == 0) {
      for (const Row& row : sat.rows()) {
        if (StridedStop(ctx, &polls)) break;
        Row mapped;
        mapped.reserve(sources.size());
        for (int s : sources) mapped.push_back(row[s]);
        out.AddRow(std::move(mapped));
      }
      ctx.Charge(out.size(), out.width());
      continue;
    }
    if (n == 0) continue;  // padding over an empty universe yields nothing
    std::vector<relational::Element> pad(pads, 0);
    for (const Row& row : sat.rows()) {
      if (StridedStop(ctx, &polls)) break;
      std::fill(pad.begin(), pad.end(), 0);
      while (true) {
        // The pad odometer emits n^pads rows per input row, so the poll
        // must live inside the odometer, not just on the outer row loop.
        if (StridedStop(ctx, &polls)) break;
        Row mapped;
        mapped.reserve(sources.size());
        for (int s : sources) {
          mapped.push_back(s >= 0 ? row[s] : pad[static_cast<size_t>(-s - 1)]);
        }
        out.AddRow(std::move(mapped));
        int d = 0;
        while (d < pads) {
          if (static_cast<size_t>(++pad[d]) < n) break;
          pad[d] = 0;
          ++d;
        }
        if (d == pads) break;
      }
    }
    ctx.Charge(out.size(), out.width());
  }
  return out;
}

NamedRelation ExecuteProject(const Plan& plan, const EvalContext& ctx,
                             AtomicEvalStats* stats) {
  NamedRelation sat = ExecutePlan(*plan.children[0], ctx, stats);
  NamedRelation out(plan.columns);
  size_t polls = 0;
  for (const Row& row : sat.rows()) {
    if (StridedStop(ctx, &polls)) break;
    Row projected;
    projected.reserve(plan.project_positions.size());
    for (int p : plan.project_positions) projected.push_back(row[p]);
    out.AddRow(std::move(projected));
  }
  ctx.Charge(out.size(), out.width());
  return out;
}

NamedRelation ExecuteForallGroup(const Plan& plan, const EvalContext& ctx,
                                 AtomicEvalStats* stats) {
  NamedRelation sat = ExecutePlan(*plan.children[0], ctx, stats);
  const size_t n = ctx.universe_size();
  uint64_t required = 1;
  for (int i = 0; i < plan.group_arity; ++i) {
    DYNFO_CHECK(n > 0 && required <= std::numeric_limits<uint64_t>::max() / n)
        << "forall group size overflow";
    required *= n;
  }
  std::unordered_map<Row, uint64_t, RowHash> counts;
  size_t polls = 0;
  for (const Row& row : sat.rows()) {
    if (StridedStop(ctx, &polls)) break;
    Row key;
    key.reserve(plan.keep_positions.size());
    for (int p : plan.keep_positions) key.push_back(row[p]);
    ++counts[key];
  }
  ctx.Charge(counts.size(), plan.keep_positions.size());
  NamedRelation out(plan.columns);
  for (const auto& [key, count] : counts) {
    if (count == required) out.AddRow(key);
  }
  return out;
}

}  // namespace

NamedRelation ExecutePlan(const Plan& plan, const EvalContext& ctx,
                          AtomicEvalStats* stats) {
  // Entry poll: a tripped governor prunes whole subtrees before they start.
  if (ctx.ShouldStop()) return NamedRelation(plan.columns);
  switch (plan.kind) {
    case PlanKind::kUnit:
      return NamedRelation::Unit();
    case PlanKind::kEmpty:
      return NamedRelation(plan.columns);
    case PlanKind::kAtomScan:
      return ExecuteScan(plan.atom, ctx, stats);
    case PlanKind::kNumeric:
      return ExecuteNumeric(plan, ctx);
    case PlanKind::kComplement: {
      NamedRelation sat = ExecutePlan(*plan.children[0], ctx, stats);
      Count(stats->complements);
      return sat.ComplementWithin(ctx.universe_size(), ctx.Policy());
    }
    case PlanKind::kConjunction:
      return ExecuteConjunction(plan, ctx, stats);
    case PlanKind::kUnion:
      return ExecuteUnion(plan, ctx, stats);
    case PlanKind::kProject:
      return ExecuteProject(plan, ctx, stats);
    case PlanKind::kForallGroup:
      return ExecuteForallGroup(plan, ctx, stats);
  }
  DYNFO_UNREACHABLE();
}

std::vector<relational::Tuple> ExecuteDeltaRemovals(const DeltaProgram& program,
                                                    const EvalContext& ctx,
                                                    AtomicEvalStats* stats) {
  DYNFO_CHECK(program.bounded) << "removal program is not delta-safe";
  std::vector<relational::Tuple> out;
  if (program.remove_plan == nullptr) return out;  // keep ≡ true
  const relational::Relation& base =
      ctx.structure->relation(program.base_relation_index);
  DYNFO_CHECK(base.arity() == program.base_arity);
  NamedRelation rows = ExecutePlan(*program.remove_plan, ctx, stats);
  if (rows.empty()) return out;

  if (program.covers_all_positions) {
    // The plan binds every position: rows map bijectively to candidate
    // tuples, so a membership check suffices and no duplicates arise.
    size_t polls = 0;
    for (const Row& row : rows.rows()) {
      if (StridedStop(ctx, &polls)) break;
      relational::Tuple t;
      for (int c : program.full_tuple_sources) t = t.Append(row[c]);
      if (base.Contains(t)) out.push_back(t);
    }
    ctx.Charge(out.size(), static_cast<size_t>(base.arity()));
    return out;
  }

  if (program.key_positions.empty()) {
    // A sentence-shaped condition held: the rule removes every stored tuple.
    out.assign(base.begin(), base.end());
    ctx.Charge(out.size(), static_cast<size_t>(base.arity()));
    return out;
  }

  // Partial cover: expand each (distinct) key row through the base's
  // persistent index. Distinct rows project to distinct keys — every plan
  // column is a key column — so buckets never overlap.
  bool built = false;
  const relational::TupleIndex& index =
      base.EnsureIndex(program.key_positions, &built);
  if (built) Count(stats->index_builds);
  size_t polls = 0;
  for (const Row& row : rows.rows()) {
    if (StridedStop(ctx, &polls)) break;
    relational::Tuple key;
    for (int c : program.key_source_columns) key = key.Append(row[c]);
    Count(stats->index_probes);
    const std::vector<relational::Tuple>* bucket = index.Find(key);
    if (bucket == nullptr) continue;
    out.insert(out.end(), bucket->begin(), bucket->end());
  }
  ctx.Charge(out.size(), static_cast<size_t>(base.arity()));
  return out;
}

// ---------------------------------------------------------------------------
// Dense kernel execution (see plan.h). Values flow through DenseResult: a
// rank-0 bit, a rank-1 bit vector, or a rank-2 row-major plane, with tail
// bits zero at all times (the masks below restore the invariant after every
// complement/fill). Atoms and numerics are specialized to word-wide copies,
// broadcasts, and prefix/suffix masks where the slot pattern allows, and
// fall back to per-bit probes otherwise — so execution is total over any
// backend mix, merely fastest when the inputs expose DenseBaseViews.

namespace {

class DenseEvaluator {
 public:
  DenseEvaluator(const DenseExecContext& ctx, size_t n)
      : ctx_(ctx),
        n_(n),
        wpr_((n + 63) / 64),
        tail_(n % 64 == 0 ? ~uint64_t{0} : ((uint64_t{1} << (n % 64)) - 1)) {}

  uint64_t words_touched() const { return words_touched_; }

  /// Evaluates `op` into `out`. False = governor stop; `out` unspecified.
  bool Eval(const DenseOp& op, DenseResult* out) {
    if (op.rank == 0) {
      // Rank-0 subtrees are boolean circuits over ground probes (no slots in
      // scope means no vector operands anywhere above the next quantifier):
      // evaluate them as plain bools with short-circuiting instead of
      // threading one-bit DenseResults through the vector machinery. This is
      // the whole kernel for PARITY-style programs.
      bool value;
      if (!EvalScalar(op, &value)) return false;
      Fill(out, 0, value);
      return true;
    }
    return EvalVector(op, out);
  }

 private:
  /// Scalar evaluation of a rank-0 non-quantifier subtree. Quantifier nodes
  /// (whose bodies climb back to rank >= 1) drop into the vector path.
  /// False = governor stop; `*value` unspecified.
  bool EvalScalar(const DenseOp& op, bool* value) {
    if (Poll()) return false;
    switch (op.kind) {
      case DenseOpKind::kConst:
        *value = op.const_value;
        return true;
      case DenseOpKind::kAtom: {
        // Rank 0 means every argument is ground. Probe the bit plane
        // directly when the base view is available, else fall back to the
        // overlay-aware Contains.
        const relational::Relation& rel =
            ctx_.structure->relation(op.relation_index);
        if (const relational::DenseSet* view = rel.DenseBaseView()) {
          if (op.relation_arity == 0) {
            *value = (view->words()[0] & uint64_t{1}) != 0;
            return true;
          }
          const size_t g0 = static_cast<size_t>(Ground(op.args[0]));
          DYNFO_CHECK(g0 < n_) << "element outside dense universe";
          if (op.relation_arity == 1) {
            *value = ((view->words()[g0 / 64] >> (g0 % 64)) & uint64_t{1}) != 0;
            return true;
          }
          const size_t g1 = static_cast<size_t>(Ground(op.args[1]));
          DYNFO_CHECK(g1 < n_) << "element outside dense universe";
          *value = ((view->words()[g0 * wpr_ + g1 / 64] >> (g1 % 64)) &
                    uint64_t{1}) != 0;
          return true;
        }
        relational::Tuple t;
        for (const DenseTerm& a : op.args) t = t.Append(Ground(a));
        *value = rel.Contains(t);
        return true;
      }
      case DenseOpKind::kNumeric: {
        const relational::Element lv = Ground(op.left);
        const relational::Element rv = Ground(op.right);
        switch (op.numeric_kind) {
          case FormulaKind::kEq:
            *value = lv == rv;
            break;
          case FormulaKind::kLe:
            *value = lv <= rv;
            break;
          default:
            *value = rv < 32 && ((lv >> rv) & 1u) != 0;
            break;
        }
        return true;
      }
      case DenseOpKind::kNot: {
        if (!EvalScalar(*op.children[0], value)) return false;
        *value = !*value;
        return true;
      }
      case DenseOpKind::kAnd:
      case DenseOpKind::kOr: {
        const bool conj = op.kind == DenseOpKind::kAnd;
        *value = conj;
        for (const DenseOpPtr& child : op.children) {
          bool v;
          if (!EvalScalar(*child, &v)) return false;
          if (v != conj) {  // short-circuit, as the vector path does
            *value = !conj;
            return true;
          }
        }
        return true;
      }
      case DenseOpKind::kExists:
      case DenseOpKind::kForall: {
        DenseResult reduced;
        if (!EvalVector(op, &reduced)) return false;
        *value = reduced.bit;
        return true;
      }
    }
    DYNFO_UNREACHABLE();
  }

  /// The vector path: values flow as packed planes through DenseResult.
  bool EvalVector(const DenseOp& op, DenseResult* out) {
    if (Poll()) return false;
    switch (op.kind) {
      case DenseOpKind::kConst:
        Fill(out, op.rank, op.const_value);
        return true;
      case DenseOpKind::kAtom:
        return EvalAtom(op, out);
      case DenseOpKind::kNumeric:
        return EvalNumeric(op, out);
      case DenseOpKind::kNot: {
        if (!Eval(*op.children[0], out)) return false;
        Complement(out);
        return true;
      }
      case DenseOpKind::kAnd:
      case DenseOpKind::kOr: {
        const bool conj = op.kind == DenseOpKind::kAnd;
        if (!Eval(*op.children[0], out)) return false;
        DenseResult scratch;
        for (size_t i = 1; i < op.children.size(); ++i) {
          if (out->rank == 0 && out->bit != conj) return true;  // short-circuit
          if (!Eval(*op.children[i], &scratch)) return false;
          Combine(out, scratch, conj);
        }
        return true;
      }
      case DenseOpKind::kExists:
      case DenseOpKind::kForall: {
        DenseResult body;
        if (!Eval(*op.children[0], &body)) return false;
        const bool exists = op.kind == DenseOpKind::kExists;
        for (int q = 0; q < op.quantified; ++q) ReduceLastSlot(&body, exists);
        *out = std::move(body);
        return true;
      }
    }
    DYNFO_UNREACHABLE();
  }

 private:
  bool Poll() {
    if (ctx_.governor == nullptr) return false;
    return (poll_counter_++ % core::kGovernorStride) == 0 &&
           core::GovernorStop(ctx_.governor);
  }

  relational::Element Ground(const DenseTerm& t) const {
    switch (t.kind) {
      case DenseTerm::Kind::kParam:
        DYNFO_CHECK(t.index < ctx_.num_params)
            << "request parameter $" << t.index << " not bound";
        return ctx_.params[t.index];
      case DenseTerm::Kind::kConstant:
        return ctx_.structure->constant(t.index);
      case DenseTerm::Kind::kLiteral:
        return t.value;
      case DenseTerm::Kind::kMax:
        return static_cast<relational::Element>(n_ - 1);
      case DenseTerm::Kind::kSlot:
        break;
    }
    DYNFO_UNREACHABLE();
  }

  size_t WordsFor(int rank) const {
    return rank == 2 ? n_ * wpr_ : (rank == 1 ? wpr_ : 0);
  }

  /// Zeroes tail bits of every row, restoring the representation invariant.
  void MaskTails(std::vector<uint64_t>* words, int rank) const {
    if (tail_ == ~uint64_t{0}) return;
    if (rank == 1) {
      (*words)[wpr_ - 1] &= tail_;
    } else if (rank == 2) {
      for (size_t r = 0; r < n_; ++r) (*words)[r * wpr_ + wpr_ - 1] &= tail_;
    }
  }

  /// Runs fn(word_begin, word_end) over [0, total), chunked through the
  /// global pool when the parallel policy asks for threads (the governor is
  /// polled at every chunk claim by the pool itself).
  template <typename Fn>
  void ForWords(size_t total, Fn&& fn) {
    if (ctx_.parallel.num_threads > 1 && total >= ctx_.parallel.grain) {
      core::ThreadPool::Global().ParallelFor(
          0, total, ctx_.parallel,
          [&](size_t, size_t begin, size_t end) { fn(begin, end); });
    } else {
      fn(0, total);
    }
    words_touched_ += total;
  }

  void Fill(DenseResult* out, int rank, bool value) {
    out->rank = rank;
    out->bit = value;
    if (rank == 0) {
      out->words.clear();
      return;
    }
    out->words.assign(WordsFor(rank), value ? ~uint64_t{0} : uint64_t{0});
    if (value) MaskTails(&out->words, rank);
    words_touched_ += WordsFor(rank);
  }

  void Complement(DenseResult* v) {
    if (v->rank == 0) {
      v->bit = !v->bit;
      return;
    }
    uint64_t* w = v->words.data();
    ForWords(v->words.size(), [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) w[i] = ~w[i];
    });
    MaskTails(&v->words, v->rank);
  }

  void Combine(DenseResult* acc, const DenseResult& operand, bool conj) {
    DYNFO_CHECK(acc->rank == operand.rank);
    if (acc->rank == 0) {
      acc->bit = conj ? (acc->bit && operand.bit) : (acc->bit || operand.bit);
      return;
    }
    uint64_t* a = acc->words.data();
    const uint64_t* b = operand.words.data();
    ForWords(acc->words.size(), [&](size_t begin, size_t end) {
      if (conj) {
        for (size_t i = begin; i < end; ++i) a[i] &= b[i];
      } else {
        for (size_t i = begin; i < end; ++i) a[i] |= b[i];
      }
    });
  }

  /// Turns a value over one slot (a bit for rank 0 inputs, else `vec`) into
  /// a value at `rank`, broadcasting over the slots it does not mention.
  void ExpandVector(std::vector<uint64_t>&& vec, int slot, int rank,
                    DenseResult* out) {
    if (rank == 1) {
      DYNFO_CHECK(slot == 0);
      out->rank = 1;
      out->words = std::move(vec);
      return;
    }
    DYNFO_CHECK(rank == 2 && slot >= 0 && slot <= 1);
    out->rank = 2;
    out->words.assign(n_ * wpr_, 0);
    if (slot == 1) {
      // Value depends on the column only: every row is a copy of vec.
      for (size_t r = 0; r < n_; ++r) {
        std::copy(vec.begin(), vec.end(), out->words.begin() + r * wpr_);
      }
    } else {
      // Value depends on the row only: full or empty rows.
      for (size_t r = 0; r < n_; ++r) {
        if (((vec[r / 64] >> (r % 64)) & 1) != 0) {
          uint64_t* row = out->words.data() + r * wpr_;
          std::fill(row, row + wpr_, ~uint64_t{0});
          row[wpr_ - 1] &= tail_;
        }
      }
    }
    words_touched_ += n_ * wpr_;
  }

  bool EvalAtom(const DenseOp& op, DenseResult* out) {
    const relational::Relation& rel =
        ctx_.structure->relation(op.relation_index);
    int slot_count = 0;
    for (const DenseTerm& a : op.args) {
      if (a.kind == DenseTerm::Kind::kSlot) ++slot_count;
    }
    if (slot_count == 0) {
      // Ground probe. The apply hot path lands here with a dense base and no
      // overlay: answer straight from the bit plane, skipping tuple assembly
      // and the overlay-aware Contains.
      if (const relational::DenseSet* view = rel.DenseBaseView()) {
        bool bit;
        if (op.relation_arity == 0) {
          bit = (view->words()[0] & uint64_t{1}) != 0;
        } else {
          const size_t g0 = static_cast<size_t>(Ground(op.args[0]));
          DYNFO_CHECK(g0 < n_) << "element outside dense universe";
          if (op.relation_arity == 1) {
            bit = ((view->words()[g0 / 64] >> (g0 % 64)) & uint64_t{1}) != 0;
          } else {
            const size_t g1 = static_cast<size_t>(Ground(op.args[1]));
            DYNFO_CHECK(g1 < n_) << "element outside dense universe";
            bit = ((view->words()[g0 * wpr_ + g1 / 64] >> (g1 % 64)) &
                   uint64_t{1}) != 0;
          }
        }
        Fill(out, op.rank, bit);
        return true;
      }
      relational::Tuple t;
      for (const DenseTerm& a : op.args) t = t.Append(Ground(a));
      Fill(out, op.rank, rel.Contains(t));
      return true;
    }
    const relational::DenseSet* view = rel.DenseBaseView();
    if (view == nullptr) return EvalAtomGeneric(op, rel, out);

    if (op.relation_arity == 1) {
      const DenseTerm& a = op.args[0];
      std::vector<uint64_t> vec(view->words(), view->words() + wpr_);
      words_touched_ += wpr_;
      ExpandVector(std::move(vec), a.index, op.rank, out);
      return true;
    }
    DYNFO_CHECK(op.relation_arity == 2);
    const DenseTerm& a0 = op.args[0];
    const DenseTerm& a1 = op.args[1];
    const bool s0 = a0.kind == DenseTerm::Kind::kSlot;
    const bool s1 = a1.kind == DenseTerm::Kind::kSlot;
    if (s0 && s1) {
      if (a0.index == a1.index) {
        // R(x, x): the diagonal, as a vector over that slot.
        std::vector<uint64_t> vec(wpr_, 0);
        const uint64_t* w = view->words();
        for (size_t i = 0; i < n_; ++i) {
          if (((w[i * wpr_ + i / 64] >> (i % 64)) & 1) != 0) {
            vec[i / 64] |= uint64_t{1} << (i % 64);
          }
        }
        words_touched_ += n_;
        ExpandVector(std::move(vec), a0.index, op.rank, out);
        return true;
      }
      DYNFO_CHECK(op.rank == 2);
      out->rank = 2;
      if (a0.index == 0) {
        // R(row, col): the plane itself.
        out->words.assign(view->words(), view->words() + n_ * wpr_);
        words_touched_ += n_ * wpr_;
      } else {
        // R(col, row): transpose via ctz scan of set bits.
        out->words.assign(n_ * wpr_, 0);
        const uint64_t* src = view->words();
        for (size_t r = 0; r < n_; ++r) {
          if (Poll()) return false;
          for (size_t wi = 0; wi < wpr_; ++wi) {
            uint64_t bits = src[r * wpr_ + wi];
            while (bits != 0) {
              const size_t c =
                  wi * 64 + static_cast<size_t>(std::countr_zero(bits));
              out->words[c * wpr_ + r / 64] |= uint64_t{1} << (r % 64);
              bits &= bits - 1;
            }
          }
        }
        words_touched_ += n_ * wpr_;
      }
      return true;
    }
    // One slot, one ground argument: a vector over the slot.
    const int slot = s0 ? a0.index : a1.index;
    const relational::Element g = Ground(s0 ? a1 : a0);
    std::vector<uint64_t> vec(wpr_, 0);
    if (static_cast<size_t>(g) < n_) {
      const uint64_t* w = view->words();
      if (s1) {
        // R(g, x): copy row g.
        std::copy(w + static_cast<size_t>(g) * wpr_,
                  w + (static_cast<size_t>(g) + 1) * wpr_, vec.begin());
        words_touched_ += wpr_;
      } else {
        // R(x, g): gather column g.
        const size_t word_off = static_cast<size_t>(g) / 64;
        const unsigned bit_off = static_cast<unsigned>(g % 64);
        for (size_t x = 0; x < n_; ++x) {
          if (((w[x * wpr_ + word_off] >> bit_off) & 1) != 0) {
            vec[x / 64] |= uint64_t{1} << (x % 64);
          }
        }
        words_touched_ += n_;
      }
    }
    ExpandVector(std::move(vec), slot, op.rank, out);
    return true;
  }

  /// Per-bit fallback when the relation has no dense view (hash backend):
  /// correct for every pattern, paying one Contains per cell.
  bool EvalAtomGeneric(const DenseOp& op, const relational::Relation& rel,
                       DenseResult* out) {
    relational::Element ground[relational::Tuple::kMaxArity] = {0, 0, 0, 0};
    for (size_t i = 0; i < op.args.size(); ++i) {
      if (op.args[i].kind != DenseTerm::Kind::kSlot) {
        ground[i] = Ground(op.args[i]);
      }
    }
    auto contains_at = [&](relational::Element row, relational::Element col) {
      relational::Tuple t;
      for (size_t i = 0; i < op.args.size(); ++i) {
        if (op.args[i].kind == DenseTerm::Kind::kSlot) {
          t = t.Append(op.args[i].index == 0 ? row : col);
        } else {
          t = t.Append(ground[i]);
        }
      }
      return rel.Contains(t);
    };
    return FillPredicate(op.rank, SlotMask(op.args), contains_at, out);
  }

  bool EvalNumeric(const DenseOp& op, DenseResult* out) {
    const DenseTerm& l = op.left;
    const DenseTerm& r = op.right;
    const bool ls = l.kind == DenseTerm::Kind::kSlot;
    const bool rs = r.kind == DenseTerm::Kind::kSlot;
    if (!ls && !rs) {
      const relational::Element lv = Ground(l);
      const relational::Element rv = Ground(r);
      bool holds = false;
      switch (op.numeric_kind) {
        case FormulaKind::kEq:
          holds = lv == rv;
          break;
        case FormulaKind::kLe:
          holds = lv <= rv;
          break;
        default:
          holds = rv < 32 && ((lv >> rv) & 1u) != 0;
          break;
      }
      Fill(out, op.rank, holds);
      return true;
    }
    if (op.numeric_kind == FormulaKind::kEq) {
      if (ls && rs) {
        if (l.index == r.index) {
          Fill(out, op.rank, true);
          return true;
        }
        // x = y over a rank-2 schema: the identity plane.
        DYNFO_CHECK(op.rank == 2);
        out->rank = 2;
        out->words.assign(n_ * wpr_, 0);
        for (size_t i = 0; i < n_; ++i) {
          out->words[i * wpr_ + i / 64] |= uint64_t{1} << (i % 64);
        }
        words_touched_ += n_;
        return true;
      }
      const int slot = ls ? l.index : r.index;
      const relational::Element g = Ground(ls ? r : l);
      std::vector<uint64_t> vec(wpr_, 0);
      if (static_cast<size_t>(g) < n_) {
        vec[static_cast<size_t>(g) / 64] |= uint64_t{1} << (g % 64);
      }
      ExpandVector(std::move(vec), slot, op.rank, out);
      return true;
    }
    if (op.numeric_kind == FormulaKind::kLe) {
      if (ls && rs) {
        if (l.index == r.index) {
          Fill(out, op.rank, true);
          return true;
        }
        DYNFO_CHECK(op.rank == 2);
        out->rank = 2;
        out->words.assign(n_ * wpr_, 0);
        for (size_t row = 0; row < n_; ++row) {
          uint64_t* w = out->words.data() + row * wpr_;
          if (l.index == 0) {
            // row <= col: suffix mask from `row`.
            SuffixMask(w, row);
          } else {
            // col <= row: prefix mask through `row`.
            PrefixMask(w, row);
          }
        }
        words_touched_ += n_ * wpr_;
        return true;
      }
      const int slot = ls ? l.index : r.index;
      const uint64_t g = Ground(ls ? r : l);
      std::vector<uint64_t> vec(wpr_, 0);
      if (ls) {
        // x <= g: prefix through min(g, n-1).
        if (g >= n_ - 1) {
          PrefixMask(vec.data(), n_ - 1);
        } else {
          PrefixMask(vec.data(), static_cast<size_t>(g));
        }
      } else if (g < n_) {
        // g <= x: suffix from g.
        SuffixMask(vec.data(), static_cast<size_t>(g));
      }
      ExpandVector(std::move(vec), slot, op.rank, out);
      return true;
    }
    // BIT with slot operands: per-bit evaluation.
    auto holds_at = [&](relational::Element row, relational::Element col) {
      const relational::Element lv =
          ls ? (l.index == 0 ? row : col) : Ground(l);
      const relational::Element rv =
          rs ? (r.index == 0 ? row : col) : Ground(r);
      return rv < 32 && ((lv >> rv) & 1u) != 0;
    };
    int mask = 0;
    if (ls) mask |= 1 << l.index;
    if (rs) mask |= 1 << r.index;
    return FillPredicate(op.rank, mask, holds_at, out);
  }

  /// Which slots the lowered args mention, as a bitmask over {0, 1}.
  static int SlotMask(const std::vector<DenseTerm>& args) {
    int mask = 0;
    for (const DenseTerm& a : args) {
      if (a.kind == DenseTerm::Kind::kSlot) mask |= 1 << a.index;
    }
    return mask;
  }

  /// Evaluates pred(row, col) per referenced cell and broadcasts the result
  /// to `rank` (cells the predicate does not reference are broadcast over).
  template <typename Pred>
  bool FillPredicate(int rank, int slot_mask, const Pred& pred,
                     DenseResult* out) {
    if (slot_mask == 3) {
      DYNFO_CHECK(rank == 2);
      out->rank = 2;
      out->words.assign(n_ * wpr_, 0);
      for (size_t row = 0; row < n_; ++row) {
        if (Poll()) return false;
        uint64_t* w = out->words.data() + row * wpr_;
        for (size_t col = 0; col < n_; ++col) {
          if (pred(static_cast<relational::Element>(row),
                   static_cast<relational::Element>(col))) {
            w[col / 64] |= uint64_t{1} << (col % 64);
          }
        }
      }
      words_touched_ += n_ * wpr_;
      return true;
    }
    const int slot = slot_mask == 2 ? 1 : 0;
    std::vector<uint64_t> vec(wpr_, 0);
    for (size_t i = 0; i < n_; ++i) {
      if ((i % 4096) == 0 && Poll()) return false;
      const relational::Element e = static_cast<relational::Element>(i);
      const bool holds = slot == 0 ? pred(e, 0) : pred(0, e);
      if (holds) vec[i / 64] |= uint64_t{1} << (i % 64);
    }
    words_touched_ += wpr_;
    ExpandVector(std::move(vec), slot, rank, out);
    return true;
  }

  /// Sets bits [0, upto] (inclusive) in a zeroed row of wpr_ words.
  void PrefixMask(uint64_t* w, size_t upto) const {
    const size_t full = upto / 64;
    for (size_t i = 0; i < full; ++i) w[i] = ~uint64_t{0};
    w[full] = (upto % 64 == 63) ? ~uint64_t{0}
                                : ((uint64_t{1} << (upto % 64 + 1)) - 1);
  }

  /// Sets bits [from, n) in a zeroed row of wpr_ words.
  void SuffixMask(uint64_t* w, size_t from) const {
    const size_t first = from / 64;
    w[first] = ~uint64_t{0} << (from % 64);
    for (size_t i = first + 1; i < wpr_; ++i) w[i] = ~uint64_t{0};
    w[wpr_ - 1] &= tail_;
  }

  /// Reduces the highest slot: rank 2 -> rank 1 by row-any/row-all, rank 1
  /// -> rank 0 by vector-any/vector-all.
  void ReduceLastSlot(DenseResult* v, bool exists) {
    if (v->rank == 2) {
      std::vector<uint64_t> vec(wpr_, 0);
      for (size_t r = 0; r < n_; ++r) {
        const uint64_t* row = v->words.data() + r * wpr_;
        bool value;
        if (exists) {
          uint64_t any = 0;
          for (size_t i = 0; i < wpr_; ++i) any |= row[i];
          value = any != 0;
        } else {
          value = true;
          for (size_t i = 0; i + 1 < wpr_; ++i) {
            if (row[i] != ~uint64_t{0}) {
              value = false;
              break;
            }
          }
          if (value) value = row[wpr_ - 1] == tail_;
        }
        if (value) vec[r / 64] |= uint64_t{1} << (r % 64);
      }
      words_touched_ += n_ * wpr_;
      v->rank = 1;
      v->words = std::move(vec);
      return;
    }
    DYNFO_CHECK(v->rank == 1);
    bool value;
    if (exists) {
      uint64_t any = 0;
      for (size_t i = 0; i < wpr_; ++i) any |= v->words[i];
      value = any != 0;
    } else {
      value = true;
      for (size_t i = 0; i + 1 < wpr_; ++i) {
        if (v->words[i] != ~uint64_t{0}) {
          value = false;
          break;
        }
      }
      if (value) value = v->words[wpr_ - 1] == tail_;
    }
    words_touched_ += wpr_;
    v->rank = 0;
    v->bit = value;
    v->words.clear();
  }

  const DenseExecContext& ctx_;
  size_t n_;
  size_t wpr_;
  uint64_t tail_;
  uint64_t words_touched_ = 0;
  size_t poll_counter_ = 0;
};

}  // namespace

bool ExecuteDenseProgram(const DenseProgram& program,
                         const DenseExecContext& ctx, DenseResult* out) {
  DYNFO_CHECK(ctx.structure != nullptr && program.root != nullptr);
  DenseEvaluator eval(ctx, ctx.structure->universe_size());
  const bool ok = eval.Eval(*program.root, out);
  if (ctx.stats != nullptr) {
    Count(ctx.stats->dense_kernel_launches);
    // Rank-0 programs touch no vector words; skip the no-op atomic add.
    if (eval.words_touched() != 0) {
      Count(ctx.stats->words_scanned, eval.words_touched());
    }
  }
  return ok;
}

}  // namespace dynfo::fo
