/// \file plan.h
/// Compile-once query plans for formula evaluation.
///
/// The algebra evaluator's greedy conjunction planner (eval_algebra.cc) makes
/// the same decisions on every Sat call: which conjuncts act as filters,
/// which generator binds each variable, which atom positions are pinned by
/// request parameters. None of those decisions depend on the structure's
/// *contents* — only on the formula and the vocabulary — so this layer runs
/// the planner once per formula at program-load time and emits a reusable
/// operator tree that ExecutePlan() replays against any structure/parameter
/// binding. The hot Apply path then does zero planning work per update.
///
/// Plans also record, per relation atom, the exact set of argument positions
/// whose values are known before the atom is touched (bound variables and
/// ground terms — including request parameters). Those position sets become
/// persistent secondary indexes on the stored relations
/// (relational/index.h), registered once at load time and probed on every
/// execution, so an atom join costs O(matching rows) instead of O(|R|).
///
/// Both layers are gated by EvalOptions::use_compiled_plans and
/// EvalOptions::use_indexes; with either off, execution degrades to the
/// corresponding legacy shape, and in all configurations the result is
/// observationally identical to NaiveEvaluator (property-tested).

#ifndef DYNFO_FO_PLAN_H_
#define DYNFO_FO_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fo/eval_context.h"
#include "fo/eval_stats.h"
#include "fo/formula.h"
#include "fo/named_relation.h"
#include "relational/structure.h"

namespace dynfo::fo {

class Plan;
using PlanPtr = std::shared_ptr<const Plan>;

/// Compiled access path for one relation atom R(t1..tk): which argument
/// positions are checkable before scanning (the probe key) and which bind new
/// output columns. Compiled against a fixed input schema (the bound columns
/// at this point of the plan); ground term *values* (constants, parameters,
/// min/max) are resolved per execution.
struct AtomAccess {
  std::string relation_name;
  int relation_index = -1;
  int arity = 0;

  /// A key component: atom argument position `position` must equal the value
  /// of input column `source_column`, or of the ground term when
  /// source_column < 0. Sorted by position (the canonical index-key order).
  struct KeyPart {
    int position = 0;
    int source_column = -1;
    Term ground = Term::Min();
  };
  std::vector<KeyPart> key;

  /// First-occurrence positions of new variables, in position order; the
  /// output row appends the tuple component at each, named by `new_columns`.
  std::vector<int> extend_positions;
  std::vector<std::string> new_columns;

  /// Later occurrences of a new variable: candidate[position] must equal
  /// candidate[first_position].
  struct DupCheck {
    int position = 0;
    int first_position = 0;
  };
  std::vector<DupCheck> dup_checks;

  /// The sorted position subset to index on (extracted from `key`).
  std::vector<int> KeyPositions() const;
};

/// One step of a compiled conjunction, in execution order. Mirrors the
/// legacy greedy planner's operator classes (eval_algebra.cc, SatAnd),
/// plus kUnionExtend, a compiled-only operator with no legacy counterpart.
enum class ConjStepKind {
  kFilterRows,    ///< fully-bound conjunct: keep rows where it holds
  kSemiJoin,      ///< fully-bound quantified conjunct: (anti-)semi-join child
  kEqExtend,      ///< x = t, t computable per row: append one column
  kIndexJoin,     ///< relation atom: probe a persistent index (or hash join)
  kUnionExtend,   ///< one unbound var, disjunction of atoms/equalities:
                  ///< extend by the union of per-branch index probes
  kFilterExtend,  ///< one unbound var, quantifier-free: extend + naive filter
  kSatJoin,       ///< last resort: natural join with the child's full Sat
};

/// One branch of a kUnionExtend step: a source of candidate values for the
/// step's single new variable, given a bound row. Either a relation atom
/// whose only fresh variable is that variable (index probe → bucket values)
/// or an equality pinning it to an input column / ground term. Every branch
/// derives values from stored tuples or bound terms — never the universe —
/// which is what makes the operator delta-safe (PlanIsDeltaBounded).
struct ExtendBranch {
  bool is_atom = false;
  AtomAccess atom;  ///< is_atom: new_columns == {var}
  bool eq_from_column = false;
  int eq_source_column = -1;
  Term eq_term = Term::Min();
};

struct ConjStep {
  ConjStepKind kind = ConjStepKind::kFilterRows;
  /// The accumulator schema entering this step (for per-row environments).
  std::vector<std::string> columns_before;

  /// kFilterRows / kFilterExtend: conjunct evaluated naively per row.
  FormulaPtr formula;

  /// kSemiJoin / kSatJoin: compiled subplan; `anti` negates the semi-join.
  PlanPtr child;
  bool anti = false;

  /// kEqExtend / kFilterExtend: the new column.
  std::string var;
  /// kEqExtend value source: an input column, or a ground term.
  bool eq_from_column = false;
  int eq_source_column = -1;
  Term eq_term = Term::Min();

  /// kIndexJoin: `probe` keys on bound columns + ground terms; `scan` is the
  /// same atom compiled standalone, the build side of the hash-join fallback
  /// used when indexes are disabled.
  AtomAccess probe;
  AtomAccess scan;

  /// kUnionExtend: one branch per disjunct. With indexes disabled the step
  /// degrades to the kFilterExtend shape via `formula` (the disjunction).
  std::vector<ExtendBranch> union_branches;
};

enum class PlanKind {
  kUnit,         ///< one empty row ("true")
  kEmpty,        ///< no rows ("false")
  kAtomScan,     ///< standalone relation atom (key = ground terms only)
  kNumeric,      ///< =, <=, BIT
  kComplement,   ///< universe^k minus the child
  kConjunction,  ///< greedy step sequence
  kUnion,        ///< disjunction with per-child padding
  kProject,      ///< exists: project the child
  kForallGroup,  ///< forall: group-count the child
};

/// An immutable compiled operator tree. Output schema (`columns`) is fixed at
/// compile time and matches what the legacy evaluator would produce for the
/// same formula, column for column.
class Plan {
 public:
  PlanKind kind = PlanKind::kUnit;
  std::vector<std::string> columns;

  /// kAtomScan (columns == atom.new_columns).
  AtomAccess atom;

  /// kNumeric.
  FormulaKind numeric_kind = FormulaKind::kEq;
  Term left = Term::Min();
  Term right = Term::Min();

  /// kComplement / kProject / kForallGroup: one child; kUnion: one per
  /// disjunct.
  std::vector<PlanPtr> children;

  /// kConjunction.
  std::vector<ConjStep> steps;

  /// kUnion, per child: output column j takes child column union_sources[i][j]
  /// when >= 0, else pad slot -(union_sources[i][j] + 1) ranging over the
  /// universe. union_pad_counts[i] is the number of pad slots.
  std::vector<std::vector<int>> union_sources;
  std::vector<int> union_pad_counts;

  /// kProject: positions into the child's columns, one per output column.
  std::vector<int> project_positions;

  /// kForallGroup: positions of the kept (non-quantified) child columns, and
  /// the number of quantified variables present in the body (a group is full
  /// when it has n^group_arity rows).
  std::vector<int> keep_positions;
  int group_arity = 0;
};

/// Compiles formulas against a fixed vocabulary. Stateless beyond the
/// vocabulary reference; the compiled plan is valid for any structure over
/// that vocabulary and any parameter binding.
class PlanCompiler {
 public:
  explicit PlanCompiler(const relational::Vocabulary& vocabulary)
      : vocabulary_(vocabulary) {}

  PlanPtr Compile(const FormulaPtr& formula) const;

 private:
  PlanPtr CompileNode(const Formula& f) const;
  PlanPtr CompileAtomScan(const Formula& f) const;
  PlanPtr CompileNumeric(const Formula& f) const;
  PlanPtr CompileAnd(const Formula& f) const;
  PlanPtr CompileOr(const Formula& f) const;
  PlanPtr CompileExists(const Formula& f) const;
  PlanPtr CompileForall(const Formula& f) const;

  /// Compiles one atom against the given bound schema: bound variables and
  /// ground terms become key parts, fresh variables become extensions.
  AtomAccess CompileAtom(const Formula& f,
                         const std::vector<std::string>& bound) const;

  const relational::Vocabulary& vocabulary_;
};

/// Semi-naive removal program for one delta rule R' = (R ∧ keep) ∨ additions.
/// The removal side is compiled from ¬keep (normalized to NNF): its
/// satisfying rows, expanded against the tuples already stored in the base
/// relation, are exactly Δ⁻ — the stored tuples the update deletes. The
/// additions side already produces Δ⁺ directly (it is unioned into the
/// target), so together the two sides let Apply touch only changed tuples.
///
/// A program is *bounded* ("delta-safe") when the compiled removal plan
/// derives every row from stored tuples and bound terms — no operator ranges
/// over the whole universe (see PlanIsDeltaBounded). Unbounded programs make
/// the caller fall back to full rematerialization, which stays the
/// unconditional correctness path.
struct DeltaProgram {
  bool bounded = false;
  int base_relation_index = -1;
  int base_arity = 0;

  /// Compiled NNF of ¬keep; null when keep ≡ true (nothing is ever removed).
  PlanPtr remove_plan;

  /// Base argument positions covered by the remove plan's output columns
  /// (sorted ascending — the canonical index-key order) and, parallel to
  /// them, the plan column each position reads from.
  std::vector<int> key_positions;
  std::vector<int> key_source_columns;

  /// When the plan binds every base position, each removal row *is* a full
  /// candidate tuple: full_tuple_sources[p] is the plan column for base
  /// position p, and expansion is a membership check instead of an index
  /// probe.
  bool covers_all_positions = false;
  std::vector<int> full_tuple_sources;
};

/// Compiles the removal side of the delta rule
/// `R'(x-bar) = (R(x-bar) ∧ keep) ∨ additions` with x-bar = `tuple_variables`
/// in order. `not_keep` must be ¬keep in negation normal form (or null when
/// keep ≡ true). The result is bounded only when the compiled plan is
/// delta-safe and every plan column maps to a tuple variable.
DeltaProgram CompileDeltaRemovals(const PlanCompiler& compiler,
                                  const FormulaPtr& not_keep,
                                  const std::vector<std::string>& tuple_variables,
                                  int base_relation_index, int base_arity);

/// True when every row `plan` emits derives from stored tuples and bound
/// terms: rejects complements, union padding, universe-ranging numeric
/// comparisons, and filtered extensions, recursing into joined subplans.
bool PlanIsDeltaBounded(const Plan& plan);

/// Executes a compiled plan. Honors ctx.options (thread policy and
/// use_indexes); counter increments match the legacy evaluator's operator
/// accounting, plus the index_* counters.
NamedRelation ExecutePlan(const Plan& plan, const EvalContext& ctx,
                          AtomicEvalStats* stats);

/// Executes a bounded removal program against the base relation stored in
/// ctx.structure: runs the remove plan, then expands each row to stored
/// tuples — by membership check when the plan binds every position, else by
/// probing the base's persistent index on key_positions (an empty key with a
/// nonempty plan result clears the whole relation, which is what the rule
/// demands). Returned tuples are distinct.
std::vector<relational::Tuple> ExecuteDeltaRemovals(const DeltaProgram& program,
                                                    const EvalContext& ctx,
                                                    AtomicEvalStats* stats);

/// Registers every index the plan will probe on the relations of
/// `structure`, so the first execution pays no index builds. Increments
/// stats->index_builds per index actually constructed (when non-null).
void RegisterPlanIndexes(const Plan& plan, const relational::Structure& structure,
                         AtomicEvalStats* stats = nullptr);

/// Same, for a removal program: the remove plan's own probe indexes plus the
/// base-relation expansion index on key_positions.
void RegisterDeltaProgramIndexes(const DeltaProgram& program,
                                 const relational::Structure& structure,
                                 AtomicEvalStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Dense bit-parallel kernel lowering.
//
// A second, lower compilation tier below the operator-tree plans: formulas
// whose variables fit in at most two "slots" lower to a DenseProgram whose
// execution works on whole 64-bit words of packed DenseSet bitmaps (AND /
// ANDNOT / OR / complement-with-tail-mask + popcount reductions) instead of
// interpreting operator trees row by row. Slot 0 indexes bitmap rows, slot 1
// bitmap columns; a rank-0 value is a single bit, rank 1 a bit vector over
// the universe, rank 2 an n-row plane. Quantifiers push their variables as
// the highest slots and reduce them with row-wise any/all. Lowering is total
// or refused: LowerToDense returns null whenever any subformula would need
// more than two slots or a slot-dependent atom over a relation wider than
// DenseSet::kMaxDenseArity, and the caller falls back to the plan executor.

/// A term pre-resolved at lowering time: exec resolves kParam against the
/// request tuple, kConstant against the structure's constant table (by index,
/// so kSetConstant updates are honored), kMax against n-1.
struct DenseTerm {
  enum class Kind : uint8_t { kSlot, kParam, kConstant, kLiteral, kMax };
  Kind kind = Kind::kLiteral;
  int index = 0;                  ///< slot / parameter / constant index
  relational::Element value = 0;  ///< kLiteral
};

enum class DenseOpKind {
  kConst,    ///< true / false
  kAtom,     ///< R(t1..tk); ground-only atoms stay scalar Contains probes
  kNumeric,  ///< =, <=, BIT lowered to masks (BIT per-bit)
  kNot,      ///< complement + tail mask
  kAnd,      ///< word-wise AND fold
  kOr,       ///< word-wise OR fold
  kExists,   ///< reduce the highest slot(s) by row-any
  kForall,   ///< reduce the highest slot(s) by row-all
};

struct DenseOp;
using DenseOpPtr = std::shared_ptr<const DenseOp>;

struct DenseOp {
  DenseOpKind kind = DenseOpKind::kConst;
  int rank = 0;  ///< slots in scope at this node (0..2)
  bool const_value = false;
  int relation_index = -1;  ///< kAtom
  int relation_arity = 0;
  std::vector<DenseTerm> args;  ///< kAtom arguments
  FormulaKind numeric_kind = FormulaKind::kEq;
  DenseTerm left, right;  ///< kNumeric
  int quantified = 0;     ///< kExists / kForall: slots reduced
  std::vector<DenseOpPtr> children;
};

/// A lowered formula plus the inputs its kernels read word-wise.
struct DenseProgram {
  int rank = 0;  ///< output rank == number of free slots
  DenseOpPtr root;
  /// Relations referenced with slot arguments: execution reads their packed
  /// words, so the engine must hold a DenseBaseView for each (ground-only
  /// atom relations are probed through Relation::Contains and may stay hash).
  std::vector<int> view_relations;
};
using DenseProgramPtr = std::shared_ptr<const DenseProgram>;

/// Lowers `formula`, whose free variables are exactly `slots` (in slot
/// order), against the vocabulary. Returns null when the formula does not
/// fit the dense tier (see file comment above).
DenseProgramPtr LowerToDense(const FormulaPtr& formula,
                             const std::vector<std::string>& slots,
                             const relational::Vocabulary& vocabulary);

/// Everything dense execution needs; no Env, no heap beyond rank>=1 scratch.
struct DenseExecContext {
  const relational::Structure* structure = nullptr;
  const relational::Element* params = nullptr;  ///< request tuple components
  int num_params = 0;
  const core::ExecGovernor* governor = nullptr;  ///< polled strided; nullable
  AtomicEvalStats* stats = nullptr;              ///< nullable
  /// Word loops above `parallel.grain` words chunk through the global pool;
  /// the attached governor is polled at every chunk claim.
  core::ParallelOptions parallel;
};

/// A dense value: rank 0 is `bit`; rank 1 `words` holds ceil(n/64) words;
/// rank 2 holds n rows of ceil(n/64) words. Tail bits are always zero.
struct DenseResult {
  int rank = 0;
  bool bit = false;
  std::vector<uint64_t> words;
};

/// Executes a lowered program. Returns false when the governor stopped the
/// run mid-kernel (out is unspecified then); nothing observable is mutated
/// either way. Missing DenseBaseViews degrade to per-bit Contains probes, so
/// results are correct for any backend mix.
bool ExecuteDenseProgram(const DenseProgram& program,
                         const DenseExecContext& ctx, DenseResult* out);

}  // namespace dynfo::fo

#endif  // DYNFO_FO_PLAN_H_
