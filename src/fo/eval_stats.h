/// \file eval_stats.h
/// Work counters shared by the algebra evaluator and the compiled-plan
/// executor, exposed for the evaluator-ablation benchmark.
///
/// One evaluator may serve several concurrent rule evaluations (the engine's
/// rule-parallel Apply), so the live counters are relaxed atomics — they are
/// diagnostics, not synchronization — snapshotted into a plain struct for
/// reporting. Keep the two structs field-for-field in sync.

#ifndef DYNFO_FO_EVAL_STATS_H_
#define DYNFO_FO_EVAL_STATS_H_

#include <atomic>
#include <cstdint>

namespace dynfo::fo {

/// A point-in-time snapshot of the counters (plain, copyable).
struct EvalStats {
  // Operator counts.
  uint64_t joins = 0;
  uint64_t semi_joins = 0;
  uint64_t equality_extensions = 0;
  uint64_t filtered_extensions = 0;
  uint64_t filter_row_evals = 0;
  uint64_t complements = 0;
  uint64_t pads = 0;
  // Compile-once plan layer.
  uint64_t planner_runs = 0;      ///< plan compilations (once per formula)
  uint64_t plan_cache_hits = 0;   ///< Sat calls served by a cached plan
  uint64_t plan_cache_misses = 0; ///< Sat calls that had to compile
  // Persistent-index layer.
  uint64_t indexed_joins = 0;  ///< atom joins served by a persistent index
  uint64_t index_probes = 0;   ///< per-row index lookups
  uint64_t index_builds = 0;   ///< lazy (re)constructions of an index
  // Dense bit-parallel layer.
  uint64_t dense_kernel_launches = 0;  ///< lowered-program executions
  uint64_t words_scanned = 0;          ///< 64-bit words touched by kernels
  uint64_t backend_conversions = 0;    ///< hash<->dense rebuilds (engine-filled)

  double PlanCacheHitRate() const {
    const uint64_t total = plan_cache_hits + plan_cache_misses;
    return total > 0 ? static_cast<double>(plan_cache_hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// Lock-free counterpart of EvalStats (relaxed ordering; see file comment).
struct AtomicEvalStats {
  std::atomic<uint64_t> joins{0};
  std::atomic<uint64_t> semi_joins{0};
  std::atomic<uint64_t> equality_extensions{0};
  std::atomic<uint64_t> filtered_extensions{0};
  std::atomic<uint64_t> filter_row_evals{0};
  std::atomic<uint64_t> complements{0};
  std::atomic<uint64_t> pads{0};
  std::atomic<uint64_t> planner_runs{0};
  std::atomic<uint64_t> plan_cache_hits{0};
  std::atomic<uint64_t> plan_cache_misses{0};
  std::atomic<uint64_t> indexed_joins{0};
  std::atomic<uint64_t> index_probes{0};
  std::atomic<uint64_t> index_builds{0};
  std::atomic<uint64_t> dense_kernel_launches{0};
  std::atomic<uint64_t> words_scanned{0};
  std::atomic<uint64_t> backend_conversions{0};

  AtomicEvalStats() = default;
  // Copying snapshots the counters (keeps AlgebraEvaluator — and Engine —
  // copyable). Not meant to run concurrently with updates to `other`.
  AtomicEvalStats(const AtomicEvalStats& other) { *this = other; }
  AtomicEvalStats& operator=(const AtomicEvalStats& other) {
    const EvalStats snapshot = other.Snapshot();
    Store(snapshot);
    return *this;
  }

  EvalStats Snapshot() const {
    EvalStats out;
    out.joins = joins.load(std::memory_order_relaxed);
    out.semi_joins = semi_joins.load(std::memory_order_relaxed);
    out.equality_extensions = equality_extensions.load(std::memory_order_relaxed);
    out.filtered_extensions = filtered_extensions.load(std::memory_order_relaxed);
    out.filter_row_evals = filter_row_evals.load(std::memory_order_relaxed);
    out.complements = complements.load(std::memory_order_relaxed);
    out.pads = pads.load(std::memory_order_relaxed);
    out.planner_runs = planner_runs.load(std::memory_order_relaxed);
    out.plan_cache_hits = plan_cache_hits.load(std::memory_order_relaxed);
    out.plan_cache_misses = plan_cache_misses.load(std::memory_order_relaxed);
    out.indexed_joins = indexed_joins.load(std::memory_order_relaxed);
    out.index_probes = index_probes.load(std::memory_order_relaxed);
    out.index_builds = index_builds.load(std::memory_order_relaxed);
    out.dense_kernel_launches =
        dense_kernel_launches.load(std::memory_order_relaxed);
    out.words_scanned = words_scanned.load(std::memory_order_relaxed);
    out.backend_conversions =
        backend_conversions.load(std::memory_order_relaxed);
    return out;
  }

  void Store(const EvalStats& snapshot) {
    joins.store(snapshot.joins, std::memory_order_relaxed);
    semi_joins.store(snapshot.semi_joins, std::memory_order_relaxed);
    equality_extensions.store(snapshot.equality_extensions, std::memory_order_relaxed);
    filtered_extensions.store(snapshot.filtered_extensions, std::memory_order_relaxed);
    filter_row_evals.store(snapshot.filter_row_evals, std::memory_order_relaxed);
    complements.store(snapshot.complements, std::memory_order_relaxed);
    pads.store(snapshot.pads, std::memory_order_relaxed);
    planner_runs.store(snapshot.planner_runs, std::memory_order_relaxed);
    plan_cache_hits.store(snapshot.plan_cache_hits, std::memory_order_relaxed);
    plan_cache_misses.store(snapshot.plan_cache_misses, std::memory_order_relaxed);
    indexed_joins.store(snapshot.indexed_joins, std::memory_order_relaxed);
    index_probes.store(snapshot.index_probes, std::memory_order_relaxed);
    index_builds.store(snapshot.index_builds, std::memory_order_relaxed);
    dense_kernel_launches.store(snapshot.dense_kernel_launches,
                                std::memory_order_relaxed);
    words_scanned.store(snapshot.words_scanned, std::memory_order_relaxed);
    backend_conversions.store(snapshot.backend_conversions,
                              std::memory_order_relaxed);
  }

  void Reset() { Store(EvalStats()); }
};

}  // namespace dynfo::fo

#endif  // DYNFO_FO_EVAL_STATS_H_
