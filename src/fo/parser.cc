#include "fo/parser.h"

#include <cctype>

namespace dynfo::fo {

namespace {

enum class TokenKind {
  kIdent,    // names, keywords
  kNumber,   // numeric literal
  kParam,    // $k
  kLParen,
  kRParen,
  kComma,
  kDot,
  kBang,     // !
  kAmp,      // &
  kPipe,     // |
  kEq,       // =
  kNeq,      // !=
  kLe,       // <=
  kLt,       // <
  kArrow,    // ->
  kIffArrow, // <->
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  uint32_t number = 0;
  size_t offset = 0;
};

core::Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string s, size_t offset, uint32_t number = 0) {
    out.push_back(Token{kind, std::move(s), number, offset});
  };
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) || text[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdent, text.substr(i, j - i), start);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      uint32_t value = 0;
      while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) {
        value = value * 10 + static_cast<uint32_t>(text[j] - '0');
        ++j;
      }
      push(TokenKind::kNumber, text.substr(i, j - i), start, value);
      i = j;
      continue;
    }
    if (c == '$') {
      size_t j = i + 1;
      if (j >= text.size() || !std::isdigit(static_cast<unsigned char>(text[j]))) {
        return core::Status::Error("'$' must be followed by a parameter index");
      }
      uint32_t value = 0;
      while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) {
        value = value * 10 + static_cast<uint32_t>(text[j] - '0');
        ++j;
      }
      push(TokenKind::kParam, text.substr(i, j - i), start, value);
      i = j;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < text.size() && text[i + 1] == b;
    };
    if (c == '<' && i + 2 < text.size() && text[i + 1] == '-' && text[i + 2] == '>') {
      push(TokenKind::kIffArrow, "<->", start);
      i += 3;
      continue;
    }
    if (two('-', '>')) {
      push(TokenKind::kArrow, "->", start);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::kLe, "<=", start);
      i += 2;
      continue;
    }
    if (two('!', '=')) {
      push(TokenKind::kNeq, "!=", start);
      i += 2;
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, "(", start); break;
      case ')': push(TokenKind::kRParen, ")", start); break;
      case ',': push(TokenKind::kComma, ",", start); break;
      case '.': push(TokenKind::kDot, ".", start); break;
      case '!': push(TokenKind::kBang, "!", start); break;
      case '&': push(TokenKind::kAmp, "&", start); break;
      case '|': push(TokenKind::kPipe, "|", start); break;
      case '=': push(TokenKind::kEq, "=", start); break;
      case '<': push(TokenKind::kLt, "<", start); break;
      default:
        return core::Status::Error("unexpected character '" + std::string(1, c) +
                                   "' at offset " + std::to_string(i));
    }
    ++i;
  }
  out.push_back(Token{TokenKind::kEnd, "", 0, text.size()});
  return out;
}

}  // namespace

/// Recursive-descent parser over the token stream. Friend of
/// ParserEnvironment so it can read the macro table.
class ParserImpl {
 public:
  ParserImpl(const ParserEnvironment& environment, std::vector<Token> tokens)
      : environment_(environment), tokens_(std::move(tokens)) {}

  core::Result<FormulaPtr> Run() {
    core::Result<FormulaPtr> f = ParseIff();
    if (!f.ok()) return f;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected '" + Peek().text + "'");
    }
    return f;
  }

 private:
  const Token& Peek() const { return tokens_[position_]; }
  Token Take() { return tokens_[position_++]; }
  bool TryTake(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++position_;
    return true;
  }
  core::Status Error(const std::string& message) const {
    return core::Status::Error(message + " at offset " +
                               std::to_string(Peek().offset));
  }

  core::Result<FormulaPtr> ParseIff() {
    core::Result<FormulaPtr> left = ParseImplies();
    if (!left.ok()) return left;
    FormulaPtr acc = left.value();
    while (TryTake(TokenKind::kIffArrow)) {
      core::Result<FormulaPtr> right = ParseImplies();
      if (!right.ok()) return right;
      acc = Formula::Iff(acc, right.value());
    }
    return acc;
  }

  core::Result<FormulaPtr> ParseImplies() {
    core::Result<FormulaPtr> left = ParseOr();
    if (!left.ok()) return left;
    if (!TryTake(TokenKind::kArrow)) return left;
    core::Result<FormulaPtr> right = ParseImplies();  // right associative
    if (!right.ok()) return right;
    return FormulaPtr(Formula::Implies(left.value(), right.value()));
  }

  core::Result<FormulaPtr> ParseOr() {
    core::Result<FormulaPtr> left = ParseAnd();
    if (!left.ok()) return left;
    std::vector<FormulaPtr> operands{left.value()};
    while (TryTake(TokenKind::kPipe)) {
      core::Result<FormulaPtr> next = ParseAnd();
      if (!next.ok()) return next;
      operands.push_back(next.value());
    }
    return FormulaPtr(Formula::Or(std::move(operands)));
  }

  core::Result<FormulaPtr> ParseAnd() {
    core::Result<FormulaPtr> left = ParseUnary();
    if (!left.ok()) return left;
    std::vector<FormulaPtr> operands{left.value()};
    while (TryTake(TokenKind::kAmp)) {
      core::Result<FormulaPtr> next = ParseUnary();
      if (!next.ok()) return next;
      operands.push_back(next.value());
    }
    return FormulaPtr(Formula::And(std::move(operands)));
  }

  core::Result<FormulaPtr> ParseUnary() {
    if (TryTake(TokenKind::kBang)) {
      core::Result<FormulaPtr> inner = ParseUnary();
      if (!inner.ok()) return inner;
      return FormulaPtr(Formula::Not(inner.value()));
    }
    if (Peek().kind == TokenKind::kIdent &&
        (Peek().text == "exists" || Peek().text == "forall")) {
      bool existential = Take().text == "exists";
      std::vector<std::string> variables;
      while (Peek().kind == TokenKind::kIdent) {
        variables.push_back(Take().text);
      }
      if (variables.empty()) return Error("quantifier needs variables");
      if (!TryTake(TokenKind::kDot)) return Error("expected '.' after quantifier");
      core::Result<FormulaPtr> body = ParseUnary();
      if (!body.ok()) return body;
      return FormulaPtr(existential ? Formula::Exists(variables, body.value())
                                    : Formula::Forall(variables, body.value()));
    }
    return ParsePrimary();
  }

  core::Result<FormulaPtr> ParsePrimary() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kLParen) {
      Take();
      core::Result<FormulaPtr> inner = ParseIff();
      if (!inner.ok()) return inner;
      if (!TryTake(TokenKind::kRParen)) return Error("missing ')'");
      return inner;
    }
    if (token.kind == TokenKind::kIdent && token.text == "true") {
      Take();
      return FormulaPtr(Formula::True());
    }
    if (token.kind == TokenKind::kIdent && token.text == "false") {
      Take();
      return FormulaPtr(Formula::False());
    }
    // BIT(t1, t2), relation atom, macro call — or a comparison.
    if (token.kind == TokenKind::kIdent &&
        tokens_[position_ + 1].kind == TokenKind::kLParen &&
        token.text != "min" && token.text != "max") {
      return ParseCall();
    }
    return ParseComparison();
  }

  core::Result<FormulaPtr> ParseCall() {
    std::string name = Take().text;
    DYNFO_CHECK(TryTake(TokenKind::kLParen));
    std::vector<Term> args;
    if (!TryTake(TokenKind::kRParen)) {
      while (true) {
        core::Result<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        args.push_back(term.value());
        if (TryTake(TokenKind::kRParen)) break;
        if (!TryTake(TokenKind::kComma)) return Error("expected ',' or ')'");
      }
    }
    if (name == "BIT") {
      if (args.size() != 2) return Error("BIT takes two arguments");
      return FormulaPtr(Formula::Bit(args[0], args[1]));
    }
    int relation = environment_.vocabulary().RelationIndex(name);
    if (relation >= 0) {
      int arity = environment_.vocabulary().relation(relation).arity;
      if (static_cast<int>(args.size()) != arity) {
        return Error("relation " + name + " has arity " + std::to_string(arity));
      }
      return FormulaPtr(Formula::Atom(name, std::move(args)));
    }
    auto macro = environment_.macros_.find(name);
    if (macro != environment_.macros_.end()) {
      if (args.size() != macro->second.parameters.size()) {
        return Error("macro " + name + " takes " +
                     std::to_string(macro->second.parameters.size()) + " arguments");
      }
      std::map<std::string, Term> substitution;
      for (size_t i = 0; i < args.size(); ++i) {
        substitution.emplace(macro->second.parameters[i], args[i]);
      }
      return FormulaPtr(Formula::Substitute(macro->second.body, substitution));
    }
    return Error("unknown relation or macro " + name);
  }

  core::Result<FormulaPtr> ParseComparison() {
    core::Result<Term> left = ParseTerm();
    if (!left.ok()) return left.status();
    switch (Peek().kind) {
      case TokenKind::kEq:
        Take();
        break;
      case TokenKind::kNeq: {
        Take();
        core::Result<Term> right = ParseTerm();
        if (!right.ok()) return right.status();
        return FormulaPtr(Formula::Not(Formula::Eq(left.value(), right.value())));
      }
      case TokenKind::kLe: {
        Take();
        core::Result<Term> right = ParseTerm();
        if (!right.ok()) return right.status();
        return FormulaPtr(Formula::Le(left.value(), right.value()));
      }
      case TokenKind::kLt: {
        Take();
        core::Result<Term> right = ParseTerm();
        if (!right.ok()) return right.status();
        return FormulaPtr(Formula::And(
            {Formula::Le(left.value(), right.value()),
             Formula::Not(Formula::Eq(left.value(), right.value()))}));
      }
      default:
        return Error("expected a comparison operator");
    }
    core::Result<Term> right = ParseTerm();
    if (!right.ok()) return right.status();
    return FormulaPtr(Formula::Eq(left.value(), right.value()));
  }

  core::Result<Term> ParseTerm() {
    const Token token = Take();
    switch (token.kind) {
      case TokenKind::kNumber:
        return Term::Number(token.number);
      case TokenKind::kParam:
        if (token.number >= relational::Tuple::kMaxArity) {
          return core::Status::Error("parameter index too large: " + token.text);
        }
        return Term::Param(static_cast<int>(token.number));
      case TokenKind::kIdent:
        if (token.text == "min") return Term::Min();
        if (token.text == "max") return Term::Max();
        if (environment_.vocabulary().ConstantIndex(token.text) >= 0) {
          return Term::Const(token.text);
        }
        return Term::Var(token.text);
      default:
        return core::Status::Error("expected a term at offset " +
                                   std::to_string(token.offset));
    }
  }

  const ParserEnvironment& environment_;
  std::vector<Token> tokens_;
  size_t position_ = 0;
};

core::Status ParserEnvironment::DefineMacro(const std::string& name,
                                            std::vector<std::string> parameters,
                                            const std::string& body) {
  if (vocabulary_->RelationIndex(name) >= 0) {
    return core::Status::Error("macro " + name + " collides with a relation");
  }
  core::Result<FormulaPtr> parsed = Parse(body);
  if (!parsed.ok()) {
    return core::Status::Error("in macro " + name + ": " + parsed.status().message());
  }
  macros_[name] = Macro{std::move(parameters), parsed.value()};
  return core::Status();
}

core::Result<FormulaPtr> ParserEnvironment::Parse(const std::string& text) const {
  core::Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  ParserImpl parser(*this, std::move(tokens).value());
  return parser.Run();
}

core::Result<FormulaPtr> ParseFormula(
    const std::string& text,
    std::shared_ptr<const relational::Vocabulary> vocabulary) {
  ParserEnvironment environment(std::move(vocabulary));
  return environment.Parse(text);
}

}  // namespace dynfo::fo
