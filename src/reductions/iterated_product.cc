#include "reductions/iterated_product.h"

namespace dynfo::reductions {

Perm5 Perm5::Identity() { return Perm5({0, 1, 2, 3, 4}); }

Perm5::Perm5(std::array<uint8_t, 5> image) : image_(image) {
  bool seen[5] = {false, false, false, false, false};
  for (uint8_t v : image_) {
    DYNFO_CHECK(v < 5) << "image out of range";
    DYNFO_CHECK(!seen[v]) << "not a permutation";
    seen[v] = true;
  }
}

Perm5 Perm5::Cycle(const std::vector<uint8_t>& elements) {
  std::array<uint8_t, 5> image = {0, 1, 2, 3, 4};
  if (!elements.empty()) {
    for (size_t i = 0; i < elements.size(); ++i) {
      uint8_t from = elements[i];
      uint8_t to = elements[(i + 1) % elements.size()];
      DYNFO_CHECK(from < 5 && to < 5);
      image[from] = to;
    }
  }
  return Perm5(image);
}

Perm5 Perm5::Then(const Perm5& after) const {
  std::array<uint8_t, 5> image;
  for (uint8_t x = 0; x < 5; ++x) image[x] = after.Apply(image_[x]);
  return Perm5(image);
}

Perm5 Perm5::Inverse() const {
  std::array<uint8_t, 5> image = {0, 1, 2, 3, 4};
  for (uint8_t x = 0; x < 5; ++x) image[image_[x]] = x;
  return Perm5(image);
}

std::string Perm5::ToString() const {
  std::string s = "(";
  for (uint8_t x = 0; x < 5; ++x) {
    if (x > 0) s += " ";
    s += std::to_string(image_[x]);
  }
  return s + ")";
}

bool ColorProductInstance::Valid() const {
  if (position_class.size() != positions.size()) return false;
  for (int c : position_class) {
    if (c < 0 || (c > 0 && static_cast<size_t>(c) >= colors.size())) return false;
  }
  return true;
}

Perm5 SolveColorProduct(const ColorProductInstance& instance) {
  DYNFO_CHECK(instance.Valid());
  Perm5 product = Perm5::Identity();
  for (size_t i = 0; i < instance.positions.size(); ++i) {
    int c = instance.position_class[i];
    bool pick_one = c > 0 && instance.colors[c];
    const Perm5& sigma =
        pick_one ? instance.positions[i].second : instance.positions[i].first;
    product = product.Then(sigma);
  }
  return product;
}

bool ColorProductIsIdentity(const ColorProductInstance& instance) {
  return SolveColorProduct(instance).IsIdentity();
}

}  // namespace dynfo::reductions
