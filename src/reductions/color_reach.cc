#include "reductions/color_reach.h"

#include <deque>

namespace dynfo::reductions {

bool ColorReachInstance::Valid() const {
  if (zero_edge.size() != num_vertices || one_edge.size() != num_vertices ||
      vertex_class.size() != num_vertices) {
    return false;
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    if (zero_edge[v] >= static_cast<int>(num_vertices)) return false;
    if (one_edge[v] >= static_cast<int>(num_vertices)) return false;
    int c = vertex_class[v];
    if (c < 0 || (c > 0 && static_cast<size_t>(c) >= colors.size())) return false;
  }
  return source < num_vertices && target < num_vertices;
}

namespace {

/// The edges vertex v may follow under the coloring.
std::vector<int> AllowedSuccessors(const ColorReachInstance& instance, size_t v) {
  std::vector<int> out;
  int c = instance.vertex_class[v];
  if (c == 0) {
    if (instance.zero_edge[v] >= 0) out.push_back(instance.zero_edge[v]);
    if (instance.one_edge[v] >= 0) out.push_back(instance.one_edge[v]);
  } else {
    int next = instance.colors[c] ? instance.one_edge[v] : instance.zero_edge[v];
    if (next >= 0) out.push_back(next);
  }
  return out;
}

}  // namespace

bool SolveColorReach(const ColorReachInstance& instance) {
  DYNFO_CHECK(instance.Valid());
  std::vector<bool> seen(instance.num_vertices, false);
  std::deque<graph::Vertex> frontier{instance.source};
  seen[instance.source] = true;
  while (!frontier.empty()) {
    graph::Vertex v = frontier.front();
    frontier.pop_front();
    if (v == instance.target) return true;
    for (int next : AllowedSuccessors(instance, v)) {
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(static_cast<graph::Vertex>(next));
      }
    }
  }
  return false;
}

bool SolveColorReachDeterministic(const ColorReachInstance& instance) {
  DYNFO_CHECK(instance.Valid());
  for (size_t v = 0; v < instance.num_vertices; ++v) {
    DYNFO_CHECK(instance.vertex_class[v] != 0)
        << "COLOR-REACH_d requires V_0 to be empty";
  }
  graph::Vertex current = instance.source;
  for (size_t step = 0; step <= instance.num_vertices; ++step) {
    if (current == instance.target) return true;
    std::vector<int> next = AllowedSuccessors(instance, current);
    DYNFO_CHECK(next.size() <= 1);
    if (next.empty()) return false;
    current = static_cast<graph::Vertex>(next[0]);
  }
  return false;
}

}  // namespace dynfo::reductions
