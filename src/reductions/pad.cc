#include "reductions/pad.h"

namespace dynfo::reductions {

std::shared_ptr<const relational::Vocabulary> PadVocabulary(
    const relational::Vocabulary& base) {
  auto padded = std::make_shared<relational::Vocabulary>();
  for (int i = 0; i < base.num_relations(); ++i) {
    const relational::RelationSymbol& symbol = base.relation(i);
    padded->AddRelation(symbol.name, symbol.arity + 1);
  }
  for (int j = 0; j < base.num_constants(); ++j) {
    padded->AddConstant(base.constant(j));
  }
  return padded;
}

relational::RequestSequence PadRequests(const relational::Request& request, size_t n) {
  relational::RequestSequence out;
  if (request.kind == relational::RequestKind::kSetConstant) {
    out.push_back(request);
    return out;
  }
  out.reserve(n);
  for (size_t copy = 0; copy < n; ++copy) {
    relational::Tuple padded{static_cast<relational::Element>(copy)};
    padded = padded.Concat(request.tuple);
    if (request.kind == relational::RequestKind::kInsert) {
      out.push_back(relational::Request::Insert(request.target, padded));
    } else {
      out.push_back(relational::Request::Delete(request.target, padded));
    }
  }
  return out;
}

relational::Structure UnpadCopy(const relational::Structure& padded,
                                std::shared_ptr<const relational::Vocabulary> base,
                                relational::Element index) {
  relational::Structure out(base, padded.universe_size());
  for (int i = 0; i < base->num_relations(); ++i) {
    const std::string& name = base->relation(i).name;
    for (const relational::Tuple& t : padded.relation(name)) {
      if (t[0] != index) continue;
      relational::Tuple projected;
      for (int p = 1; p < t.size(); ++p) projected = projected.Append(t[p]);
      out.relation(i).Insert(projected);
    }
  }
  for (int j = 0; j < base->num_constants(); ++j) {
    out.set_constant(j, padded.constant(base->constant(j)));
  }
  return out;
}

bool IsValidPad(const relational::Structure& padded,
                std::shared_ptr<const relational::Vocabulary> base) {
  relational::Structure first = UnpadCopy(padded, base, 0);
  for (size_t copy = 1; copy < padded.universe_size(); ++copy) {
    if (UnpadCopy(padded, base, static_cast<relational::Element>(copy)) != first) {
      return false;
    }
  }
  return true;
}

}  // namespace dynfo::reductions
