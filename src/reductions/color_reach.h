/// \file color_reach.h
/// COLOR-REACH ([MSV94], paper Fact 5.11 / Corollary 5.12).
///
/// The device that makes REACH-style problems complete under
/// bounded-expansion reductions: a digraph of outdegree <= 2 with outgoing
/// edges labeled 0/1, a partition V_0, V_1, ..., V_r of the vertices, and a
/// color vector C[1..r]. Vertices in V_0 may follow either edge; a vertex in
/// V_i (i >= 1) follows only its C[i]-labeled edge. Flipping one bit C[i]
/// redirects *all* of V_i at once — which is why the standard
/// Turing-machine-to-REACH reduction becomes bounded expansion: the class
/// V_i collects every configuration that reads input bit i.
///
/// COLOR-REACH is complete for NL, COLOR-REACH_d (V_0 empty) for L, via
/// bfo+ reductions — structural theorems; this module supplies the problem
/// itself (the executable object of those statements) and its solver.

#ifndef DYNFO_REDUCTIONS_COLOR_REACH_H_
#define DYNFO_REDUCTIONS_COLOR_REACH_H_

#include <vector>

#include "core/check.h"
#include "graph/graph.h"

namespace dynfo::reductions {

struct ColorReachInstance {
  size_t num_vertices = 0;
  /// Per vertex: targets of the 0-labeled and 1-labeled edges (-1 = absent).
  std::vector<int> zero_edge;
  std::vector<int> one_edge;
  /// Partition class per vertex; class 0 is the free (uncolored) class.
  std::vector<int> vertex_class;
  /// C[i] for classes i >= 1 (index 0 unused).
  std::vector<bool> colors;

  graph::Vertex source = 0;
  graph::Vertex target = 0;

  bool Valid() const;
};

/// Decides the instance: is `target` reachable from `source` following the
/// color-selected edges (both edges for class-0 vertices)?
bool SolveColorReach(const ColorReachInstance& instance);

/// The deterministic restriction (Corollary 5.12): CHECK-fails unless no
/// vertex is in class 0; then every vertex has outdegree <= 1 under C and
/// the walk is unique.
bool SolveColorReachDeterministic(const ColorReachInstance& instance);

}  // namespace dynfo::reductions

#endif  // DYNFO_REDUCTIONS_COLOR_REACH_H_
