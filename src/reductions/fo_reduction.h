/// \file fo_reduction.h
/// k-ary first-order reductions (paper Definition 2.2) and the
/// bounded-expansion property (Definition 5.1).
///
/// A reduction I maps STRUC[sigma] -> STRUC[tau]: the output universe is
/// {0..n^k - 1} with tuples coded <u1..uk> = u_k + u_{k-1} n + ... +
/// u_1 n^{k-1}; each output relation is defined by a first-order formula
/// over the input, each output constant by a k-tuple of input ground terms.

#ifndef DYNFO_REDUCTIONS_FO_REDUCTION_H_
#define DYNFO_REDUCTIONS_FO_REDUCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "fo/formula.h"
#include "relational/request.h"
#include "relational/structure.h"

namespace dynfo::reductions {

/// Defines one output relation R_i := { x-bar : phi_i(x-bar) } where x-bar
/// lists k * arity(R_i) input-universe variables (k-tuples per output
/// position, most-significant first).
struct RelationDefinition {
  std::string output;
  std::vector<std::string> tuple_variables;
  fo::FormulaPtr formula;
};

/// Defines one output constant as a k-tuple of ground input terms.
struct ConstantDefinition {
  std::string output;
  std::vector<fo::Term> terms;
};

/// An executable k-ary first-order reduction.
///
/// Implementation limit: k * arity(output relation) <= Tuple::kMaxArity,
/// which covers every reduction in the paper that we execute (all are unary
/// or map binary relations with k <= 2).
class FirstOrderReduction {
 public:
  FirstOrderReduction(std::string name, int k,
                      std::shared_ptr<const relational::Vocabulary> input,
                      std::shared_ptr<const relational::Vocabulary> output);

  void DefineRelation(RelationDefinition definition);
  void DefineConstant(ConstantDefinition definition);

  const std::string& name() const { return name_; }
  int k() const { return k_; }
  std::shared_ptr<const relational::Vocabulary> input_vocabulary() const {
    return input_;
  }
  std::shared_ptr<const relational::Vocabulary> output_vocabulary() const {
    return output_;
  }

  core::Status Validate() const;

  /// Materializes I(A). Output universe size = n^k.
  relational::Structure Apply(const relational::Structure& input) const;

  /// Output universe size for input size n.
  size_t OutputUniverseSize(size_t input_universe_size) const;

 private:
  std::string name_;
  int k_;
  std::shared_ptr<const relational::Vocabulary> input_;
  std::shared_ptr<const relational::Vocabulary> output_;
  std::vector<RelationDefinition> relations_;
  std::vector<ConstantDefinition> constants_;
};

/// The tuple-level difference between two structures over one vocabulary,
/// expressed as the requests transforming `before` into `after`.
relational::RequestSequence StructureDiff(const relational::Structure& before,
                                          const relational::Structure& after);

/// Empirical bounded-expansion measurement (Definition 5.1): replay random
/// single-tuple changes against random base structures and report the
/// largest number of output tuples/constants affected by one input change.
struct ExpansionReport {
  size_t max_affected = 0;
  size_t trials = 0;
};
ExpansionReport MeasureExpansion(const FirstOrderReduction& reduction,
                                 size_t universe_size, size_t trials, uint64_t seed);

}  // namespace dynfo::reductions

#endif  // DYNFO_REDUCTIONS_FO_REDUCTION_H_
