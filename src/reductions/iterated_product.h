/// \file iterated_product.h
/// COLOR-Π(S5) — Corollary 5.12's second device: the colorized iterated
/// multiplication of permutations of five objects.
///
/// Π(S5) is Barrington's NC^1-complete problem [B89]; the paper colorizes
/// it the same way as COLOR-REACH: every position i holds a *pair* of
/// permutations (sigma_0, sigma_1), positions are partitioned into classes
/// P_1..P_r, and the color bit C[j] selects which permutation every
/// position of class P_j contributes. Flipping one input bit re-selects a
/// whole class at once — which is what makes the standard reduction
/// bounded-expansion (bfo+), Corollary 5.12.
///
/// This module supplies the executable object of that statement: S5
/// permutations with composition, the colorized instance, and its solver
/// (the completeness itself is a structural theorem, not code).

#ifndef DYNFO_REDUCTIONS_ITERATED_PRODUCT_H_
#define DYNFO_REDUCTIONS_ITERATED_PRODUCT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/check.h"

namespace dynfo::reductions {

/// A permutation of {0..4}.
class Perm5 {
 public:
  static Perm5 Identity();
  /// From an image vector: image[i] = where i goes. CHECK-validates.
  explicit Perm5(std::array<uint8_t, 5> image);
  /// A cycle over the listed elements, e.g. Cycle({0,1,2}) maps 0->1->2->0.
  static Perm5 Cycle(const std::vector<uint8_t>& elements);

  uint8_t Apply(uint8_t x) const {
    DYNFO_CHECK(x < 5);
    return image_[x];
  }

  /// First *this, then `after`.
  Perm5 Then(const Perm5& after) const;
  Perm5 Inverse() const;

  bool IsIdentity() const { return *this == Identity(); }
  bool operator==(const Perm5& other) const { return image_ == other.image_; }
  bool operator!=(const Perm5& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::array<uint8_t, 5> image_;
};

/// A COLOR-Π(S5) instance: per position a pair of permutations, a class
/// per position, a color bit per class (class 0 is uncolored and always
/// contributes sigma_0, mirroring COLOR-REACH's free class V_0).
struct ColorProductInstance {
  std::vector<std::pair<Perm5, Perm5>> positions;
  std::vector<int> position_class;  // parallel to positions
  std::vector<bool> colors;         // indexed by class; [0] unused

  bool Valid() const;
};

/// The selected product, left to right.
Perm5 SolveColorProduct(const ColorProductInstance& instance);

/// The decision form: does the selected product equal the identity?
bool ColorProductIsIdentity(const ColorProductInstance& instance);

}  // namespace dynfo::reductions

#endif  // DYNFO_REDUCTIONS_ITERATED_PRODUCT_H_
