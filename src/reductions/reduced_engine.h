/// \file reduced_engine.h
/// Proposition 5.3 in executable form: if S <=_bfo T and T in Dyn-FO, then
/// S in Dyn-FO.
///
/// A ReducedEngine answers requests against the sigma-structure A by keeping
/// the tau-structure I(A) maintained inside an ordinary Engine for T's
/// program: each sigma-request is translated into the (boundedly many, when
/// I has bounded expansion) tau-requests it induces, which are then fed to
/// the inner engine. The translation here recomputes I and diffs — the
/// general, always-correct implementation; the bounded-expansion property
/// is what guarantees the *inner* engine sees O(1) requests per update, and
/// the stats expose the observed per-request fan-out so tests assert it.

#ifndef DYNFO_REDUCTIONS_REDUCED_ENGINE_H_
#define DYNFO_REDUCTIONS_REDUCED_ENGINE_H_

#include <memory>

#include "dynfo/engine.h"
#include "reductions/fo_reduction.h"

namespace dynfo::reductions {

class ReducedEngine {
 public:
  struct Stats {
    uint64_t requests = 0;
    uint64_t inner_requests = 0;
    size_t max_fanout = 0;  ///< most inner requests induced by one request
  };

  ReducedEngine(std::shared_ptr<const FirstOrderReduction> reduction,
                std::shared_ptr<const dyn::DynProgram> inner_program,
                size_t universe_size, dyn::EngineOptions options = {});

  /// Responds to one request against the sigma input.
  void Apply(const relational::Request& request);

  /// Answers S's boolean query through T's query on I(A).
  bool QueryBool() const { return inner_.QueryBool(); }

  const relational::Structure& input() const { return input_; }
  const dyn::Engine& inner() const { return inner_; }
  const Stats& stats() const { return stats_; }

 private:
  std::shared_ptr<const FirstOrderReduction> reduction_;
  relational::Structure input_;  ///< A
  relational::Structure image_;  ///< I(A), tracked for diffing
  dyn::Engine inner_;            ///< T's Dyn-FO engine over I(A)
  Stats stats_;
};

}  // namespace dynfo::reductions

#endif  // DYNFO_REDUCTIONS_REDUCED_ENGINE_H_
