#include "reductions/fo_reduction.h"

#include <algorithm>

#include "fo/eval_algebra.h"
#include "fo/eval_context.h"

namespace dynfo::reductions {

FirstOrderReduction::FirstOrderReduction(
    std::string name, int k, std::shared_ptr<const relational::Vocabulary> input,
    std::shared_ptr<const relational::Vocabulary> output)
    : name_(std::move(name)), k_(k), input_(std::move(input)), output_(std::move(output)) {
  DYNFO_CHECK(k_ >= 1);
  DYNFO_CHECK(input_ != nullptr);
  DYNFO_CHECK(output_ != nullptr);
}

void FirstOrderReduction::DefineRelation(RelationDefinition definition) {
  relations_.push_back(std::move(definition));
}

void FirstOrderReduction::DefineConstant(ConstantDefinition definition) {
  constants_.push_back(std::move(definition));
}

core::Status FirstOrderReduction::Validate() const {
  for (int i = 0; i < output_->num_relations(); ++i) {
    const relational::RelationSymbol& symbol = output_->relation(i);
    auto it = std::find_if(relations_.begin(), relations_.end(),
                           [&](const RelationDefinition& d) {
                             return d.output == symbol.name;
                           });
    if (it == relations_.end()) {
      return core::Status::Error(name_ + ": output relation " + symbol.name +
                                 " has no definition");
    }
    size_t want = static_cast<size_t>(k_) * symbol.arity;
    if (it->tuple_variables.size() != want) {
      return core::Status::Error(name_ + ": definition of " + symbol.name + " binds " +
                                 std::to_string(it->tuple_variables.size()) +
                                 " variables, expected " + std::to_string(want));
    }
    if (want > relational::Tuple::kMaxArity) {
      return core::Status::Error(name_ + ": k * arity(" + symbol.name +
                                 ") exceeds the supported tuple width");
    }
  }
  for (int j = 0; j < output_->num_constants(); ++j) {
    const std::string& symbol = output_->constant(j);
    auto it = std::find_if(constants_.begin(), constants_.end(),
                           [&](const ConstantDefinition& d) { return d.output == symbol; });
    if (it == constants_.end()) {
      return core::Status::Error(name_ + ": output constant " + symbol +
                                 " has no definition");
    }
    if (it->terms.size() != static_cast<size_t>(k_)) {
      return core::Status::Error(name_ + ": constant " + symbol + " needs a " +
                                 std::to_string(k_) + "-tuple");
    }
  }
  return core::Status();
}

size_t FirstOrderReduction::OutputUniverseSize(size_t input_universe_size) const {
  size_t result = 1;
  for (int i = 0; i < k_; ++i) result *= input_universe_size;
  return result;
}

relational::Structure FirstOrderReduction::Apply(
    const relational::Structure& input) const {
  DYNFO_CHECK(Validate().ok());
  const size_t n = input.universe_size();
  relational::Structure out(output_, OutputUniverseSize(n));
  fo::AlgebraEvaluator evaluator;
  fo::EvalContext ctx(input);

  // Codes <u1..uk> with u1 most significant (paper Definition 2.2).
  auto encode = [&](const relational::Tuple& flat, int offset) {
    uint64_t code = 0;
    for (int i = 0; i < k_; ++i) code = code * n + flat[offset + i];
    return static_cast<relational::Element>(code);
  };

  for (const RelationDefinition& definition : relations_) {
    relational::Relation flat =
        evaluator.EvaluateAsRelation(definition.formula, definition.tuple_variables, ctx);
    relational::Relation& target = out.relation(definition.output);
    const int arity = target.arity();
    for (const relational::Tuple& t : flat) {
      relational::Tuple coded;
      for (int position = 0; position < arity; ++position) {
        coded = coded.Append(encode(t, position * k_));
      }
      target.Insert(coded);
    }
  }
  for (const ConstantDefinition& definition : constants_) {
    uint64_t code = 0;
    for (const fo::Term& term : definition.terms) {
      std::optional<relational::Element> value = fo::GroundTerm(term, ctx);
      DYNFO_CHECK(value.has_value()) << "constant definitions must use ground terms";
      code = code * n + *value;
    }
    out.set_constant(definition.output, static_cast<relational::Element>(code));
  }
  return out;
}

relational::RequestSequence StructureDiff(const relational::Structure& before,
                                          const relational::Structure& after) {
  DYNFO_CHECK(before.universe_size() == after.universe_size());
  const relational::Vocabulary& vocab = before.vocabulary();
  relational::RequestSequence out;
  for (int i = 0; i < vocab.num_relations(); ++i) {
    const std::string& name = vocab.relation(i).name;
    for (const relational::Tuple& t : before.relation(i)) {
      if (!after.relation(i).Contains(t)) {
        out.push_back(relational::Request::Delete(name, t));
      }
    }
    for (const relational::Tuple& t : after.relation(i)) {
      if (!before.relation(i).Contains(t)) {
        out.push_back(relational::Request::Insert(name, t));
      }
    }
  }
  for (int j = 0; j < vocab.num_constants(); ++j) {
    if (before.constant(j) != after.constant(j)) {
      out.push_back(relational::Request::SetConstant(vocab.constant(j), after.constant(j)));
    }
  }
  return out;
}

ExpansionReport MeasureExpansion(const FirstOrderReduction& reduction,
                                 size_t universe_size, size_t trials, uint64_t seed) {
  core::Rng rng(seed);
  ExpansionReport report;
  const relational::Vocabulary& vocab = *reduction.input_vocabulary();
  DYNFO_CHECK(vocab.num_relations() > 0);
  for (size_t trial = 0; trial < trials; ++trial) {
    relational::Structure base(reduction.input_vocabulary(), universe_size);
    // Random base structure: a handful of random tuples per relation.
    for (int i = 0; i < vocab.num_relations(); ++i) {
      const relational::RelationSymbol& symbol = vocab.relation(i);
      size_t count = rng.Below(2 * universe_size + 1);
      for (size_t c = 0; c < count; ++c) {
        relational::Tuple t;
        for (int a = 0; a < symbol.arity; ++a) {
          t = t.Append(static_cast<relational::Element>(rng.Below(universe_size)));
        }
        base.relation(i).Insert(t);
      }
    }
    // One random single-tuple change.
    int i = static_cast<int>(rng.Below(vocab.num_relations()));
    const relational::RelationSymbol& symbol = vocab.relation(i);
    relational::Tuple t;
    for (int a = 0; a < symbol.arity; ++a) {
      t = t.Append(static_cast<relational::Element>(rng.Below(universe_size)));
    }
    relational::Structure changed = base;
    if (changed.relation(i).Contains(t)) {
      changed.relation(i).Erase(t);
    } else {
      changed.relation(i).Insert(t);
    }
    relational::RequestSequence diff =
        StructureDiff(reduction.Apply(base), reduction.Apply(changed));
    report.max_affected = std::max(report.max_affected, diff.size());
    ++report.trials;
  }
  return report;
}

}  // namespace dynfo::reductions
