/// \file pad.h
/// The padding construction of Definition 5.13.
///
/// PAD(S) = { w_1 ... w_n : |w_1| = n, w_1 = ... = w_n, w_1 in S }: the
/// input is n identical copies of a structure. Computationally PAD(S) ≡ S,
/// but dynamically one real change costs n requests — giving a Dyn-FO
/// program n first-order steps per change, which is how PAD(REACH_a), a
/// P-complete problem, lands in Dyn-FO (Theorem 5.14).
///
/// Encoding: a sigma-relation R of arity a becomes a (1+a)-ary relation over
/// the padded vocabulary, the first position being the copy index; constants
/// are shared. The *ordered update discipline* (documented in DESIGN.md)
/// updates copies 0, 1, ..., n-1 in order: PadRequests performs it.

#ifndef DYNFO_REDUCTIONS_PAD_H_
#define DYNFO_REDUCTIONS_PAD_H_

#include <memory>

#include "relational/request.h"
#include "relational/vocabulary.h"

namespace dynfo::reductions {

/// The padded vocabulary: each relation's arity grows by one (copy index);
/// constants carry over. CHECK-fails if any arity would exceed the tuple cap.
std::shared_ptr<const relational::Vocabulary> PadVocabulary(
    const relational::Vocabulary& base);

/// Expands one request against the base structure into the n per-copy
/// requests of the ordered update discipline (copy 0 first). Set requests
/// pass through unchanged (constants are shared).
relational::RequestSequence PadRequests(const relational::Request& request, size_t n);

/// Projects copy `index` of a padded structure back to the base vocabulary.
relational::Structure UnpadCopy(const relational::Structure& padded,
                                std::shared_ptr<const relational::Vocabulary> base,
                                relational::Element index);

/// True iff all n copies agree (the input is a valid pad).
bool IsValidPad(const relational::Structure& padded,
                std::shared_ptr<const relational::Vocabulary> base);

}  // namespace dynfo::reductions

#endif  // DYNFO_REDUCTIONS_PAD_H_
