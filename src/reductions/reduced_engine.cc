#include "reductions/reduced_engine.h"

#include <algorithm>

namespace dynfo::reductions {

ReducedEngine::ReducedEngine(std::shared_ptr<const FirstOrderReduction> reduction,
                             std::shared_ptr<const dyn::DynProgram> inner_program,
                             size_t universe_size, dyn::EngineOptions options)
    : reduction_(std::move(reduction)),
      input_(reduction_->input_vocabulary(), universe_size),
      image_(reduction_->Apply(input_)),
      inner_(std::move(inner_program), reduction_->OutputUniverseSize(universe_size),
             options) {
  // Align the inner engine with I(empty input): a bfo reduction maps the
  // initial structure to a structure with only boundedly many tuples
  // (Definition 5.1), so this replay is O(1) requests; for bfo+ it is the
  // polynomial precomputation.
  relational::Structure blank(reduction_->output_vocabulary(), image_.universe_size());
  for (const relational::Request& request : StructureDiff(blank, image_)) {
    inner_.Apply(request);
  }
}

void ReducedEngine::Apply(const relational::Request& request) {
  ++stats_.requests;
  relational::ApplyRequest(&input_, request);
  relational::Structure next_image = reduction_->Apply(input_);
  relational::RequestSequence diff = StructureDiff(image_, next_image);
  stats_.inner_requests += diff.size();
  stats_.max_fanout = std::max(stats_.max_fanout, diff.size());
  for (const relational::Request& inner_request : diff) {
    inner_.Apply(inner_request);
  }
  image_ = std::move(next_image);
}

}  // namespace dynfo::reductions
