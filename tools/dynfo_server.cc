/// \file dynfo_server.cc
/// The Dyn-FO engine as a long-running service (DESIGN.md §15): one engine,
/// many concurrent sessions over a Unix or TCP socket, speaking the
/// dynfo_cli script grammar in length-prefixed frames (see dynfo/wire.h).
///
/// Usage:
///   dynfo_server [--listen=ADDR] [--backend=MODE] [--deadline-ms=N]
///                [--max-memory-mb=N] [--max-sessions=N]
///                [--admission-limit=N] [--shed-compiled-at=F]
///                [--shed-naive-at=F] <program.dynfo> <universe-size>
///
/// Flags:
///   --listen=ADDR        unix:/path/to.sock (default unix:/tmp/dynfo.sock)
///                        or tcp:[host:]port (tcp:0 = kernel-assigned; the
///                        bound port is printed on startup)
///   --backend=MODE       auto|hash|dense, as in dynfo_cli
///   --deadline-ms=N      default per-write deadline (sessions may lower or
///                        clear their own with the `deadline` command). The
///                        deadline also bounds the wait in the admission
///                        queue.
///   --max-memory-mb=N    default per-write materialization budget
///   --max-sessions=N     sessions beyond this are rejected (wire code 5)
///   --admission-limit=N  writers allowed to wait for the writer lock; one
///                        more is rejected with wire code 5 (the client's
///                        retry-with-backoff signal). 0 = unbounded.
///   --shed-compiled-at=F / --shed-naive-at=F
///                        load factors (waiting/limit) at which reads shed
///                        from compiled+indexed to compiled, then to naive
///
/// Writers serialize through the guarded engine; readers run against
/// copy-on-write snapshots and are never refused — under writer pressure
/// they descend the degradation ladder's read tiers instead. The server
/// runs until SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <semaphore>
#include <sstream>
#include <string>
#include <vector>

#include "core/text.h"
#include "dynfo/loader.h"
#include "dynfo/service.h"
#include "dynfo/wire.h"

namespace {

std::binary_semaphore g_shutdown(0);

void HandleSignal(int) { g_shutdown.release(); }

}  // namespace

int main(int argc, char** argv) {
  std::string listen_spec = "unix:/tmp/dynfo.sock";
  dynfo::dyn::ServiceOptions options;
  dynfo::dyn::EngineOptions& engine_options =
      options.engine.engine_options;
  engine_options.use_dense_relations = true;  // --backend=auto
  options.engine.check_every = 0;  // no oracle hooks in the server
  dynfo::dyn::ApplyGovernance& governance =
      options.engine.governance.governance;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t parsed = 0;
    if (arg.rfind("--listen=", 0) == 0) {
      listen_spec = arg.substr(9);
    } else if (arg.rfind("--backend=", 0) == 0) {
      const std::string mode = arg.substr(10);
      if (mode == "auto") {
        engine_options.use_dense_relations = true;
        engine_options.force_dense_backend = false;
      } else if (mode == "hash") {
        engine_options.use_dense_relations = false;
      } else if (mode == "dense") {
        engine_options.use_dense_relations = true;
        engine_options.force_dense_backend = true;
      } else {
        std::fprintf(stderr,
                     "error: bad --backend value '%s' (want auto|hash|dense)\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!dynfo::core::ParseU64(arg.substr(14), &parsed) || parsed == 0) {
        std::fprintf(stderr, "error: bad --deadline-ms value\n");
        return 2;
      }
      governance.deadline_ms = static_cast<int64_t>(parsed);
    } else if (arg.rfind("--max-memory-mb=", 0) == 0) {
      if (!dynfo::core::ParseU64(arg.substr(16), &parsed) || parsed == 0) {
        std::fprintf(stderr, "error: bad --max-memory-mb value\n");
        return 2;
      }
      governance.limits.max_bytes = parsed * 1024 * 1024;
    } else if (arg.rfind("--max-sessions=", 0) == 0) {
      if (!dynfo::core::ParseU64(arg.substr(15), &parsed) || parsed == 0) {
        std::fprintf(stderr, "error: bad --max-sessions value\n");
        return 2;
      }
      options.max_sessions = static_cast<size_t>(parsed);
    } else if (arg.rfind("--admission-limit=", 0) == 0) {
      if (!dynfo::core::ParseU64(arg.substr(18), &parsed)) {
        std::fprintf(stderr, "error: bad --admission-limit value\n");
        return 2;
      }
      options.admission_queue_limit = static_cast<size_t>(parsed);
    } else if (arg.rfind("--shed-compiled-at=", 0) == 0) {
      options.shed_compiled_at = std::stod(arg.substr(19));
    } else if (arg.rfind("--shed-naive-at=", 0) == 0) {
      options.shed_naive_at = std::stod(arg.substr(16));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s [--listen=unix:/path|tcp:[host:]port] "
                 "[--backend=auto|hash|dense] [--deadline-ms=N] "
                 "[--max-memory-mb=N] [--max-sessions=N] "
                 "[--admission-limit=N] <program.dynfo> <universe-size>\n",
                 argv[0]);
    return 2;
  }

  dynfo::dyn::wire::Address address;
  std::string address_error;
  if (!dynfo::dyn::wire::ParseAddress(listen_spec, &address, &address_error)) {
    std::fprintf(stderr, "error: %s\n", address_error.c_str());
    return 2;
  }

  std::ifstream spec(positional[0]);
  if (!spec) {
    std::fprintf(stderr, "error: cannot open %s\n", positional[0].c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << spec.rdbuf();
  auto program = dynfo::dyn::LoadProgramFromText(buffer.str());
  if (!program.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", positional[0].c_str(),
                 program.status().message().c_str());
    return 2;
  }
  uint64_t parsed_n = 0;
  if (!dynfo::core::ParseU64(positional[1], &parsed_n) || parsed_n == 0) {
    std::fprintf(stderr, "error: bad universe size '%s'\n",
                 positional[1].c_str());
    return 2;
  }

  dynfo::dyn::EngineService service(program.value(),
                                    static_cast<size_t>(parsed_n), options);
  dynfo::dyn::ServiceServer server(&service, address);
  dynfo::core::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  if (server.address().kind == dynfo::dyn::wire::Address::Kind::kTcp) {
    std::printf("dynfo_server: program '%s' (universe %llu) on tcp:%s:%d\n",
                program.value()->name().c_str(),
                static_cast<unsigned long long>(parsed_n),
                server.address().host.c_str(), server.address().port);
  } else {
    std::printf("dynfo_server: program '%s' (universe %llu) on unix:%s\n",
                program.value()->name().c_str(),
                static_cast<unsigned long long>(parsed_n),
                server.address().path.c_str());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  g_shutdown.acquire();
  std::printf("dynfo_server: shutting down\n");
  server.Stop();
  const dynfo::dyn::ServiceStats stats = service.stats();
  std::printf(
      "dynfo_server: served %llu write(s), %llu read(s), "
      "%llu admission rejection(s) over %llu connection(s)\n",
      static_cast<unsigned long long>(stats.writes_applied),
      static_cast<unsigned long long>(stats.reads_served),
      static_cast<unsigned long long>(stats.admission_rejections),
      static_cast<unsigned long long>(server.connections_accepted()));
  return 0;
}
