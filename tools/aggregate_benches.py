#!/usr/bin/env python3
"""Merges google-benchmark JSON outputs into one BENCH_core.json.

Stdlib only. Alongside the raw per-benchmark rows it computes the derived
ablation quotients the plan/index work is judged by (see EXPERIMENTS.md,
"Evaluator ablation"): per-update evaluation speedups of compiled+indexed
plans over the re-planning evaluator, plan-cache hit rates, and per-update
planner invocations.
"""

import argparse
import json
import sys

# Standard google-benchmark fields kept per row; everything else numeric is
# treated as a user counter.
KEEP_FIELDS = ("name", "iterations", "real_time", "cpu_time", "time_unit",
               "items_per_second")
STANDARD_FIELDS = KEEP_FIELDS + (
    "run_name", "run_type", "repetitions", "repetition_index", "threads",
    "family_index", "per_family_instance_index", "aggregate_name",
    "label", "error_occurred", "error_message")


def load_rows(paths):
    rows = []
    context = None
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        if context is None:
            context = data.get("context", {})
        binary = data.get("context", {}).get("executable", path)
        binary = binary.rsplit("/", 1)[-1].removesuffix(".json")
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            row = {"binary": binary}
            for field in KEEP_FIELDS:
                if field in bench:
                    row[field] = bench[field]
            counters = {k: v for k, v in bench.items()
                        if k not in STANDARD_FIELDS and isinstance(v, (int, float))}
            if counters:
                row["counters"] = counters
            rows.append(row)
    return context or {}, rows


def by_name(rows):
    return {row["name"]: row for row in rows}


def largest_arg(rows, prefix):
    """The row '<prefix>/<n>' with the largest n, or None."""
    best = None
    best_arg = -1
    for row in rows:
        name = row["name"]
        if not name.startswith(prefix + "/"):
            continue
        try:
            arg = int(name.rsplit("/", 1)[1])
        except ValueError:
            continue
        if arg > best_arg:
            best, best_arg = row, arg
    return best


def speedup(rows, slow_prefix, fast_prefix):
    """real_time quotient slow/fast at the largest common benchmark size."""
    slow = largest_arg(rows, slow_prefix)
    fast = largest_arg(rows, fast_prefix)
    if not slow or not fast or fast["real_time"] <= 0:
        return None
    if slow["name"].rsplit("/", 1)[1] != fast["name"].rsplit("/", 1)[1]:
        return None
    return {
        "at": slow["name"].rsplit("/", 1)[1],
        "slow": slow["name"],
        "fast": fast["name"],
        "speedup": round(slow["real_time"] / fast["real_time"], 3),
    }


def derive(rows):
    derived = {}
    # Per-update evaluation of the request-local reach_u subformula (the hot
    # shape the plan/index layer targets) and parity's full update formula.
    pairs = {
        "reach_u_update_eval": ("BM_UpdateLocalityReplan",
                                "BM_UpdateLocalityCompiledIndexed"),
        "reach_u_update_eval_compiled_only": ("BM_UpdateLocalityReplan",
                                              "BM_UpdateLocalityCompiled"),
        "parity_update_eval": ("BM_ParityUpdateEvalReplan",
                               "BM_ParityUpdateEvalCompiled"),
        # End-to-end Apply (includes inherent result materialization, which
        # the plan layer cannot remove — see EXPERIMENTS.md).
        "reach_u_apply": ("BM_EvalAlgebraReplan", "BM_EvalAlgebraCompiledIndexed"),
        "parity_apply": ("BM_ParityReplan", "BM_ParityCompiledIndexed"),
    }
    speedups = {}
    for key, (slow, fast) in pairs.items():
        result = speedup(rows, slow, fast)
        if result is not None:
            speedups[key] = result
    derived["speedups"] = speedups

    hit_rates = []
    planner_runs = []
    for row in rows:
        counters = row.get("counters", {})
        if "Compiled" in row["name"] and "plan_cache_hit_rate" in counters:
            hit_rates.append(counters["plan_cache_hit_rate"])
        if "Compiled" in row["name"] and "planner_runs_per_update" in counters:
            planner_runs.append(counters["planner_runs_per_update"])
    if hit_rates:
        derived["plan_cache_hit_rate_min"] = round(min(hit_rates), 6)
    if planner_runs:
        derived["planner_runs_per_update_max"] = max(planner_runs)
    return derived


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", help="google-benchmark JSON files")
    parser.add_argument("--out", required=True, help="aggregate destination")
    args = parser.parse_args()

    context, rows = load_rows(args.inputs)
    out = {
        "schema": 1,
        "context": {k: context[k] for k in
                    ("date", "host_name", "num_cpus", "mhz_per_cpu",
                     "library_build_type") if k in context},
        "derived": derive(rows),
        "benchmarks": rows,
    }
    with open(args.out, "w") as f:
        json.dump(out, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"aggregated {len(rows)} benchmark rows from {len(args.inputs)} files",
          file=sys.stderr)


if __name__ == "__main__":
    main()
