#!/usr/bin/env python3
"""Merges google-benchmark JSON outputs into one BENCH_core.json.

Stdlib only. Alongside the raw per-benchmark rows it computes the derived
ablation quotients the plan/index work is judged by (see EXPERIMENTS.md,
"Evaluator ablation"): per-update evaluation speedups of compiled+indexed
plans over the re-planning evaluator, plan-cache hit rates, per-update
planner invocations, and the delta-materialization counters (DESIGN.md §11).

Debug-built inputs are rejected (the numbers are meaningless to quote or
gate on). The JSON context's library_build_type describes the *benchmark
library* — a system-packaged libbenchmark reports "debug" even under a fully
optimized build of this repo — so tools/run_benches.sh forwards the build
tree's CMAKE_BUILD_TYPE via --binary-build-type as the authoritative word on
the binaries themselves; either source saying "release" is accepted. Pass
--allow-debug only for tooling tests.
--min-speedup KEY:RATIO and --min-delta-write-ratio turn derived metrics
into hard CI gates: the script exits non-zero when a gate fails.
"""

import argparse
import json
import re
import sys

# Standard google-benchmark fields kept per row; everything else numeric is
# treated as a user counter.
KEEP_FIELDS = ("name", "iterations", "real_time", "cpu_time", "time_unit",
               "items_per_second")
STANDARD_FIELDS = KEEP_FIELDS + (
    "run_name", "run_type", "repetitions", "repetition_index", "threads",
    "family_index", "per_family_instance_index", "aggregate_name",
    "label", "error_occurred", "error_message")


def load_rows(paths):
    """One row per benchmark, keyed by its base (un-suffixed) name.

    When a file carries repetition aggregates (tools/run_benches.sh runs
    --benchmark_repetitions so single-shot scheduler noise cannot decide a
    gate), the *median* aggregate is the row and any raw repetition rows are
    dropped; plain single-run files pass through unchanged. Non-median
    aggregates (mean/stddev/cv) are never emitted.
    """
    rows = []
    seen = {}  # base name -> (row index, is_median)
    context = None
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        if context is None:
            context = data.get("context", {})
        binary = data.get("context", {}).get("executable", path)
        binary = binary.rsplit("/", 1)[-1].removesuffix(".json")
        for bench in data.get("benchmarks", []):
            is_median = (bench.get("run_type") == "aggregate" and
                         bench.get("aggregate_name") == "median")
            if bench.get("run_type") == "aggregate" and not is_median:
                continue
            base = bench.get("run_name", bench.get("name"))
            if base in seen and (seen[base][1] or not is_median):
                continue  # keep the median over raw, the first row otherwise
            row = {"binary": binary}
            for field in KEEP_FIELDS:
                if field in bench:
                    row[field] = bench[field]
            row["name"] = base
            counters = {k: v for k, v in bench.items()
                        if k not in STANDARD_FIELDS and isinstance(v, (int, float))}
            if counters:
                row["counters"] = counters
            if base in seen:
                rows[seen[base][0]] = row
            else:
                rows.append(row)
            seen[base] = (len(rows) - 1 if base not in seen else seen[base][0],
                          is_median)
    return context or {}, rows


def by_name(rows):
    return {row["name"]: row for row in rows}


def largest_arg(rows, prefix):
    """The row '<prefix>/<n>' with the largest n, or None."""
    best = None
    best_arg = -1
    for row in rows:
        name = row["name"]
        if not name.startswith(prefix + "/"):
            continue
        try:
            arg = int(name.rsplit("/", 1)[1])
        except ValueError:
            continue
        if arg > best_arg:
            best, best_arg = row, arg
    return best


def speedup(rows, slow_prefix, fast_prefix):
    """real_time quotient slow/fast at the largest common benchmark size."""
    slow = largest_arg(rows, slow_prefix)
    fast = largest_arg(rows, fast_prefix)
    if not slow or not fast or fast["real_time"] <= 0:
        return None
    if slow["name"].rsplit("/", 1)[1] != fast["name"].rsplit("/", 1)[1]:
        return None
    return {
        "at": slow["name"].rsplit("/", 1)[1],
        "slow": slow["name"],
        "fast": fast["name"],
        "speedup": round(slow["real_time"] / fast["real_time"], 3),
    }


def derive(rows):
    derived = {}
    # Per-update evaluation of the request-local reach_u subformula (the hot
    # shape the plan/index layer targets) and parity's full update formula.
    pairs = {
        "reach_u_update_eval": ("BM_UpdateLocalityReplan",
                                "BM_UpdateLocalityCompiledIndexed"),
        "reach_u_update_eval_compiled_only": ("BM_UpdateLocalityReplan",
                                              "BM_UpdateLocalityCompiled"),
        "parity_update_eval": ("BM_ParityUpdateEvalReplan",
                               "BM_ParityUpdateEvalCompiled"),
        # End-to-end Apply (includes inherent result materialization, which
        # the plan layer cannot remove — see EXPERIMENTS.md).
        "reach_u_apply": ("BM_EvalAlgebraReplan", "BM_EvalAlgebraCompiledIndexed"),
        # The headline parity gate runs on the dense kernel path (DESIGN.md
        # §13); the plan-layer-only pair is kept under _hash for the ablation.
        "parity_apply": ("BM_ParityReplan", "BM_ParityDense"),
        "parity_apply_hash": ("BM_ParityReplan", "BM_ParityCompiledIndexed"),
        "parity_apply_dense_vs_hash": ("BM_ParityCompiledIndexed",
                                       "BM_ParityDense"),
        "reach_u_apply_dense_vs_hash": ("BM_EvalAlgebraCompiledIndexed",
                                        "BM_EvalAlgebraDense"),
    }
    speedups = {}
    for key, (slow, fast) in pairs.items():
        result = speedup(rows, slow, fast)
        if result is not None:
            speedups[key] = result
    # The headline parity gate prefers the *paired* measurement: the
    # benchmark replays both variants back-to-back inside one iteration and
    # reports the quotient itself, so minutes-scale host drift between two
    # independently timed rows cannot swing the gate. Falls back to the
    # row quotient when the paired benchmark was not run.
    paired = largest_arg(rows, "BM_ParityDenseSpeedup")
    if paired is not None and "speedup" in paired.get("counters", {}):
        speedups["parity_apply"] = {
            "at": paired["name"].rsplit("/", 1)[1],
            "slow": "BM_ParityReplan (paired)",
            "fast": "BM_ParityDense (paired)",
            "speedup": round(paired["counters"]["speedup"], 3),
            "paired": True,
        }
    derived["speedups"] = speedups

    hit_rates = []
    planner_runs = []
    for row in rows:
        counters = row.get("counters", {})
        if "Compiled" in row["name"] and "plan_cache_hit_rate" in counters:
            hit_rates.append(counters["plan_cache_hit_rate"])
        if "Compiled" in row["name"] and "planner_runs_per_update" in counters:
            planner_runs.append(counters["planner_runs_per_update"])
    if hit_rates:
        derived["plan_cache_hit_rate_min"] = round(min(hit_rates), 6)
    if planner_runs:
        derived["planner_runs_per_update_max"] = max(planner_runs)

    # Delta-materialization counters from the default-configuration engine
    # replay (semi-naive plan execution; see DESIGN.md §11). delta_write_ratio
    # = tuples_delta_written / tuples_written: the share of materialized
    # tuples that came from O(delta) paths rather than full rematerialization.
    delta_row = largest_arg(rows, "BM_EvalAlgebraCompiledIndexed")
    if delta_row is not None:
        counters = delta_row.get("counters", {})
        delta = {k: counters[k] for k in
                 ("delta_write_ratio", "tuples_delta_written_per_update",
                  "delta_rules_per_update", "fallback_recomputes_per_update")
                 if k in counters}
        if delta:
            delta["at"] = delta_row["name"]
            derived["delta"] = delta

    # Dense-backend counters from the bit-parallel replay (DESIGN.md §13):
    # how much of the workload ran on the word-level kernel path and how many
    # 64-bit words those kernels touched per update.
    dense_row = largest_arg(rows, "BM_ParityDense")
    if dense_row is not None:
        counters = dense_row.get("counters", {})
        dense = {k: counters[k] for k in
                 ("dense_applies_per_update", "dense_kernels_per_update",
                  "dense_words_per_update", "backend_conversions")
                 if k in counters}
        if dense:
            dense["at"] = dense_row["name"]
            derived["dense"] = dense

    batch = derive_batch(rows)
    if batch:
        derived["batch"] = batch

    service = derive_service(rows)
    if service:
        derived["service"] = service
    return derived


def derive_service(rows):
    """derived.service: the multi-session soak scoreboard (DESIGN.md §15).

    From the largest BM_ServiceSoak run: the survival gates (crashes,
    read linearizability against the applied history, bit-identical oracle
    state), the admission-control counters, read amortization
    (reads_served_per_snapshot), and the shed-tier distribution. From
    BM_SnapshotViewO1: the worst copy-on-write-view vs deep-snapshot cost
    quotient across benched universe sizes — the O(1) publish claim as a
    number.
    """
    service = {}
    # The soak registers with Iterations(1), so its name carries an
    # "/iterations:1" suffix that largest_arg's trailing-int parse rejects.
    soak = None
    soak_arg = -1
    for row in rows:
        m = re.match(r"BM_ServiceSoak/(\d+)(?:/|$)", row["name"])
        if m and int(m.group(1)) > soak_arg:
            soak, soak_arg = row, int(m.group(1))
    if soak is not None:
        counters = soak.get("counters", {})
        entry = {k: counters[k] for k in
                 ("crashes", "read_linearizability", "oracle_identical",
                  "reads_checked", "admission_rejections",
                  "admission_timeouts", "reads_served_per_snapshot",
                  "sessions", "reconnects", "faults_injected",
                  "deadline_trips")
                 if k in counters}
        tiers = [counters.get(f"shed_tier{i}_rate") for i in range(3)]
        if all(t is not None for t in tiers):
            entry["shed_tier_rates"] = [round(t, 6) for t in tiers]
        if entry:
            entry["at"] = soak["name"]
            service["soak"] = entry
    ratios = [row["counters"]["o1_ratio"] for row in rows
              if row["name"].startswith("BM_SnapshotViewO1/") and
              "o1_ratio" in row.get("counters", {})]
    if ratios:
        service["snapshot_view_o1_ratio_max"] = round(max(ratios), 6)
    return service


def derive_batch(rows):
    """derived.batch: group-commit amortization per program (DESIGN.md §14).

    From each bench_batch family BM_BatchApply<Program>/<batch-size> (names
    carry a /real_time suffix — the fsync wait is the point, so those rows
    are timed on the wall clock): the batch-256 vs batch-1 requests/second
    ratio, the commit counters at batch 256, and the worst fsyncs-per-request
    over every batch size >= 256 (the CI gate's subject — one group commit
    per batch means 1/256 = 0.0039, far under the 0.05 ceiling unless the
    batching path regresses to per-request fsync).
    """
    families = {}
    for row in rows:
        m = re.fullmatch(r"BM_BatchApply(\w+)/(\d+)(?:/real_time)?",
                         row["name"])
        if not m:
            continue
        program = re.sub(r"(?<!^)(?=[A-Z])", "_", m.group(1)).lower()
        families.setdefault(program, {})[int(m.group(2))] = row
    batch = {}
    for program, sizes in families.items():
        base = sizes.get(1)
        best = sizes.get(256)
        if (base is None or best is None or
                not base.get("items_per_second") or
                not best.get("items_per_second")):
            continue
        entry = {
            "at": best["name"],
            "batch_1_items_per_second": round(base["items_per_second"], 3),
            "batch_256_items_per_second": round(best["items_per_second"], 3),
            "speedup_256_vs_1": round(best["items_per_second"] /
                                      base["items_per_second"], 3),
        }
        for key in ("fsyncs_per_request", "journal_bytes_per_request"):
            if key in best.get("counters", {}):
                entry[key] = best["counters"][key]
        worst = [row["counters"]["fsyncs_per_request"]
                 for size, row in sizes.items()
                 if size >= 256 and "fsyncs_per_request" in row.get("counters", {})]
        if worst:
            entry["fsyncs_per_request_max_at_256plus"] = max(worst)
        batch[program] = entry
    return batch


def check_gates(derived, args):
    """Returns a list of human-readable gate failures (empty = all pass)."""
    failures = []
    for spec in args.min_speedup or []:
        key, _, threshold = spec.partition(":")
        if not threshold:
            failures.append(f"malformed --min-speedup '{spec}' (want KEY:RATIO)")
            continue
        entry = derived.get("speedups", {}).get(key)
        if entry is None:
            failures.append(f"gate {key}: no derived speedup (benchmark missing?)")
        elif entry["speedup"] < float(threshold):
            failures.append(
                f"gate {key}: speedup {entry['speedup']} < required {threshold} "
                f"({entry['slow']} vs {entry['fast']})")
    if args.min_delta_write_ratio is not None:
        ratio = derived.get("delta", {}).get("delta_write_ratio")
        if ratio is None:
            failures.append("gate delta_write_ratio: counter missing from "
                            "BM_EvalAlgebraCompiledIndexed")
        elif ratio < args.min_delta_write_ratio:
            failures.append(f"gate delta_write_ratio: {ratio} < required "
                            f"{args.min_delta_write_ratio}")
    for spec in args.min_batch_speedup or []:
        key, _, threshold = spec.partition(":")
        if not threshold:
            failures.append(
                f"malformed --min-batch-speedup '{spec}' (want PROGRAM:RATIO)")
            continue
        entry = derived.get("batch", {}).get(key)
        if entry is None:
            failures.append(f"gate batch_speedup[{key}]: no derived.batch row "
                            "(bench_batch missing?)")
        elif entry["speedup_256_vs_1"] < float(threshold):
            failures.append(
                f"gate batch_speedup[{key}]: 256-vs-1 throughput ratio "
                f"{entry['speedup_256_vs_1']} < required {threshold}")
    if args.max_batch_fsyncs is not None:
        batch = derived.get("batch", {})
        if not batch:
            failures.append("gate batch_fsyncs: no derived.batch rows "
                            "(bench_batch missing?)")
        for program, entry in sorted(batch.items()):
            worst = entry.get("fsyncs_per_request_max_at_256plus")
            if worst is None:
                failures.append(f"gate batch_fsyncs[{program}]: "
                                "fsyncs_per_request counter missing")
            elif worst > args.max_batch_fsyncs:
                failures.append(
                    f"gate batch_fsyncs[{program}]: {worst} fsyncs/request at "
                    f"batch >= 256 exceeds {args.max_batch_fsyncs}")
    if args.require_service_soak:
        soak = derived.get("service", {}).get("soak")
        if soak is None:
            failures.append("gate service_soak: no BM_ServiceSoak row "
                            "(bench_service missing?)")
        else:
            if soak.get("crashes") != 0:
                failures.append(
                    f"gate service_soak: crashes {soak.get('crashes')} != 0")
            if soak.get("read_linearizability") != 1.0:
                failures.append(
                    "gate service_soak: read_linearizability "
                    f"{soak.get('read_linearizability')} != 1.0")
            if soak.get("oracle_identical") != 1.0:
                failures.append(
                    "gate service_soak: oracle_identical "
                    f"{soak.get('oracle_identical')} != 1.0")
    if args.max_snapshot_o1_ratio is not None:
        ratio = derived.get("service", {}).get("snapshot_view_o1_ratio_max")
        if ratio is None:
            failures.append("gate snapshot_o1_ratio: no BM_SnapshotViewO1 "
                            "rows (bench_service missing?)")
        elif ratio > args.max_snapshot_o1_ratio:
            failures.append(
                f"gate snapshot_o1_ratio: SnapshotView costs {ratio} of a "
                f"deep snapshot, over the {args.max_snapshot_o1_ratio} "
                "ceiling — the O(1) publish claim regressed")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", help="google-benchmark JSON files")
    parser.add_argument("--out", required=True, help="aggregate destination")
    parser.add_argument("--allow-debug", action="store_true",
                        help="accept debug-built benchmark inputs (tooling "
                             "tests only; never for quoted numbers)")
    parser.add_argument("--binary-build-type", default="",
                        help="CMAKE_BUILD_TYPE of the benchmark binaries "
                             "(authoritative over the benchmark library's "
                             "self-reported library_build_type)")
    parser.add_argument("--min-speedup", action="append", metavar="KEY:RATIO",
                        help="fail unless derived speedup KEY >= RATIO "
                             "(repeatable)")
    parser.add_argument("--min-delta-write-ratio", type=float, metavar="R",
                        help="fail unless tuples_delta_written/tuples_written "
                             ">= R on the default-configuration replay")
    parser.add_argument("--min-batch-speedup", action="append",
                        metavar="PROGRAM:RATIO",
                        help="fail unless derived.batch[PROGRAM] 256-vs-1 "
                             "throughput ratio >= RATIO (repeatable)")
    parser.add_argument("--max-batch-fsyncs", type=float, metavar="F",
                        help="fail unless every derived.batch program stays "
                             "<= F fsyncs/request at batch sizes >= 256")
    parser.add_argument("--require-service-soak", action="store_true",
                        help="fail unless the BM_ServiceSoak row exists with "
                             "crashes == 0, read_linearizability == 1.0, and "
                             "oracle_identical == 1.0")
    parser.add_argument("--max-snapshot-o1-ratio", type=float, metavar="R",
                        help="fail unless the worst BM_SnapshotViewO1 "
                             "view-vs-deep-snapshot cost quotient is <= R")
    args = parser.parse_args()

    context, rows = load_rows(args.inputs)
    library_type = context.get("library_build_type", "")
    binary_type = args.binary_build_type.lower()
    optimized = (library_type == "release" or
                 binary_type in ("release", "relwithdebinfo", "minsizerel"))
    if not optimized and not args.allow_debug:
        sys.exit(f"error: benchmark inputs report library_build_type="
                 f"'{library_type or '<missing>'}' and no optimized "
                 "--binary-build-type was supplied; refusing to aggregate "
                 "non-release numbers. Run via tools/run_benches.sh (which "
                 "verifies CMAKE_BUILD_TYPE=Release and forwards it) or pass "
                 "--allow-debug for tooling tests.")

    derived = derive(rows)
    # A "debug" library_build_type alongside an optimized --binary-build-type
    # is the system-packaged libbenchmark describing ITSELF, not the repo's
    # binaries; annotate so readers of BENCH_core.json don't misread the
    # numbers as debug-built.
    annotation = ({"library_build_type_note": "system_lib_selfreport"}
                  if library_type == "debug" and optimized else {})
    out = {
        "schema": 1,
        "context": {k: context[k] for k in
                    ("date", "host_name", "num_cpus", "mhz_per_cpu",
                     "library_build_type") if k in context} |
                   ({"binary_build_type": args.binary_build_type}
                    if args.binary_build_type else {}) | annotation,
        "derived": derived,
        "benchmarks": rows,
    }
    with open(args.out, "w") as f:
        json.dump(out, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"aggregated {len(rows)} benchmark rows from {len(args.inputs)} files",
          file=sys.stderr)

    failures = check_gates(derived, args)
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
