#!/usr/bin/env bash
# Runs the core benchmark set and aggregates the results into BENCH_core.json
# at the repository root (tools/aggregate_benches.py does the merging and
# computes the derived ablation speedups).
#
# Usage:
#   tools/run_benches.sh [--build-dir DIR] [--smoke] [--out FILE] \
#                        [--min-speedup KEY:RATIO]... [--min-delta-write-ratio R] \
#                        [--min-batch-speedup PROGRAM:RATIO]... [--max-batch-fsyncs F]
#
#   --build-dir DIR  build tree containing bench/ binaries (default: build-rel)
#   --smoke          short measurement windows — CI sanity run, not for
#                    quoting numbers
#   --out FILE       aggregate destination (default: <repo>/BENCH_core.json)
#   --min-speedup KEY:RATIO
#                    forwarded gate: fail unless derived speedup KEY >= RATIO
#   --min-delta-write-ratio R
#                    forwarded gate: fail unless the delta write ratio >= R
#   --min-batch-speedup PROGRAM:RATIO
#                    forwarded gate: fail unless the group-commit 256-vs-1
#                    throughput ratio for PROGRAM >= RATIO (bench_batch)
#   --max-batch-fsyncs F
#                    forwarded gate: fail unless every bench_batch program
#                    stays <= F fsyncs/request at batch sizes >= 256
#   --with-service-soak
#                    also run bench_service (the multi-session soak +
#                    SnapshotView O(1) probe; DESIGN.md §15) and gate on it:
#                    zero crashes, read linearizability == 1.0, bit-identical
#                    oracle state, and snapshot_view_o1_ratio <= 0.05. Smoke
#                    runs the 65536-request soak; the full run soaks 1M
#                    requests.
#
# The build directory is configured and built here if needed, always as an
# optimized Release tree: quoting (or gating on) numbers from a debug build
# is meaningless, so a debug-configured --build-dir is rejected outright and
# aggregate_benches.py double-checks the library_build_type each binary
# reports at run time.
#
# The dense-backend ablation (DESIGN.md §13) runs inside bench_evaluators:
# the *Dense benchmark variants replay the identical workloads with
# use_dense_relations on while their hash twins run it off, so the derived
# dense-vs-hash speedups always compare the same binary and build flags.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-rel"
OUT="$ROOT/BENCH_core.json"
EXTRA_FLAGS=()
AGG_FLAGS=()
SMOKE=0
WITH_SERVICE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --smoke) SMOKE=1; EXTRA_FLAGS+=("--benchmark_min_time=0.02"); shift ;;
    --out) OUT="$2"; shift 2 ;;
    --min-speedup) AGG_FLAGS+=("--min-speedup" "$2"); shift 2 ;;
    --min-delta-write-ratio) AGG_FLAGS+=("--min-delta-write-ratio" "$2"); shift 2 ;;
    --min-batch-speedup) AGG_FLAGS+=("--min-batch-speedup" "$2"); shift 2 ;;
    --max-batch-fsyncs) AGG_FLAGS+=("--max-batch-fsyncs" "$2"); shift 2 ;;
    --with-service-soak)
      WITH_SERVICE=1
      AGG_FLAGS+=("--require-service-soak" "--max-snapshot-o1-ratio" "0.05")
      shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

CORE_BENCHES=(bench_evaluators bench_parity bench_reach_u bench_batch)
if [[ "$WITH_SERVICE" == 1 ]]; then
  CORE_BENCHES+=(bench_service)
fi

cache_build_type() {
  sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$1/CMakeCache.txt" 2>/dev/null || true
}

if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  echo "== configuring $BUILD_DIR (Release -O2)"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
fi
BUILD_TYPE="$(cache_build_type "$BUILD_DIR")"
case "$BUILD_TYPE" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    echo "error: $BUILD_DIR is configured as '${BUILD_TYPE:-<unset>}';" \
         "benchmarks must come from an optimized build. Reconfigure with" \
         "-DCMAKE_BUILD_TYPE=Release or point --build-dir elsewhere." >&2
    exit 1
    ;;
esac
echo "== building core benchmarks in $BUILD_DIR ($BUILD_TYPE)"
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${CORE_BENCHES[@]}"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for bench in "${CORE_BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "missing benchmark binary: $bin (build with -DDYNFO_BUILD_BENCHMARKS=ON)" >&2
    exit 1
  fi
  echo "== $bench"
  if [[ "$bench" == bench_service ]]; then
    # The soak runs exactly once (it is a survival campaign with in-binary
    # aborts, not a timing measurement) against a fixed seed; smoke scales
    # the request target down, the full run soaks 1M requests. The O(1)
    # SnapshotView probe rides along in the same JSON.
    soak_filter="BM_ServiceSoak/1048576|BM_SnapshotViewO1"
    if [[ "$SMOKE" == 1 ]]; then
      soak_filter="BM_ServiceSoak/65536|BM_SnapshotViewO1"
    fi
    "$bin" --benchmark_out="$TMP_DIR/$bench.json" --benchmark_out_format=json \
      --benchmark_filter="$soak_filter" --benchmark_repetitions=1
    continue
  fi
  # 3 repetitions, aggregates only: the gates and quoted numbers come from
  # the per-benchmark *median*, so a single descheduled measurement window
  # (common on shared hosts) cannot decide a pass/fail.
  "$bin" --benchmark_out="$TMP_DIR/$bench.json" --benchmark_out_format=json \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
    "${EXTRA_FLAGS[@]+"${EXTRA_FLAGS[@]}"}"
done

mkdir -p "$(dirname "$OUT")"
python3 "$ROOT/tools/aggregate_benches.py" --out "$OUT" \
  --binary-build-type "$BUILD_TYPE" \
  "${AGG_FLAGS[@]+"${AGG_FLAGS[@]}"}" "$TMP_DIR"/*.json
echo "wrote $OUT"
