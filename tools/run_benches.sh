#!/usr/bin/env bash
# Runs the core benchmark set and aggregates the results into BENCH_core.json
# at the repository root (tools/aggregate_benches.py does the merging and
# computes the derived ablation speedups).
#
# Usage:
#   tools/run_benches.sh [--build-dir DIR] [--smoke] [--out FILE]
#
#   --build-dir DIR  build tree containing bench/ binaries (default: build-rel)
#   --smoke          short measurement windows — CI sanity run, not for
#                    quoting numbers
#   --out FILE       aggregate destination (default: <repo>/BENCH_core.json)
#
# Benchmarks should come from an optimized build, e.g.:
#   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release \
#         -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
#   cmake --build build-rel -j"$(nproc)" --target bench_evaluators bench_parity bench_reach_u
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-rel"
OUT="$ROOT/BENCH_core.json"
EXTRA_FLAGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --smoke) EXTRA_FLAGS+=("--benchmark_min_time=0.02"); shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

CORE_BENCHES=(bench_evaluators bench_parity bench_reach_u)
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for bench in "${CORE_BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "missing benchmark binary: $bin (build with -DDYNFO_BUILD_BENCHMARKS=ON)" >&2
    exit 1
  fi
  echo "== $bench"
  "$bin" --benchmark_out="$TMP_DIR/$bench.json" --benchmark_out_format=json \
    "${EXTRA_FLAGS[@]+"${EXTRA_FLAGS[@]}"}"
done

mkdir -p "$(dirname "$OUT")"
python3 "$ROOT/tools/aggregate_benches.py" --out "$OUT" "$TMP_DIR"/*.json
echo "wrote $OUT"
