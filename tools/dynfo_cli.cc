/// \file dynfo_cli.cc
/// A command-line driver for Dyn-FO programs: load a text spec, feed it
/// requests, ask first-order questions — the relational calculus as a
/// dynamic query shell.
///
/// Usage:
///   dynfo_cli <program.dynfo> <universe-size> [script-file]
///
/// Commands (one per line, from the script or stdin; '#' comments):
///   ins <relation> <e1> <e2> ...     insert a tuple
///   del <relation> <e1> <e2> ...     delete a tuple
///   set <constant> <value>           assign a constant
///   query                            evaluate the boolean query
///   show <name> [params...]          print a named query / data relation
///   eval <formula>                   evaluate an ad-hoc FO sentence
///   stats                            engine counters
///   dump                             the whole data structure
///   save <file>                      serialize the data structure
///   load <file>                      restore a previously saved structure
///   quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dynfo/engine.h"
#include "dynfo/loader.h"
#include "fo/parser.h"
#include "relational/serialize.h"

namespace {

using dynfo::dyn::Engine;
using dynfo::relational::Element;
using dynfo::relational::Request;
using dynfo::relational::Tuple;

std::vector<std::string> Split(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string word;
  while (ss >> word) out.push_back(word);
  return out;
}

bool ParseElements(const std::vector<std::string>& words, size_t start,
                   std::vector<Element>* out) {
  for (size_t i = start; i < words.size(); ++i) {
    try {
      out->push_back(static_cast<Element>(std::stoul(words[i])));
    } catch (...) {
      std::printf("error: '%s' is not a universe element\n", words[i].c_str());
      return false;
    }
  }
  return true;
}

int Run(Engine* engine, std::istream& in, bool interactive) {
  auto program = engine->program().data_vocabulary();
  dynfo::fo::ParserEnvironment formulas(program);
  std::string line;
  if (interactive) std::printf("dynfo> ");
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> words = Split(line);
    if (words.empty()) {
      if (interactive) std::printf("dynfo> ");
      continue;
    }
    const std::string& command = words[0];
    if (command == "quit" || command == "exit") break;

    if (command == "ins" || command == "del") {
      if (words.size() < 2) {
        std::printf("error: %s needs a relation name\n", command.c_str());
      } else {
        std::vector<Element> elements;
        if (ParseElements(words, 2, &elements)) {
          Tuple t;
          for (Element e : elements) t = t.Append(e);
          Request request = command == "ins" ? Request::Insert(words[1], t)
                                             : Request::Delete(words[1], t);
          engine->Apply(request);
          std::printf("ok: %s\n", request.ToString().c_str());
        }
      }
    } else if (command == "set") {
      std::vector<Element> elements;
      if (words.size() == 3 && ParseElements(words, 2, &elements)) {
        engine->Apply(Request::SetConstant(words[1], elements[0]));
        std::printf("ok: set(%s, %u)\n", words[1].c_str(), elements[0]);
      } else {
        std::printf("error: usage: set <constant> <value>\n");
      }
    } else if (command == "query") {
      std::printf("%s\n", engine->QueryBool() ? "true" : "false");
    } else if (command == "show") {
      if (words.size() < 2) {
        std::printf("error: show needs a name\n");
      } else if (engine->program().FindNamedQuery(words[1]) != nullptr) {
        std::vector<Element> params;
        if (ParseElements(words, 2, &params)) {
          std::printf("%s = %s\n", words[1].c_str(),
                      engine->QueryRelation(words[1], params).ToString().c_str());
        }
      } else if (program->RelationIndex(words[1]) >= 0) {
        std::printf("%s = %s\n", words[1].c_str(),
                    engine->data().relation(words[1]).ToString().c_str());
      } else {
        std::printf("error: no query or relation named %s\n", words[1].c_str());
      }
    } else if (command == "eval") {
      std::string text = line.substr(line.find("eval") + 4);
      auto parsed = formulas.Parse(text);
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().message().c_str());
      } else if (!parsed.value()->FreeVariables().empty()) {
        std::printf("error: eval needs a sentence (no free variables)\n");
      } else {
        std::printf("%s\n", engine->QuerySentence(parsed.value()) ? "true" : "false");
      }
    } else if (command == "stats") {
      const Engine::Stats& stats = engine->stats();
      std::printf("requests=%llu recomputed=%llu delta=%llu +%llu/-%llu tuples\n",
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.relations_recomputed),
                  static_cast<unsigned long long>(stats.delta_applications),
                  static_cast<unsigned long long>(stats.tuples_inserted),
                  static_cast<unsigned long long>(stats.tuples_erased));
    } else if (command == "dump") {
      std::printf("%s", engine->data().ToString().c_str());
    } else if (command == "save" && words.size() == 2) {
      std::ofstream out(words[1]);
      if (!out) {
        std::printf("error: cannot write %s\n", words[1].c_str());
      } else {
        out << dynfo::relational::WriteStructure(engine->data());
        std::printf("saved to %s\n", words[1].c_str());
      }
    } else if (command == "load" && words.size() == 2) {
      std::ifstream file(words[1]);
      if (!file) {
        std::printf("error: cannot read %s\n", words[1].c_str());
      } else {
        std::stringstream buffer;
        buffer << file.rdbuf();
        auto restored =
            dynfo::relational::ReadStructure(buffer.str(), program);
        if (!restored.ok()) {
          std::printf("error: %s\n", restored.status().message().c_str());
        } else if (restored.value().universe_size() !=
                   engine->data().universe_size()) {
          std::printf("error: saved universe size %zu != engine's %zu\n",
                      restored.value().universe_size(),
                      engine->data().universe_size());
        } else {
          *engine->mutable_data() = std::move(restored).value();
          std::printf("loaded %s\n", words[1].c_str());
        }
      }
    } else {
      std::printf("error: unknown command '%s'\n", command.c_str());
    }
    if (interactive) std::printf("dynfo> ");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr, "usage: %s <program.dynfo> <universe-size> [script]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream spec(argv[1]);
  if (!spec) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << spec.rdbuf();
  auto program = dynfo::dyn::LoadProgramFromText(buffer.str());
  if (!program.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", argv[1],
                 program.status().message().c_str());
    return 2;
  }
  size_t n = std::stoul(argv[2]);
  Engine engine(program.value(), n);
  std::printf("loaded program '%s' (universe %zu)\n",
              program.value()->name().c_str(), n);

  if (argc == 4) {
    std::ifstream script(argv[3]);
    if (!script) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[3]);
      return 2;
    }
    return Run(&engine, script, /*interactive=*/false);
  }
  return Run(&engine, std::cin, /*interactive=*/true);
}
